file(REMOVE_RECURSE
  "CMakeFiles/movie_search.dir/movie_search.cpp.o"
  "CMakeFiles/movie_search.dir/movie_search.cpp.o.d"
  "movie_search"
  "movie_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
