# Empty dependencies file for movie_search.
# This may be replaced when dependencies are built.
