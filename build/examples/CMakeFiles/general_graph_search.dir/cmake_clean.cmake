file(REMOVE_RECURSE
  "CMakeFiles/general_graph_search.dir/general_graph_search.cpp.o"
  "CMakeFiles/general_graph_search.dir/general_graph_search.cpp.o.d"
  "general_graph_search"
  "general_graph_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_graph_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
