# Empty compiler generated dependencies file for general_graph_search.
# This may be replaced when dependencies are built.
