file(REMOVE_RECURSE
  "CMakeFiles/knowledge_graph_search.dir/knowledge_graph_search.cpp.o"
  "CMakeFiles/knowledge_graph_search.dir/knowledge_graph_search.cpp.o.d"
  "knowledge_graph_search"
  "knowledge_graph_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_graph_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
