# Empty dependencies file for knowledge_graph_search.
# This may be replaced when dependencies are built.
