file(REMOVE_RECURSE
  "CMakeFiles/bench_queries_table.dir/bench_queries_table.cpp.o"
  "CMakeFiles/bench_queries_table.dir/bench_queries_table.cpp.o.d"
  "bench_queries_table"
  "bench_queries_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queries_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
