# Empty compiler generated dependencies file for bench_queries_table.
# This may be replaced when dependencies are built.
