# Empty dependencies file for bench_blinks.
# This may be replaced when dependencies are built.
