file(REMOVE_RECURSE
  "CMakeFiles/bench_blinks.dir/bench_blinks.cpp.o"
  "CMakeFiles/bench_blinks.dir/bench_blinks.cpp.o.d"
  "bench_blinks"
  "bench_blinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
