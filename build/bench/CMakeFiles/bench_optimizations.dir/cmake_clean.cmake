file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizations.dir/bench_optimizations.cpp.o"
  "CMakeFiles/bench_optimizations.dir/bench_optimizations.cpp.o.d"
  "bench_optimizations"
  "bench_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
