# Empty compiler generated dependencies file for bench_optimizations.
# This may be replaced when dependencies are built.
