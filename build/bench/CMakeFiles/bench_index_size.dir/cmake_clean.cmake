file(REMOVE_RECURSE
  "CMakeFiles/bench_index_size.dir/bench_index_size.cpp.o"
  "CMakeFiles/bench_index_size.dir/bench_index_size.cpp.o.d"
  "bench_index_size"
  "bench_index_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
