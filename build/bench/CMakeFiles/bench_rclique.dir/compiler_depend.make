# Empty compiler generated dependencies file for bench_rclique.
# This may be replaced when dependencies are built.
