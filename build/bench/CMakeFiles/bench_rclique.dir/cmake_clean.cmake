file(REMOVE_RECURSE
  "CMakeFiles/bench_rclique.dir/bench_rclique.cpp.o"
  "CMakeFiles/bench_rclique.dir/bench_rclique.cpp.o.d"
  "bench_rclique"
  "bench_rclique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rclique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
