file(REMOVE_RECURSE
  "libbigindex.a"
)
