
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bisim/bisimulation.cc" "src/CMakeFiles/bigindex.dir/bisim/bisimulation.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/bisim/bisimulation.cc.o.d"
  "/root/repo/src/bisim/maintenance.cc" "src/CMakeFiles/bigindex.dir/bisim/maintenance.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/bisim/maintenance.cc.o.d"
  "/root/repo/src/core/answer_gen.cc" "src/CMakeFiles/bigindex.dir/core/answer_gen.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/answer_gen.cc.o.d"
  "/root/repo/src/core/big_index.cc" "src/CMakeFiles/bigindex.dir/core/big_index.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/big_index.cc.o.d"
  "/root/repo/src/core/config_search.cc" "src/CMakeFiles/bigindex.dir/core/config_search.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/config_search.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/bigindex.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/bigindex.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/index_io.cc" "src/CMakeFiles/bigindex.dir/core/index_io.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/index_io.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/bigindex.dir/core/query.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/core/query.cc.o.d"
  "/root/repo/src/graph/binary_io.cc" "src/CMakeFiles/bigindex.dir/graph/binary_io.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/graph/binary_io.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/bigindex.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/bigindex.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/label_dictionary.cc" "src/CMakeFiles/bigindex.dir/graph/label_dictionary.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/graph/label_dictionary.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/CMakeFiles/bigindex.dir/graph/sampling.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/graph/sampling.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/bigindex.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/graph/traversal.cc.o.d"
  "/root/repo/src/ontology/config.cc" "src/CMakeFiles/bigindex.dir/ontology/config.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/ontology/config.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/CMakeFiles/bigindex.dir/ontology/ontology.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/ontology/ontology.cc.o.d"
  "/root/repo/src/ontology/ontology_io.cc" "src/CMakeFiles/bigindex.dir/ontology/ontology_io.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/ontology/ontology_io.cc.o.d"
  "/root/repo/src/ontology/typing.cc" "src/CMakeFiles/bigindex.dir/ontology/typing.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/ontology/typing.cc.o.d"
  "/root/repo/src/search/answer.cc" "src/CMakeFiles/bigindex.dir/search/answer.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/search/answer.cc.o.d"
  "/root/repo/src/search/bidirectional.cc" "src/CMakeFiles/bigindex.dir/search/bidirectional.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/search/bidirectional.cc.o.d"
  "/root/repo/src/search/bkws.cc" "src/CMakeFiles/bigindex.dir/search/bkws.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/search/bkws.cc.o.d"
  "/root/repo/src/search/blinks.cc" "src/CMakeFiles/bigindex.dir/search/blinks.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/search/blinks.cc.o.d"
  "/root/repo/src/search/partitioner.cc" "src/CMakeFiles/bigindex.dir/search/partitioner.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/search/partitioner.cc.o.d"
  "/root/repo/src/search/rclique.cc" "src/CMakeFiles/bigindex.dir/search/rclique.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/search/rclique.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/bigindex.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/bigindex.dir/util/status.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/util/status.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/bigindex.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/graph_gen.cc" "src/CMakeFiles/bigindex.dir/workload/graph_gen.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/workload/graph_gen.cc.o.d"
  "/root/repo/src/workload/ontology_gen.cc" "src/CMakeFiles/bigindex.dir/workload/ontology_gen.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/workload/ontology_gen.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/bigindex.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/bigindex.dir/workload/query_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
