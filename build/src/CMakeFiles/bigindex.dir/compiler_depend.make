# Empty compiler generated dependencies file for bigindex.
# This may be replaced when dependencies are built.
