# Empty compiler generated dependencies file for bigindex_tests.
# This may be replaced when dependencies are built.
