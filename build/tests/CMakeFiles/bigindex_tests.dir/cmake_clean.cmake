file(REMOVE_RECURSE
  "CMakeFiles/bigindex_tests.dir/bidirectional_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/bidirectional_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/bisim_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/bisim_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/consistency_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/consistency_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/core_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/evaluator_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/evaluator_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/graph_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/graph_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/integration_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/io_extensions_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/io_extensions_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/ontology_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/ontology_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/search_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/search_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/util_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/util_test.cpp.o.d"
  "CMakeFiles/bigindex_tests.dir/workload_test.cpp.o"
  "CMakeFiles/bigindex_tests.dir/workload_test.cpp.o.d"
  "bigindex_tests"
  "bigindex_tests.pdb"
  "bigindex_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigindex_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
