
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bidirectional_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/bidirectional_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/bidirectional_test.cpp.o.d"
  "/root/repo/tests/bisim_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/bisim_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/bisim_test.cpp.o.d"
  "/root/repo/tests/consistency_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/consistency_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/consistency_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/evaluator_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/evaluator_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/evaluator_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/io_extensions_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/io_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/io_extensions_test.cpp.o.d"
  "/root/repo/tests/ontology_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/ontology_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/ontology_test.cpp.o.d"
  "/root/repo/tests/search_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/search_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/search_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/bigindex_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/bigindex_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bigindex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
