file(REMOVE_RECURSE
  "CMakeFiles/bigindex_cli.dir/bigindex_cli.cc.o"
  "CMakeFiles/bigindex_cli.dir/bigindex_cli.cc.o.d"
  "bigindex_cli"
  "bigindex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigindex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
