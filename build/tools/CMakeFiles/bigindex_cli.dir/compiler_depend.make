# Empty compiler generated dependencies file for bigindex_cli.
# This may be replaced when dependencies are built.
