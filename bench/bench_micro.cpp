// Google-benchmark microbenchmarks for the library's building blocks:
// bisimulation refinement, generalization, BFS cones, partitioning, Blinks /
// neighbor index construction, and end-to-end index build. These are not
// paper artifacts; they track the per-operation costs the paper benches
// compose.

#include <benchmark/benchmark.h>

#include "bigindex.h"

namespace bigindex {
namespace {

const Dataset& SharedDataset() {
  static const Dataset* ds = [] {
    auto made = MakeDataset("yago3", 0.005);  // ~13k vertices
    if (!made.ok()) std::abort();
    return new Dataset(std::move(made).value());
  }();
  return *ds;
}

void BM_Bisimulation(benchmark::State& state) {
  const Graph& g = SharedDataset().graph;
  for (auto _ : state) {
    BisimResult r = ComputeBisimulation(g);
    benchmark::DoNotOptimize(r.summary.NumVertices());
  }
  state.SetItemsProcessed(state.iterations() * g.Size());
}
BENCHMARK(BM_Bisimulation);

void BM_Generalize(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  GeneralizationConfig config =
      FullOneStepConfiguration(ds.graph, ds.ontology.ontology);
  for (auto _ : state) {
    Graph gen = Generalize(ds.graph, config);
    benchmark::DoNotOptimize(gen.NumVertices());
  }
  state.SetItemsProcessed(state.iterations() * ds.graph.NumVertices());
}
BENCHMARK(BM_Generalize);

void BM_BackwardCone(benchmark::State& state) {
  const Graph& g = SharedDataset().graph;
  LabelId hot = g.DistinctLabels()[0];
  size_t best = 0;
  for (LabelId l : g.DistinctLabels()) {
    if (g.LabelCount(l) > best) {
      best = g.LabelCount(l);
      hot = l;
    }
  }
  BfsScratch scratch;
  for (auto _ : state) {
    auto seeds = g.VerticesWithLabel(hot);
    auto cone = scratch.BoundedDistancesMulti(
        g, {seeds.begin(), seeds.end()}, 5, Direction::kBackward);
    benchmark::DoNotOptimize(cone.size());
  }
}
BENCHMARK(BM_BackwardCone);

void BM_Partition(benchmark::State& state) {
  const Graph& g = SharedDataset().graph;
  for (auto _ : state) {
    Partition p = PartitionGraph(g, state.range(0));
    benchmark::DoNotOptimize(p.NumBlocks());
  }
}
BENCHMARK(BM_Partition)->Arg(100)->Arg(1000);

void BM_BlinksIndexBuild(benchmark::State& state) {
  const Graph& g = SharedDataset().graph;
  for (auto _ : state) {
    BlinksIndex index = BlinksIndex::Build(g, 1000);
    benchmark::DoNotOptimize(index.MemoryBytes());
  }
}
BENCHMARK(BM_BlinksIndexBuild);

void BM_NeighborIndexBuild(benchmark::State& state) {
  const Graph& g = SharedDataset().graph;
  for (auto _ : state) {
    auto index = NeighborIndex::Build(g, 2);
    benchmark::DoNotOptimize(index.ok());
  }
}
BENCHMARK(BM_NeighborIndexBuild);

void BM_BigIndexBuild(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  for (auto _ : state) {
    auto index = BigIndex::Build(ds.graph, &ds.ontology.ontology,
                                 {.max_layers = 3});
    benchmark::DoNotOptimize(index.ok());
  }
}
BENCHMARK(BM_BigIndexBuild);

void BM_SampledCompressEstimate(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  CostModel model(ds.graph, {.sample_count = 400});
  GeneralizationConfig config =
      FullOneStepConfiguration(ds.graph, ds.ontology.ontology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.EstimateCompress(config));
  }
}
BENCHMARK(BM_SampledCompressEstimate);

}  // namespace
}  // namespace bigindex

BENCHMARK_MAIN();
