// Fig. 16 + Exp-4 "Graph sampling": effectiveness of the sampled compress
// estimator.
//
// (a) Fig. 16: estimated compression ratio vs number of sampled subgraphs —
//     the paper observes the estimate stabilizes once n >= 400 (and derives
//     n = 0.25 (z/E)^2 = ~400 for E = 5%).
// (b) Exp-4: Spearman rank correlation between estimated costs of 100 random
//     configurations and their ground-truth compression on the full graph.
//     Paper: r_s = 0.541 > 0.326 (critical value at alpha = 0.001).

#include <cmath>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

double SpearmanRank(const std::vector<double>& a,
                    const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    for (size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  std::vector<double> ra = ranks(a), rb = ranks(b);
  double n = static_cast<double>(a.size());
  double d2 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  PrintHeader("Fig. 16 + Exp-4 — cost-model sampling effectiveness",
              "Fig. 16, Sec. 6.2 Exp-4");
  double scale = BenchScale();

  auto ds = MakeDataset("yago3", scale);
  if (!ds.ok()) return 1;
  const Graph& g = ds->graph;
  const Ontology& ont = ds->ontology.ontology;
  GeneralizationConfig full = FullOneStepConfiguration(g, ont);
  double exact = CostModel::ExactCompress(g, full);

  std::printf("(a) estimated compress of the full one-step configuration vs "
              "sample count\n");
  std::printf("%8s %12s %16s %10s\n", "samples", "estimate",
              "|delta to prev|", "ctor(ms)");
  double prev = -1;
  for (size_t n : {25, 50, 100, 200, 400, 800, 1600}) {
    Timer t;
    CostModel model(g, {.sample_count = n, .seed = 11});
    double ctor_ms = t.ElapsedMillis();
    double est = model.EstimateCompress(full);
    std::printf("%8zu %12.4f %16.4f %10.1f\n", n, est,
                prev < 0 ? 0.0 : std::fabs(est - prev), ctor_ms);
    prev = est;
  }
  std::printf("paper shape: estimate stabilizes for n >= 400 "
              "(n = 0.25 (z/E)^2 = %zu at z = 1.96, E = 5%%).\n"
              "Note: radius-2 samples see local structure only, so the\n"
              "absolute level differs from the whole-graph ratio (%.4f);\n"
              "the paper's own validation (and (b) below) is about the\n"
              "estimator's *relative* ordering of configurations.\n",
              SampleSizeForError(1.96, 0.05), exact);

  // (b) Spearman rank correlation over 100 random configurations.
  std::printf("\n(b) estimated cost vs ground-truth compress over 100 random "
              "configurations\n");
  Rng rng(77);
  CostModel model(g, {.sample_count = 400, .seed = 11});
  std::vector<double> estimated, ground_truth;
  const auto& mappings = full.mappings();
  for (int c = 0; c < 100; ++c) {
    GeneralizationConfig config;
    for (const LabelMapping& m : mappings) {
      if (rng.Bernoulli(0.5)) (void)config.AddMapping(m.from, m.to);
    }
    estimated.push_back(model.EstimateCompress(config));
    ground_truth.push_back(CostModel::ExactCompress(g, config));
  }
  double rs = SpearmanRank(estimated, ground_truth);
  std::printf("Spearman r_s = %.3f (paper: 0.541; critical value 0.326 at "
              "alpha = 0.001) -> estimator %s a useful relative indicator\n",
              rs, rs > 0.326 ? "IS" : "IS NOT");
  return 0;
}
