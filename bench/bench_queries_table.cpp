// Table 4: benchmarked queries and per-keyword match counts.
//
// The paper lists 8 queries on YAGO3 with 2-6 keywords each, every keyword
// matching > 3000 vertices. The workload generator reproduces the procedure
// of Sec. 6.1.3 (ontology keywords with semantic relationships); this bench
// prints the regenerated table for each real-life dataset.

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Table 4 — benchmarked queries", "Tab. 4, Sec. 6.1.3");
  double scale = BenchScale();

  for (const char* name : {"yago3", "dbpedia", "imdb"}) {
    BenchInstance inst = MakeInstance(name, scale, /*max_layers=*/1);
    std::printf("\n--- %s ---\n", name);
    std::printf("%s", WorkloadToString(inst.dataset, inst.workload).c_str());
    // Sanity line: |Q| spread matches the paper's 2..6.
    size_t lo = SIZE_MAX, hi = 0;
    for (const QuerySpec& q : inst.workload) {
      lo = std::min(lo, q.keywords.size());
      hi = std::max(hi, q.keywords.size());
    }
    std::printf("(%zu queries, |Q| in [%zu, %zu]; paper: 8 queries, |Q| in "
                "[2, 6], counts > 3000 full-scale)\n",
                inst.workload.size(), lo, hi);
  }
  return 0;
}
