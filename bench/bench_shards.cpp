// Shard substrate bench: scatter-gather coordinator vs monolithic serving
// on the same dataset (no paper figure; ISSUE 7 acceptance).
//
// Measures, on a scaled yago3 instance:
//   1. 1-shard coordinator vs monolithic SearchService — the pure overhead
//      of the scatter-gather path (fan-out, per-shard cache probe, merge)
//      when there is nothing to scatter. This is the CI gate: sharded
//      throughput must stay >= 0.9x monolithic AND answers must be
//      byte-identical for every workload query.
//   2. 2- and 4-shard coordinators — how the overhead scales with fan-out
//      width (informational; answers are still checked for equality).
//
// Both shard modes run: connectivity-closed plans keep every answer within
// one shard, and bfs-block plans stay exact through the coordinator's
// boundary completion pass (DESIGN.md §9).
//
// `bench_shards --smoke` shrinks the timing loops and exits non-zero when
// the gate fails (tools/ci.sh runs it on every pass).

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

/// Serial closed loop: total wall ms to push every query through `service`
/// `rounds` times. Caching is disabled on both sides, so this measures the
/// dispatch path, not the cache.
double RunLoopMs(QueryService& service, const std::vector<EngineQuery>& queries,
                 size_t rounds) {
  Timer t;
  for (size_t r = 0; r < rounds; ++r) {
    for (const EngineQuery& q : queries) {
      auto result = service.Query(q);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  return t.ElapsedMillis();
}

/// Collects the answer vectors for every query, in workload order.
std::vector<std::vector<Answer>> CollectAnswers(
    QueryService& service, const std::vector<EngineQuery>& queries) {
  std::vector<std::vector<Answer>> out;
  out.reserve(queries.size());
  for (const EngineQuery& q : queries) {
    auto result = service.Query(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    std::vector<Answer> answers = std::move(result->answers);
    SortAnswers(answers);
    out.push_back(std::move(answers));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Queries on CI-scale instances run in microseconds; enough rounds that
  // the gate ratio measures dispatch cost, not timer noise.
  const size_t rounds = smoke ? 500 : 2000;

  PrintHeader("Shard substrate: coordinator vs monolithic",
              "shard scatter-gather (no paper figure; ISSUE 7 acceptance)");
  double scale = BenchScale();
  BenchInstance inst = MakeInstance("yago3", scale, /*max_layers=*/4);
  const Graph& g = inst.dataset.graph;
  const Ontology* ontology = &inst.dataset.ontology.ontology;

  // Workload: the Table-4-style specs, run through bkws and blinks with a
  // top-k cut at layer 0 so ranking (not just the answer set) must agree.
  std::vector<EngineQuery> queries;
  for (const QuerySpec& spec : inst.workload) {
    queries.push_back({.keywords = spec.keywords,
                       .algorithm = "bkws",
                       .eval = {.forced_layer = 0, .top_k = 10}});
    queries.push_back({.keywords = spec.keywords,
                       .algorithm = "blinks",
                       .eval = {.forced_layer = 0, .top_k = 10}});
    if (queries.size() >= (smoke ? 8u : 24u)) break;
  }
  std::printf("workload: %zu queries, %zu rounds per config, |V|=%zu |E|=%llu\n\n",
              queries.size(), rounds, static_cast<size_t>(g.NumVertices()),
              static_cast<unsigned long long>(g.NumEdges()));

  // Monolithic baseline over the already-built index (cache off: the bench
  // measures dispatch, and a warm cache would hide the fan-out entirely).
  auto engine = std::make_shared<const QueryEngine>(
      std::make_shared<const BigIndex>(std::move(inst.index).value()));
  SearchService mono(engine, {.enable_cache = false});
  std::vector<std::vector<Answer>> expected = CollectAnswers(mono, queries);
  double mono_ms =
      MedianMs(3, [&] { RunLoopMs(mono, queries, rounds); });
  double mono_qps = 1000.0 * queries.size() * rounds / mono_ms;
  std::printf("%-24s %8.1f q/s  (%.1f ms total)\n", "monolithic", mono_qps,
              mono_ms);

  bool gate_ok = true;
  for (ShardMode mode : {ShardMode::kConnectivityClosed, ShardMode::kBfsBlocks}) {
    const char* mode_name =
        mode == ShardMode::kConnectivityClosed ? "wcc" : "bfs";
    for (size_t n : {1u, 2u, 4u}) {
      auto built = BuildShardedIndex(
          g, ontology,
          {.plan = {.num_shards = n, .mode = mode, .bfs_block_size = 128},
           .index = {.max_layers = 4}});
      if (!built.ok()) {
        std::fprintf(stderr, "sharded build (%s, %zu): %s\n", mode_name, n,
                     built.status().ToString().c_str());
        return 1;
      }
      auto substrate = InProcessSubstrate::Create(
          std::move(built->shards), {.service = {.enable_cache = false}});
      if (!substrate.ok()) {
        std::fprintf(stderr, "substrate (%s, %zu): %s\n", mode_name, n,
                     substrate.status().ToString().c_str());
        return 1;
      }
      ShardedSearchService coordinator(substrate->get(),
                                       {.enable_cache = false});
      Status attached = coordinator.Attach();
      if (!attached.ok()) {
        std::fprintf(stderr, "attach (%s, %zu): %s\n", mode_name, n,
                     attached.ToString().c_str());
        return 1;
      }

      // Answers must match the monolithic baseline exactly at every width:
      // wcc keeps every answer within one shard; bfs restores cut-crossing
      // answers via the coordinator's boundary completion (DESIGN.md §9).
      std::vector<std::vector<Answer>> got =
          CollectAnswers(coordinator, queries);
      bool identical = got == expected;
      // The ratio is measured pairwise: a mono segment immediately followed
      // by a coordinator segment, best of three pairs. Absolute qps samples
      // drift with background load on a shared 1-core CI host, but
      // back-to-back segments see near-identical conditions, and an
      // interference spike inside one segment can only lower that pair's
      // ratio, never raise it.
      double ms = 0, ratio = 0;
      for (int pair = 0; pair < 3; ++pair) {
        double m = RunLoopMs(mono, queries, rounds);
        double s = RunLoopMs(coordinator, queries, rounds);
        ratio = std::max(ratio, m / s);
        ms = pair == 0 ? s : std::min(ms, s);
      }
      double qps = 1000.0 * queries.size() * rounds / ms;
      char name[40];
      std::snprintf(name, sizeof name, "%zu-shard coordinator (%s)", n,
                    mode_name);
      std::printf("%-28s %8.1f q/s  (%.1f ms total)  %.2fx mono  answers %s\n",
                  name, qps, ms, ratio, identical ? "identical" : "DIFFER");
      if (!identical) gate_ok = false;
      if (n == 1 && ratio < 0.9) {
        std::printf("  -> GATE FAIL: 1-shard (%s) throughput %.2fx "
                    "monolithic (floor 0.9x)\n",
                    mode_name, ratio);
        gate_ok = false;
      }
    }
  }

  std::printf("\n%s\n", gate_ok ? "gate OK: 1-shard >= 0.9x monolithic in "
                                  "both modes, answers identical at every "
                                  "width"
                                : "gate FAILED");
  return gate_ok ? 0 : 1;
}
