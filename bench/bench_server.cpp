// Serving-layer load generator: drives an in-process SearchService with
// closed-loop clients (each waits for its answer before sending the next)
// and an open-loop burst (submit-all-at-once), reporting throughput, tail
// latency, cache ratios, and the overload/deadline counters.
//
// Comparisons reported (ISSUE 3 acceptance):
//   1. answer cache ON vs OFF on a repeated-query workload — the cache
//      should win by >= 2x;
//   2. micro-batched dispatch (max_batch=64) vs one-query-per-Evaluate
//      serial dispatch (max_batch=1) over the same 8-thread engine pool;
//   3. an open-loop burst against a small admission queue with tight
//      deadlines — demonstrates non-blocking backpressure (rejections and
//      deadline misses, no hangs, no partial answers);
//   4. mixed read/update serving (ISSUE 8): 95% reads / 5% single-edge
//      updates through the full LiveUpdater + RCU epoch-swap path — read
//      tail latency must stay bounded while writers churn epochs, and
//      every read completes against a consistent engine snapshot.
//
// `bench_server --smoke` shrinks every phase for CI (tools/ci.sh runs it on
// every pass).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "update/live_updater.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

struct LoadReport {
  double qps = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  ServiceStats stats;
};

/// `clients` closed-loop threads hammer the service for `seconds`, each
/// cycling through `queries` from its own offset.
LoadReport RunClosedLoop(SearchService& service,
                         const std::vector<EngineQuery>& queries,
                         size_t clients, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0}, errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t i = c * 3;  // de-phase the clients
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = service.Query(queries[i++ % queries.size()]);
        if (r.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  Timer t;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop = true;
  for (auto& th : threads) th.join();
  LoadReport report;
  report.ok = ok.load();
  report.errors = errors.load();
  report.qps = report.ok / t.ElapsedSeconds();
  report.stats = service.Snapshot();
  return report;
}

/// Destructive percentile over raw latency samples (sorts in place).
double Pct(std::vector<double>& ms, double p) {
  if (ms.empty()) return 0;
  std::sort(ms.begin(), ms.end());
  return ms[static_cast<size_t>(p * (ms.size() - 1))];
}

void PrintReport(const char* name, const LoadReport& r) {
  std::printf("%-22s %10.1f q/s  ok=%-8llu err=%-6llu p50=%.3fms "
              "p95=%.3fms p99=%.3fms hit=%.2f mean_batch=%.1f\n",
              name, r.qps, static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.errors), r.stats.p50_ms,
              r.stats.p95_ms, r.stats.p99_ms, r.stats.cache_hit_ratio,
              r.stats.mean_batch_size);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double duration = smoke ? 0.25 : 2.0;
  // More clients than pool slots: micro-batches then exceed the slot count,
  // so the pool's dynamic scheduling amortizes per-query cost variance
  // (a batch of exactly num_slots is bounded by its slowest member).
  const size_t clients = 32;

  PrintHeader("SearchService load generator",
              "serving layer (no paper figure; ISSUE 3 acceptance)");
  double scale = BenchScale();
  BenchInstance inst = MakeInstance("yago3", scale, /*max_layers=*/4);
  auto index =
      std::make_shared<const BigIndex>(std::move(inst.index).value());
  auto engine = std::make_shared<const QueryEngine>(
      index, QueryEngineOptions{.num_threads = 8});

  // Repeated-query workload: a bounded set of distinct queries the clients
  // cycle over — cache-friendly by construction, like real head traffic.
  std::vector<EngineQuery> queries;
  for (const QuerySpec& q : inst.workload) {
    queries.push_back({.keywords = q.keywords,
                       .algorithm = "bkws",
                       .eval = {.top_k = 10}});
    queries.push_back({.keywords = q.keywords,
                       .algorithm = "blinks",
                       .eval = {.top_k = 10, .exact_verification = false}});
    if (queries.size() >= 24) break;
  }
  std::printf("workload: %zu distinct queries, %zu closed-loop clients, "
              "%.2fs per config, 8-thread engine pool "
              "(hardware concurrency: %u)\n\n",
              queries.size(), clients, duration,
              std::thread::hardware_concurrency());

  // --- 1. cache ON vs OFF ------------------------------------------------
  double cached_qps = 0, uncached_qps = 0;
  {
    SearchService service(engine, {.max_linger_ms = 0.2});
    for (const EngineQuery& q : queries) (void)service.Query(q);  // warm
    LoadReport r = RunClosedLoop(service, queries, clients, duration);
    PrintReport("cache on", r);
    cached_qps = r.qps;
  }
  {
    SearchService service(engine,
                          {.max_linger_ms = 0.2, .enable_cache = false});
    for (const EngineQuery& q : queries) (void)service.Query(q);  // warm
    LoadReport r = RunClosedLoop(service, queries, clients, duration);
    PrintReport("cache off", r);
    uncached_qps = r.qps;
  }
  std::printf("  -> cache speedup: %.2fx (target >= 2x on repeated "
              "queries)\n\n",
              uncached_qps > 0 ? cached_qps / uncached_qps : 0.0);

  // --- 2. micro-batched vs serial dispatch (cache off for both) ----------
  double batched_qps = 0, serial_qps = 0;
  {
    SearchService service(engine, {.max_batch_size = 64,
                                   .max_linger_ms = 0.5,
                                   .enable_cache = false});
    for (const EngineQuery& q : queries) (void)service.Query(q);
    LoadReport r = RunClosedLoop(service, queries, clients, duration);
    PrintReport("batched dispatch", r);
    batched_qps = r.qps;
  }
  {
    SearchService service(engine, {.max_batch_size = 1,
                                   .max_linger_ms = 0,
                                   .enable_cache = false});
    for (const EngineQuery& q : queries) (void)service.Query(q);
    LoadReport r = RunClosedLoop(service, queries, clients, duration);
    PrintReport("serial dispatch", r);
    serial_qps = r.qps;
  }
  std::printf("  -> batching speedup: %.2fx (micro-batches fan out over "
              "the pool; serial dispatch evaluates one query per "
              "EvaluateBatch; ~1.0x expected on single-core hosts)\n\n",
              serial_qps > 0 ? batched_qps / serial_qps : 0.0);

  // --- 3. open-loop burst: backpressure + deadlines ----------------------
  {
    SearchService service(engine, {.queue_capacity = 64,
                                   .max_linger_ms = 0.2,
                                   .enable_cache = false,
                                   .default_deadline_ms = 25});
    const size_t burst = smoke ? 400 : 4000;
    std::vector<std::future<StatusOr<QueryResult>>> futures;
    futures.reserve(burst);
    Timer t;
    for (size_t i = 0; i < burst; ++i) {
      futures.push_back(service.SubmitAsync(queries[i % queries.size()]));
    }
    double submit_ms = t.ElapsedMillis();
    uint64_t ok = 0, overload = 0, deadline = 0, other = 0;
    for (auto& f : futures) {
      auto r = f.get();
      if (r.ok()) {
        ++ok;
      } else if (r.status().code() == StatusCode::kUnavailable) {
        ++overload;
      } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
        ++deadline;
      } else {
        ++other;
      }
    }
    std::printf("open-loop burst: %zu submits in %.1fms (admission never "
                "blocks); ok=%llu overload=%llu deadline=%llu other=%llu\n",
                burst, submit_ms, static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(overload),
                static_cast<unsigned long long>(deadline),
                static_cast<unsigned long long>(other));
    std::printf("final: %s\n", service.Snapshot().ToString().c_str());
  }

  // --- 4. mixed read/update serving (95/5) -------------------------------
  {
    std::printf("\nmixed read/update (95/5): each client issues 1 update "
                "per 20 ops; updates run delta maintenance + engine build "
                "+ RCU epoch swap behind the writer mutex\n");
    SearchService service(engine, {.max_linger_ms = 0.2});
    LiveUpdater updater(index, engine,
                        {.engine = {.num_threads = 8}});
    updater.set_swap([&service](std::shared_ptr<const QueryEngine> next) {
      return service.SwapEngine(std::move(next));
    });
    service.set_updater([&updater](std::span<const GraphUpdate> updates) {
      return updater.Apply(updates);
    });

    const auto edges = index->base().Edges();
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> read_ok{0}, read_err{0};
    std::atomic<uint64_t> update_ok{0}, update_err{0};
    std::mutex lat_mutex;
    std::vector<double> update_ms;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        size_t i = c * 3;
        std::vector<double> local;
        // Each client toggles its own edge (distinct per client, so every
        // update has a net effect and runs the full maintenance path).
        auto [u, v] = edges[(c * 997) % edges.size()];
        bool removed = false;
        while (!stop.load(std::memory_order_relaxed)) {
          if (i++ % 20 == 19) {
            const GraphUpdate op{removed ? GraphUpdate::Kind::kAddEdge
                                         : GraphUpdate::Kind::kRemoveEdge,
                                 u, v};
            removed = !removed;
            Timer t;
            auto r = service.ApplyUpdate(std::span<const GraphUpdate>(&op, 1));
            local.push_back(t.ElapsedMillis());
            (r.ok() ? update_ok : update_err)
                .fetch_add(1, std::memory_order_relaxed);
          } else {
            auto r = service.Query(queries[i % queries.size()]);
            (r.ok() ? read_ok : read_err)
                .fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::lock_guard<std::mutex> lock(lat_mutex);
        update_ms.insert(update_ms.end(), local.begin(), local.end());
      });
    }
    Timer t;
    std::this_thread::sleep_for(std::chrono::duration<double>(duration * 2));
    stop = true;
    for (auto& th : threads) th.join();
    const double secs = t.ElapsedSeconds();
    ServiceStats stats = service.Snapshot();
    std::printf("reads:   %10.1f q/s  ok=%-8llu err=%-6llu p50=%.3fms "
                "p95=%.3fms p99=%.3fms hit=%.2f\n",
                read_ok.load() / secs,
                static_cast<unsigned long long>(read_ok.load()),
                static_cast<unsigned long long>(read_err.load()), stats.p50_ms,
                stats.p95_ms, stats.p99_ms, stats.cache_hit_ratio);
    const double upd_p50 = Pct(update_ms, 0.5);
    const double upd_p95 = Pct(update_ms, 0.95);
    const double upd_max = update_ms.empty() ? 0.0 : update_ms.back();
    std::printf("updates: %10.1f u/s  ok=%-8llu err=%-6llu p50=%.1fms "
                "p95=%.1fms max=%.1fms (serialized on the writer mutex)\n",
                update_ok.load() / secs,
                static_cast<unsigned long long>(update_ok.load()),
                static_cast<unsigned long long>(update_err.load()), upd_p50,
                upd_p95, upd_max);
    std::printf("final: %s\n", stats.ToString().c_str());
  }
  return 0;
}
