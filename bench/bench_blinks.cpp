// Figs. 10, 11, 12: query times of Blinks with and without BiG-index on
// YAGO3, Dbpedia, and IMDB, with the per-phase breakdown of Sec. 6.2
// ("query performance breakdown").
//
// Paper reference: BiG-index reduces Blinks query times by 61.8% on YAGO3,
// 57.3% on Dbpedia, 32.5% on IMDB (d_max = 5, avg block size 1000, top-k).
// The headline across datasets is the abstract's 50.5%.
//
// Two BiG-index columns are reported: "fast" follows the paper's
// implementation (realized answers keep generalized scores, Prop 5.3);
// "exact" additionally verifies every candidate on the data graph, which is
// the mode whose answers are proven equal to direct evaluation (Thm 4.2).

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Figs. 10-12 — Blinks with/without BiG-index",
              "Fig. 10 (YAGO3), Fig. 11 (Dbpedia), Fig. 12 (IMDB)");
  double scale = BenchScale();

  struct PaperRow {
    const char* name;
    double reduction_pct;
  };
  const PaperRow datasets[] = {
      {"yago3", 61.8}, {"dbpedia", 57.3}, {"imdb", 32.5}};

  double grand_direct = 0, grand_fast = 0, grand_exact = 0;
  for (const PaperRow& d : datasets) {
    BenchInstance inst = MakeInstance(d.name, scale);
    const BigIndex& index = *inst.index;
    // Direct evaluation asks for the paper's top-10; the summary-layer
    // instance asks for 5x as many generalized answers, which progressive
    // specialization (Sec. 4.3.4) consumes in rank order until 10 concrete
    // answers are verified.
    BlinksAlgorithm blinks({.d_max = 5, .top_k = 10, .block_size = 1000});
    BlinksAlgorithm blinks_summary(
        {.d_max = 5, .top_k = 50, .block_size = 1000});

    // Warm per-graph Blinks indexes so timings measure search, not index
    // construction (the paper prebuilds all indexes).
    if (!inst.workload.empty()) {
      (void)blinks.Evaluate(index.base(), inst.workload[0].keywords);
      (void)EvaluateWithIndex(index, blinks_summary,
                              inst.workload[0].keywords, {.top_k = 10});
    }

    std::printf("\n--- %s (paper reduction: %.1f%%) ---\n", d.name,
                d.reduction_pct);
    std::printf("%-4s %2s %12s %12s %12s %6s | breakdown(fast): %s\n", "id",
                "|Q|", "direct(ms)", "big-fast", "big-exact", "layer",
                "explore/spec/gen/out");
    double total_direct = 0, total_fast = 0, total_exact = 0;
    for (const QuerySpec& q : inst.workload) {
      double direct_ms = MedianMs(
          3, [&] { (void)blinks.Evaluate(index.base(), q.keywords); });

      EvalOptions fast;
      fast.top_k = 10;
      fast.exact_verification = false;
      EvalBreakdown bd;
      double fast_ms = MedianMs(3, [&] {
        bd = EvalBreakdown();
        (void)EvaluateWithIndex(index, blinks_summary, q.keywords, fast, &bd);
      });

      EvalOptions exact;
      exact.top_k = 10;
      double exact_ms = MedianMs(3, [&] {
        (void)EvaluateWithIndex(index, blinks_summary, q.keywords, exact);
      });

      total_direct += direct_ms;
      total_fast += fast_ms;
      total_exact += exact_ms;
      std::printf("%-4s %2zu %12.2f %12.2f %12.2f %6zu | %.2f/%.2f/%.2f ms, "
                  "%zu answers\n",
                  q.id.c_str(), q.keywords.size(), direct_ms, fast_ms,
                  exact_ms, bd.layer, bd.explore_ms, bd.specialize_ms,
                  bd.generate_ms, bd.final_answers);
    }
    double reduction =
        total_direct > 0 ? 100.0 * (total_direct - total_fast) / total_direct
                         : 0;
    std::printf("total: direct %.1f ms, big-fast %.1f ms, big-exact %.1f ms "
                "-> reduction %.1f%% (paper %.1f%%)\n",
                total_direct, total_fast, total_exact, reduction,
                d.reduction_pct);
    grand_direct += total_direct;
    grand_fast += total_fast;
    grand_exact += total_exact;
  }

  std::printf("\n=== headline: Blinks runtime reduction %.1f%% (paper: "
              "50.5%% average) ===\n",
              grand_direct > 0
                  ? 100.0 * (grand_direct - grand_fast) / grand_direct
                  : 0);
  return 0;
}
