// Exp-3 "Construction time": BiG-index build times per dataset (all layers).
//
// Paper reference: 20 minutes for YAGO3, 6.4 h for Dbpedia, 6.6 h for IMDB,
// 3 h for the largest synthetic graph — on a 2.93 GHz / 64 GB server at full
// dataset size. At bench scale the absolute numbers shrink accordingly; the
// shape to check is the relative ordering (dbpedia slowest per vertex, yago3
// fastest) and that construction is dominated by the first layers.

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Exp-3 — index construction time", "Sec. 6.2 Exp-3, Fig. 9");
  double scale = BenchScale();

  std::printf("%-9s %9s %9s %8s %12s %14s %12s\n", "dataset", "|V|", "|E|",
              "layers", "build(ms)", "us-per-vertex", "index/|G|");
  for (const std::string& name : DatasetNames()) {
    auto ds = MakeDataset(name, scale);
    if (!ds.ok()) continue;
    Timer t;
    auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                                 {.max_layers = 7});
    double ms = t.ElapsedMillis();
    if (!index.ok()) continue;
    std::printf("%-9s %9zu %9zu %8zu %12.1f %14.2f %12.3f\n", name.c_str(),
                ds->graph.NumVertices(), ds->graph.NumEdges(),
                index->NumLayers(), ms,
                1000.0 * ms / ds->graph.NumVertices(),
                static_cast<double>(index->TotalSummarySize()) /
                    ds->graph.Size());
  }

  // Greedy (Algorithm 1) construction as a contrast on one dataset.
  {
    auto ds = MakeDataset("yago3", scale);
    if (ds.ok()) {
      BigIndexOptions opt;
      opt.max_layers = 2;
      opt.use_greedy_config = true;
      opt.config_search.theta = 0.9;
      opt.config_search.cost.sample_count = 100;
      Timer t;
      auto index =
          BigIndex::Build(ds->graph, &ds->ontology.ontology, opt);
      if (index.ok()) {
        std::printf("\nAlgorithm-1 greedy construction (yago3, 2 layers, "
                    "theta 0.9, 100 samples): %.1f ms, layer-1 ratio %.3f\n",
                    t.ElapsedMillis(), index->LayerCompressionRatio(1));
      }
    }
  }
  return 0;
}
