// Exp-3 "Construction time": BiG-index build times per dataset (all layers),
// plus the serial-vs-parallel construction speedup (BuildOptions).
//
// Paper reference: 20 minutes for YAGO3, 6.4 h for Dbpedia, 6.6 h for IMDB,
// 3 h for the largest synthetic graph — on a 2.93 GHz / 64 GB server at full
// dataset size. At bench scale the absolute numbers shrink accordingly; the
// shape to check is the relative ordering (dbpedia slowest per vertex, yago3
// fastest) and that construction is dominated by the first layers.
//
// The parallel section uses fixed-size presets (independent of
// BIGINDEX_BENCH_SCALE) so speedups are comparable across machines:
//   * large preset: yago3 at scale 0.05 (~130k vertices), default one-step
//     build — refinement-bound, the common production path;
//   * greedy preset: yago3 at scale 0.01, Algorithm 1 with 200 samples —
//     sampling/scoring-bound, the embarrassingly parallel path.
// Speedups only materialize with real cores; the preamble prints the
// hardware concurrency so single-core CI numbers are read correctly.
//
//   bench_construction [--smoke]
//
// --smoke: tiny preset, 2 build threads; verifies the parallel build is
// byte-identical to the serial one and exits non-zero if not. Used by
// tools/ci.sh to exercise the parallel construction path cheaply.

#include <cstring>
#include <sstream>
#include <thread>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

std::string SerializeIndex(const BigIndex& index, const LabelDictionary& dict) {
  std::ostringstream out;
  Status s = WriteIndex(index, dict, out);
  if (!s.ok()) {
    std::fprintf(stderr, "serialize: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return std::move(out).str();
}

double BuildMs(const Dataset& ds, const BigIndexOptions& opt,
               size_t* layers = nullptr) {
  Timer t;
  auto index = BigIndex::Build(ds.graph, &ds.ontology.ontology, opt);
  double ms = t.ElapsedMillis();
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    std::exit(1);
  }
  if (layers != nullptr) *layers = index->NumLayers();
  return ms;
}

int RunSmoke() {
  // >= 2 * 2048 vertices so the default chunk threshold actually engages
  // the pooled refinement path inside BigIndex::Build.
  auto ds = MakeDataset("yago3", 0.0025);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  BigIndexOptions opt;
  opt.max_layers = 3;
  auto serial = BigIndex::Build(ds->graph, &ds->ontology.ontology, opt);
  opt.build.num_threads = 2;
  auto parallel = BigIndex::Build(ds->graph, &ds->ontology.ontology, opt);
  if (!serial.ok() || !parallel.ok()) {
    std::fprintf(stderr, "smoke build failed\n");
    return 1;
  }
  if (SerializeIndex(*serial, *ds->dict) !=
      SerializeIndex(*parallel, *ds->dict)) {
    std::fprintf(stderr,
                 "FAIL: parallel build differs from serial build "
                 "(|V|=%zu, 2 threads)\n",
                 ds->graph.NumVertices());
    return 1;
  }
  std::printf("construction smoke OK: serial == 2-thread build "
              "(|V|=%zu, %zu layers)\n",
              ds->graph.NumVertices(), serial->NumLayers());
  return 0;
}

void RunSpeedup() {
  std::printf("\n--- parallel construction (BuildOptions::num_threads) ---\n");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  {
    auto ds = MakeDataset("yago3", 0.05);
    if (!ds.ok()) return;
    std::printf("large preset: yago3 |V|=%zu |E|=%zu, default build, "
                "4 layers\n",
                ds->graph.NumVertices(), ds->graph.NumEdges());
    BigIndexOptions opt;
    opt.max_layers = 4;
    size_t layers = 0;
    double serial_ms = BuildMs(*ds, opt, &layers);
    std::printf("  %8s %12s %9s\n", "threads", "build(ms)", "speedup");
    std::printf("  %8s %12.1f %9s\n", "serial", serial_ms, "1.00x");
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      opt.build.num_threads = threads;
      double ms = BuildMs(*ds, opt);
      std::printf("  %8zu %12.1f %8.2fx\n", threads, ms, serial_ms / ms);
    }
  }

  {
    auto ds = MakeDataset("yago3", 0.01);
    if (!ds.ok()) return;
    std::printf("greedy preset: yago3 |V|=%zu, Algorithm 1, 2 layers, "
                "200 samples\n",
                ds->graph.NumVertices());
    BigIndexOptions opt;
    opt.max_layers = 2;
    opt.use_greedy_config = true;
    opt.config_search.theta = 0.9;
    opt.config_search.cost.sample_count = 200;
    double serial_ms = BuildMs(*ds, opt);
    std::printf("  %8s %12.1f %9s\n", "serial", serial_ms, "1.00x");
    for (size_t threads : {size_t{2}, size_t{4}}) {
      opt.build.num_threads = threads;
      double ms = BuildMs(*ds, opt);
      std::printf("  %8zu %12.1f %8.2fx\n", threads, ms, serial_ms / ms);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  PrintHeader("Exp-3 — index construction time", "Sec. 6.2 Exp-3, Fig. 9");
  double scale = BenchScale();

  std::printf("%-9s %9s %9s %8s %12s %14s %12s\n", "dataset", "|V|", "|E|",
              "layers", "build(ms)", "us-per-vertex", "index/|G|");
  for (const std::string& name : DatasetNames()) {
    auto ds = MakeDataset(name, scale);
    if (!ds.ok()) continue;
    Timer t;
    auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                                 {.max_layers = 7});
    double ms = t.ElapsedMillis();
    if (!index.ok()) continue;
    std::printf("%-9s %9zu %9zu %8zu %12.1f %14.2f %12.3f\n", name.c_str(),
                ds->graph.NumVertices(), ds->graph.NumEdges(),
                index->NumLayers(), ms,
                1000.0 * ms / ds->graph.NumVertices(),
                static_cast<double>(index->TotalSummarySize()) /
                    ds->graph.Size());
  }

  // Greedy (Algorithm 1) construction as a contrast on one dataset.
  {
    auto ds = MakeDataset("yago3", scale);
    if (ds.ok()) {
      BigIndexOptions opt;
      opt.max_layers = 2;
      opt.use_greedy_config = true;
      opt.config_search.theta = 0.9;
      opt.config_search.cost.sample_count = 100;
      Timer t;
      auto index =
          BigIndex::Build(ds->graph, &ds->ontology.ontology, opt);
      if (index.ok()) {
        std::printf("\nAlgorithm-1 greedy construction (yago3, 2 layers, "
                    "theta 0.9, 100 samples): %.1f ms, layer-1 ratio %.3f\n",
                    t.ElapsedMillis(), index->LayerCompressionRatio(1));
      }
    }
  }

  RunSpeedup();
  return 0;
}
