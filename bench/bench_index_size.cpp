// Table 3 + Fig. 9: BiG-index summary-graph sizes.
//
// Table 3 reports layer-1 size (|V| + |E|) and its ratio to the data graph;
// Fig. 9 reports the sizes of all 7 layers. Both are regenerated here for
// every dataset. The paper's layer-1 ratios: YAGO3 0.2785, Dbpedia 0.6052,
// IMDB 0.3666, synt-* 0.7579-0.8775.

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Table 3 + Fig. 9 — summary graph sizes per layer",
              "Tab. 3, Fig. 9, Exp-3");
  double scale = BenchScale();

  struct PaperRatio {
    const char* name;
    double ratio;
  };
  const PaperRatio paper[] = {{"yago3", 0.2785},  {"dbpedia", 0.6052},
                              {"imdb", 0.3666},   {"synt-1m", 0.8775},
                              {"synt-2m", 0.8687},{"synt-4m", 0.7730},
                              {"synt-8m", 0.7579}};

  std::printf("%-9s %12s %12s %9s %9s\n", "dataset", "|G^0|",
              "layer1 |V|+|E|", "ratio", "paper");
  std::printf("---- Fig. 9 series: |G^m| for m = 1..7 ----\n");
  for (const PaperRatio& p : paper) {
    BenchInstance inst = MakeInstance(p.name, scale);
    const BigIndex& index = *inst.index;
    std::printf("%-9s %12zu %12zu %9.4f %9.4f   layers:", p.name,
                index.base().Size(), index.LayerGraph(1).Size(),
                index.LayerCompressionRatio(1), p.ratio);
    for (size_t m = 1; m <= index.NumLayers(); ++m) {
      std::printf(" %zu", index.LayerGraph(m).Size());
    }
    std::printf("\n");
  }
  std::printf("\nShape checks (as in the paper): ratios shrink with depth; "
              "yago3 < imdb < dbpedia < synt (layer-1 ratio ordering).\n");
  return 0;
}
