// Fig. 19 + Exp-4 + Exp-6: query performance per layer, cost-model layer
// prediction, and the comparison against Fan et al. [10] (bisimulation-only,
// fixed depth).
//
// Paper references:
//  * Fig. 19: per-query runtimes when forcing evaluation at each layer m;
//    several queries are fastest at the highest layer.
//  * Exp-4: with beta in [0.3, 0.7] the Formula-4 model predicts the optimal
//    layer for 6 of 8 queries (75% accuracy) at beta = 0.5.
//  * Exp-6: [10] summarizes once (evaluating at a fixed shallow layer);
//    "evaluating queries at the second layer is always suboptimal".

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Fig. 19 + Exp-4 + Exp-6 — per-layer query performance",
              "Fig. 19, Sec. 6.2 Exp-4/Exp-6");
  double scale = BenchScale();

  BenchInstance inst = MakeInstance("yago3", scale, /*max_layers=*/4);
  const BigIndex& index = *inst.index;
  BlinksAlgorithm blinks({.d_max = 5, .top_k = 50, .block_size = 1000});

  const size_t layers = index.NumLayers();
  std::printf("layers built: %zu (+ layer 0)\n\n", layers);

  std::printf("%-4s | per-layer time (ms), * = empirical best, (i) = "
              "infeasible by Def 4.1 | predicted m (beta=0.5)\n", "id");
  size_t correct = 0, counted = 0;
  double best_total = 0, layer2_total = 0, predicted_total = 0;
  for (const QuerySpec& q : inst.workload) {
    std::vector<double> times(layers + 1, -1.0);
    size_t best_layer = 0;
    for (size_t m = 0; m <= layers; ++m) {
      if (!QueryDistinctAtLayer(index, q.keywords, m)) continue;
      EvalOptions opt;
      opt.forced_layer = static_cast<int>(m);
      opt.top_k = 10;
      opt.exact_verification = false;
      (void)EvaluateWithIndex(index, blinks, q.keywords, opt);  // warm
      times[m] = MedianMs(3, [&] {
        (void)EvaluateWithIndex(index, blinks, q.keywords, opt);
      });
      if (times[m] < times[best_layer] || times[best_layer] < 0) {
        best_layer = m;
      }
    }
    size_t predicted = OptimalQueryLayer(index, q.keywords, 0.5);
    ++counted;
    if (predicted == best_layer) ++correct;
    best_total += times[best_layer];
    if (layers >= 2 && times[2] >= 0) layer2_total += times[2];
    if (times[predicted] >= 0) predicted_total += times[predicted];

    std::printf("%-4s |", q.id.c_str());
    for (size_t m = 0; m <= layers; ++m) {
      if (times[m] < 0) {
        std::printf("   (i)  ");
      } else {
        std::printf(" %6.2f%c", times[m], m == best_layer ? '*' : ' ');
      }
    }
    std::printf(" | m=%zu\n", predicted);
  }
  std::printf("\nExp-4: cost model predicted the optimal layer for %zu/%zu "
              "queries = %.0f%% (paper: 75%%)\n",
              correct, counted,
              counted ? 100.0 * correct / counted : 0.0);

  // Beta sweep: predicted layer per beta (paper: usable range 0.3-0.7).
  std::printf("\nbeta sweep — predicted layer per query:\n%-5s", "beta");
  for (const QuerySpec& q : inst.workload) std::printf("%5s", q.id.c_str());
  std::printf("\n");
  for (double beta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::printf("%-5.1f", beta);
    for (const QuerySpec& q : inst.workload) {
      std::printf("%5zu", OptimalQueryLayer(index, q.keywords, beta));
    }
    std::printf("\n");
  }

  // Exp-6: [10]-style fixed second-layer evaluation vs adaptive choice.
  if (layers >= 2) {
    std::printf("\nExp-6 ([10] baseline, fixed layer 2): %.1f ms total vs "
                "%.1f ms at the per-query best layer (%.1f ms at predicted) "
                "-> fixed-depth summarization is %s (paper: \"always "
                "suboptimal\")\n",
                layer2_total, best_total, predicted_total,
                layer2_total > best_total ? "suboptimal" : "competitive");
  }
  return 0;
}
