// Cold-start comparison: mmap'd flat index image vs the text parsing loader.
//
// The serving story of Sec. 5.1 ("BiG-index loads the m-th layer from the
// disk") hinges on load latency. The text format re-parses and rebuilds
// every layer through GraphBuilder; the flat image (core/index_image.h)
// validates checksums and wires spans over the mapped file. This bench
// reports both loaders' median load time, the image/text speedup, and
// time-to-first-query (load + one bkws evaluation) — the number a restarting
// bigindex_serverd actually feels.
//
//   bench_index_load [--check]
//
// --check: smoke mode for tools/ci.sh — builds a small instance, saves both
// formats, asserts the image loads correctly (identical query answers),
// asserts the image loader beats the parsing loader by >= 10x, and exits
// non-zero on any violation.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

struct LoadSetup {
  Dataset dataset;
  StatusOr<BigIndex> index = Status::FailedPrecondition("not built");
  std::string text_path;
  std::string image_path;
};

LoadSetup Prepare(const std::string& name, double scale, size_t layers) {
  LoadSetup s;
  auto ds = MakeDataset(name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset: %s\n", ds.status().ToString().c_str());
    std::exit(1);
  }
  s.dataset = std::move(ds).value();
  s.index = BigIndex::Build(s.dataset.graph, &s.dataset.ontology.ontology,
                            {.max_layers = layers});
  if (!s.index.ok()) {
    std::fprintf(stderr, "build: %s\n", s.index.status().ToString().c_str());
    std::exit(1);
  }
  s.text_path = "/tmp/bigindex_load_" + name + ".idx";
  s.image_path = "/tmp/bigindex_load_" + name + ".img";
  Status st = SaveIndexFile(*s.index, *s.dataset.dict, s.text_path);
  if (st.ok()) st = SaveIndexImageFile(*s.index, *s.dataset.dict, s.image_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return s;
}

void Cleanup(const LoadSetup& s) {
  std::remove(s.text_path.c_str());
  std::remove(s.image_path.c_str());
}

/// One keyword query for time-to-first-query measurements.
std::vector<LabelId> FirstQuery(const LoadSetup& s) {
  auto distinct = s.dataset.graph.DistinctLabels();
  if (distinct.size() < 2) {
    std::fprintf(stderr, "dataset has < 2 labels\n");
    std::exit(1);
  }
  return {distinct[0], distinct[distinct.size() / 2]};
}

int RunCheck() {
  // Default bench preset (0.01) with the full 7-layer hierarchy: smaller or
  // shallower indexes parse in a few ms, where the image's fixed
  // mmap/validation overhead makes the measured ratio too noisy for a hard
  // >= 10x gate. dbpedia is the largest preset, so both timings are in the
  // hundreds-of-ms range and the ratio is stable.
  LoadSetup s = Prepare("dbpedia", 0.01, 7);
  std::vector<LabelId> q = FirstQuery(s);
  BkwsAlgorithm bkws(BkwsOptions{.d_max = 4});
  auto want = EvaluateWithIndex(*s.index, bkws, q, {});

  // Correctness: the image-loaded index answers exactly like the built one.
  // Re-intern the dataset dictionary in order (as a restarting server would)
  // so ontology label ids line up with the loaded index.
  LabelDictionary dict;
  for (size_t i = 0; i < s.dataset.dict->size(); ++i) {
    dict.Intern(s.dataset.dict->Name(static_cast<LabelId>(i)));
  }
  auto image = LoadIndexImage(s.image_path, dict,
                              &s.dataset.ontology.ontology);
  if (!image.ok()) {
    std::fprintf(stderr, "check: image load failed: %s\n",
                 image.status().ToString().c_str());
    Cleanup(s);
    return 1;
  }
  auto got = EvaluateWithIndex(*image, bkws, q, {});
  if (got != want) {
    std::fprintf(stderr, "check: image-loaded index answers differ\n");
    Cleanup(s);
    return 1;
  }

  // Speed: image load must beat the parsing loader by >= 10x.
  double text_ms = MedianMs(5, [&] {
    LabelDictionary d;
    auto idx = LoadIndexFile(s.text_path, d, &s.dataset.ontology.ontology);
    if (!idx.ok()) std::exit(1);
  });
  double image_ms = MedianMs(5, [&] {
    LabelDictionary d;
    auto idx = LoadIndexImage(s.image_path, d, &s.dataset.ontology.ontology);
    if (!idx.ok()) std::exit(1);
  });
  std::printf("check: text %.3f ms, image %.3f ms (%.1fx)\n", text_ms,
              image_ms, text_ms / image_ms);
  Cleanup(s);
  if (image_ms * 10 > text_ms) {
    std::fprintf(stderr,
                 "check: image load is not >= 10x faster than parsing\n");
    return 1;
  }
  std::printf("check: OK\n");
  return 0;
}

void RunOne(const std::string& name, double scale) {
  LoadSetup s = Prepare(name, scale, 7);
  std::vector<LabelId> q = FirstQuery(s);
  BkwsAlgorithm bkws(BkwsOptions{.d_max = 4});

  double text_ms = MedianMs(5, [&] {
    LabelDictionary d;
    auto idx = LoadIndexFile(s.text_path, d, &s.dataset.ontology.ontology);
    if (!idx.ok()) std::exit(1);
  });
  double image_ms = MedianMs(5, [&] {
    LabelDictionary d;
    auto idx = LoadIndexImage(s.image_path, d, &s.dataset.ontology.ontology);
    if (!idx.ok()) std::exit(1);
  });
  double image_novalidate_ms = MedianMs(5, [&] {
    LabelDictionary d;
    auto idx = LoadIndexImage(s.image_path, d, &s.dataset.ontology.ontology,
                              {.validate_arrays = false});
    if (!idx.ok()) std::exit(1);
  });
  double ttfq_text_ms = MedianMs(3, [&] {
    LabelDictionary d;
    auto idx = LoadIndexFile(s.text_path, d, &s.dataset.ontology.ontology);
    if (!idx.ok()) std::exit(1);
    EvaluateWithIndex(*idx, bkws, q, {});
  });
  double ttfq_image_ms = MedianMs(3, [&] {
    LabelDictionary d;
    auto idx = LoadIndexImage(s.image_path, d, &s.dataset.ontology.ontology);
    if (!idx.ok()) std::exit(1);
    EvaluateWithIndex(*idx, bkws, q, {});
  });

  std::printf(
      "%-10s |V|=%-8zu layers=%zu | text %8.2f ms | image %7.3f ms "
      "(%.0fx) | image-novalidate %7.3f ms | ttfq text %8.2f image %7.2f\n",
      name.c_str(), s.dataset.graph.NumVertices(), s.index->NumLayers(),
      text_ms, image_ms, text_ms / image_ms, image_novalidate_ms,
      ttfq_text_ms, ttfq_image_ms);
  Cleanup(s);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--check") == 0) return RunCheck();
  PrintHeader("bench_index_load: cold-start load latency, text vs image",
              "serving startup (Sec. 5.1 layer loading)");
  std::printf("%-10s %-22s | %-16s | %-20s | %-24s | ttfq = load + 1 query\n",
              "dataset", "", "text parse+build", "image mmap+validate",
              "image mmap only");
  for (const char* name : {"yago3", "dbpedia", "imdb"}) {
    RunOne(name, BenchScale());
  }
  return 0;
}
