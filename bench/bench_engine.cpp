// QueryEngine batch throughput: the same Table-4-style workload evaluated
// through EvaluateBatch at 1, 2, 4, and 8 worker threads over one shared
// BiG-index, plus the serial (0-thread) engine as the no-pool baseline.
//
// The shared state (index, algorithm registry, per-graph search indexes) is
// read-only or mutex-guarded during evaluation, and each worker slot owns a
// warm QueryContext — so throughput should scale with *physical* cores.
// The header prints std::thread::hardware_concurrency(): on a single-core
// host every thread count collapses onto one core and the speedup column
// reads ~1.0x by construction; the interesting columns there are that
// answers stay identical and overhead stays flat.

#include <thread>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("QueryEngine batch throughput",
              "engine layer (no paper figure; Sec. 6.2 workloads)");
  double scale = BenchScale();
  std::printf("hardware concurrency: %u\n",
              std::thread::hardware_concurrency());

  const char* datasets[] = {"yago3", "imdb"};
  for (const char* name : datasets) {
    BenchInstance inst = MakeInstance(name, scale, /*max_layers=*/4);
    auto index = std::make_shared<const BigIndex>(std::move(inst.index).value());

    // One batch = the workload repeated; enough queries that the pool's
    // dynamic load balancing has something to balance.
    std::vector<EngineQuery> batch;
    for (int rep = 0; rep < 8; ++rep) {
      for (const QuerySpec& q : inst.workload) {
        batch.push_back({.keywords = q.keywords,
                         .algorithm = "bkws",
                         .eval = {.top_k = 10}});
        batch.push_back({.keywords = q.keywords,
                         .algorithm = "blinks",
                         .eval = {.top_k = 10, .exact_verification = false}});
      }
    }

    std::printf("\n--- %s: %zu queries/batch ---\n", name, batch.size());
    std::printf("%8s %12s %14s %10s\n", "threads", "batch(ms)", "queries/s",
                "speedup");

    double baseline_ms = 0;
    for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                           size_t{8}}) {
      QueryEngine engine(index, {.num_threads = threads});
      // Warm: per-graph Blinks indexes and per-slot contexts.
      (void)engine.EvaluateBatch(batch);
      double ms = MedianMs(3, [&] {
        auto results = engine.EvaluateBatch(batch);
        if (!results.ok() || results->size() != batch.size()) std::exit(1);
      });
      if (threads <= 1 && baseline_ms == 0) baseline_ms = ms;
      std::printf("%8zu %12.2f %14.1f %9.2fx\n", threads, ms,
                  1000.0 * batch.size() / ms,
                  ms > 0 ? baseline_ms / ms : 0.0);
    }
  }
  std::printf("\n(speedup is vs the 0/1-thread baseline; ~1.0x expected on "
              "single-core hosts)\n");
  return 0;
}
