// Figs. 13, 14: query times of r-clique with and without BiG-index on YAGO3
// and Dbpedia, plus the paper's IMDB infeasibility observation (Sec. 6.2:
// the neighbor list would take ~16 TB because m̄ ≈ 105K).
//
// Paper reference: BiG-index reduces r-clique query times by 39.4% on YAGO3
// and 19.6% on Dbpedia (R = 4); headline 29.5% average.
//
// r-clique's neighbor list is quadratic-ish in practice, so this bench runs
// each dataset at a per-dataset fraction of the global scale (the paper ran
// on a 64 GB server; the shapes survive scaling).

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Figs. 13-14 — r-clique with/without BiG-index",
              "Fig. 13 (YAGO3), Fig. 14 (Dbpedia), Sec. 6.2 IMDB note");
  double scale = BenchScale();

  struct Entry {
    const char* name;
    double scale_mult;   // r-clique-specific downscale
    double paper_reduction;
  };
  const Entry datasets[] = {{"yago3", 0.5, 39.4}, {"dbpedia", 0.2, 19.6}};

  double grand_direct = 0, grand_fast = 0;
  for (const Entry& d : datasets) {
    BenchInstance inst = MakeInstance(d.name, scale * d.scale_mult);
    const BigIndex& index = *inst.index;

    Timer t;
    auto nbr = NeighborIndex::Build(index.base(), 4, 8ull << 30);
    if (!nbr.ok()) {
      std::printf("\n--- %s: neighbor index over budget (%s); lower the "
                  "scale ---\n", d.name, nbr.status().ToString().c_str());
      continue;
    }
    std::printf("\n--- %s (paper reduction: %.1f%%) ---\n", d.name,
                d.paper_reduction);
    double base_mb = nbr->MemoryBytes() / 1e6;
    double base_build_ms = t.ElapsedMillis();
    // The BiG route only ever builds the neighbor list on a summary layer
    // (Sec. 5.2 "we adopt the neighbor list and build it on the m-th
    // layer") — report the footprint contrast.
    t.Restart();
    auto layer_nbr = NeighborIndex::Build(index.LayerGraph(1), 4);
    std::printf("neighbor index (R = 4): data graph %.1f MB / %.0f ms vs "
                "layer-1 %.1f MB / %.0f ms (|V| = %zu vs %zu)\n",
                base_mb, base_build_ms,
                layer_nbr.ok() ? layer_nbr->MemoryBytes() / 1e6 : -1.0,
                t.ElapsedMillis(), index.base().NumVertices(),
                index.LayerGraph(1).NumVertices());

    RCliqueOptions direct_opt{.r = 4, .top_k = 10};
    RCliqueAlgorithm big_algo({.r = 4, .top_k = 20});
    // Warm the BiG route's per-layer neighbor index.
    if (!inst.workload.empty()) {
      (void)EvaluateWithIndex(index, big_algo, inst.workload[0].keywords,
                              {.top_k = 10, .exact_verification = false});
    }

    std::printf("%-4s %2s %12s %12s %12s %6s %8s\n", "id", "|Q|",
                "direct(ms)", "big-fast", "big-exact", "layer", "answers");
    double total_direct = 0, total_fast = 0;
    for (const QuerySpec& q : inst.workload) {
      double direct_ms = MedianMs(3, [&] {
        (void)RCliqueSearch(index.base(), *nbr, q.keywords, direct_opt);
      });

      EvalBreakdown bd;
      size_t answers = 0;
      double fast_ms = MedianMs(3, [&] {
        bd = EvalBreakdown();
        answers = EvaluateWithIndex(index, big_algo, q.keywords,
                                    {.top_k = 10,
                                     .exact_verification = false},
                                    &bd)
                      .size();
      });
      double exact_ms = MedianMs(1, [&] {
        (void)EvaluateWithIndex(index, big_algo, q.keywords, {.top_k = 10});
      });

      total_direct += direct_ms;
      total_fast += fast_ms;
      std::printf("%-4s %2zu %12.2f %12.2f %12.2f %6zu %8zu\n", q.id.c_str(),
                  q.keywords.size(), direct_ms, fast_ms, exact_ms, bd.layer,
                  answers);
    }
    double reduction =
        total_direct > 0 ? 100.0 * (total_direct - total_fast) / total_direct
                         : 0;
    std::printf("total: direct %.1f ms, big-fast %.1f ms -> reduction %.1f%% "
                "(paper %.1f%%)\n",
                total_direct, total_fast, reduction, d.paper_reduction);
    grand_direct += total_direct;
    grand_fast += total_fast;
  }

  // IMDB: reproduce the infeasibility estimate instead of building.
  {
    auto ds = MakeDataset("imdb", scale);
    if (ds.ok()) {
      Rng rng(1);
      size_t est =
          NeighborIndex::EstimateMemoryBytes(ds->graph, 4, 200, rng);
      // Entries scale ~ |V| * m̄, both ~1/scale, so the full-size estimate
      // scales by 1/scale^2.
      double projected_tb = static_cast<double>(est) / scale / scale / 1e12;
      std::printf("\n--- imdb --- neighbor-list estimate at this scale: "
                  "%.1f MB; projected full-size: %.1f TB (paper: ~16 TB, "
                  "\"r-clique can not handle the IMDB dataset\")\n",
                  est / 1e6, projected_tb);
    }
  }

  std::printf("\n=== headline: r-clique runtime reduction %.1f%% "
              "(paper: 29.5%% average) ===\n",
              grand_direct > 0
                  ? 100.0 * (grand_direct - grand_fast) / grand_direct
                  : 0);
  return 0;
}
