// Table 2: statistics of real-world and synthetic datasets.
//
// Regenerates the dataset inventory at the bench scale and prints measured
// |V|, |E|, |V_ont|, |E_ont| next to the paper's full-size numbers.

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Table 2 — dataset statistics", "Tab. 2, Sec. 6.1.2");
  double scale = BenchScale();

  std::printf("%-9s %10s %10s %10s %10s   %12s %12s\n", "dataset", "|V|",
              "|E|", "|V_ont|", "|E_ont|", "paper |V|", "paper |E|");
  for (const std::string& name : DatasetNames()) {
    auto ds = MakeDataset(name, scale);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    std::printf("%-9s %10zu %10zu %10zu %10zu   %12zu %12zu\n", name.c_str(),
                ds->graph.NumVertices(), ds->graph.NumEdges(),
                ds->ontology.ontology.NumTypes(),
                ds->ontology.ontology.NumEdges(), ds->paper_vertices,
                ds->paper_edges);
  }
  std::printf("\nNote: measured columns are paper sizes x %.4f (generated "
              "stand-ins; see DESIGN.md substitutions).\n", scale);
  return 0;
}
