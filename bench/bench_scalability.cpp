// Fig. 15: scalability of BiG-index on the synthetic series synt-1M…8M with
// |Q| = 4 — Blinks (RHS of the figure) and r-clique (LHS), with and without
// BiG-index.
//
// Paper reference: "BiG-index reduced the query times of existing keyword
// algorithms by at least 20%" and "the compression ratio and runtime of
// BiG-index increase linearly with the graph sizes".

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

int main() {
  PrintHeader("Fig. 15 — scalability on synthetic graphs (workload totals)",
              "Fig. 15, Exp-2");
  double scale = BenchScale();

  std::printf("%-9s %9s %9s | %12s %12s | %12s %12s\n", "dataset", "|V|",
              "|E|", "blinks(ms)", "big(ms)", "rclique(ms)", "big(ms)");
  for (const char* name : {"synt-1m", "synt-2m", "synt-4m", "synt-8m"}) {
    BenchInstance inst = MakeInstance(name, scale, /*max_layers=*/4);
    const BigIndex& index = *inst.index;

    // The paper fixes |Q| = 4 here; at laptop scale a single query is
    // noise-level, so we total the whole generated workload instead (same
    // growth-with-size shape, more signal).
    BlinksAlgorithm blinks({.d_max = 5, .top_k = 10, .block_size = 1000});
    BlinksAlgorithm blinks_summary(
        {.d_max = 5, .top_k = 50, .block_size = 1000});
    if (inst.workload.empty()) continue;
    (void)blinks.Evaluate(index.base(), inst.workload[0].keywords);  // warm
    (void)EvaluateWithIndex(index, blinks_summary,
                            inst.workload[0].keywords,
                            {.top_k = 10, .exact_verification = false});

    double blinks_direct = 0, blinks_big = 0;
    for (const QuerySpec& q : inst.workload) {
      blinks_direct += MedianMs(
          3, [&] { (void)blinks.Evaluate(index.base(), q.keywords); });
      blinks_big += MedianMs(3, [&] {
        (void)EvaluateWithIndex(index, blinks_summary, q.keywords,
                                {.top_k = 10, .exact_verification = false});
      });
    }

    // r-clique: R = 4 neighbor list is too dense on the synthetic hubs at
    // larger scales; use R = 3 and a budget, skipping if still over.
    double rc_direct = -1, rc_big = -1;
    auto nbr = NeighborIndex::Build(index.base(), 3, 2ull << 30);
    if (nbr.ok()) {
      RCliqueOptions ropt{.r = 3, .top_k = 10};
      RCliqueAlgorithm big_rc({.r = 3, .top_k = 20});
      (void)EvaluateWithIndex(index, big_rc, inst.workload[0].keywords,
                              {.top_k = 10, .exact_verification = false});
      rc_direct = 0;
      rc_big = 0;
      for (const QuerySpec& q : inst.workload) {
        rc_direct += MedianMs(3, [&] {
          (void)RCliqueSearch(index.base(), *nbr, q.keywords, ropt);
        });
        rc_big += MedianMs(3, [&] {
          (void)EvaluateWithIndex(index, big_rc, q.keywords,
                                  {.top_k = 10,
                                   .exact_verification = false});
        });
      }
    }

    std::printf("%-9s %9zu %9zu | %12.2f %12.2f | %12.2f %12.2f\n", name,
                index.base().NumVertices(), index.base().NumEdges(),
                blinks_direct, blinks_big, rc_direct, rc_big);
  }
  std::printf("\nShape check: query times grow roughly linearly with graph "
              "size in both columns (paper Fig. 15).\n");
  return 0;
}
