// Metrics/tracing overhead smoke: proves the *disabled* observability hooks
// cost well under the budget relative to real query work.
//
// A two-build-tree wall-clock comparison (instrumented vs. stripped) would
// need a dedicated uninstrumented build and is hopelessly noisy on a shared
// one-core CI host, where run-to-run variance alone exceeds 2%. Instead this
// bench measures what can be measured precisely — the per-operation cost of
// each disabled primitive (TRACE_SPAN with tracing off, Counter::Inc,
// Histogram::Record), tight-loop, best-of-several — and compares a
// *deliberately generous* per-query instrumentation budget against the
// measured per-query evaluation time of a real workload:
//
//   overhead% = (spans/query * span_ns + incs/query * inc_ns + ...)
//               / measured_query_ns
//
// The per-query op counts below are several times what the instrumented
// paths actually execute (a query opens a few spans per generalized answer
// and RecordQueryMetrics bumps ~20 atomics once), so the check fails long
// before a regression could show up in end-to-end numbers. The disabled
// span additionally gets an absolute ceiling: the whole design hinges on it
// staying a relaxed load + branch, so it must price like one (single-digit
// nanoseconds), not like a clock read or a lock.
//
//   bench_obs_overhead           print the table
//   bench_obs_overhead --check   exit 1 if overhead% > threshold (default 2;
//                                BIGINDEX_OBS_OVERHEAD_PCT overrides)
//
// tools/ci.sh runs `--check` on every pass.

#include <cstdio>
#include <cstring>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

// Padded ceilings on instrumented operations per query (a few times the
// real counts; see the header comment).
constexpr double kSpansPerQuery = 256;
constexpr double kCounterIncsPerQuery = 64;
constexpr double kHistogramRecordsPerQuery = 16;

// A disabled span is a relaxed atomic load and a branch. On any remotely
// modern core that is < 2 ns; 10 ns means something heavyweight crept into
// the disabled path.
constexpr double kMaxDisabledSpanNs = 10.0;

/// Best-of-5 nanoseconds per op of `fn` run `iters` times, tight-loop.
double BestNsPerOp(size_t iters, const std::function<void()>& fn) {
  double best = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    Timer t;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, t.ElapsedMillis() * 1e6 / iters);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  double threshold_pct = 2.0;
  if (const char* env = std::getenv("BIGINDEX_OBS_OVERHEAD_PCT")) {
    double v = std::atof(env);
    if (v > 0) threshold_pct = v;
  }

  PrintHeader("observability overhead smoke",
              "disabled-instrumentation budget (docs/OBSERVABILITY.md)");

  // --- primitive costs -----------------------------------------------------
  Tracer::Global().SetEnabled(false);
  constexpr size_t kIters = 2'000'000;

  volatile uint64_t sink = 0;
  double baseline_ns = BestNsPerOp(kIters, [&] { sink = sink + 1; });

  double span_ns = BestNsPerOp(kIters, [&] {
    TRACE_SPAN("bench/disabled");
    sink = sink + 1;
  });

  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("bench_total", "bench");
  double inc_ns = BestNsPerOp(kIters, [&] {
    counter.Inc();
    sink = sink + 1;
  });

  Histogram& hist = registry.GetHistogram("bench_ms", "bench");
  double record_ns = BestNsPerOp(kIters, [&] {
    hist.Record(1.5);
    sink = sink + 1;
  });

  // Net primitive costs; clamp at zero (a primitive can measure marginally
  // below baseline in the noise).
  span_ns = std::max(0.0, span_ns - baseline_ns);
  inc_ns = std::max(0.0, inc_ns - baseline_ns);
  record_ns = std::max(0.0, record_ns - baseline_ns);

  std::printf("primitive costs (net of %.2f ns loop baseline):\n",
              baseline_ns);
  std::printf("  disabled TRACE_SPAN   %8.2f ns/op\n", span_ns);
  std::printf("  Counter::Inc          %8.2f ns/op\n", inc_ns);
  std::printf("  Histogram::Record     %8.2f ns/op\n", record_ns);

  // --- real per-query time -------------------------------------------------
  BenchInstance inst = MakeInstance("yago3", BenchScale(), 4);
  QueryEngine engine(std::move(inst.index).value(),
                     {.num_threads = 0});  // serial: per-query time, no pool

  std::vector<EngineQuery> queries;
  for (const QuerySpec& spec : inst.workload) {
    EngineQuery q;
    q.keywords = spec.keywords;
    q.algorithm = "bkws";
    queries.push_back(std::move(q));
    if (queries.size() == 16) break;
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no workload queries generated\n");
    return 1;
  }
  for (const EngineQuery& q : queries) (void)engine.Evaluate(q);  // warm
  double batch_ms = MedianMs(5, [&] {
    for (const EngineQuery& q : queries) (void)engine.Evaluate(q);
  });
  double query_ns = batch_ms * 1e6 / queries.size();

  // --- the budget ----------------------------------------------------------
  double per_query_ns = kSpansPerQuery * span_ns +
                        kCounterIncsPerQuery * inc_ns +
                        kHistogramRecordsPerQuery * record_ns;
  double overhead_pct = 100.0 * per_query_ns / query_ns;

  std::printf("\nper-query budget (generous op counts):\n");
  std::printf("  %5.0f spans + %5.0f incs + %5.0f records = %10.1f ns\n",
              kSpansPerQuery, kCounterIncsPerQuery, kHistogramRecordsPerQuery,
              per_query_ns);
  std::printf("  measured query time (bkws, serial)      = %10.1f ns\n",
              query_ns);
  std::printf("  estimated disabled-instrumentation overhead: %.3f%% "
              "(threshold %.1f%%)\n",
              overhead_pct, threshold_pct);

  bool failed = false;
  if (span_ns > kMaxDisabledSpanNs) {
    std::fprintf(stderr,
                 "FAIL: disabled TRACE_SPAN costs %.2f ns (ceiling %.0f ns) "
                 "— the disabled path must stay a load + branch\n",
                 span_ns, kMaxDisabledSpanNs);
    failed = true;
  }
  if (overhead_pct > threshold_pct) {
    std::fprintf(stderr,
                 "FAIL: disabled instrumentation overhead %.3f%% exceeds "
                 "%.1f%%\n",
                 overhead_pct, threshold_pct);
    failed = true;
  }
  if (check && failed) return 1;
  std::printf("%s\n", check ? "overhead check OK" : "(informational run)");
  return 0;
}
