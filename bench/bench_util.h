// Shared plumbing for the reproduction benches (one binary per paper
// table/figure — see DESIGN.md's per-experiment index).
//
// Scale: every bench sizes its datasets as paper_size * scale, with scale
// from the BIGINDEX_BENCH_SCALE environment variable (default 0.01 — yago3
// lands at ~26k vertices so the full suite finishes in minutes on one core).
// Raising the scale raises fidelity; shapes are stable across scales.

#ifndef BIGINDEX_BENCH_BENCH_UTIL_H_
#define BIGINDEX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bigindex.h"

namespace bigindex {
namespace bench {

inline double BenchScale() {
  const char* env = std::getenv("BIGINDEX_BENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.01;
}

/// Median wall-clock milliseconds of `runs` executions of fn.
inline double MedianMs(size_t runs, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(runs);
  for (size_t i = 0; i < runs; ++i) {
    Timer t;
    fn();
    times.push_back(t.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// A dataset with its index and Table-4-style workload, ready to query.
struct BenchInstance {
  Dataset dataset;
  StatusOr<BigIndex> index = Status::FailedPrecondition("not built");
  std::vector<QuerySpec> workload;
};

/// Builds dataset + index + workload. `max_layers` defaults to the paper's 7.
inline BenchInstance MakeInstance(const std::string& name, double scale,
                                  size_t max_layers = 7) {
  BenchInstance inst;
  auto ds = MakeDataset(name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    std::exit(1);
  }
  inst.dataset = std::move(ds).value();
  inst.index = BigIndex::Build(inst.dataset.graph,
                               &inst.dataset.ontology.ontology,
                               {.max_layers = max_layers});
  if (!inst.index.ok()) {
    std::fprintf(stderr, "index %s: %s\n", name.c_str(),
                 inst.index.status().ToString().c_str());
    std::exit(1);
  }

  QueryGenOptions qopt;
  // The paper's floor was >3000 matches on the full graphs; scale it.
  qopt.min_count = std::max<size_t>(
      10, static_cast<size_t>(3000 * scale));
  inst.workload = GenerateQueryWorkload(inst.dataset, qopt);
  return inst;
}

/// Prints the standard bench header.
inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %.4f (BIGINDEX_BENCH_SCALE to change)\n", BenchScale());
  std::printf("==========================================================\n");
}

}  // namespace bench
}  // namespace bigindex

#endif  // BIGINDEX_BENCH_BENCH_UTIL_H_
