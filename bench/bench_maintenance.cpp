// Live-update maintenance cost: incremental (delta-propagating) refinement
// vs forced-wholesale re-summarization vs a full from-scratch rebuild, as a
// function of the dirty-set size (net edge changes per batch).
//
// The paper (Sec. 3.2) adopts incremental bisimulation maintenance and
// notes the index "can be recomputed occasionally"; the numbers to check
// here are (a) how many layers stay on a fast path (patched or seeded
// localized refinement, update/incremental.h) as the dirty set grows
// (the fallback_dirty_ratio knob trips past the crossover), and (b) the
// wall-clock speedup over a from-scratch rebuild — small batches avoid
// every layer-sized re-derivation (delta patching, localized merge scan,
// quotient-as-summary shortcut), so maintenance beats rebuild by 2x+
// until the propagated changed set saturates the summaries (see
// docs/MAINTENANCE.md for the cost model and EXPERIMENTS.md for numbers).
// All three paths produce byte-identical indexes; the differential gate in
// tests/update_differential_test.cpp enforces that, and --smoke re-checks
// it here on every CI run.
//
//   bench_maintenance [--smoke | --check]
//
// --smoke: tiny preset; one mixed batch through all three paths, exits
// non-zero unless the three serialized indexes are identical. Used by
// tools/ci.sh.
//
// --check: CI speedup gate. On the default preset, asserts incremental
// maintenance beats the from-scratch rebuild by >= 2x for small batches
// (well under 5% dirty edges) and that the maintained index serializes
// byte-identically to the rebuild at every gated batch size. Exits
// non-zero on any miss. Used by tools/ci.sh.

#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

std::string SerializeIndex(const BigIndex& index, const LabelDictionary& dict) {
  std::ostringstream out;
  Status s = WriteIndex(index, dict, out);
  if (!s.ok()) {
    std::fprintf(stderr, "serialize: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return std::move(out).str();
}

/// `count` edge toggles: half removals of present edges, half additions of
/// random (mostly absent) pairs — the steady-state update mix.
std::vector<GraphUpdate> MakeBatch(const Graph& g, size_t count,
                                   uint64_t seed) {
  Rng rng(seed);
  const auto edges = g.Edges();
  std::vector<GraphUpdate> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0 && !edges.empty()) {
      auto [u, v] = edges[rng.Uniform(edges.size())];
      batch.push_back({GraphUpdate::Kind::kRemoveEdge, u, v});
    } else {
      batch.push_back(
          {GraphUpdate::Kind::kAddEdge,
           static_cast<VertexId>(rng.Uniform(g.NumVertices())),
           static_cast<VertexId>(rng.Uniform(g.NumVertices()))});
    }
  }
  return batch;
}

BigIndex MustMaintain(const BigIndex& index,
                      const std::vector<GraphUpdate>& batch,
                      const MaintainOptions& opt,
                      MaintainReport* report = nullptr) {
  auto result = MaintainIndex(index, batch, opt, report);
  if (!result.ok()) {
    std::fprintf(stderr, "maintain: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Layers that avoided wholesale re-summarization: patched (projected
/// block-level delta), seeded localized refinement, or copied verbatim.
size_t FastLayers(const MaintainReport& report) {
  size_t fast = 0;
  for (const MaintainLayerReport& lr : report.layers) {
    if (lr.mode != LayerMaintenance::kWholesale) ++fast;
  }
  return fast;
}

/// CI gate: incremental maintenance must beat a from-scratch rebuild by
/// kGateSpeedup at each gated batch size, and the maintained index must
/// serialize byte-identically to the rebuild. Batch sizes are a tiny
/// fraction of |E| (50k+ edges at the default preset), far under the 5%
/// dirty-edge bound the gate documents.
constexpr size_t kGateBatches[] = {1, 4};
constexpr double kGateSpeedup = 2.0;

int RunCheck() {
  auto ds = MakeDataset("yago3", BenchScale());
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 4});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("maintenance speedup gate: yago3 |V|=%zu |E|=%zu, >= %.1fx "
              "vs rebuild\n",
              ds->graph.NumVertices(), ds->graph.NumEdges(), kGateSpeedup);
  bool ok = true;
  for (size_t count : kGateBatches) {
    auto batch = MakeBatch(ds->graph, count, 1000 + count);

    MaintainReport report;
    BigIndex maintained = MustMaintain(*index, batch, MaintainOptions{},
                                       &report);
    double inc_ms = MedianMs(5, [&] {
      MustMaintain(*index, batch, MaintainOptions{});
    });

    auto updated = ApplyUpdates(ds->graph, batch);
    if (!updated.ok()) {
      std::fprintf(stderr, "%s\n", updated.status().ToString().c_str());
      return 1;
    }
    auto rebuilt = BigIndex::Build(*updated, &ds->ontology.ontology,
                                   index->options());
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
      return 1;
    }
    double rebuild_ms = MedianMs(5, [&] {
      auto r = BigIndex::Build(*updated, &ds->ontology.ontology,
                               index->options());
      if (!r.ok()) std::exit(1);
    });

    const bool identical =
        SerializeIndex(maintained, *ds->dict) ==
        SerializeIndex(*rebuilt, *ds->dict);
    double speedup = inc_ms > 0 ? rebuild_ms / inc_ms : 0.0;
    if (speedup < kGateSpeedup) {
      // One re-measure before failing: the gate runs on shared CI machines
      // and a single noisy median should not fail the build.
      inc_ms = MedianMs(5, [&] {
        MustMaintain(*index, batch, MaintainOptions{});
      });
      rebuild_ms = MedianMs(5, [&] {
        auto r = BigIndex::Build(*updated, &ds->ontology.ontology,
                                 index->options());
        if (!r.ok()) std::exit(1);
      });
      speedup = inc_ms > 0 ? rebuild_ms / inc_ms : 0.0;
    }
    const bool fast_enough = speedup >= kGateSpeedup;
    std::printf("  batch=%zu inc=%.2fms rebuild=%.2fms speedup=%.2fx "
                "fast-layers=%zu/%zu bytes=%s  %s\n",
                count, inc_ms, rebuild_ms, speedup, FastLayers(report),
                report.layers.size(), identical ? "identical" : "DIVERGED",
                fast_enough && identical ? "ok" : "FAIL");
    ok = ok && fast_enough && identical;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: maintenance speedup gate (see rows above)\n");
    return 1;
  }
  std::printf("maintenance speedup gate OK\n");
  return 0;
}

int RunSmoke() {
  auto ds = MakeDataset("yago3", 0.002);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 3});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto batch = MakeBatch(ds->graph, 8, 42);

  MaintainReport report;
  BigIndex incremental =
      MustMaintain(*index, batch, MaintainOptions{}, &report);
  BigIndex wholesale =
      MustMaintain(*index, batch, {.force_wholesale = true});
  auto updated = ApplyUpdates(ds->graph, batch);
  if (!updated.ok()) {
    std::fprintf(stderr, "%s\n", updated.status().ToString().c_str());
    return 1;
  }
  auto rebuilt = BigIndex::Build(*updated, &ds->ontology.ontology,
                                 index->options());
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }

  const std::string inc = SerializeIndex(incremental, *ds->dict);
  if (inc != SerializeIndex(wholesale, *ds->dict) ||
      inc != SerializeIndex(*rebuilt, *ds->dict)) {
    std::fprintf(stderr,
                 "FAIL: incremental / wholesale / rebuild disagree "
                 "(|V|=%zu, batch=%zu)\n",
                 ds->graph.NumVertices(), batch.size());
    return 1;
  }
  std::printf("maintenance smoke OK: incremental == wholesale == rebuild "
              "(|V|=%zu, +%zu -%zu edges, %zu/%zu layers fast-path)\n",
              ds->graph.NumVertices(), report.delta.added.size(),
              report.delta.removed.size(), FastLayers(report),
              report.layers.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();
  if (argc > 1 && std::strcmp(argv[1], "--check") == 0) return RunCheck();

  PrintHeader("Live-update maintenance — incremental vs wholesale vs rebuild",
              "Sec. 3.2 (maintenance of BiG-index)");
  double scale = BenchScale();

  auto ds = MakeDataset("yago3", scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 4});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  Timer build_timer;
  auto rebuilt_once =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 4});
  const double full_build_ms = build_timer.ElapsedMillis();
  if (!rebuilt_once.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt_once.status().ToString().c_str());
    return 1;
  }
  std::printf("yago3 |V|=%zu |E|=%zu, %zu layers; from-scratch build "
              "%.1f ms\n\n",
              ds->graph.NumVertices(), ds->graph.NumEdges(),
              index->NumLayers(), full_build_ms);

  std::printf("%8s %8s %12s %12s %12s %10s %12s\n", "batch", "dirty",
              "inc(ms)", "whole(ms)", "rebuild(ms)", "inc-layers",
              "speedup-vs-rb");
  for (size_t count : {size_t{1}, size_t{4}, size_t{16}, size_t{64},
                       size_t{256}, size_t{1024}}) {
    auto batch = MakeBatch(ds->graph, count, 1000 + count);
    auto delta = NormalizeUpdates(ds->graph, batch);
    if (!delta.ok()) continue;

    MaintainReport report;
    double inc_ms = MedianMs(3, [&] {
      MustMaintain(*index, batch, MaintainOptions{}, &report);
    });
    double whole_ms = MedianMs(3, [&] {
      MustMaintain(*index, batch, {.force_wholesale = true});
    });
    double rebuild_ms = MedianMs(3, [&] {
      auto updated = ApplyUpdates(ds->graph, batch);
      auto r = BigIndex::Build(*updated, &ds->ontology.ontology,
                               index->options());
      if (!r.ok()) std::exit(1);
    });

    std::printf("%8zu %8zu %12.2f %12.2f %12.2f %7zu/%zu %11.2fx\n", count,
                delta->added.size() + delta->removed.size(), inc_ms, whole_ms,
                rebuild_ms, FastLayers(report), report.layers.size(),
                inc_ms > 0 ? rebuild_ms / inc_ms : 0.0);
  }
  std::printf("\ninc-layers: layers maintained on a fast path (patched, "
              "seeded localized, or copied; rest: wholesale).\n");
  return 0;
}
