// Live-update maintenance cost: incremental (delta-propagating) refinement
// vs forced-wholesale re-summarization vs a full from-scratch rebuild, as a
// function of the dirty-set size (net edge changes per batch).
//
// The paper (Sec. 3.2) adopts incremental bisimulation maintenance and
// notes the index "can be recomputed occasionally"; the numbers to check
// here are (a) how many layers the seeded localized refinement
// (update/incremental.h) keeps on the incremental path as the dirty set
// grows (the fallback_dirty_ratio knob trips past the crossover), and
// (b) the wall-clock split — per-layer cost is dominated by configuration
// + generalization + the O(V+E) dirty/correspondence scans, which every
// path shares, so do not expect the refinement savings alone to beat a
// from-scratch rebuild at bench scales (see EXPERIMENTS.md).
// All three paths produce byte-identical indexes; the differential gate in
// tests/update_differential_test.cpp enforces that, and --smoke re-checks
// it here on every CI run.
//
//   bench_maintenance [--smoke]
//
// --smoke: tiny preset; one mixed batch through all three paths, exits
// non-zero unless the three serialized indexes are identical. Used by
// tools/ci.sh.

#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

std::string SerializeIndex(const BigIndex& index, const LabelDictionary& dict) {
  std::ostringstream out;
  Status s = WriteIndex(index, dict, out);
  if (!s.ok()) {
    std::fprintf(stderr, "serialize: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return std::move(out).str();
}

/// `count` edge toggles: half removals of present edges, half additions of
/// random (mostly absent) pairs — the steady-state update mix.
std::vector<GraphUpdate> MakeBatch(const Graph& g, size_t count,
                                   uint64_t seed) {
  Rng rng(seed);
  const auto edges = g.Edges();
  std::vector<GraphUpdate> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0 && !edges.empty()) {
      auto [u, v] = edges[rng.Uniform(edges.size())];
      batch.push_back({GraphUpdate::Kind::kRemoveEdge, u, v});
    } else {
      batch.push_back(
          {GraphUpdate::Kind::kAddEdge,
           static_cast<VertexId>(rng.Uniform(g.NumVertices())),
           static_cast<VertexId>(rng.Uniform(g.NumVertices()))});
    }
  }
  return batch;
}

BigIndex MustMaintain(const BigIndex& index,
                      const std::vector<GraphUpdate>& batch,
                      const MaintainOptions& opt,
                      MaintainReport* report = nullptr) {
  auto result = MaintainIndex(index, batch, opt, report);
  if (!result.ok()) {
    std::fprintf(stderr, "maintain: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

int RunSmoke() {
  auto ds = MakeDataset("yago3", 0.002);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 3});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  auto batch = MakeBatch(ds->graph, 8, 42);

  MaintainReport report;
  BigIndex incremental =
      MustMaintain(*index, batch, MaintainOptions{}, &report);
  BigIndex wholesale =
      MustMaintain(*index, batch, {.force_wholesale = true});
  auto updated = ApplyUpdates(ds->graph, batch);
  if (!updated.ok()) {
    std::fprintf(stderr, "%s\n", updated.status().ToString().c_str());
    return 1;
  }
  auto rebuilt = BigIndex::Build(*updated, &ds->ontology.ontology,
                                 index->options());
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt.status().ToString().c_str());
    return 1;
  }

  const std::string inc = SerializeIndex(incremental, *ds->dict);
  if (inc != SerializeIndex(wholesale, *ds->dict) ||
      inc != SerializeIndex(*rebuilt, *ds->dict)) {
    std::fprintf(stderr,
                 "FAIL: incremental / wholesale / rebuild disagree "
                 "(|V|=%zu, batch=%zu)\n",
                 ds->graph.NumVertices(), batch.size());
    return 1;
  }
  size_t incremental_layers = 0;
  for (const MaintainLayerReport& lr : report.layers) {
    if (lr.mode == LayerMaintenance::kIncremental) ++incremental_layers;
  }
  std::printf("maintenance smoke OK: incremental == wholesale == rebuild "
              "(|V|=%zu, +%zu -%zu edges, %zu/%zu layers incremental)\n",
              ds->graph.NumVertices(), report.delta.added.size(),
              report.delta.removed.size(), incremental_layers,
              report.layers.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return RunSmoke();

  PrintHeader("Live-update maintenance — incremental vs wholesale vs rebuild",
              "Sec. 3.2 (maintenance of BiG-index)");
  double scale = BenchScale();

  auto ds = MakeDataset("yago3", scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 4});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  Timer build_timer;
  auto rebuilt_once =
      BigIndex::Build(ds->graph, &ds->ontology.ontology, {.max_layers = 4});
  const double full_build_ms = build_timer.ElapsedMillis();
  if (!rebuilt_once.ok()) {
    std::fprintf(stderr, "%s\n", rebuilt_once.status().ToString().c_str());
    return 1;
  }
  std::printf("yago3 |V|=%zu |E|=%zu, %zu layers; from-scratch build "
              "%.1f ms\n\n",
              ds->graph.NumVertices(), ds->graph.NumEdges(),
              index->NumLayers(), full_build_ms);

  std::printf("%8s %8s %12s %12s %12s %10s %12s\n", "batch", "dirty",
              "inc(ms)", "whole(ms)", "rebuild(ms)", "inc-layers",
              "speedup-vs-rb");
  for (size_t count : {size_t{1}, size_t{4}, size_t{16}, size_t{64},
                       size_t{256}, size_t{1024}}) {
    auto batch = MakeBatch(ds->graph, count, 1000 + count);
    auto delta = NormalizeUpdates(ds->graph, batch);
    if (!delta.ok()) continue;

    MaintainReport report;
    double inc_ms = MedianMs(3, [&] {
      MustMaintain(*index, batch, MaintainOptions{}, &report);
    });
    double whole_ms = MedianMs(3, [&] {
      MustMaintain(*index, batch, {.force_wholesale = true});
    });
    double rebuild_ms = MedianMs(3, [&] {
      auto updated = ApplyUpdates(ds->graph, batch);
      auto r = BigIndex::Build(*updated, &ds->ontology.ontology,
                               index->options());
      if (!r.ok()) std::exit(1);
    });

    size_t incremental_layers = 0;
    for (const MaintainLayerReport& lr : report.layers) {
      if (lr.mode == LayerMaintenance::kIncremental) ++incremental_layers;
    }
    std::printf("%8zu %8zu %12.2f %12.2f %12.2f %7zu/%zu %11.2fx\n", count,
                delta->added.size() + delta->removed.size(), inc_ms, whole_ms,
                rebuild_ms, incremental_layers, report.layers.size(),
                inc_ms > 0 ? rebuild_ms / inc_ms : 0.0);
  }
  std::printf("\ninc-layers: layers refined via the seeded localized path "
              "(rest: wholesale or copied).\n");
  return 0;
}
