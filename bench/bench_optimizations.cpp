// Figs. 17, 18 + extra ablations: effectiveness of the answer-generation
// optimizations of Sec. 4.3.
//
// Paper references:
//  * Fig. 17: the specialization-order optimization (Sec. 4.3.2) improves
//    query time by 14.8% on average on YAGO3.
//  * Fig. 18: path-based answer generation (Sec. 4.3.3, Algorithm 4) improves
//    query time by 21.7% on average over vertex-at-a-time (Algorithm 3).
// Extras beyond the paper (design-choice checks from DESIGN.md): Blinks
// block-size sensitivity and bisimulation refinement-cap coarsening.

#include "bench_util.h"

using namespace bigindex;
using namespace bigindex::bench;

namespace {

double RunWorkload(const BenchInstance& inst, const BlinksAlgorithm& algo,
                   const AnswerGenOptions& gen) {
  double total = 0;
  for (const QuerySpec& q : inst.workload) {
    EvalOptions opt;
    opt.top_k = 10;
    opt.exact_verification = false;
    opt.answer_gen = gen;
    total += MedianMs(3, [&] {
      (void)EvaluateWithIndex(*inst.index, algo, q.keywords, opt);
    });
  }
  return total;
}

}  // namespace

int main() {
  PrintHeader("Figs. 17-18 — answer-generation optimizations",
              "Fig. 17 (spec. order), Fig. 18 (path-based), Sec. 4.3");
  double scale = BenchScale();

  BenchInstance inst = MakeInstance("yago3", scale);
  BlinksAlgorithm blinks({.d_max = 5, .top_k = 50, .block_size = 1000});
  if (!inst.workload.empty()) {  // warm caches
    (void)EvaluateWithIndex(*inst.index, blinks, inst.workload[0].keywords,
                            {.top_k = 10, .exact_verification = false});
  }

  AnswerGenOptions base;  // defaults: path-based on, spec-order on

  // Fig. 17: specialization order on/off (path-based fixed on).
  AnswerGenOptions no_order = base;
  no_order.use_specialization_order = false;
  double with_order = RunWorkload(inst, blinks, base);
  double without_order = RunWorkload(inst, blinks, no_order);
  std::printf("\nFig. 17 — specialization order (Sec. 4.3.2):\n");
  std::printf("  off: %.2f ms, on: %.2f ms -> improvement %.1f%% "
              "(paper: 14.8%%)\n",
              without_order, with_order,
              without_order > 0
                  ? 100.0 * (without_order - with_order) / without_order
                  : 0);

  // Fig. 18: path-based vs vertex-based generation (order fixed on).
  AnswerGenOptions vertex_based = base;
  vertex_based.use_path_based = false;
  double path_ms = RunWorkload(inst, blinks, base);
  double vertex_ms = RunWorkload(inst, blinks, vertex_based);
  std::printf("\nFig. 18 — path-based answer generation (Sec. 4.3.3):\n");
  std::printf("  vertex-based (Algo 3): %.2f ms, path-based (Algo 4): "
              "%.2f ms -> improvement %.1f%% (paper: 21.7%%)\n",
              vertex_ms, path_ms,
              vertex_ms > 0 ? 100.0 * (vertex_ms - path_ms) / vertex_ms : 0);

  // Extra ablation 1: Blinks block size (bi-level index granularity).
  std::printf("\nExtra — Blinks block-size sensitivity (direct eval, Q with "
              "|Q| >= 3):\n");
  const QuerySpec* q = nullptr;
  for (const QuerySpec& spec : inst.workload) {
    if (spec.keywords.size() >= 3) {
      q = &spec;
      break;
    }
  }
  if (q != nullptr) {
    for (size_t block : {100, 500, 1000, 4000}) {
      BlinksIndex index =
          BlinksIndex::Build(inst.index->base(), block);
      double ms = MedianMs(3, [&] {
        (void)BlinksSearch(inst.index->base(), index, q->keywords,
                           {.d_max = 5, .top_k = 10});
      });
      std::printf("  block %5zu: index %.1f MB, %s %.2f ms\n", block,
                  index.MemoryBytes() / 1e6, q->id.c_str(), ms);
    }
  }

  // Extra ablation 2: capped bisimulation refinement (coarser, larger
  // blocks): how much summary quality the fixpoint buys.
  std::printf("\nExtra — refinement-cap ablation (yago3 layer-1 summary):\n");
  {
    const Graph& g = inst.index->base();
    GeneralizationConfig config = FullOneStepConfiguration(
        g, inst.dataset.ontology.ontology);
    Graph gen = Generalize(g, config);
    for (size_t cap : {1, 2, 4, 0}) {
      Timer t;
      BisimResult r = ComputeBisimulation(gen, {.max_rounds = cap});
      std::printf("  max_rounds %zu: ratio %.4f, rounds %zu, %.1f ms%s\n",
                  cap, static_cast<double>(r.summary.Size()) / g.Size(),
                  r.refinement_rounds, t.ElapsedMillis(),
                  cap == 0 ? " (fixpoint)" : "");
    }
  }
  return 0;
}
