#!/usr/bin/env bash
# Multi-process shard-substrate integration test: two bigindex_serverd shard
# workers + one scatter-gather coordinator, driven end-to-end over the line
# protocol and differentially checked against a monolithic server on the
# same dataset. Exercises the full remote path — independent worker
# processes agreeing on the shard plan, coordinator attach with retries,
# INFO identity checks, fan-out/merge, epoch bumps through the coordinator,
# and live updates (UPDATE verb): edge remove + re-add against both the
# coordinator (broadcast, owner-shard apply, epoch swap) and the monolithic
# server, with an answer differential proving the maintained indexes match
# the originals once the graph is restored. A second fleet then runs the
# same differential under --shard-mode bfs: cut edges, ghost vertices, the
# `boundary` verb, and the coordinator's completion pass (DESIGN.md §9),
# end to end over real processes.
#
#   tools/shard_integration.sh [build-dir]
#
# The build dir (default: build) must already contain tools/bigindex_serverd
# and tools/bigindex_client. tools/ci.sh runs this against the TSan build so
# the coordinator's fan-out pool and the workers' serving stacks get raced
# under a real multi-process load.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
# Harmless on plain builds; makes any race a hard failure on TSan builds.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
SERVERD="$BUILD/tools/bigindex_serverd"
CLIENT="$BUILD/tools/bigindex_client"
[[ -x "$SERVERD" && -x "$CLIENT" ]] || {
  echo "error: $SERVERD / $CLIENT not built" >&2
  exit 1
}

DATASET=(--dataset yago3 --scale 0.002 --layers 3)
BASE="${BIGINDEX_SHARD_TEST_PORT_BASE:-$((21000 + RANDOM % 20000))}"
P_MONO=$BASE P_W0=$((BASE + 1)) P_W1=$((BASE + 2)) P_COORD=$((BASE + 3))
P_B0=$((BASE + 4)) P_B1=$((BASE + 5)) P_BCOORD=$((BASE + 6))

TMP="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_ready() { # <log> <pattern>
  for _ in $(seq 1 100); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.2
  done
  echo "error: timed out waiting for '$2' in $1" >&2
  cat "$1" >&2
  return 1
}

echo "== launching monolithic reference (port $P_MONO) and 2 shard workers"
"$SERVERD" "${DATASET[@]}" --port "$P_MONO" 2>"$TMP/mono.log" &
PIDS+=($!)
"$SERVERD" "${DATASET[@]}" --shards 2 --shard-of 0 --port "$P_W0" \
  2>"$TMP/w0.log" &
PIDS+=($!)
"$SERVERD" "${DATASET[@]}" --shards 2 --shard-of 1 --port "$P_W1" \
  2>"$TMP/w1.log" &
PIDS+=($!)
wait_ready "$TMP/mono.log" "on port $P_MONO"
wait_ready "$TMP/w0.log" "shard 0/2 on port $P_W0"
wait_ready "$TMP/w1.log" "shard 1/2 on port $P_W1"

echo "== launching coordinator (port $P_COORD) over 127.0.0.1:$P_W0,127.0.0.1:$P_W1"
"$SERVERD" --dataset yago3 --scale 0.002 \
  --coordinator "127.0.0.1:$P_W0,127.0.0.1:$P_W1" --attach-retries 20 \
  --port "$P_COORD" 2>"$TMP/coord.log" &
PIDS+=($!)
wait_ready "$TMP/coord.log" "coordinator on port $P_COORD over 2 shards"

# The worker INFO must carry its shard identity; the coordinator presents a
# whole-graph identity (shard=0/0) so clients need not know shards exist.
echo "== info: worker identity and coordinator identity"
echo info | "$CLIENT" --connect 127.0.0.1 "$P_W0" | tee "$TMP/info_w0" \
  | grep -q "shard=0/2" || {
  echo "error: worker 0 INFO missing shard=0/2" >&2
  exit 1
}
echo info | "$CLIENT" --connect 127.0.0.1 "$P_COORD" | tee "$TMP/info_coord" \
  | grep -q "shard=0/0" || {
  echo "error: coordinator INFO should present shard=0/0" >&2
  exit 1
}

# Differential: identical query lines against the monolithic server and the
# coordinator must produce identical answer blocks (timing stripped; layer 0
# keeps per-answer scores exact so even the ranking must agree).
# Keyword ids probed once against the deterministic yago3@0.002 instance
# (fixed generator seeds): 550..1050 are leaf labels with matching vertices,
# and 600,700 is a connected pair.
cat >"$TMP/queries" <<'EOF'
query bkws 600,700 layer=0
query bkws 650 layer=0
query bkws 850 layer=0 top_k=10
query blinks 600 layer=0 top_k=10
query bidirectional 600,700 layer=0
query r-clique 700 layer=0 top_k=10
stats
quit
EOF
strip_timing() { sed -E 's/ ms=[0-9.]+//; /^OK (epoch|queries)/d; /uptime/d; /qps/d; /p50/d; /batch/d; /cache/d; /^\.$/d' "$1"; }
"$CLIENT" --connect 127.0.0.1 "$P_MONO" <"$TMP/queries" >"$TMP/out_mono"
"$CLIENT" --connect 127.0.0.1 "$P_COORD" <"$TMP/queries" >"$TMP/out_coord"
echo "== differential: coordinator answers vs monolithic"
if ! diff <(strip_timing "$TMP/out_mono") <(strip_timing "$TMP/out_coord"); then
  echo "error: sharded answers differ from monolithic" >&2
  exit 1
fi
answers=$(grep -c '^A ' "$TMP/out_mono" || true)
if [[ "$answers" -lt 1 ]]; then
  echo "error: differential was vacuous (no answers on either side)" >&2
  exit 1
fi
echo "   $answers answer lines, identical"

# Epoch bump through the coordinator: the bump must reach the workers and
# the repeated query must still serve the same answers from a cold cache.
echo "== epoch bump through the coordinator"
printf 'bump\nquery bkws 600,700 layer=0\nquit\n' \
  | "$CLIENT" --connect 127.0.0.1 "$P_COORD" >"$TMP/out_bump"
grep -q '^OK epoch=' "$TMP/out_bump" || {
  echo "error: bump did not return a new epoch" >&2
  exit 1
}
diff <(grep '^A ' "$TMP/out_mono" | head -n "$(grep -c '^A ' "$TMP/out_bump" || true)") \
     <(grep '^A ' "$TMP/out_bump") >/dev/null || {
  echo "error: post-bump answers differ" >&2
  exit 1
}

# Worker INFO epochs must have advanced past the initial 1.
echo info | "$CLIENT" --connect 127.0.0.1 "$P_W0" | grep -q 'epoch=2' || {
  echo "error: worker 0 epoch did not advance on coordinator bump" >&2
  exit 1
}

# Live updates over the wire. Edge 2371->491 is the first edge of the
# deterministic yago3@0.002 instance (probed once, like the keyword ids
# above); under the default wcc shard mode both endpoints land on one
# shard, so the coordinator broadcast applies it on exactly one worker.
# 2371->4999 is NOT an edge, so removing it is a fleet-wide no-op.
echo "== live update: no-op remove through the coordinator"
out=$("$CLIENT" --update 127.0.0.1 "$P_COORD" remove:2371:4999)
echo "   $out"
[[ "$out" == *"applied=0"* && "$out" == *"mode=none"* ]] || {
  echo "error: no-op update should report applied=0 mode=none" >&2
  exit 1
}

echo "== live update: remove + re-add edge 2371->491 through the coordinator"
out=$("$CLIENT" --update 127.0.0.1 "$P_COORD" remove:2371:491)
echo "   $out"
[[ "$out" == *"applied=1"* && "$out" != *"mode=none"* ]] || {
  echo "error: edge remove should report applied=1 and a non-none mode" >&2
  exit 1
}
# The applied update shows up in the coordinator's INFO counters.
echo info | "$CLIENT" --connect 127.0.0.1 "$P_COORD" | grep -q 'updates=1/0' || {
  echo "error: coordinator INFO missing updates=1/0 after the remove" >&2
  exit 1
}
out=$("$CLIENT" --update 127.0.0.1 "$P_COORD" add:2371:491)
echo "   $out"
[[ "$out" == *"applied=1"* ]] || {
  echo "error: edge re-add should report applied=1" >&2
  exit 1
}

# With the graph restored, a from-scratch rebuild is deterministic, so the
# maintained shard indexes must answer exactly like before the updates —
# and the epoch bumps must have invalidated every stale cache on the way.
echo "== differential: coordinator answers after remove + re-add"
"$CLIENT" --connect 127.0.0.1 "$P_COORD" <"$TMP/queries" >"$TMP/out_coord2"
if ! diff <(grep '^A ' "$TMP/out_coord") <(grep '^A ' "$TMP/out_coord2"); then
  echo "error: answers changed after remove + re-add through coordinator" >&2
  exit 1
fi

echo "== live update: monolithic server remove + re-add"
"$CLIENT" --update 127.0.0.1 "$P_MONO" remove:2371:491 | grep -q 'applied=1' || {
  echo "error: monolithic remove should report applied=1" >&2
  exit 1
}
"$CLIENT" --update 127.0.0.1 "$P_MONO" add:2371:491 | grep -q 'applied=1' || {
  echo "error: monolithic re-add should report applied=1" >&2
  exit 1
}
"$CLIENT" --connect 127.0.0.1 "$P_MONO" <"$TMP/queries" >"$TMP/out_mono2"
if ! diff <(grep '^A ' "$TMP/out_mono") <(grep '^A ' "$TMP/out_mono2"); then
  echo "error: answers changed after remove + re-add on monolithic" >&2
  exit 1
fi

# --- bfs shard mode: boundary-aware evaluation (DESIGN.md §9) --------------
# The same dataset carved into BFS blocks: the plan cuts edges, the workers
# materialize ghosts and withhold cut-near answers, and the coordinator
# stitches them back via the `boundary` verb + completion pass. The answer
# differential against the monolithic server must hold just like wcc mode.
echo "== bfs mode: launching 2 bfs-block workers + coordinator"
"$SERVERD" "${DATASET[@]}" --shards 2 --shard-of 0 --shard-mode bfs \
  --bfs-block 128 --port "$P_B0" 2>"$TMP/b0.log" &
PIDS+=($!)
"$SERVERD" "${DATASET[@]}" --shards 2 --shard-of 1 --shard-mode bfs \
  --bfs-block 128 --port "$P_B1" 2>"$TMP/b1.log" &
PIDS+=($!)
wait_ready "$TMP/b0.log" "shard 0/2 on port $P_B0"
wait_ready "$TMP/b1.log" "shard 1/2 on port $P_B1"
# A bfs plan on this instance has a real cut: the workers must say so.
grep -q "ghost vertices materialized" "$TMP/b0.log" "$TMP/b1.log" || {
  echo "error: bfs workers materialized no ghosts (cut was empty?)" >&2
  exit 1
}
"$SERVERD" --dataset yago3 --scale 0.002 \
  --coordinator "127.0.0.1:$P_B0,127.0.0.1:$P_B1" --attach-retries 20 \
  --port "$P_BCOORD" 2>"$TMP/bcoord.log" &
PIDS+=($!)
wait_ready "$TMP/bcoord.log" "coordinator on port $P_BCOORD over 2 shards"

echo "== differential: bfs coordinator answers vs monolithic"
"$CLIENT" --connect 127.0.0.1 "$P_BCOORD" <"$TMP/queries" >"$TMP/out_bfs"
if ! diff <(strip_timing "$TMP/out_mono") <(strip_timing "$TMP/out_bfs"); then
  echo "error: bfs-mode sharded answers differ from monolithic" >&2
  exit 1
fi
bfs_answers=$(grep -c '^A ' "$TMP/out_bfs" || true)
echo "   $bfs_answers answer lines, identical"

# The coordinator's applied/skipped accounting holds under bfs plans too
# (ghost-incident ops additionally skip fleet-wide — unit-tested in
# ShardedUpdate.GhostIncidentOpsAreSkippedUnderBfsPlans; over the wire we
# assert the no-op path since cut membership varies with the plan).
echo "== bfs mode: no-op update reports applied=0 mode=none"
out=$("$CLIENT" --update 127.0.0.1 "$P_BCOORD" remove:2371:4999)
echo "   $out"
[[ "$out" == *"applied=0"* && "$out" == *"mode=none"* ]] || {
  echo "error: bfs no-op update should report applied=0 mode=none" >&2
  exit 1
}

echo "shard integration OK"
