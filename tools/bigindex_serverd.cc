// bigindex_serverd — long-lived keyword-search daemon.
//
// Builds (or loads) a dataset + BiG-index, wraps it in a QueryEngine and an
// admission-controlled SearchService, and serves the line protocol over TCP
// until SIGINT/SIGTERM. See DESIGN.md "Serving layer" for the pipeline and
// src/server/line_protocol.h for the wire format; `tools/bigindex_client`
// is the matching client.
//
//   bigindex_serverd [--dataset yago3] [--scale 0.01] [--layers 4]
//                    [--port 7419] [--threads N] [--build-threads N]
//                    [--index-image PATH]
//                    [--queue N] [--max-batch N] [--linger-ms F] [--cache N]
//                    [--deadline-ms F] [--reject-oldest]
//                    [--metrics-port N] [--trace]
//                    [--shards N --shard-of K [--shard-mode wcc|bfs]
//                     [--bfs-block N]]
//                    [--coordinator HOST:PORT,HOST:PORT,...]
//
// Three serving modes (DESIGN.md §9):
//   * monolithic (default): one index over the whole graph.
//   * shard worker (--shards N --shard-of K): plans the N-way shard cover
//     over the dataset (PlanShards is deterministic, so all workers agree
//     without coordination), builds only shard K's index, and serves it
//     behind a global-id remap. With --index-image PREFIX the worker
//     saves/loads "PREFIX.shard<K>of<N>.img". All workers must be launched
//     with identical dataset/shard flags.
//   * coordinator (--coordinator h:p,...): no index at all; attaches a
//     scatter-gather ShardedSearchService over the listed shard workers
//     (in shard-id order) and serves the same line protocol. The dataset
//     flags are still used to build the label dictionary for keyword-name
//     parsing. --cache sizes the per-shard answer caches, --deadline-ms the
//     default fan-out deadline, --allow-partial opts into serving partial
//     merges when a shard is down, and --attach-retries bounds startup
//     waiting for workers to come up.
//
//   --index-image PATH mmaps a flat index image (core/index_image.h) instead
//   of rebuilding the hierarchy at startup, cutting cold start from seconds
//   to milliseconds. If PATH does not exist yet, the index is built once and
//   saved there, so the flag is self-priming across restarts. The dataset
//   flags must match the ones the image was built with (the label
//   dictionaries are cross-checked at load).
//   --threads 0  = serial engine (no pool);  --cache 0 disables the cache.
//   --build-threads parallelizes the startup index construction (0 = serial,
//   the default; the built index is identical for any value).
//   --metrics-port 0 (the default) disables the HTTP scrape endpoint; the
//   line protocol's `metrics` verb works either way. --trace enables span
//   collection from startup (covers index construction too); it can also be
//   toggled at runtime with the `trace on|off` verb.
//
// Live updates: monolithic servers and shard workers accept the UPDATE verb
// (see src/server/line_protocol.h) and maintain the served index in place —
// delta-propagating incremental refinement, RCU epoch-swapped publication.
// --update-fallback-ratio F sets the dirty-frontier ratio above which a
// layer is re-summarized wholesale (default 0.5, see docs/MAINTENANCE.md
// for tuning); --no-live-updates
// disables the write path entirely (UPDATE answers ERR Unimplemented).
// Coordinators always accept UPDATE and broadcast it to their workers.
//
// On shutdown the final ServiceStats snapshot is printed to stderr.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bigindex.h"

namespace bigindex {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: bigindex_serverd [--dataset NAME] [--scale F] [--layers N]\n"
      "                        [--port N] [--threads N] [--build-threads N]\n"
      "                        [--index-image PATH]\n"
      "                        [--queue N] [--max-batch N] [--linger-ms F]\n"
      "                        [--cache N] [--deadline-ms F]\n"
      "                        [--reject-oldest] [--metrics-port N]"
      " [--trace]\n"
      "                        [--shards N --shard-of K"
      " [--shard-mode wcc|bfs] [--bfs-block N]]\n"
      "                        [--coordinator HOST:PORT,...]"
      " [--allow-partial] [--attach-retries N]\n"
      "                        [--update-fallback-ratio F]"
      " [--no-live-updates]\n");
  return 1;
}

/// Builds a LiveUpdater over `index`/`engine` and wires it to `service`
/// (swap hook + write path + rollback path). Shared by the monolithic and
/// shard-worker modes; the caller keeps the returned updater alive next to
/// the service. `before_swap` (optional) runs on each successor engine
/// before publication — shard workers use it to reinstall the boundary
/// filter matching the new graph.
std::unique_ptr<LiveUpdater> WireLiveUpdater(
    std::shared_ptr<const BigIndex> index,
    std::shared_ptr<const QueryEngine> engine,
    const QueryEngineOptions& engine_opts, double fallback_ratio,
    SearchService* service,
    std::function<void(const QueryEngine&)> before_swap = {}) {
  LiveUpdaterOptions opts;
  opts.maintain.fallback_dirty_ratio = fallback_ratio;
  opts.engine = engine_opts;
  auto updater = std::make_unique<LiveUpdater>(std::move(index),
                                               std::move(engine),
                                               std::move(opts));
  updater->set_swap([service, before_swap = std::move(before_swap)](
                        std::shared_ptr<const QueryEngine> next) {
    if (before_swap) before_swap(*next);
    return service->SwapEngine(std::move(next));
  });
  LiveUpdater* raw = updater.get();
  service->set_updater([raw](std::span<const GraphUpdate> updates) {
    return raw->Apply(updates);
  });
  service->set_rollbacker([raw] { return raw->Rollback(); });
  return updater;
}

/// Parses "host:port,host:port,..." into shard endpoints.
StatusOr<std::vector<ShardEndpoint>> ParseEndpoints(const std::string& spec) {
  std::vector<ShardEndpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(start, comma - start);
    size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon + 1 >= entry.size()) {
      return Status::InvalidArgument("bad endpoint '" + entry +
                                     "' (want HOST:PORT)");
    }
    ShardEndpoint ep;
    ep.host = entry.substr(0, colon);
    ep.port = static_cast<uint16_t>(std::atoi(entry.c_str() + colon + 1));
    if (ep.host.empty() || ep.port == 0) {
      return Status::InvalidArgument("bad endpoint '" + entry + "'");
    }
    endpoints.push_back(std::move(ep));
    start = comma + 1;
  }
  return endpoints;
}

/// Blocks until SIGINT/SIGTERM, then stops the servers. Callers drain their
/// own service and print final stats afterwards.
void ServeUntilSignal(TcpServer& server, MetricsHttpServer* scrape) {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    pause();  // wake on any signal; g_stop decides whether to exit
  }
  std::fprintf(stderr, "shutting down...\n");
  if (scrape != nullptr) scrape->Stop();
  server.Stop();
}

int Run(int argc, char** argv) {
  std::string dataset_name = "yago3";
  double scale = 0.01;
  size_t layers = 4;
  size_t build_threads = 0;
  std::string index_image_path;
  TcpServerOptions tcp;
  MetricsHttpOptions metrics_http;
  bool trace_from_start = false;
  QueryEngineOptions engine_opts{.num_threads =
                                     ExecutorPool::kHardwareConcurrency};
  SearchServiceOptions service_opts;
  ShardPlanOptions plan_opts;  // plan_opts.num_shards > 1 => worker mode
  int shard_of = -1;
  std::string coordinator_spec;
  bool allow_partial = false;
  size_t attach_retries = 10;
  double update_fallback_ratio = 0.5;
  bool live_updates = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      dataset_name = next("--dataset");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = std::atof(next("--scale"));
    } else if (std::strcmp(argv[i], "--layers") == 0) {
      layers = static_cast<size_t>(std::atoi(next("--layers")));
    } else if (std::strcmp(argv[i], "--port") == 0) {
      tcp.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      engine_opts.num_threads =
          static_cast<size_t>(std::atoi(next("--threads")));
    } else if (std::strcmp(argv[i], "--build-threads") == 0) {
      build_threads = static_cast<size_t>(std::atoi(next("--build-threads")));
    } else if (std::strcmp(argv[i], "--index-image") == 0) {
      index_image_path = next("--index-image");
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      service_opts.queue_capacity =
          static_cast<size_t>(std::atoi(next("--queue")));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      service_opts.max_batch_size =
          static_cast<size_t>(std::atoi(next("--max-batch")));
    } else if (std::strcmp(argv[i], "--linger-ms") == 0) {
      service_opts.max_linger_ms = std::atof(next("--linger-ms"));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      service_opts.cache.capacity =
          static_cast<size_t>(std::atoi(next("--cache")));
      service_opts.enable_cache = service_opts.cache.capacity > 0;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      service_opts.default_deadline_ms = std::atof(next("--deadline-ms"));
    } else if (std::strcmp(argv[i], "--reject-oldest") == 0) {
      service_opts.overload_policy = OverloadPolicy::kRejectOldest;
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_http.port =
          static_cast<uint16_t>(std::atoi(next("--metrics-port")));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_from_start = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      plan_opts.num_shards =
          static_cast<size_t>(std::atoi(next("--shards")));
    } else if (std::strcmp(argv[i], "--shard-of") == 0) {
      shard_of = std::atoi(next("--shard-of"));
    } else if (std::strcmp(argv[i], "--shard-mode") == 0) {
      const char* mode = next("--shard-mode");
      if (std::strcmp(mode, "wcc") == 0) {
        plan_opts.mode = ShardMode::kConnectivityClosed;
      } else if (std::strcmp(mode, "bfs") == 0) {
        plan_opts.mode = ShardMode::kBfsBlocks;
      } else {
        std::fprintf(stderr, "error: unknown shard mode %s\n", mode);
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--bfs-block") == 0) {
      plan_opts.bfs_block_size =
          static_cast<size_t>(std::atoi(next("--bfs-block")));
    } else if (std::strcmp(argv[i], "--coordinator") == 0) {
      coordinator_spec = next("--coordinator");
    } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
      allow_partial = true;
    } else if (std::strcmp(argv[i], "--attach-retries") == 0) {
      attach_retries = static_cast<size_t>(std::atoi(next("--attach-retries")));
    } else if (std::strcmp(argv[i], "--update-fallback-ratio") == 0) {
      update_fallback_ratio = std::atof(next("--update-fallback-ratio"));
    } else if (std::strcmp(argv[i], "--no-live-updates") == 0) {
      live_updates = false;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return Usage();
    }
  }

  // Before the build so construction spans (build/*, bisim/*) are captured.
  if (trace_from_start) Tracer::Global().SetEnabled(true);

  if (!coordinator_spec.empty() && shard_of >= 0) {
    std::fprintf(stderr,
                 "error: --coordinator and --shard-of are exclusive\n");
    return Usage();
  }
  if (shard_of >= 0 && (plan_opts.num_shards < 1 ||
                        static_cast<uint32_t>(shard_of) >=
                            plan_opts.num_shards)) {
    std::fprintf(stderr, "error: --shard-of %d out of range for --shards %zu\n",
                 shard_of, plan_opts.num_shards);
    return Usage();
  }

  std::fprintf(stderr, "building dataset %s at scale %.4f...\n",
               dataset_name.c_str(), scale);
  auto ds = MakeDataset(dataset_name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }

  if (!coordinator_spec.empty()) {
    // Coordinator: scatter-gather over remote shard workers; the dataset is
    // only needed for its label dictionary (keyword-name parsing).
    auto endpoints = ParseEndpoints(coordinator_spec);
    if (!endpoints.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   endpoints.status().ToString().c_str());
      return 1;
    }
    RemoteSubstrate substrate(std::move(endpoints).value());
    ShardedServiceOptions copts;
    copts.fanout_threads = engine_opts.num_threads;
    copts.enable_cache = service_opts.enable_cache;
    copts.cache = service_opts.cache;
    copts.default_deadline_ms = service_opts.default_deadline_ms;
    copts.allow_partial = allow_partial;
    ShardedSearchService coordinator(&substrate, copts);
    Status attached = Status::Unavailable("attach not tried");
    for (size_t attempt = 0; attempt <= attach_retries; ++attempt) {
      if (attempt > 0) usleep(500 * 1000);  // workers may still be starting
      attached = coordinator.Attach();
      if (attached.ok()) break;
    }
    if (!attached.ok()) {
      std::fprintf(stderr, "error: %s\n", attached.ToString().c_str());
      return 1;
    }
    TcpServer server(&coordinator, ds->dict.get(), tcp);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "bigindex_serverd coordinator on port %u over %zu shards\n",
                 server.port(), coordinator.num_shards());
    ServeUntilSignal(server, nullptr);
    std::fprintf(stderr, "final stats: %s\n",
                 coordinator.Snapshot().ToString().c_str());
    return 0;
  }

  if (shard_of >= 0) {
    // Shard worker: build (or load) just our slice of the deterministic
    // shard plan and serve it behind a local→global id remap.
    ShardBuildOptions build_opts;
    build_opts.plan = plan_opts;
    build_opts.index = {.max_layers = layers,
                        .build = {.num_threads = build_threads}};
    const std::string image_path =
        index_image_path.empty()
            ? std::string()
            : ShardImagePath(index_image_path,
                             static_cast<uint32_t>(shard_of),
                             static_cast<uint32_t>(plan_opts.num_shards));
    StatusOr<BuiltShard> built = Status::Unavailable("shard not initialized");
    if (!image_path.empty() && LooksLikeIndexImage(image_path)) {
      Timer load_timer;
      ShardImageInfo shard_info;
      auto loaded = LoadIndexImage(image_path, *ds->dict,
                                   &ds->ontology.ontology, {}, &shard_info);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      if (shard_info.shard_id != static_cast<uint32_t>(shard_of) ||
          shard_info.num_shards != plan_opts.num_shards) {
        std::fprintf(stderr,
                     "error: %s holds shard %u/%u, flags say %d/%zu\n",
                     image_path.c_str(), shard_info.shard_id,
                     shard_info.num_shards, shard_of, plan_opts.num_shards);
        return 1;
      }
      std::fprintf(stderr, "shard %d/%zu mmapped from %s in %.2f ms\n",
                   shard_of, plan_opts.num_shards, image_path.c_str(),
                   load_timer.ElapsedMillis());
      built = BuiltShard{std::move(loaded).value(), std::move(shard_info)};
    } else {
      Timer build_timer;
      built = BuildOneShard(ds->graph, &ds->ontology.ontology, build_opts,
                            static_cast<uint32_t>(shard_of));
      if (!built.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "shard %d/%zu: |V|=%zu, %zu layers, %.1f ms build\n",
                   shard_of, plan_opts.num_shards,
                   built->shard.global_of.size(), built->index.NumLayers(),
                   build_timer.ElapsedMillis());
      if (!image_path.empty()) {
        Status saved = SaveIndexImageFile(built->index, *ds->dict,
                                          built->shard, image_path);
        if (!saved.ok()) {
          std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
          return 1;
        }
        std::fprintf(stderr, "saved shard image to %s\n", image_path.c_str());
      }
    }
    uint64_t fingerprint = 0;
    if (!image_path.empty()) {
      auto info = InspectIndexImage(image_path);
      if (info.ok()) fingerprint = info->fingerprint;
    }
    uint32_t num_layers = static_cast<uint32_t>(built->index.NumLayers());
    auto shard_index = std::make_shared<const BigIndex>(
        std::move(built->index));
    auto engine =
        std::make_shared<const QueryEngine>(shard_index, engine_opts);
    SearchService service(engine, service_opts);
    service.set_identity(ServiceIdentity{
        .fingerprint = fingerprint,
        .num_layers = num_layers,
        .shard_id = static_cast<uint32_t>(shard_of),
        .num_shards = static_cast<uint32_t>(plan_opts.num_shards),
    });
    // The remap/ghost tables are shared with the updater's swap hook: every
    // published successor graph gets a freshly computed boundary filter.
    auto global_of = std::make_shared<const std::vector<VertexId>>(
        std::move(built->shard.global_of));
    auto ghosts = std::make_shared<const std::vector<VertexId>>(
        std::move(built->shard.ghosts));
    ShardRemapService remapped(&service, *global_of, *ghosts);
    if (!ghosts->empty()) {
      remapped.InstallBoundary(ComputeShardBoundary(
          engine->index().base(), *global_of, *ghosts,
          AlgorithmRadii(*engine)));
      std::fprintf(stderr, "shard %d/%zu: %zu ghost vertices materialized\n",
                   shard_of, plan_opts.num_shards, ghosts->size());
    }
    std::unique_ptr<LiveUpdater> updater;
    if (live_updates) {
      ShardRemapService* remapped_ptr = &remapped;
      updater = WireLiveUpdater(
          std::move(shard_index), engine, engine_opts, update_fallback_ratio,
          &service,
          [remapped_ptr, global_of, ghosts](const QueryEngine& next) {
            if (ghosts->empty()) return;
            remapped_ptr->InstallBoundary(ComputeShardBoundary(
                next.index().base(), *global_of, *ghosts,
                AlgorithmRadii(next)));
          });
    }
    TcpServer server(&remapped, ds->dict.get(), tcp);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "bigindex_serverd shard %d/%zu on port %u\n",
                 shard_of, plan_opts.num_shards, server.port());
    ServeUntilSignal(server, nullptr);
    service.Shutdown();
    std::fprintf(stderr, "final stats: %s\n",
                 service.Snapshot().ToString().c_str());
    return 0;
  }

  StatusOr<BigIndex> index = Status::Unavailable("index not initialized");
  if (!index_image_path.empty() && LooksLikeIndexImage(index_image_path)) {
    Timer load_timer;
    index = LoadIndexImage(index_image_path, *ds->dict,
                           &ds->ontology.ontology);
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "index: |V|=%zu |E|=%zu, %zu layers, mmapped from %s in "
                 "%.2f ms\n",
                 ds->graph.NumVertices(), ds->graph.NumEdges(),
                 index->NumLayers(), index_image_path.c_str(),
                 load_timer.ElapsedMillis());
  } else {
    Timer build_timer;
    index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                            {.max_layers = layers,
                             .build = {.num_threads = build_threads}});
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "index: |V|=%zu |E|=%zu, %zu layers, %.1f ms build\n",
                 ds->graph.NumVertices(), ds->graph.NumEdges(),
                 index->NumLayers(), build_timer.ElapsedMillis());
    if (!index_image_path.empty()) {
      Status saved = SaveIndexImageFile(*index, *ds->dict, index_image_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "saved index image to %s (next start mmaps it)\n",
                   index_image_path.c_str());
    }
  }

  auto index_ptr = std::make_shared<const BigIndex>(std::move(index).value());
  auto engine = std::make_shared<const QueryEngine>(index_ptr, engine_opts);
  SearchService service(engine, service_opts);
  std::unique_ptr<LiveUpdater> updater;
  if (live_updates) {
    updater = WireLiveUpdater(std::move(index_ptr), engine, engine_opts,
                              update_fallback_ratio, &service);
  }
  TcpServer server(&service, ds->dict.get(), tcp);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bigindex_serverd listening on port %u "
               "(threads=%zu queue=%zu max_batch=%zu cache=%zu)\n",
               server.port(), engine->num_slots(),
               service_opts.queue_capacity, service_opts.max_batch_size,
               service_opts.enable_cache ? service_opts.cache.capacity : 0);

  MetricsHttpServer scrape(metrics_http);
  if (metrics_http.port != 0) {
    Status scrape_started = scrape.Start();
    if (!scrape_started.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   scrape_started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics on http://127.0.0.1:%u/metrics\n",
                 scrape.port());
  }

  ServeUntilSignal(server, &scrape);
  service.Shutdown();
  std::fprintf(stderr, "final stats: %s\n",
               service.Snapshot().ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace bigindex

int main(int argc, char** argv) { return bigindex::Run(argc, argv); }
