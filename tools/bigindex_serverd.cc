// bigindex_serverd — long-lived keyword-search daemon.
//
// Builds (or loads) a dataset + BiG-index, wraps it in a QueryEngine and an
// admission-controlled SearchService, and serves the line protocol over TCP
// until SIGINT/SIGTERM. See DESIGN.md "Serving layer" for the pipeline and
// src/server/line_protocol.h for the wire format; `tools/bigindex_client`
// is the matching client.
//
//   bigindex_serverd [--dataset yago3] [--scale 0.01] [--layers 4]
//                    [--port 7419] [--threads N] [--build-threads N]
//                    [--index-image PATH]
//                    [--queue N] [--max-batch N] [--linger-ms F] [--cache N]
//                    [--deadline-ms F] [--reject-oldest]
//                    [--metrics-port N] [--trace]
//
//   --index-image PATH mmaps a flat index image (core/index_image.h) instead
//   of rebuilding the hierarchy at startup, cutting cold start from seconds
//   to milliseconds. If PATH does not exist yet, the index is built once and
//   saved there, so the flag is self-priming across restarts. The dataset
//   flags must match the ones the image was built with (the label
//   dictionaries are cross-checked at load).
//   --threads 0  = serial engine (no pool);  --cache 0 disables the cache.
//   --build-threads parallelizes the startup index construction (0 = serial,
//   the default; the built index is identical for any value).
//   --metrics-port 0 (the default) disables the HTTP scrape endpoint; the
//   line protocol's `metrics` verb works either way. --trace enables span
//   collection from startup (covers index construction too); it can also be
//   toggled at runtime with the `trace on|off` verb.
//
// On shutdown the final ServiceStats snapshot is printed to stderr.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bigindex.h"

namespace bigindex {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: bigindex_serverd [--dataset NAME] [--scale F] [--layers N]\n"
      "                        [--port N] [--threads N] [--build-threads N]\n"
      "                        [--index-image PATH]\n"
      "                        [--queue N] [--max-batch N] [--linger-ms F]\n"
      "                        [--cache N] [--deadline-ms F]\n"
      "                        [--reject-oldest] [--metrics-port N]"
      " [--trace]\n");
  return 1;
}

int Run(int argc, char** argv) {
  std::string dataset_name = "yago3";
  double scale = 0.01;
  size_t layers = 4;
  size_t build_threads = 0;
  std::string index_image_path;
  TcpServerOptions tcp;
  MetricsHttpOptions metrics_http;
  bool trace_from_start = false;
  QueryEngineOptions engine_opts{.num_threads =
                                     ExecutorPool::kHardwareConcurrency};
  SearchServiceOptions service_opts;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dataset") == 0) {
      dataset_name = next("--dataset");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = std::atof(next("--scale"));
    } else if (std::strcmp(argv[i], "--layers") == 0) {
      layers = static_cast<size_t>(std::atoi(next("--layers")));
    } else if (std::strcmp(argv[i], "--port") == 0) {
      tcp.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      engine_opts.num_threads =
          static_cast<size_t>(std::atoi(next("--threads")));
    } else if (std::strcmp(argv[i], "--build-threads") == 0) {
      build_threads = static_cast<size_t>(std::atoi(next("--build-threads")));
    } else if (std::strcmp(argv[i], "--index-image") == 0) {
      index_image_path = next("--index-image");
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      service_opts.queue_capacity =
          static_cast<size_t>(std::atoi(next("--queue")));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      service_opts.max_batch_size =
          static_cast<size_t>(std::atoi(next("--max-batch")));
    } else if (std::strcmp(argv[i], "--linger-ms") == 0) {
      service_opts.max_linger_ms = std::atof(next("--linger-ms"));
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      service_opts.cache.capacity =
          static_cast<size_t>(std::atoi(next("--cache")));
      service_opts.enable_cache = service_opts.cache.capacity > 0;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      service_opts.default_deadline_ms = std::atof(next("--deadline-ms"));
    } else if (std::strcmp(argv[i], "--reject-oldest") == 0) {
      service_opts.overload_policy = OverloadPolicy::kRejectOldest;
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_http.port =
          static_cast<uint16_t>(std::atoi(next("--metrics-port")));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_from_start = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return Usage();
    }
  }

  // Before the build so construction spans (build/*, bisim/*) are captured.
  if (trace_from_start) Tracer::Global().SetEnabled(true);

  std::fprintf(stderr, "building dataset %s at scale %.4f...\n",
               dataset_name.c_str(), scale);
  auto ds = MakeDataset(dataset_name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  StatusOr<BigIndex> index = Status::Unavailable("index not initialized");
  if (!index_image_path.empty() && LooksLikeIndexImage(index_image_path)) {
    Timer load_timer;
    index = LoadIndexImage(index_image_path, *ds->dict,
                           &ds->ontology.ontology);
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "index: |V|=%zu |E|=%zu, %zu layers, mmapped from %s in "
                 "%.2f ms\n",
                 ds->graph.NumVertices(), ds->graph.NumEdges(),
                 index->NumLayers(), index_image_path.c_str(),
                 load_timer.ElapsedMillis());
  } else {
    Timer build_timer;
    index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                            {.max_layers = layers,
                             .build = {.num_threads = build_threads}});
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "index: |V|=%zu |E|=%zu, %zu layers, %.1f ms build\n",
                 ds->graph.NumVertices(), ds->graph.NumEdges(),
                 index->NumLayers(), build_timer.ElapsedMillis());
    if (!index_image_path.empty()) {
      Status saved = SaveIndexImageFile(*index, *ds->dict, index_image_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "saved index image to %s (next start mmaps it)\n",
                   index_image_path.c_str());
    }
  }

  auto engine = std::make_shared<const QueryEngine>(std::move(index).value(),
                                                    engine_opts);
  SearchService service(engine, service_opts);
  TcpServer server(&service, ds->dict.get(), tcp);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bigindex_serverd listening on port %u "
               "(threads=%zu queue=%zu max_batch=%zu cache=%zu)\n",
               server.port(), engine->num_slots(),
               service_opts.queue_capacity, service_opts.max_batch_size,
               service_opts.enable_cache ? service_opts.cache.capacity : 0);

  MetricsHttpServer scrape(metrics_http);
  if (metrics_http.port != 0) {
    Status scrape_started = scrape.Start();
    if (!scrape_started.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   scrape_started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics on http://127.0.0.1:%u/metrics\n",
                 scrape.port());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    pause();  // wake on any signal; g_stop decides whether to exit
  }

  std::fprintf(stderr, "shutting down...\n");
  scrape.Stop();
  server.Stop();
  service.Shutdown();
  std::fprintf(stderr, "final stats: %s\n",
               service.Snapshot().ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace bigindex

int main(int argc, char** argv) { return bigindex::Run(argc, argv); }
