#!/usr/bin/env bash
# CI entry point: tier-1 correctness, then a ThreadSanitizer pass over the
# engine + serving + shard-substrate + live-update + observability +
# parallel-construction + CSR-differential tests (the suites that exercise
# cross-thread sharing, including the update differential gate and the
# cache-epoch race test) plus the multi-process coordinator/shard
# integration test (which now drives the UPDATE verb end to end), then an
# ASan+UBSan pass over the index-image fuzz and binary-io suites
# (hostile-bytes paths), then a docs-link check, a metrics-overhead smoke, a
# parallel-construction smoke, an index-image cold-start smoke, the shard
# scatter-gather throughput gate, a maintenance differential smoke, and a
# short serving-layer load smoke (with the mixed read/update phase).
#
#   tools/ci.sh [jobs]
#
# Uses separate build trees so the sanitized build never dirties the main one.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== tier-1: build + ctest (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "=== tsan: engine + server + shard tests (build-tsan/) ==="
cmake -B build-tsan -S . -DBIGINDEX_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target bigindex_tests bigindex_serverd \
  bigindex_client
# halt_on_error makes any race a hard failure rather than a log line. The
# shard and update differential gates run at reduced seeds under TSan (full
# strength in the tier-1 pass above) — ShardDifferentialGate covers BOTH
# shard modes (wcc and bfs with boundary completion); the ghost-manifest
# invariants, coordinator fan-out, substrates, protocol client, live
# updater, and the cache-epoch race test run in full.
TSAN_OPTIONS="halt_on_error=1" BIGINDEX_SHARD_GATE_SEEDS=5 \
  BIGINDEX_UPDATE_GATE_SEEDS=5 \
  ./build-tsan/tests/bigindex_tests \
  --gtest_filter='ExecutorPool*:QueryContext*:QueryEngine*:Deadline*:AnswerCache*:SearchService*:LineProtocol*:TcpServer*:Metrics*:Trace*:ParallelBisim*:BuildDeterminism*:CsrDifferential*:ShardCoordinator*:ShardSubstrate*:ShardDifferentialGate*:ExtractShard*:GhostManifest*:ShardImage*:ProtocolClient*:InfoVerb*:NormalizeUpdates*:IncrementalBisim*:MaintainIndex*:VersionStore*:LiveUpdater*:ServiceUpdate*:CacheEpochRace*:UpdateProtocol*:UpdateVerb*:ShardedUpdate*:UpdateDifferentialGate*'

echo
echo "=== tsan: multi-process coordinator/shard integration ==="
# Two shard worker processes + a scatter-gather coordinator, differentially
# checked against a monolithic server — all four processes TSan-built.
tools/shard_integration.sh build-tsan

echo
echo "=== asan+ubsan: index-image fuzz + binary io (build-asan/) ==="
cmake -B build-asan -S . -DBIGINDEX_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS" --target bigindex_tests
# The fuzz suite feeds truncated/corrupted images through the mmap loader;
# any out-of-bounds read or UB under hostile bytes is a hard failure.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tests/bigindex_tests \
  --gtest_filter='IndexImageFuzz*:BinaryIo*'

echo
echo "=== docs: no dead relative links in *.md ==="
tools/check_doc_links.sh

echo
echo "=== docs: protocol verbs match server dispatch ==="
tools/check_protocol_docs.sh

echo
echo "=== smoke: disabled-instrumentation overhead budget ==="
# Fails if the disabled observability hooks would cost > 2% of real query
# time (BIGINDEX_OBS_OVERHEAD_PCT overrides the threshold).
./build/bench/bench_obs_overhead --check

echo
echo "=== smoke: parallel construction (2 threads == serial) ==="
# Builds a small index twice (serial, then 2 build threads) and fails if the
# serialized results differ — exercises the parallel construction path in CI.
./build/bench/bench_construction --smoke

echo
echo "=== smoke: index image cold start (load correctness + >=10x) ==="
# Saves a small index in both formats and fails unless the mmap image loads
# correctly (identical answers) and beats the parsing loader by >= 10x.
./build/bench/bench_index_load --check

echo
echo "=== smoke: shard scatter-gather gate (1-shard >= 0.9x monolithic) ==="
# Fails unless the 1-shard coordinator stays within 0.9x of the monolithic
# service on the same workload AND answers are identical at 1/2/4 shards.
BIGINDEX_BENCH_SCALE="${BIGINDEX_BENCH_SCALE:-0.002}" \
  ./build/bench/bench_shards --smoke

echo
echo "=== smoke: maintenance differential (incremental == wholesale == rebuild) ==="
# One mixed update batch through all three maintenance paths; fails unless
# the three serialized indexes are byte-identical.
./build/bench/bench_maintenance --smoke

echo
echo "=== gate: maintenance speedup (>= 2x at small batches) ==="
# Measures maintained-vs-rebuilt wall clock at batch sizes 1 and 4 and fails
# unless incremental maintenance beats a from-scratch rebuild by >= 2x while
# staying byte-identical (one re-measure retry absorbs scheduler noise).
./build/bench/bench_maintenance --check

echo
echo "=== smoke: serving-layer load generator (~2s) ==="
# Tiny instance; exercises the full service pipeline (admission, batching,
# cache, deadlines, backpressure, mixed read/update serving with live epoch
# swaps) end to end without benchmarking anything.
BIGINDEX_BENCH_SCALE="${BIGINDEX_BENCH_SCALE:-0.002}" \
  ./build/bench/bench_server --smoke

echo
echo "CI OK"
