#!/usr/bin/env bash
# CI entry point: tier-1 correctness, then a ThreadSanitizer pass over the
# engine + serving + observability + parallel-construction + CSR-differential
# tests (the suites that exercise cross-thread sharing), then an ASan+UBSan
# pass over the index-image fuzz and binary-io suites (hostile-bytes paths),
# then a docs-link check, a metrics-overhead smoke, a parallel-construction
# smoke, an index-image cold-start smoke, and a short serving-layer load
# smoke.
#
#   tools/ci.sh [jobs]
#
# Uses separate build trees so the sanitized build never dirties the main one.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== tier-1: build + ctest (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo
echo "=== tsan: engine + server tests (build-tsan/) ==="
cmake -B build-tsan -S . -DBIGINDEX_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target bigindex_tests
# halt_on_error makes any race a hard failure rather than a log line.
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/bigindex_tests \
  --gtest_filter='ExecutorPool*:QueryContext*:QueryEngine*:Deadline*:AnswerCache*:SearchService*:LineProtocol*:TcpServer*:Metrics*:Trace*:ParallelBisim*:BuildDeterminism*:CsrDifferential*'

echo
echo "=== asan+ubsan: index-image fuzz + binary io (build-asan/) ==="
cmake -B build-asan -S . -DBIGINDEX_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS" --target bigindex_tests
# The fuzz suite feeds truncated/corrupted images through the mmap loader;
# any out-of-bounds read or UB under hostile bytes is a hard failure.
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
  ./build-asan/tests/bigindex_tests \
  --gtest_filter='IndexImageFuzz*:BinaryIo*'

echo
echo "=== docs: no dead relative links in *.md ==="
tools/check_doc_links.sh

echo
echo "=== smoke: disabled-instrumentation overhead budget ==="
# Fails if the disabled observability hooks would cost > 2% of real query
# time (BIGINDEX_OBS_OVERHEAD_PCT overrides the threshold).
./build/bench/bench_obs_overhead --check

echo
echo "=== smoke: parallel construction (2 threads == serial) ==="
# Builds a small index twice (serial, then 2 build threads) and fails if the
# serialized results differ — exercises the parallel construction path in CI.
./build/bench/bench_construction --smoke

echo
echo "=== smoke: index image cold start (load correctness + >=10x) ==="
# Saves a small index in both formats and fails unless the mmap image loads
# correctly (identical answers) and beats the parsing loader by >= 10x.
./build/bench/bench_index_load --check

echo
echo "=== smoke: serving-layer load generator (~2s) ==="
# Tiny instance; exercises the full service pipeline (admission, batching,
# cache, deadlines, backpressure) end to end without benchmarking anything.
BIGINDEX_BENCH_SCALE="${BIGINDEX_BENCH_SCALE:-0.002}" \
  ./build/bench/bench_server --smoke

echo
echo "CI OK"
