#!/usr/bin/env bash
# Fails if any markdown file in the repo contains a relative link to a file
# that does not exist. External links (http/https/mailto) and pure anchors
# are skipped; anchors on relative links are stripped before the check.
#
#   tools/check_doc_links.sh
#
# tools/ci.sh runs this on every pass.
set -euo pipefail

cd "$(dirname "$0")/.."

failures=0
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Inline links: [text](target). One per line after grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path="${target%%#*}"            # strip any anchor
    [ -z "$path" ] && continue
    if [ "${path#/}" != "$path" ]; then
      resolved=".$path"             # root-relative: anchor at the repo root
    else
      resolved="$dir/$path"
    fi
    if [ ! -e "$resolved" ]; then
      echo "dead link in $md: ($target)" >&2
      failures=$((failures + 1))
    fi
  done < <(
    # Drop fenced code blocks first: C++ like `operator[](uint32_t v)` would
    # otherwise parse as a markdown link.
    awk '/^[[:space:]]*```/ { fenced = !fenced; next } !fenced' "$md" \
      | grep -o '\[[^]]*\]([^)]*)' \
      | sed 's/^\[[^]]*\](\([^)]*\))$/\1/' || true
  )
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')

if [ "$failures" -gt 0 ]; then
  echo "FAIL: $failures dead relative link(s)" >&2
  exit 1
fi
echo "doc links OK"
