// bigindex_cli — command-line front end for the library.
//
// Subcommands:
//   gen     <dataset> <scale> <graph.out> <ontology.out>
//           Generate a stand-in dataset and write graph + ontology files.
//   build   <graph.in> <ontology.in> <index.out> [max_layers]
//           [--build-threads N]
//           Build a BiG-index from files and serialize it. --build-threads
//           parallelizes construction (0 = serial, the default; output is
//           identical either way).
//   stats   <graph.in> <ontology.in> <index.in>
//           Print per-layer statistics of a serialized index.
//   query   <graph.in> <ontology.in> <index.in> <algo> <k1,k2,...> [top_k]
//           Evaluate a keyword query through the index; algo is one of
//           bkws | blinks | rclique | bidi.
//   batch   <graph.in> <ontology.in> <index.in> <algo> <queries.txt>
//           [threads] [top_k]
//           Evaluate a batch of queries (one comma-separated keyword list
//           per line) through the QueryEngine's thread pool.
//   inspect <index.img>
//           Dump the header and section table of a flat index image,
//           including the shard identity and content fingerprint.
//   shard   <graph.in> <ontology.in> <num_shards> [image-prefix] [layers]
//           [--shard-mode wcc|bfs] [--bfs-block N]
//           Plan an N-way shard cover and print its balance and
//           boundary-cut statistics. With an image prefix, additionally
//           build every shard's index and write one relocatable shard image
//           per shard under the "<prefix>.shard<k>of<n>.img" convention
//           bigindex_serverd --shard-of loads.
//   update  <graph.in> <ontology.in> <index.in>
//           (add:<u>:<v>|remove:<u>:<v>)... [--out <index.out>] [--check]
//           [--fallback-ratio F] [--force-wholesale]
//           Apply an edge-update batch to a built index offline via
//           incremental maintenance (update/maintain.h) and print the
//           per-layer maintenance report. --out writes the successor index
//           (image or text by extension); --check additionally rebuilds
//           from scratch on the updated graph and verifies the successor is
//           byte-identical (exit 1 on divergence).
//
// Index files may be either the text format (core/index_io.h) or a flat
// mmap image (core/index_image.h); readers sniff the magic and pick the
// right loader. `build` writes an image when the output path ends in
// ".img", the text format otherwise.
//
// Query evaluation goes through the QueryEngine: the CLI registers the
// selected algorithm with its configured options and submits EngineQuery
// records, so single-shot `query` and pooled `batch` share one code path.
//
// Exit status: 0 on success, 1 on any error (message on stderr).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bigindex.h"

namespace bigindex {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Local error-propagation helper for command bodies that return int.
#define BIGINDEX_RETURN_IF_ERROR_CLI(expr) \
  do {                                     \
    Status _st = (expr);                   \
    if (!_st.ok()) return Fail(_st);       \
  } while (0)

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bigindex_cli gen   <dataset> <scale> <graph> <ontology>\n"
               "  bigindex_cli build <graph> <ontology> <index> [layers]"
               " [--build-threads N]\n"
               "  bigindex_cli stats <graph> <ontology> <index>\n"
               "  bigindex_cli query <graph> <ontology> <index> "
               "<bkws|blinks|rclique|bidi> <kw1,kw2,...> [top_k]\n"
               "  bigindex_cli batch <graph> <ontology> <index> "
               "<bkws|blinks|rclique|bidi> <queries.txt> [threads] [top_k]\n"
               "  bigindex_cli inspect <index.img>\n"
               "  bigindex_cli shard <graph> <ontology> <num_shards>"
               " [image-prefix] [layers]\n"
               "               [--shard-mode wcc|bfs] [--bfs-block N]\n"
               "  bigindex_cli update <graph> <ontology> <index> "
               "(add:<u>:<v>|remove:<u>:<v>)...\n"
               "               [--out <index>] [--check]"
               " [--fallback-ratio F] [--force-wholesale]\n");
  return 1;
}

/// Maps a CLI algorithm name to a configured instance (nullptr = unknown).
std::unique_ptr<KeywordSearchAlgorithm> MakeAlgorithm(
    const std::string& name, size_t top_k) {
  if (name == "bkws") {
    return std::make_unique<BkwsAlgorithm>(BkwsOptions{.d_max = 5});
  }
  if (name == "blinks") {
    return std::make_unique<BlinksAlgorithm>(
        BlinksOptions{.d_max = 5, .top_k = 5 * top_k});
  }
  if (name == "rclique") {
    return std::make_unique<RCliqueAlgorithm>(
        RCliqueOptions{.r = 4, .top_k = 2 * top_k});
  }
  if (name == "bidi") {
    return std::make_unique<BidirectionalAlgorithm>(
        BidirectionalOptions{.d_max = 5});
  }
  return nullptr;
}

/// Parses "kw1,kw2,..." against the dictionary; empty result = parse error
/// (message already printed).
std::vector<LabelId> ParseKeywords(const std::string& spec,
                                   const LabelDictionary& dict) {
  std::vector<LabelId> keywords;
  std::stringstream kws(spec);
  std::string kw;
  while (std::getline(kws, kw, ',')) {
    LabelId l = dict.Find(kw);
    if (l == kInvalidLabel) {
      std::fprintf(stderr, "error: keyword '%s' not in the graph's labels\n",
                   kw.c_str());
      return {};
    }
    keywords.push_back(l);
  }
  return keywords;
}

int CmdGen(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string name = argv[0];
  double scale = std::atof(argv[1]);
  auto ds = MakeDataset(name, scale);
  if (!ds.ok()) return Fail(ds.status());
  BIGINDEX_RETURN_IF_ERROR_CLI(SaveGraphFile(ds->graph, *ds->dict, argv[2]));
  BIGINDEX_RETURN_IF_ERROR_CLI(
      SaveOntologyFile(ds->ontology.ontology, *ds->dict, argv[3]));
  std::printf("wrote %s (|V|=%zu |E|=%zu) and %s (%zu types)\n", argv[2],
              ds->graph.NumVertices(), ds->graph.NumEdges(), argv[3],
              ds->ontology.ontology.NumTypes());
  return 0;
}

struct Loaded {
  LabelDictionary dict;
  Graph graph;
  Ontology ontology;
};

StatusOr<Loaded> LoadGraphAndOntology(const char* graph_path,
                                      const char* ontology_path) {
  Loaded out;
  auto g = LoadGraphFile(graph_path, out.dict);
  if (!g.ok()) return g.status();
  out.graph = std::move(g).value();
  auto o = LoadOntologyFile(ontology_path, out.dict);
  if (!o.ok()) return o.status();
  out.ontology = std::move(o).value();
  return out;
}

/// Loads an index in either format: mmap image (sniffed by magic) or text.
StatusOr<BigIndex> LoadIndexAuto(const char* path, LabelDictionary& dict,
                                 const Ontology* ontology) {
  if (LooksLikeIndexImage(path)) {
    return LoadIndexImage(path, dict, ontology);
  }
  return LoadIndexFile(path, dict, ontology);
}

bool EndsWithImg(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".img") == 0;
}

int CmdBuild(int argc, char** argv) {
  BigIndexOptions opt;
  // Split flags from positionals so --build-threads can go anywhere.
  std::vector<char*> pos;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--build-threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --build-threads needs a value\n");
        return Usage();
      }
      opt.build.num_threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.size() < 3) return Usage();
  auto loaded = LoadGraphAndOntology(pos[0], pos[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  if (pos.size() > 3) opt.max_layers = static_cast<size_t>(std::atoi(pos[3]));
  Timer t;
  auto index =
      BigIndex::Build(loaded->graph, &loaded->ontology, opt);
  if (!index.ok()) return Fail(index.status());
  Status s = EndsWithImg(pos[2])
                 ? SaveIndexImageFile(*index, loaded->dict, pos[2])
                 : SaveIndexFile(*index, loaded->dict, pos[2]);
  if (!s.ok()) return Fail(s);
  std::printf(
      "built %zu layers in %.1f ms (%zu build thread(s)); layer-1 ratio "
      "%.4f; wrote %s\n",
      index->NumLayers(), t.ElapsedMillis(), opt.build.num_threads,
      index->NumLayers() ? index->LayerCompressionRatio(1) : 1.0, pos[2]);
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto loaded = LoadGraphAndOntology(argv[0], argv[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  auto index = LoadIndexAuto(argv[2], loaded->dict, &loaded->ontology);
  if (!index.ok()) return Fail(index.status());
  std::printf("layer  |V|        |E|        |G|        ratio\n");
  for (size_t m = 0; m <= index->NumLayers(); ++m) {
    const Graph& g = index->LayerGraph(m);
    std::printf("%-6zu %-10zu %-10zu %-10zu %.4f\n", m, g.NumVertices(),
                g.NumEdges(), g.Size(), index->LayerCompressionRatio(m));
  }
  std::printf("total summary footprint: %zu\n", index->TotalSummarySize());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto loaded = LoadGraphAndOntology(argv[0], argv[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  auto index = LoadIndexAuto(argv[2], loaded->dict, &loaded->ontology);
  if (!index.ok()) return Fail(index.status());

  std::string algo_name = argv[3];
  size_t top_k = argc > 5 ? static_cast<size_t>(std::atoi(argv[5])) : 10;
  std::unique_ptr<KeywordSearchAlgorithm> algo = MakeAlgorithm(algo_name,
                                                               top_k);
  if (!algo) return Usage();

  std::vector<LabelId> keywords = ParseKeywords(argv[4], loaded->dict);
  if (keywords.empty()) return Usage();

  QueryEngine engine(std::move(index).value(),
                     {.register_default_algorithms = false});
  EngineQuery q;
  q.algorithm = algo->Name();
  engine.Register(std::move(algo));
  q.keywords = std::move(keywords);
  q.eval.top_k = top_k;
  auto result = engine.Evaluate(q);
  if (!result.ok()) return Fail(result.status());
  const EvalBreakdown& bd = result->breakdown;

  std::printf("%zu answer(s) in %.2f ms (layer %zu; explore %.2f / "
              "specialize %.2f / generate %.2f / verify %.2f ms)\n",
              result->answers.size(), result->wall_ms, bd.layer,
              bd.explore_ms, bd.specialize_ms, bd.generate_ms, bd.verify_ms);
  for (const Answer& a : result->answers) {
    if (a.root != kInvalidVertex) {
      std::printf("  root=%s score=%u kw=[",
                  loaded->dict.Name(loaded->graph.label(a.root)).c_str(),
                  a.score);
    } else {
      std::printf("  score=%u kw=[", a.score);
    }
    for (size_t i = 0; i < a.keyword_vertices.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  loaded->dict.Name(
                      loaded->graph.label(a.keyword_vertices[i])).c_str());
    }
    std::printf("]\n");
  }
  return 0;
}

int CmdBatch(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto loaded = LoadGraphAndOntology(argv[0], argv[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  auto index = LoadIndexAuto(argv[2], loaded->dict, &loaded->ontology);
  if (!index.ok()) return Fail(index.status());

  std::string algo_name = argv[3];
  size_t threads = argc > 5 ? static_cast<size_t>(std::atoi(argv[5])) : 0;
  size_t top_k = argc > 6 ? static_cast<size_t>(std::atoi(argv[6])) : 10;
  std::unique_ptr<KeywordSearchAlgorithm> algo = MakeAlgorithm(algo_name,
                                                               top_k);
  if (!algo) return Usage();

  std::ifstream in(argv[4]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open queries file %s\n", argv[4]);
    return 1;
  }
  std::vector<EngineQuery> queries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    EngineQuery q;
    q.algorithm = algo->Name();
    q.keywords = ParseKeywords(line, loaded->dict);
    if (q.keywords.empty()) return 1;
    q.eval.top_k = top_k;
    queries.push_back(std::move(q));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "error: no queries in %s\n", argv[4]);
    return 1;
  }

  QueryEngine engine(std::move(index).value(),
                     {.num_threads = threads,
                      .register_default_algorithms = false});
  engine.Register(std::move(algo));
  Timer t;
  auto results = engine.EvaluateBatch(queries);
  double total_ms = t.ElapsedMillis();
  if (!results.ok()) return Fail(results.status());

  double sum_ms = 0;
  size_t total_answers = 0;
  for (size_t i = 0; i < results->size(); ++i) {
    const QueryResult& r = (*results)[i];
    sum_ms += r.wall_ms;
    total_answers += r.answers.size();
    std::printf("query %zu: %zu answer(s) in %.2f ms (layer %zu)\n", i,
                r.answers.size(), r.wall_ms, r.breakdown.layer);
  }
  std::printf(
      "batch of %zu queries: %.2f ms wall (%.1f q/s) with %zu thread(s); "
      "%.2f ms summed per-query; %zu answers\n",
      queries.size(), total_ms, 1000.0 * queries.size() / total_ms, threads,
      sum_ms, total_answers);
  return 0;
}

int CmdInspect(int argc, char** argv) {
  if (argc < 1) return Usage();
  auto info = InspectIndexImage(argv[0]);
  if (!info.ok()) return Fail(info.status());
  std::printf("index image %s\n", argv[0]);
  std::printf("  version:  %u\n", info->version);
  std::printf("  size:     %llu bytes\n",
              static_cast<unsigned long long>(info->file_size));
  std::printf("  layers:   %u\n", info->num_layers);
  if (info->num_shards != 0) {
    std::printf("  shard:    %u/%u\n", info->shard_id, info->num_shards);
  } else {
    std::printf("  shard:    monolithic\n");
  }
  std::printf("  fingerprint: 0x%016llx\n",
              static_cast<unsigned long long>(info->fingerprint));
  std::printf("  sections: %zu\n", info->sections.size());
  std::printf("  %-4s %-8s %-6s %-12s %-12s %-18s %s\n", "#", "kind", "layer",
              "offset", "length", "checksum", "ok");
  for (size_t i = 0; i < info->sections.size(); ++i) {
    const ImageSectionInfo& s = info->sections[i];
    std::printf("  %-4zu %-8s %-6u %-12llu %-12llu 0x%016llx %s\n", i,
                SectionKindName(s.kind), s.layer,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.length),
                static_cast<unsigned long long>(s.checksum),
                s.checksum_ok ? "ok" : "BAD");
  }
  bool all_ok = true;
  for (const ImageSectionInfo& s : info->sections) all_ok &= s.checksum_ok;
  if (!all_ok) {
    std::fprintf(stderr, "error: one or more section checksums mismatch\n");
    return 1;
  }
  return 0;
}

int CmdShard(int argc, char** argv) {
  ShardBuildOptions opt;
  std::vector<char*> pos;
  for (int i = 0; i < argc; ++i) {
    auto next = [&](const char* flag) -> char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shard-mode") == 0) {
      const char* mode = next("--shard-mode");
      if (std::strcmp(mode, "wcc") == 0) {
        opt.plan.mode = ShardMode::kConnectivityClosed;
      } else if (std::strcmp(mode, "bfs") == 0) {
        opt.plan.mode = ShardMode::kBfsBlocks;
      } else {
        std::fprintf(stderr, "error: unknown shard mode %s\n", mode);
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--bfs-block") == 0) {
      opt.plan.bfs_block_size = static_cast<size_t>(std::atoi(next(
          "--bfs-block")));
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.size() < 3) return Usage();
  auto loaded = LoadGraphAndOntology(pos[0], pos[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  opt.plan.num_shards = static_cast<size_t>(std::atoi(pos[2]));
  std::string prefix = pos.size() > 3 ? pos[3] : "";
  if (pos.size() > 4) {
    opt.index.max_layers = static_cast<size_t>(std::atoi(pos[4]));
  }

  auto plan = PlanShards(loaded->graph, opt.plan);
  if (!plan.ok()) return Fail(plan.status());
  size_t n = plan->num_shards();
  size_t min_size = plan->NumVertices(), max_size = 0;
  std::printf("shard plan: %zu shard(s) over |V|=%zu, mode=%s\n", n,
              plan->NumVertices(),
              plan->mode() == ShardMode::kConnectivityClosed ? "wcc" : "bfs");
  // Ghosts a bfs-mode extraction will materialize per shard: the distinct
  // foreign endpoints of each shard's incident cut edges. This is what the
  // coordinator's completion pass costs scale with (DESIGN.md §9).
  std::vector<std::set<VertexId>> ghosts(n);
  for (const CutEdge& e : plan->CutEdges()) {
    ghosts[plan->ShardOf(e.source)].insert(e.target);
    ghosts[plan->ShardOf(e.target)].insert(e.source);
  }
  for (uint32_t s = 0; s < n; ++s) {
    size_t size = plan->ShardMembers(s).size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    std::printf("  shard %-4u |V|=%zu ghosts=%zu\n", s, size,
                ghosts[s].size());
  }
  double ideal = static_cast<double>(plan->NumVertices()) / n;
  std::printf("balance: min=%zu max=%zu ideal=%.1f imbalance=%.3f\n",
              min_size, max_size, ideal, ideal > 0 ? max_size / ideal : 0.0);
  std::printf("boundary manifest: %zu cut edge(s) (%.4f%% of |E|)\n",
              plan->CutEdges().size(),
              loaded->graph.NumEdges()
                  ? 100.0 * plan->CutEdges().size() / loaded->graph.NumEdges()
                  : 0.0);

  if (prefix.empty()) return 0;
  Timer t;
  auto sharded = BuildShardedIndex(loaded->graph, &loaded->ontology, opt);
  if (!sharded.ok()) return Fail(sharded.status());
  BIGINDEX_RETURN_IF_ERROR_CLI(
      SaveShardImages(*sharded, loaded->dict, prefix));
  std::printf("built %zu shard index(es) in %.1f ms; wrote:\n",
              sharded->shards.size(), t.ElapsedMillis());
  for (const BuiltShard& shard : sharded->shards) {
    std::printf("  %s (|V|=%zu, %zu ghost(s))\n",
                ShardImagePath(prefix, shard.shard.shard_id,
                               shard.shard.num_shards).c_str(),
                shard.shard.global_of.size(), shard.shard.ghosts.size());
  }
  return 0;
}

/// Parses one "add:<u>:<v>" / "remove:<u>:<v>" token (the same op syntax
/// the line protocol's UPDATE verb uses). False = malformed (message
/// printed).
bool ParseUpdateOp(const std::string& token, GraphUpdate* out) {
  size_t first = token.find(':');
  size_t second = first == std::string::npos ? std::string::npos
                                             : token.find(':', first + 1);
  if (second == std::string::npos) {
    std::fprintf(stderr, "error: malformed update op '%s'\n", token.c_str());
    return false;
  }
  std::string kind = token.substr(0, first);
  if (kind == "add") {
    out->kind = GraphUpdate::Kind::kAddEdge;
  } else if (kind == "remove") {
    out->kind = GraphUpdate::Kind::kRemoveEdge;
  } else {
    std::fprintf(stderr, "error: unknown update op kind '%s'\n", kind.c_str());
    return false;
  }
  const std::string u = token.substr(first + 1, second - first - 1);
  const std::string v = token.substr(second + 1);
  auto all_digits = [](const std::string& s) {
    return !s.empty() &&
           std::all_of(s.begin(), s.end(),
                       [](unsigned char c) { return std::isdigit(c); });
  };
  if (!all_digits(u) || !all_digits(v)) {
    std::fprintf(stderr, "error: non-numeric endpoint in '%s'\n",
                 token.c_str());
    return false;
  }
  out->source = static_cast<VertexId>(std::strtoull(u.c_str(), nullptr, 10));
  out->target = static_cast<VertexId>(std::strtoull(v.c_str(), nullptr, 10));
  return true;
}

const char* MaintenanceName(LayerMaintenance mode) {
  switch (mode) {
    case LayerMaintenance::kPatched: return "patched";
    case LayerMaintenance::kIncremental: return "incremental";
    case LayerMaintenance::kWholesale: return "wholesale";
    case LayerMaintenance::kCopied: return "copied";
  }
  return "unknown";
}

int CmdUpdate(int argc, char** argv) {
  MaintainOptions mopt;
  std::string out_path;
  bool check = false;
  std::vector<char*> pos;
  for (int i = 0; i < argc; ++i) {
    auto next = [&](const char* flag) -> char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--fallback-ratio") == 0) {
      mopt.fallback_dirty_ratio = std::atof(next("--fallback-ratio"));
    } else if (std::strcmp(argv[i], "--force-wholesale") == 0) {
      mopt.force_wholesale = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.size() < 4) return Usage();
  auto loaded = LoadGraphAndOntology(pos[0], pos[1]);
  if (!loaded.ok()) return Fail(loaded.status());
  auto index = LoadIndexAuto(pos[2], loaded->dict, &loaded->ontology);
  if (!index.ok()) return Fail(index.status());

  std::vector<GraphUpdate> updates;
  for (size_t i = 3; i < pos.size(); ++i) {
    GraphUpdate up;
    if (!ParseUpdateOp(pos[i], &up)) return Usage();
    updates.push_back(up);
  }

  Timer t;
  MaintainReport report;
  auto successor = MaintainIndex(*index, updates, mopt, &report);
  if (!successor.ok()) return Fail(successor.status());
  double maintain_ms = t.ElapsedMillis();

  std::printf("batch of %zu op(s): +%zu edge(s) -%zu edge(s), %zu redundant\n",
              updates.size(), report.delta.added.size(),
              report.delta.removed.size(), report.delta.redundant);
  if (report.full_rebuild) {
    std::printf("full rebuild (greedy-config index): %zu layer(s)\n",
                successor->NumLayers());
  } else {
    for (size_t i = 0; i < report.layers.size(); ++i) {
      const MaintainLayerReport& lr = report.layers[i];
      std::printf("layer %-4zu %-11s", i + 1, MaintenanceName(lr.mode));
      if (lr.mode == LayerMaintenance::kIncremental ||
          lr.mode == LayerMaintenance::kPatched) {
        std::printf(" dirty=%zu split_rounds=%zu resigned=%zu",
                    lr.stats.dirty_seed, lr.stats.split_rounds,
                    lr.stats.vertices_resigned);
      }
      if (lr.mode != LayerMaintenance::kCopied) {
        // Per-step timing breakdown: regressions in any one step (config
        // reuse, label table, correspondence transport, refinement) are
        // visible without a profiler.
        std::printf(
            " cfg=%.2fms%s gen=%.2fms corr=%.2fms refine=%.2fms",
            lr.configure_ms, lr.config_reused ? "(reused)" : "",
            lr.generalize_ms, lr.correspondence_ms, lr.refine_ms);
      }
      std::printf("\n");
    }
  }
  std::printf("maintained %zu -> %zu layer(s) (%zu re-summarized) in "
              "%.1f ms\n",
              index->NumLayers(), successor->NumLayers(),
              report.LayersRebuilt(), maintain_ms);

  if (check) {
    Timer tr;
    auto rebuilt = BigIndex::Build(successor->LayerGraph(0),
                                   &loaded->ontology, index->options());
    if (!rebuilt.ok()) return Fail(rebuilt.status());
    std::ostringstream inc_bytes, scratch_bytes;
    BIGINDEX_RETURN_IF_ERROR_CLI(
        WriteIndex(*successor, loaded->dict, inc_bytes));
    BIGINDEX_RETURN_IF_ERROR_CLI(
        WriteIndex(*rebuilt, loaded->dict, scratch_bytes));
    if (inc_bytes.str() != scratch_bytes.str()) {
      std::fprintf(stderr,
                   "error: incremental result diverges from from-scratch "
                   "rebuild\n");
      return 1;
    }
    std::printf("check: byte-identical to from-scratch rebuild (%.1f ms)\n",
                tr.ElapsedMillis());
  }

  if (!out_path.empty()) {
    Status s = EndsWithImg(out_path)
                   ? SaveIndexImageFile(*successor, loaded->dict,
                                        out_path.c_str())
                   : SaveIndexFile(*successor, loaded->dict,
                                   out_path.c_str());
    if (!s.ok()) return Fail(s);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bigindex

int main(int argc, char** argv) {
  using namespace bigindex;
  if (argc < 2) return Usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "gen") == 0) return CmdGen(argc - 2, argv + 2);
  if (std::strcmp(cmd, "build") == 0) return CmdBuild(argc - 2, argv + 2);
  if (std::strcmp(cmd, "stats") == 0) return CmdStats(argc - 2, argv + 2);
  if (std::strcmp(cmd, "query") == 0) return CmdQuery(argc - 2, argv + 2);
  if (std::strcmp(cmd, "batch") == 0) return CmdBatch(argc - 2, argv + 2);
  if (std::strcmp(cmd, "inspect") == 0) return CmdInspect(argc - 2, argv + 2);
  if (std::strcmp(cmd, "shard") == 0) return CmdShard(argc - 2, argv + 2);
  if (std::strcmp(cmd, "update") == 0) return CmdUpdate(argc - 2, argv + 2);
  return Usage();
}
