#!/usr/bin/env bash
# Cross-verifies the line-protocol verb set between its two sources of
# truth: the formal grammar in docs/OPERATIONS.md ("## Line protocol",
# `verb = ...` production) and the dispatch chain in
# src/server/line_protocol.cc (`cmd == "..."` comparisons). Fails when a
# verb exists on one side only — an undocumented verb or stale docs.
#
#   tools/check_protocol_docs.sh
#
# tools/ci.sh runs this on every pass, next to check_doc_links.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

DOC=docs/OPERATIONS.md
SRC=src/server/line_protocol.cc

# Grammar side: the `verb = "..." | ...` production, including continuation
# lines (leading whitespace + '|'). Quoted tokens only, so the trailing
# `; any case` comment is ignored.
doc_verbs=$(awk '
  /^verb[[:space:]]*=/ { inverb = 1 }
  inverb && !/^verb/ && !/^[[:space:]]+\|/ { inverb = 0 }
  inverb {
    line = $0
    while (match(line, /"[a-z-]+"/)) {
      print substr(line, RSTART + 1, RLENGTH - 2)
      line = substr(line, RSTART + RLENGTH)
    }
  }
' "$DOC" | sort -u)

# Dispatch side: every `cmd == "..."` comparison in LineHandler::Handle.
src_verbs=$(grep -oE 'cmd == "[a-z-]+"' "$SRC" \
  | grep -oE '"[a-z-]+"' | tr -d '"' | sort -u)

if [ -z "$doc_verbs" ]; then
  echo "FAIL: no verb production found in $DOC" >&2
  exit 1
fi
if [ -z "$src_verbs" ]; then
  echo "FAIL: no cmd dispatch found in $SRC" >&2
  exit 1
fi

failures=0
# Both directions: comm -23 = documented but not dispatched, -13 = the
# reverse.
undispatched=$(comm -23 <(echo "$doc_verbs") <(echo "$src_verbs"))
undocumented=$(comm -13 <(echo "$doc_verbs") <(echo "$src_verbs"))
for v in $undispatched; do
  echo "verb '$v' documented in $DOC but not dispatched in $SRC" >&2
  failures=$((failures + 1))
done
for v in $undocumented; do
  echo "verb '$v' dispatched in $SRC but not documented in $DOC" >&2
  failures=$((failures + 1))
done

if [ "$failures" -gt 0 ]; then
  echo "FAIL: $failures protocol verb mismatch(es)" >&2
  exit 1
fi
echo "protocol verbs OK ($(echo "$doc_verbs" | wc -l) verbs:" \
  "$(echo "$doc_verbs" | tr '\n' ' ' | sed 's/ $//'))"
