// bigindex_client — line-protocol client for bigindex_serverd.
//
// Two modes:
//   bigindex_client --connect <host> <port> [--connect-timeout-ms N]
//                   [--connect-retries N]
//       Connects over TCP (bounded connect timeout, exponential-backoff
//       retry — an unreachable server exits with a kUnavailable message
//       instead of hanging), forwards stdin lines, prints response blocks.
//   bigindex_client --inprocess [dataset] [scale] [layers]
//       Spins up the whole serving stack (dataset → index → engine →
//       SearchService, live updater included so the UPDATE verb works)
//       inside this process and feeds stdin lines straight to the
//       LineHandler — the same protocol with no sockets, handy for
//       scripted smoke tests and for exploring a dataset interactively.
//   bigindex_client --update <host> <port> (add:<u>:<v>|remove:<u>:<v>)...
//       One-shot edge-update batch: sends a single UPDATE request and
//       prints the outcome (applied/skipped/rebuilt/epoch/mode). Exits 0
//       only if the server applied the batch.
//   bigindex_client --rollback <host> <port>
//       One-shot ROLLBACK: re-publishes the server's previous retained
//       index version (undo the last update batch) and prints the new
//       epoch. Exits non-zero when no previous version is retained
//       (FailedPrecondition) or the server has no rollback path
//       (Unimplemented).
//
// Reads requests from stdin (one per line; '#' comments and blank lines are
// skipped) until EOF or a `quit` command.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bigindex.h"

namespace bigindex {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bigindex_client --connect <host> <port>\n"
               "                  [--connect-timeout-ms N]"
               " [--connect-retries N]\n"
               "  bigindex_client --inprocess [dataset] [scale] [layers]\n"
               "  bigindex_client --update <host> <port>"
               " (add:<u>:<v>|remove:<u>:<v>)...\n"
               "  bigindex_client --rollback <host> <port>\n");
  return 1;
}

bool SkippableLine(const std::string& line) {
  return line.empty() || line[0] == '#';
}

int RunInProcess(int argc, char** argv) {
  std::string dataset_name = argc > 0 ? argv[0] : "yago3";
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  size_t layers = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 4;

  auto ds = MakeDataset(dataset_name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = layers});
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const QueryEngineOptions engine_opts{
      .num_threads = ExecutorPool::kHardwareConcurrency};
  auto index_ptr = std::make_shared<const BigIndex>(std::move(index).value());
  auto engine = std::make_shared<const QueryEngine>(index_ptr, engine_opts);
  SearchService service(engine);
  // Wire the write path so interactive `update add:0:1 ...` lines work.
  LiveUpdaterOptions updater_opts;
  updater_opts.engine = engine_opts;
  LiveUpdater updater(std::move(index_ptr), engine, std::move(updater_opts));
  updater.set_swap([&service](std::shared_ptr<const QueryEngine> next) {
    return service.SwapEngine(std::move(next));
  });
  service.set_updater([&updater](std::span<const GraphUpdate> updates) {
    return updater.Apply(updates);
  });
  service.set_rollbacker([&updater] { return updater.Rollback(); });
  LineHandler handler(&service, ds->dict.get());
  std::fprintf(stderr, "in-process %s (|V|=%zu); type requests:\n",
               dataset_name.c_str(), ds->graph.NumVertices());

  std::string line;
  while (std::getline(std::cin, line)) {
    if (SkippableLine(line)) continue;
    LineHandler::Result result = handler.Handle(line);
    std::fputs(result.response.c_str(), stdout);
    std::fflush(stdout);
    if (result.close) break;
  }
  return 0;
}

int RunConnect(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string host = argv[0];
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));
  ProtocolClientOptions options;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(Usage());
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--connect-timeout-ms") == 0) {
      options.connect_timeout_ms = std::atoi(next("--connect-timeout-ms"));
    } else if (std::strcmp(argv[i], "--connect-retries") == 0) {
      // N retries = 1 initial attempt + N backed-off re-dials.
      options.max_attempts =
          1 + static_cast<size_t>(std::atoi(next("--connect-retries")));
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return Usage();
    }
  }

  ProtocolClient client(host, port, options);
  Status connected = client.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }

  // Request/response lockstep: send a line, then print the response block
  // (the client strips the terminating '.'; re-add it so scripted consumers
  // of our stdout see the same framing the raw protocol uses).
  std::string line;
  while (std::getline(std::cin, line)) {
    if (SkippableLine(line)) continue;
    if (line == "quit") {
      // The server closes the connection after `quit`; the lockstep reader
      // would report that as an error, so just stop cleanly.
      break;
    }
    auto block = client.Request(line);
    if (!block.ok()) {
      std::fprintf(stderr, "error: %s\n", block.status().ToString().c_str());
      return 1;
    }
    for (const std::string& resp : *block) std::printf("%s\n", resp.c_str());
    std::printf(".\n");
    std::fflush(stdout);
  }
  return 0;
}

int RunUpdate(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string host = argv[0];
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));
  std::string line = "update";
  for (int i = 2; i < argc; ++i) {
    line += ' ';
    line += argv[i];  // server-side parse rejects malformed ops
  }

  ProtocolClient client(host, port);
  Status connected = client.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  auto block = client.Request(line);
  if (!block.ok()) {
    std::fprintf(stderr, "error: %s\n", block.status().ToString().c_str());
    return 1;
  }
  if (block->empty()) {
    std::fprintf(stderr, "error: empty update response\n");
    return 1;
  }
  const std::string& head = block->front();
  if (head.starts_with("ERR")) {
    std::fprintf(stderr, "error: %s\n", ParseErrLine(head).ToString().c_str());
    return 1;
  }
  UpdateOutcome outcome;
  Status parsed = ParseUpdateOutcomeLine(head, &outcome);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.ToString().c_str());
    return 1;
  }
  std::printf("applied=%llu skipped=%llu rebuilt=%llu epoch=%llu mode=%s\n",
              static_cast<unsigned long long>(outcome.applied),
              static_cast<unsigned long long>(outcome.skipped),
              static_cast<unsigned long long>(outcome.layers_rebuilt),
              static_cast<unsigned long long>(outcome.epoch),
              UpdateModeName(outcome.mode));
  return 0;
}

int RunRollback(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string host = argv[0];
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[1]));

  ProtocolClient client(host, port);
  Status connected = client.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  auto block = client.Request("rollback");
  if (!block.ok()) {
    std::fprintf(stderr, "error: %s\n", block.status().ToString().c_str());
    return 1;
  }
  if (block->empty()) {
    std::fprintf(stderr, "error: empty rollback response\n");
    return 1;
  }
  const std::string& head = block->front();
  if (head.starts_with("ERR")) {
    std::fprintf(stderr, "error: %s\n", ParseErrLine(head).ToString().c_str());
    return 1;
  }
  // Head is "OK epoch=E".
  const size_t eq = head.find("epoch=");
  if (eq == std::string::npos) {
    std::fprintf(stderr, "error: malformed rollback response '%s'\n",
                 head.c_str());
    return 1;
  }
  std::printf("rolled back, epoch=%s\n", head.c_str() + eq + 6);
  return 0;
}

}  // namespace
}  // namespace bigindex

int main(int argc, char** argv) {
  using namespace bigindex;
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--inprocess") == 0) {
    return RunInProcess(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--connect") == 0) {
    return RunConnect(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--update") == 0) {
    return RunUpdate(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--rollback") == 0) {
    return RunRollback(argc - 2, argv + 2);
  }
  return Usage();
}
