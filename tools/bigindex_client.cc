// bigindex_client — line-protocol client for bigindex_serverd.
//
// Two modes:
//   bigindex_client --connect <host> <port>
//       Connects over TCP, forwards stdin lines, prints response blocks.
//   bigindex_client --inprocess [dataset] [scale] [layers]
//       Spins up the whole serving stack (dataset → index → engine →
//       SearchService) inside this process and feeds stdin lines straight
//       to the LineHandler — the same protocol with no sockets, handy for
//       scripted smoke tests and for exploring a dataset interactively.
//
// Reads requests from stdin (one per line; '#' comments and blank lines are
// skipped) until EOF or a `quit` command.

#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bigindex.h"

namespace bigindex {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bigindex_client --connect <host> <port>\n"
               "  bigindex_client --inprocess [dataset] [scale] [layers]\n");
  return 1;
}

bool SkippableLine(const std::string& line) {
  return line.empty() || line[0] == '#';
}

int RunInProcess(int argc, char** argv) {
  std::string dataset_name = argc > 0 ? argv[0] : "yago3";
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  size_t layers = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 4;

  auto ds = MakeDataset(dataset_name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "error: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = layers});
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  auto engine = std::make_shared<const QueryEngine>(
      std::move(index).value(),
      QueryEngineOptions{.num_threads = ExecutorPool::kHardwareConcurrency});
  SearchService service(engine);
  LineHandler handler(&service, ds->dict.get());
  std::fprintf(stderr, "in-process %s (|V|=%zu); type requests:\n",
               dataset_name.c_str(), ds->graph.NumVertices());

  std::string line;
  while (std::getline(std::cin, line)) {
    if (SkippableLine(line)) continue;
    LineHandler::Result result = handler.Handle(line);
    std::fputs(result.response.c_str(), stdout);
    std::fflush(stdout);
    if (result.close) break;
  }
  return 0;
}

int RunConnect(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* host = argv[0];
  const char* port = argv[1];

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  int rc = ::getaddrinfo(host, port, &hints, &addrs);
  if (rc != 0) {
    std::fprintf(stderr, "error: resolve %s: %s\n", host, gai_strerror(rc));
    return 1;
  }
  int fd = -1;
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s:%s\n", host, port);
    return 1;
  }

  // Request/response lockstep: send a line, then read blocks until the
  // terminating '.' line before sending the next.
  std::string line;
  std::string buffer;
  char chunk[4096];
  while (std::getline(std::cin, line)) {
    if (SkippableLine(line)) continue;
    line += '\n';
    if (::write(fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      std::fprintf(stderr, "error: connection lost\n");
      break;
    }
    bool block_done = false;
    while (!block_done) {
      size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        std::string resp = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        std::printf("%s\n", resp.c_str());
        if (resp == ".") {
          block_done = true;
          break;
        }
      }
      if (block_done) break;
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        std::fprintf(stderr, "error: connection closed by server\n");
        ::close(fd);
        return 1;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    std::fflush(stdout);
    if (line == "quit\n") break;
  }
  ::close(fd);
  return 0;
}

}  // namespace
}  // namespace bigindex

int main(int argc, char** argv) {
  using namespace bigindex;
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--inprocess") == 0) {
    return RunInProcess(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--connect") == 0) {
    return RunConnect(argc - 2, argv + 2);
  }
  return Usage();
}
