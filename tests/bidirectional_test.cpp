// Tests for the bidirectional-expansion semantics ([14], the future-work
// plug-in): answer-set equality with backward search, strategy statistics,
// and BiG-index integration (Thm 4.2 holds for it too).

#include <gtest/gtest.h>

#include <set>

#include "core/big_index.h"
#include "core/evaluator.h"
#include "search/bidirectional.h"
#include "search/bkws.h"
#include "util/random.h"

namespace bigindex {
namespace {

Graph RandomGraph(uint64_t seed, size_t n, size_t m, size_t num_labels) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(num_labels)));
  }
  for (size_t i = 0; i < m; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
              static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(b.Build()).value();
}

using RootScore = std::pair<VertexId, uint32_t>;

std::set<RootScore> RootScores(const std::vector<Answer>& answers) {
  std::set<RootScore> out;
  for (const Answer& a : answers) out.emplace(a.root, a.score);
  return out;
}

struct Case {
  uint64_t seed;
  size_t n, m, labels;
  std::vector<LabelId> query;
};

class BidirectionalEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(BidirectionalEquivalence, MatchesBackwardSearch) {
  const Case& c = GetParam();
  Graph g = RandomGraph(c.seed, c.n, c.m, c.labels);
  auto bidi = BidirectionalSearch(g, c.query, {.d_max = 4, .top_k = 0});
  auto bkws = BackwardKeywordSearch(g, c.query, {.d_max = 4});
  EXPECT_EQ(RootScores(bidi), RootScores(bkws)) << "seed " << c.seed;
}

TEST_P(BidirectionalEquivalence, DecayDoesNotChangeResults) {
  const Case& c = GetParam();
  Graph g = RandomGraph(c.seed ^ 0x5555, c.n, c.m, c.labels);
  std::set<RootScore> reference;
  bool first = true;
  for (double decay : {0.2, 0.5, 0.9}) {
    auto r = BidirectionalSearch(g, c.query,
                                 {.d_max = 4, .top_k = 0, .decay = decay});
    if (first) {
      reference = RootScores(r);
      first = false;
    } else {
      EXPECT_EQ(RootScores(r), reference) << "decay " << decay;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, BidirectionalEquivalence,
    ::testing::Values(Case{1, 80, 240, 4, {0, 1}},
                      Case{2, 120, 360, 5, {0, 2, 3}},
                      Case{3, 60, 300, 3, {1, 2}},
                      Case{4, 150, 450, 6, {0, 4, 5}},
                      Case{5, 40, 80, 2, {0, 1}}));

TEST(BidirectionalTest, TopKPrefix) {
  Graph g = RandomGraph(9, 100, 300, 4);
  auto full = BidirectionalSearch(g, {0, 1}, {.d_max = 4, .top_k = 0});
  auto top3 = BidirectionalSearch(g, {0, 1}, {.d_max = 4, .top_k = 3});
  ASSERT_LE(top3.size(), 3u);
  for (size_t i = 0; i < top3.size(); ++i) {
    EXPECT_EQ(top3[i].root, full[i].root);
    EXPECT_EQ(top3[i].score, full[i].score);
  }
}

TEST(BidirectionalTest, StatsTrackBothPhases) {
  Graph g = RandomGraph(10, 200, 800, 3);
  BidirectionalStats stats;
  auto r = BidirectionalSearch(g, {0, 1, 2}, {.d_max = 4}, &stats);
  EXPECT_FALSE(r.empty());
  EXPECT_GT(stats.backward_pops, 0u);
  EXPECT_GT(stats.forward_pops, 0u);  // dense labels: overlap guaranteed
}

TEST(BidirectionalTest, MissingKeywordMeansNoAnswers) {
  Graph g = RandomGraph(11, 30, 60, 2);
  EXPECT_TRUE(BidirectionalSearch(g, {0, 9}, {}).empty());
}

TEST(BidirectionalTest, WorksThroughBigIndex) {
  OntologyBuilder ob;
  ob.AddSupertypeEdge(0, 6);
  ob.AddSupertypeEdge(1, 6);
  ob.AddSupertypeEdge(2, 6);
  ob.AddSupertypeEdge(3, 7);
  ob.AddSupertypeEdge(4, 7);
  ob.AddSupertypeEdge(5, 8);
  Ontology ont = std::move(ob.Build()).value();
  Graph g = RandomGraph(12, 150, 450, 6);
  auto index = BigIndex::Build(g, &ont, {.max_layers = 1});
  ASSERT_TRUE(index.ok());

  BidirectionalAlgorithm algo({.d_max = 4, .top_k = 0});
  auto direct = algo.Evaluate(index->base(), {0, 3});
  for (size_t m = 0; m <= index->NumLayers(); ++m) {
    auto hier = EvaluateWithIndex(*index, algo, {0, 3},
                                  {.forced_layer = static_cast<int>(m)});
    EXPECT_EQ(RootScores(hier), RootScores(direct)) << "layer " << m;
  }
}

}  // namespace
}  // namespace bigindex
