// The live-update acceptance gate: random interleaved query + update
// streams against the full serving stack (SearchService + LiveUpdater with
// the RCU epoch swap wired), differentially checked against a from-scratch
// rebuild after every batch — the served successor index must match the
// rebuild down to serialized bytes, and the served answers must match a
// fresh engine on the rebuilt index for all four algorithms at every layer.
// Because the same queries repeat across update steps, the sweep also
// proves the answer cache never hands back a pre-swap result for a
// post-swap epoch.
//
// Runs 100 seeds by default; override downwards with
// BIGINDEX_UPDATE_GATE_SEEDS for slow instrumented runs (tools/ci.sh uses
// this under TSan).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "core/index_io.h"
#include "engine/query_engine.h"
#include "graph/label_dictionary.h"
#include "search/rclique.h"
#include "server/search_service.h"
#include "testing/random_graph.h"
#include "update/live_updater.h"
#include "update/maintain.h"
#include "util/random.h"

namespace bigindex {
namespace {

using bigindex::testing::MakeRandomInstance;
using bigindex::testing::RandomGraphOptions;
using bigindex::testing::RandomInstance;
using bigindex::testing::RandomOntologyOptions;

// The acceptance gate runs this many seeds; override downwards with
// BIGINDEX_UPDATE_GATE_SEEDS for slow instrumented runs (TSan).
int GateSeeds() {
  const char* env = std::getenv("BIGINDEX_UPDATE_GATE_SEEDS");
  int seeds = env != nullptr ? std::atoi(env) : 100;
  return seeds > 0 ? seeds : 100;
}

constexpr const char* kAlgorithms[] = {"bkws", "blinks", "r-clique",
                                       "bidirectional"};

// r-clique's default registration caps answers internally; the gate
// compares full answer sets, so both the served engines (via
// configure_engine, which also runs on every successor) and the reference
// engine re-register it uncapped.
void UncapRClique(QueryEngine& engine) {
  engine.Register(
      std::make_unique<RCliqueAlgorithm>(RCliqueOptions{.r = 4, .top_k = 0}));
}

std::vector<Answer> Sorted(std::vector<Answer> answers) {
  SortAnswers(answers);
  return answers;
}

RandomInstance MakeInstance(uint64_t seed) {
  RandomGraphOptions gopt;
  gopt.seed = seed;
  gopt.num_vertices = 20 + (seed * 37) % 120;
  gopt.edge_density = 1.0 + static_cast<double>(seed % 3);
  gopt.num_labels = 4 + seed % 6;
  RandomOntologyOptions oopt;
  oopt.num_leaves = gopt.num_labels;
  oopt.height = 2 + seed % 3;
  oopt.seed = seed + 1;
  return MakeRandomInstance(gopt, oopt);
}

// Random update batch: removals of present edges, additions of (mostly)
// absent edges, self-loops, duplicates, and flip-flops — same generator
// shape as tests/update_test.cpp.
std::vector<GraphUpdate> MakeRandomBatch(const Graph& g, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<GraphUpdate> batch;
  const size_t n = g.NumVertices();
  const auto edges = g.Edges();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t pick = rng.Uniform(10);
    if (pick < 4 && !edges.empty()) {
      auto [u, v] = edges[rng.Uniform(edges.size())];
      batch.push_back({GraphUpdate::Kind::kRemoveEdge, u, v});
    } else if (pick < 8 || batch.empty()) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v =
          rng.Bernoulli(0.1) ? u : static_cast<VertexId>(rng.Uniform(n));
      batch.push_back({GraphUpdate::Kind::kAddEdge, u, v});
    } else {
      GraphUpdate prior = batch[rng.Uniform(batch.size())];
      if (rng.Bernoulli(0.5)) {
        prior.kind = prior.kind == GraphUpdate::Kind::kAddEdge
                         ? GraphUpdate::Kind::kRemoveEdge
                         : GraphUpdate::Kind::kAddEdge;
      }
      batch.push_back(prior);
    }
  }
  return batch;
}

std::string Serialize(const BigIndex& index, size_t label_slots) {
  LabelDictionary dict;
  for (size_t i = 0; i < label_slots; ++i) {
    dict.Intern("t" + std::to_string(i));
  }
  std::ostringstream out;
  EXPECT_TRUE(WriteIndex(index, dict, out).ok());
  return out.str();
}

TEST(UpdateDifferentialGate, ServingMatchesRebuildOnInterleavedStreams) {
  const int seeds = GateSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    RandomInstance inst = MakeInstance(seed);
    BigIndexOptions opts;
    opts.max_layers = 2;
    auto built = BigIndex::Build(inst.graph, &inst.ontology, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto index = std::make_shared<const BigIndex>(std::move(built).value());

    auto bootstrap = std::make_shared<QueryEngine>(index, QueryEngineOptions{});
    UncapRClique(*bootstrap);
    std::shared_ptr<const QueryEngine> engine = bootstrap;

    SearchService service(engine);
    LiveUpdaterOptions uopts;
    uopts.configure_engine = UncapRClique;
    LiveUpdater updater(index, engine, std::move(uopts));
    updater.set_swap([&service](std::shared_ptr<const QueryEngine> next) {
      return service.SwapEngine(std::move(next));
    });
    service.set_updater([&updater](std::span<const GraphUpdate> updates) {
      return updater.Apply(updates);
    });

    // Two fixed keyword queries per seed: repeating them across update
    // steps walks them through multiple epochs of the answer cache.
    Rng rng(seed * 131 + 5);
    std::vector<LabelId> keywords = {
        static_cast<LabelId>(rng.Uniform(4 + seed % 6)),
        static_cast<LabelId>(rng.Uniform(4 + seed % 6))};

    Graph base = inst.graph;
    const size_t slots = inst.ontology.LabelSlots();
    for (int step = 0; step < 2; ++step) {
      auto batch =
          MakeRandomBatch(base, 1 + (seed + step) % 8, seed * 97 + step + 1);
      auto outcome = service.ApplyUpdate(batch);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      EXPECT_EQ(outcome->applied + outcome->skipped, batch.size())
          << "seed " << seed << " step " << step;
      EXPECT_EQ(outcome->epoch, service.epoch());

      auto updated = ApplyUpdates(base, batch);
      ASSERT_TRUE(updated.ok());
      auto rebuilt = BigIndex::Build(*updated, &inst.ontology, opts);
      ASSERT_TRUE(rebuilt.ok());

      // Byte-exact successor: the published version equals the rebuild.
      auto current = updater.versions().Current();
      ASSERT_NE(current, nullptr);
      ASSERT_EQ(Serialize(*current->index, slots), Serialize(*rebuilt, slots))
          << "seed " << seed << " step " << step;

      // Served answers equal a fresh engine on the rebuilt index for every
      // algorithm at every layer (full sets, no top-k cut).
      QueryEngine reference(std::move(rebuilt).value(),
                            QueryEngineOptions{});
      UncapRClique(reference);
      const size_t layers = reference.index().NumLayers();
      for (const char* algo : kAlgorithms) {
        EngineQuery q;
        q.algorithm = algo;
        q.keywords = keywords;
        q.NormalizeKeywords();
        q.eval.top_k = 0;
        for (int layer = 0; layer <= static_cast<int>(layers); ++layer) {
          q.eval.forced_layer = layer;
          auto expected = reference.Evaluate(q);
          ASSERT_TRUE(expected.ok()) << expected.status().ToString();
          auto served = service.Query(q);
          ASSERT_TRUE(served.ok()) << served.status().ToString();
          ASSERT_EQ(Sorted(served->answers), Sorted(expected->answers))
              << "seed " << seed << " step " << step << " algo " << algo
              << " layer " << layer;
        }
      }
      base = std::move(*updated);
    }
  }
}

// Persistent-correspondence differential: chaining MaintainIndex across
// batches — threading one MaintenanceState, exactly as LiveUpdater does —
// must land on the same bytes as the concatenated batch in one call and as
// a from-scratch rebuild: maintain(maintain(I, A), B) == maintain(I, A+B)
// == Build(G after A+B). This is the contract that lets the serving path
// keep maintaining incrementally forever instead of re-anchoring on a
// rebuild: each successor preserves vertex numbering on intact blocks, so
// batch N+1's correspondence starts where batch N left off.
TEST(UpdateDifferentialGate, ChainedMaintenanceMatchesConcatenatedAndRebuild) {
  const int seeds = GateSeeds();
  size_t fast_layers = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    RandomInstance inst = MakeInstance(seed);
    BigIndexOptions opts;
    opts.max_layers = 2;
    auto built = BigIndex::Build(inst.graph, &inst.ontology, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const BigIndex original = std::move(built).value();
    const size_t slots = inst.ontology.LabelSlots();

    Graph base = inst.graph;
    std::vector<GraphUpdate> all;
    const BigIndex* cur = &original;
    std::optional<BigIndex> chained;
    MaintenanceState state;
    size_t effective = 0;  // batches with net effect (no-ops skip the state)
    for (int step = 0; step < 3; ++step) {
      auto batch =
          MakeRandomBatch(base, 1 + (seed + step) % 6, seed * 211 + step);
      MaintainReport report;
      auto next = MaintainIndex(*cur, batch, {}, &report, &state);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      chained = std::move(next).value();
      cur = &*chained;
      if (!report.delta.added.empty() || !report.delta.removed.empty()) {
        ++effective;
      }
      for (const MaintainLayerReport& lr : report.layers) {
        if (lr.mode != LayerMaintenance::kWholesale) ++fast_layers;
      }
      auto updated = ApplyUpdates(base, batch);
      ASSERT_TRUE(updated.ok());
      base = std::move(*updated);
      all.insert(all.end(), batch.begin(), batch.end());
    }
    EXPECT_EQ(state.batches, effective) << "seed " << seed;

    auto concat = MaintainIndex(original, all);
    ASSERT_TRUE(concat.ok()) << concat.status().ToString();
    auto rebuilt = BigIndex::Build(base, &inst.ontology, opts);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    const std::string chained_bytes = Serialize(*chained, slots);
    ASSERT_EQ(chained_bytes, Serialize(*concat, slots)) << "seed " << seed;
    ASSERT_EQ(chained_bytes, Serialize(*rebuilt, slots)) << "seed " << seed;
  }
  // Aggregate, not per-seed: tiny random instances may legitimately trip a
  // wholesale fallback, but the sweep as a whole must exercise the
  // localized paths or the persistence claim is untested.
  EXPECT_GT(fast_layers, 0u);
}

// Rollback differential: after ROLLBACK the served version must be
// byte-identical to the pre-update index, and a subsequent update batch
// must maintain from the *restored* base — equal to a rebuild on
// (original graph + B), as if batch A never happened.
TEST(UpdateDifferentialGate, RollbackThenUpdateMatchesRebuild) {
  const int seeds = GateSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    RandomInstance inst = MakeInstance(seed);
    BigIndexOptions opts;
    opts.max_layers = 2;
    auto built = BigIndex::Build(inst.graph, &inst.ontology, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto index = std::make_shared<const BigIndex>(std::move(built).value());
    const size_t slots = inst.ontology.LabelSlots();
    const std::string original_bytes = Serialize(*index, slots);

    auto engine = std::make_shared<const QueryEngine>(index,
                                                      QueryEngineOptions{});
    SearchService service(engine);
    LiveUpdater updater(index, engine, {});
    updater.set_swap([&service](std::shared_ptr<const QueryEngine> next) {
      return service.SwapEngine(std::move(next));
    });
    service.set_updater([&updater](std::span<const GraphUpdate> updates) {
      return updater.Apply(updates);
    });
    service.set_rollbacker([&updater] { return updater.Rollback(); });

    // Nothing retained yet: the verb must refuse, not serve garbage.
    auto premature = service.Rollback();
    ASSERT_FALSE(premature.ok());
    EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);

    auto a = MakeRandomBatch(inst.graph, 4 + seed % 5, seed * 313 + 7);
    auto outcome_a = service.ApplyUpdate(a);
    ASSERT_TRUE(outcome_a.ok()) << outcome_a.status().ToString();
    if (outcome_a->mode == UpdateOutcome::Mode::kNone) continue;  // no-op A

    auto epoch = service.Rollback();
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(*epoch, service.epoch());
    auto current = updater.versions().Current();
    ASSERT_NE(current, nullptr);
    ASSERT_EQ(Serialize(*current->index, slots), original_bytes)
        << "seed " << seed;

    // One generation of history: a second consecutive rollback refuses.
    auto again = service.Rollback();
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(service.Snapshot().rollbacks, 1u);

    auto b = MakeRandomBatch(inst.graph, 1 + seed % 6, seed * 421 + 11);
    auto outcome_b = service.ApplyUpdate(b);
    ASSERT_TRUE(outcome_b.ok()) << outcome_b.status().ToString();

    auto updated = ApplyUpdates(inst.graph, b);
    ASSERT_TRUE(updated.ok());
    auto rebuilt = BigIndex::Build(*updated, &inst.ontology, opts);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    auto after = updater.versions().Current();
    ASSERT_NE(after, nullptr);
    ASSERT_EQ(Serialize(*after->index, slots), Serialize(*rebuilt, slots))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace bigindex
