// Tests for the binary graph format and the Appendix-A.2 typing utility.

#include <gtest/gtest.h>

#include <sstream>

#include "core/big_index.h"
#include "graph/binary_io.h"
#include "ontology/typing.h"
#include "util/random.h"
#include "workload/datasets.h"

namespace bigindex {
namespace {

Graph RandomGraph(uint64_t seed, size_t n, size_t m, size_t labels,
                  LabelDictionary& dict) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(dict.Intern("L" + std::to_string(rng.Uniform(labels))));
  }
  for (size_t i = 0; i < m; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
              static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(b.Build()).value();
}

TEST(BinaryIoTest, RoundTripExact) {
  LabelDictionary dict;
  Graph g = RandomGraph(1, 200, 600, 10, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());

  LabelDictionary dict2;
  auto g2 = ReadGraphBinary(ss, dict2);
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  ASSERT_EQ(g2->NumVertices(), g.NumVertices());
  ASSERT_EQ(g2->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dict2.Name(g2->label(v)), dict.Name(g.label(v)));
  }
  EXPECT_EQ(g2->Edges(), g.Edges());
}

TEST(BinaryIoTest, RemapsIntoPopulatedDictionary) {
  LabelDictionary dict;
  Graph g = RandomGraph(2, 50, 100, 4, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());

  LabelDictionary dict2;
  dict2.Intern("already");
  dict2.Intern("present");
  auto g2 = ReadGraphBinary(ss, dict2);
  ASSERT_TRUE(g2.ok());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dict2.Name(g2->label(v)), dict.Name(g.label(v)));
  }
}

TEST(BinaryIoTest, RejectsBadMagic) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write("NOPE0000", 8);
  LabelDictionary dict;
  auto g = ReadGraphBinary(ss, dict);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, RejectsTruncation) {
  LabelDictionary dict;
  Graph g = RandomGraph(3, 40, 120, 3, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());
  std::string full = ss.str();
  for (size_t frac = 1; frac <= 3; ++frac) {
    std::stringstream cut(full.substr(0, full.size() * frac / 4),
                          std::ios::in | std::ios::binary);
    LabelDictionary d2;
    EXPECT_FALSE(ReadGraphBinary(cut, d2).ok()) << "fraction " << frac;
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  LabelDictionary dict;
  Graph g = RandomGraph(4, 100, 300, 5, dict);
  std::string path = testing::TempDir() + "/bigindex_binary_test.big";
  ASSERT_TRUE(SaveGraphBinaryFile(g, dict, path).ok());
  LabelDictionary dict2;
  auto g2 = LoadGraphBinaryFile(path, dict2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileFails) {
  LabelDictionary dict;
  EXPECT_EQ(LoadGraphBinaryFile("/no/such/file.big", dict).status().code(),
            StatusCode::kIOError);
}

// ---- Appendix A.2 typing ----

TEST(TypingTest, AttachesUntypedLabelsUnderFallback) {
  LabelDictionary dict;
  // Ontology covers labels A, B only.
  LabelId a = dict.Intern("A"), b = dict.Intern("B"),
          thing = dict.Intern("Thing");
  OntologyBuilder ob;
  ob.AddSupertypeEdge(a, thing);
  ob.AddSupertypeEdge(b, thing);
  Ontology ont = std::move(ob.Build()).value();

  // Graph uses A plus two labels the ontology does not know.
  GraphBuilder gb;
  gb.AddVertex(a);
  gb.AddVertex(dict.Intern("X"));
  gb.AddVertex(dict.Intern("Y"));
  Graph g = std::move(gb.Build()).value();

  auto typed = AttachUntypedLabels(g, ont, dict, "Entity");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->typed, 1u);     // A
  EXPECT_EQ(typed->attached, 2u);  // X, Y
  EXPECT_NEAR(typed->typed_fraction(), 1.0 / 3.0, 1e-9);
  LabelId entity = dict.Find("Entity");
  EXPECT_TRUE(typed->ontology.IsSupertype(entity, dict.Find("X")));
  EXPECT_TRUE(typed->ontology.IsSupertype(entity, dict.Find("Y")));
  // Pre-existing edges survive.
  EXPECT_TRUE(typed->ontology.IsSupertype(thing, a));
}

TEST(TypingTest, MakesArbitraryGraphsIndexable) {
  // A graph with labels entirely unknown to any ontology becomes indexable:
  // one generalization step maps everything to the fallback, and the layer
  // compresses.
  LabelDictionary dict;
  Rng rng(9);
  GraphBuilder gb;
  for (int i = 0; i < 300; ++i) {
    gb.AddVertex(dict.Intern("name_" + std::to_string(i)));  // unique labels
  }
  VertexId hub = 0;
  for (VertexId v = 1; v < 300; ++v) gb.AddEdge(v, hub);
  Graph g = std::move(gb.Build()).value();

  Ontology empty = std::move(OntologyBuilder().Build()).value();
  auto typed = AttachUntypedLabels(g, empty, dict, "Entity");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->attached, 300u);

  auto index = BigIndex::Build(g, &typed->ontology, {.max_layers = 1});
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->NumLayers(), 1u);
  // 299 identical spokes + hub collapse to a handful of supernodes.
  EXPECT_LT(index->LayerCompressionRatio(1), 0.1);
}

TEST(TypingTest, IdempotentWhenAllTyped) {
  auto ds = MakeDataset("yago3", 0.001);
  ASSERT_TRUE(ds.ok());
  auto typed = AttachUntypedLabels(ds->graph, ds->ontology.ontology,
                                   *ds->dict, "Entity");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->attached, 0u);  // generator labels are all leaf types
  EXPECT_DOUBLE_EQ(typed->typed_fraction(), 1.0);
}

}  // namespace
}  // namespace bigindex
