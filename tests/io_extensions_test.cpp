// Tests for the binary graph format and the Appendix-A.2 typing utility.

#include <gtest/gtest.h>

#include <sstream>

#include "core/big_index.h"
#include "graph/binary_io.h"
#include "ontology/typing.h"
#include "util/random.h"
#include "workload/datasets.h"

namespace bigindex {
namespace {

Graph RandomGraph(uint64_t seed, size_t n, size_t m, size_t labels,
                  LabelDictionary& dict) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(dict.Intern("L" + std::to_string(rng.Uniform(labels))));
  }
  for (size_t i = 0; i < m; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
              static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(b.Build()).value();
}

TEST(BinaryIoTest, RoundTripExact) {
  LabelDictionary dict;
  Graph g = RandomGraph(1, 200, 600, 10, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());

  LabelDictionary dict2;
  auto g2 = ReadGraphBinary(ss, dict2);
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  ASSERT_EQ(g2->NumVertices(), g.NumVertices());
  ASSERT_EQ(g2->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dict2.Name(g2->label(v)), dict.Name(g.label(v)));
  }
  EXPECT_EQ(g2->Edges(), g.Edges());
}

TEST(BinaryIoTest, RemapsIntoPopulatedDictionary) {
  LabelDictionary dict;
  Graph g = RandomGraph(2, 50, 100, 4, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());

  LabelDictionary dict2;
  dict2.Intern("already");
  dict2.Intern("present");
  auto g2 = ReadGraphBinary(ss, dict2);
  ASSERT_TRUE(g2.ok());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dict2.Name(g2->label(v)), dict.Name(g.label(v)));
  }
}

TEST(BinaryIoTest, RejectsBadMagic) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write("NOPE0000", 8);
  LabelDictionary dict;
  auto g = ReadGraphBinary(ss, dict);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, RejectsTruncation) {
  LabelDictionary dict;
  Graph g = RandomGraph(3, 40, 120, 3, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());
  std::string full = ss.str();
  for (size_t frac = 1; frac <= 3; ++frac) {
    std::stringstream cut(full.substr(0, full.size() * frac / 4),
                          std::ios::in | std::ios::binary);
    LabelDictionary d2;
    EXPECT_FALSE(ReadGraphBinary(cut, d2).ok()) << "fraction " << frac;
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  LabelDictionary dict;
  Graph g = RandomGraph(4, 100, 300, 5, dict);
  std::string path = testing::TempDir() + "/bigindex_binary_test.big";
  ASSERT_TRUE(SaveGraphBinaryFile(g, dict, path).ok());
  LabelDictionary dict2;
  auto g2 = LoadGraphBinaryFile(path, dict2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileFails) {
  LabelDictionary dict;
  EXPECT_EQ(LoadGraphBinaryFile("/no/such/file.big", dict).status().code(),
            StatusCode::kIOError);
}

TEST(BinaryIoTest, RejectsVersion1WithClearMessage) {
  LabelDictionary dict;
  Graph g = RandomGraph(5, 20, 40, 3, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());
  std::string bytes = ss.str();
  bytes[4] = 1;  // version field follows the 4-byte magic
  std::stringstream v1(bytes, std::ios::in | std::ios::binary);
  LabelDictionary d2;
  auto g2 = ReadGraphBinary(v1, d2);
  ASSERT_FALSE(g2.ok());
  EXPECT_EQ(g2.status().code(), StatusCode::kCorruption);
  EXPECT_NE(g2.status().message().find("version 1"), std::string::npos);
  EXPECT_NE(g2.status().message().find("re-serialize"), std::string::npos);
}

TEST(BinaryIoTest, RejectsEndiannessMismatch) {
  LabelDictionary dict;
  Graph g = RandomGraph(6, 20, 40, 3, dict);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, dict, ss).ok());
  std::string bytes = ss.str();
  // Byte-swap the marker at offset 8 — what a reader of the opposite byte
  // order would observe.
  std::swap(bytes[8], bytes[11]);
  std::swap(bytes[9], bytes[10]);
  std::stringstream swapped(bytes, std::ios::in | std::ios::binary);
  LabelDictionary d2;
  auto g2 = ReadGraphBinary(swapped, d2);
  ASSERT_FALSE(g2.ok());
  EXPECT_NE(g2.status().message().find("endianness"), std::string::npos);
}

TEST(BinaryIoTest, OntologyRoundTripExact) {
  LabelDictionary dict;
  OntologyBuilder ob;
  LabelId person = dict.Intern("Person"), actor = dict.Intern("Actor"),
          director = dict.Intern("Director"), thing = dict.Intern("Thing");
  ob.AddSupertypeEdge(actor, person);
  ob.AddSupertypeEdge(director, person);
  ob.AddSupertypeEdge(person, thing);
  Ontology ont = std::move(ob.Build()).value();

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteOntologyBinary(ont, dict, ss).ok());

  // Read into a pre-populated dictionary: ids shift, names must survive.
  LabelDictionary dict2;
  dict2.Intern("occupied");
  auto ont2 = ReadOntologyBinary(ss, dict2);
  ASSERT_TRUE(ont2.ok()) << ont2.status().ToString();
  EXPECT_EQ(ont2->NumEdges(), ont.NumEdges());
  EXPECT_EQ(ont2->NumTypes(), ont.NumTypes());
  EXPECT_TRUE(ont2->IsSupertype(dict2.Find("Thing"), dict2.Find("Actor")));
  EXPECT_TRUE(ont2->IsSupertype(dict2.Find("Person"),
                                dict2.Find("Director")));
  EXPECT_FALSE(ont2->IsSupertype(dict2.Find("Actor"), dict2.Find("Person")));
  EXPECT_EQ(ont2->HeightAbove(dict2.Find("Actor")), 2u);
}

TEST(BinaryIoTest, OntologyRejectsCorruption) {
  LabelDictionary dict;
  OntologyBuilder ob;
  ob.AddSupertypeEdge(dict.Intern("A"), dict.Intern("B"));
  Ontology ont = std::move(ob.Build()).value();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteOntologyBinary(ont, dict, ss).ok());
  std::string bytes = ss.str();

  {  // graph magic on an ontology payload
    std::string wrong = bytes;
    wrong[3] = 'X';
    std::stringstream in(wrong, std::ios::in | std::ios::binary);
    LabelDictionary d;
    EXPECT_FALSE(ReadOntologyBinary(in, d).ok());
  }
  for (size_t frac = 1; frac <= 3; ++frac) {  // truncations
    std::stringstream cut(bytes.substr(0, bytes.size() * frac / 4),
                          std::ios::in | std::ios::binary);
    LabelDictionary d;
    EXPECT_FALSE(ReadOntologyBinary(cut, d).ok()) << "fraction " << frac;
  }
}

// ---- Appendix A.2 typing ----

TEST(TypingTest, AttachesUntypedLabelsUnderFallback) {
  LabelDictionary dict;
  // Ontology covers labels A, B only.
  LabelId a = dict.Intern("A"), b = dict.Intern("B"),
          thing = dict.Intern("Thing");
  OntologyBuilder ob;
  ob.AddSupertypeEdge(a, thing);
  ob.AddSupertypeEdge(b, thing);
  Ontology ont = std::move(ob.Build()).value();

  // Graph uses A plus two labels the ontology does not know.
  GraphBuilder gb;
  gb.AddVertex(a);
  gb.AddVertex(dict.Intern("X"));
  gb.AddVertex(dict.Intern("Y"));
  Graph g = std::move(gb.Build()).value();

  auto typed = AttachUntypedLabels(g, ont, dict, "Entity");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->typed, 1u);     // A
  EXPECT_EQ(typed->attached, 2u);  // X, Y
  EXPECT_NEAR(typed->typed_fraction(), 1.0 / 3.0, 1e-9);
  LabelId entity = dict.Find("Entity");
  EXPECT_TRUE(typed->ontology.IsSupertype(entity, dict.Find("X")));
  EXPECT_TRUE(typed->ontology.IsSupertype(entity, dict.Find("Y")));
  // Pre-existing edges survive.
  EXPECT_TRUE(typed->ontology.IsSupertype(thing, a));
}

TEST(TypingTest, MakesArbitraryGraphsIndexable) {
  // A graph with labels entirely unknown to any ontology becomes indexable:
  // one generalization step maps everything to the fallback, and the layer
  // compresses.
  LabelDictionary dict;
  Rng rng(9);
  GraphBuilder gb;
  for (int i = 0; i < 300; ++i) {
    gb.AddVertex(dict.Intern("name_" + std::to_string(i)));  // unique labels
  }
  VertexId hub = 0;
  for (VertexId v = 1; v < 300; ++v) gb.AddEdge(v, hub);
  Graph g = std::move(gb.Build()).value();

  Ontology empty = std::move(OntologyBuilder().Build()).value();
  auto typed = AttachUntypedLabels(g, empty, dict, "Entity");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->attached, 300u);

  auto index = BigIndex::Build(g, &typed->ontology, {.max_layers = 1});
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->NumLayers(), 1u);
  // 299 identical spokes + hub collapse to a handful of supernodes.
  EXPECT_LT(index->LayerCompressionRatio(1), 0.1);
}

TEST(TypingTest, IdempotentWhenAllTyped) {
  auto ds = MakeDataset("yago3", 0.001);
  ASSERT_TRUE(ds.ok());
  auto typed = AttachUntypedLabels(ds->graph, ds->ontology.ontology,
                                   *ds->dict, "Entity");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->attached, 0u);  // generator labels are all leaf types
  EXPECT_DOUBLE_EQ(typed->typed_fraction(), 1.0);
}

}  // namespace
}  // namespace bigindex
