// Shard-substrate tests: the scatter-gather acceptance gate (sharded
// answers identical to monolithic for 2 and 4 shards, both substrates, all
// registered algorithms at every layer, over the seeded random-graph
// harness), the INFO verb, ProtocolClient timeout/retry semantics,
// coordinator attach validation, per-shard epoch-keyed caching, deadlines,
// and the sharded index-image round-trip (tools/ci.sh re-runs the
// concurrency-relevant suites under ThreadSanitizer).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "core/index_image.h"
#include "engine/query_engine.h"
#include "search/answer.h"
#include "search/bidirectional.h"
#include "search/bkws.h"
#include "search/blinks.h"
#include "search/partitioner.h"
#include "search/rclique.h"
#include "server/line_protocol.h"
#include "server/protocol_client.h"
#include "server/search_service.h"
#include "server/tcp_server.h"
#include "shard/in_process_substrate.h"
#include "shard/remote_substrate.h"
#include "shard/shard_build.h"
#include "shard/sharded_service.h"
#include "testing/random_graph.h"
#include "util/random.h"
#include "util/timer.h"

namespace bigindex {
namespace {

using testing::MakeRandomGraph;
using testing::MakeRandomOntologyDag;
using testing::RandomGraphOptions;

// The acceptance gate runs this many seeds; override downwards with
// BIGINDEX_SHARD_GATE_SEEDS for slow instrumented runs (TSan).
int GateSeeds() {
  const char* env = std::getenv("BIGINDEX_SHARD_GATE_SEEDS");
  int seeds = env != nullptr ? std::atoi(env) : 100;
  return seeds > 0 ? seeds : 100;
}

RandomGraphOptions GraphOptions(uint64_t seed) {
  RandomGraphOptions opts;
  opts.num_vertices = 30 + seed % 70;
  opts.edge_density = 0.5 + 0.03 * static_cast<double>(seed % 40);
  opts.num_labels = 6;
  opts.label_skew = seed % 3 ? 0.0 : 0.8;
  opts.seed = seed;
  return opts;
}

Ontology TestOntology() {
  return MakeRandomOntologyDag({.num_leaves = 6, .height = 3, .seed = 7});
}

// r-clique's default registration caps answers internally at top_k=10; the
// gate compares full answer sets, so every engine (monolithic and every
// shard) re-registers it uncapped.
void UncapRClique(QueryEngine& engine) {
  engine.Register(
      std::make_unique<RCliqueAlgorithm>(RCliqueOptions{.r = 4, .top_k = 0}));
}

InProcessSubstrateOptions SubstrateOptions() {
  InProcessSubstrateOptions opts;
  opts.configure_engine = UncapRClique;
  return opts;
}

// The coordinator's completion pass re-derives cut-near answers with its
// own algorithm instances; they must be configured like the workers'
// (UncapRClique), so every coordinator in these tests gets this factory.
ShardedServiceOptions CoordinatorOptions(ShardedServiceOptions opts = {}) {
  opts.make_algorithm = [](const std::string& name)
      -> std::unique_ptr<KeywordSearchAlgorithm> {
    if (name == "bkws") return std::make_unique<BkwsAlgorithm>();
    if (name == "blinks") return std::make_unique<BlinksAlgorithm>();
    if (name == "bidirectional") {
      return std::make_unique<BidirectionalAlgorithm>();
    }
    if (name == "r-clique") {
      return std::make_unique<RCliqueAlgorithm>(
          RCliqueOptions{.r = 4, .top_k = 0});
    }
    return nullptr;
  };
  return opts;
}

constexpr const char* kAlgorithms[] = {"bkws", "blinks", "r-clique",
                                       "bidirectional"};

std::vector<Answer> Sorted(std::vector<Answer> answers) {
  SortAnswers(answers);
  return answers;
}

/// The layer-invariant part of an answer: which answer it is (root + keyword
/// assignment) and its exact score. Answer::vertices is only a witness — any
/// minimal connecting tree attains the score, and the evaluator's choice
/// among equal-cost witnesses depends on the summary it specialized
/// through (even a monolithic engine picks different witnesses at different
/// layers).
std::vector<std::tuple<VertexId, std::vector<VertexId>, uint32_t>> Identities(
    const std::vector<Answer>& answers) {
  std::vector<std::tuple<VertexId, std::vector<VertexId>, uint32_t>> ids;
  ids.reserve(answers.size());
  for (const Answer& a : answers) {
    ids.emplace_back(a.root, a.keyword_vertices, a.score);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// One shard worker fleet: every shard of an InProcessSubstrate fronted by
/// its own TcpServer on an ephemeral loopback port — the single-process
/// stand-in for N bigindex_serverd --shard-of processes.
struct RemoteFleet {
  std::vector<std::unique_ptr<TcpServer>> servers;
  std::vector<ShardEndpoint> endpoints;

  explicit RemoteFleet(InProcessSubstrate& substrate) {
    for (size_t s = 0; s < substrate.num_shards(); ++s) {
      servers.push_back(std::make_unique<TcpServer>(
          substrate.shard_service(s), nullptr, TcpServerOptions{.port = 0}));
      Status started = servers.back()->Start();
      EXPECT_TRUE(started.ok()) << started.ToString();
      endpoints.push_back({"127.0.0.1", servers.back()->port()});
    }
  }
  ~RemoteFleet() {
    for (auto& server : servers) server->Stop();
  }
};

// --- The differential acceptance gate -------------------------------------

/// The 100-seed sharded==monolithic differential, parametrized by shard
/// mode. Under kBfsBlocks the plan has a real cut (block size 12 on 30–100
/// vertex graphs), so every assertion below exercises ghost materialization,
/// the workers' near-answer filter and the coordinator's completion pass.
void RunDifferentialGate(ShardMode mode, uint32_t bfs_block_size) {
  const int seeds = GateSeeds();
  size_t plans_with_cut = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    Ontology ontology = TestOntology();

    auto mono_index = BigIndex::Build(g, &ontology, {.max_layers = 2});
    ASSERT_TRUE(mono_index.ok());
    QueryEngine mono(std::move(mono_index).value());
    UncapRClique(mono);
    const size_t mono_layers = mono.index().NumLayers();

    Rng rng(seed * 1009);
    EngineQuery base;
    base.keywords = {static_cast<LabelId>(rng.Uniform(6)),
                     static_cast<LabelId>(rng.Uniform(6))};
    base.NormalizeKeywords();

    for (size_t n : {2u, 4u}) {
      auto sharded = BuildShardedIndex(
          g, &ontology,
          {.plan = {.num_shards = n,
                    .mode = mode,
                    .bfs_block_size = bfs_block_size},
           .index = {.max_layers = 2}});
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      if (!sharded->plan.CutEdges().empty()) ++plans_with_cut;
      auto substrate = InProcessSubstrate::Create(
          std::move(sharded->shards), SubstrateOptions());
      ASSERT_TRUE(substrate.ok()) << substrate.status().ToString();

      ShardedSearchService local(substrate->get(), CoordinatorOptions());
      ASSERT_TRUE(local.Attach().ok());

      RemoteFleet fleet(**substrate);
      RemoteSubstrate remote(fleet.endpoints);
      ShardedSearchService wire(&remote, CoordinatorOptions());
      Status attached = wire.Attach();
      ASSERT_TRUE(attached.ok()) << attached.ToString();

      for (const char* algo : kAlgorithms) {
        // The distance/rooted algorithms return the same exact answer set at
        // every layer (the Thm 4.2 equivalence), so any layer is a valid
        // reference. r-clique's layer>0 candidate enumeration is
        // representation-dependent — which combinations it realizes depends
        // on the summary graph actually evaluated — so once the fleet's
        // summaries differ from the monolithic one (bfs plans cut blocks,
        // not components) only layer 0 defines an exact target for it. The
        // wcc gate keeps asserting r-clique at every layer: component-closed
        // shards summarize identically to the monolithic index.
        const int max_layer =
            (mode == ShardMode::kBfsBlocks &&
             std::string_view(algo) == "r-clique")
                ? 0
                : static_cast<int>(mono_layers);
        EngineQuery q = base;
        q.algorithm = algo;
        q.eval.top_k = 0;  // full-set equality at every layer
        for (int layer = 0; layer <= max_layer; ++layer) {
          q.eval.forced_layer = layer;
          auto expected = mono.Evaluate(q);
          ASSERT_TRUE(expected.ok()) << expected.status().ToString();
          auto via_local = local.Query(q);
          ASSERT_TRUE(via_local.ok()) << via_local.status().ToString();
          auto via_wire = wire.Query(q);
          ASSERT_TRUE(via_wire.ok()) << via_wire.status().ToString();
          if (mode == ShardMode::kBfsBlocks && layer > 0) {
            // At layers > 0 the witness trees are evaluator tie-break
            // artifacts (see Identities); the exactness claim is the
            // answer identity set with exact scores.
            ASSERT_EQ(Identities(via_local->answers),
                      Identities(expected->answers))
                << "in-process: seed " << seed << " shards " << n << " algo "
                << algo << " layer " << layer;
            ASSERT_EQ(Identities(via_wire->answers),
                      Identities(expected->answers))
                << "remote: seed " << seed << " shards " << n << " algo "
                << algo << " layer " << layer;
            continue;
          }
          ASSERT_EQ(Sorted(via_local->answers), Sorted(expected->answers))
              << "in-process: seed " << seed << " shards " << n << " algo "
              << algo << " layer " << layer;
          ASSERT_EQ(Sorted(via_wire->answers), Sorted(expected->answers))
              << "remote: seed " << seed << " shards " << n << " algo "
              << algo << " layer " << layer;
        }
        // Top-k ranking agreement where scores are exact (layer 0).
        q.eval.forced_layer = 0;
        q.eval.top_k = 3;
        auto expected = mono.Evaluate(q);
        ASSERT_TRUE(expected.ok());
        auto via_local = local.Query(q);
        ASSERT_TRUE(via_local.ok());
        ASSERT_EQ(via_local->answers, expected->answers)
            << "top-k: seed " << seed << " shards " << n << " algo " << algo;
        auto via_wire = wire.Query(q);
        ASSERT_TRUE(via_wire.ok());
        ASSERT_EQ(via_wire->answers, expected->answers);
      }
    }
  }
  if (mode == ShardMode::kBfsBlocks) {
    // The bfs gate is vacuous unless the plans actually sever edges; with
    // block size 12 on these graphs every plan should have a cut.
    ASSERT_GT(plans_with_cut, 0u);
  }
}

TEST(ShardDifferentialGate, ShardedEqualsMonolithicBothSubstrates) {
  RunDifferentialGate(ShardMode::kConnectivityClosed, /*bfs_block_size=*/0);
}

// The headline gate for boundary-aware evaluation (DESIGN.md §9): bfs-mode
// plans cut edges, yet sharded serving — ghost materialization, worker
// near-answer filtering, coordinator completion — must still return exactly
// the monolithic answer set for all four algorithms at every layer, and the
// monolithic top-k ranking at layer 0, over both substrates.
TEST(ShardDifferentialGate, BfsModeShardedEqualsMonolithicBothSubstrates) {
  RunDifferentialGate(ShardMode::kBfsBlocks, /*bfs_block_size=*/12);
}

// --- Coordinator behavior --------------------------------------------------

struct CoordinatorFixture {
  Graph graph;
  Ontology ontology = TestOntology();
  std::unique_ptr<InProcessSubstrate> substrate;

  explicit CoordinatorFixture(uint64_t seed = 11, size_t num_shards = 2) {
    graph = MakeRandomGraph(GraphOptions(seed));
    auto sharded = BuildShardedIndex(
        graph, &ontology,
        {.plan = {.num_shards = num_shards}, .index = {.max_layers = 2}});
    substrate = std::move(
        InProcessSubstrate::Create(std::move(sharded->shards),
                                   SubstrateOptions()))
                    .value();
  }

  EngineQuery Query(const char* algo = "bkws") {
    EngineQuery q;
    q.algorithm = algo;
    q.keywords = {0, 1};
    return q;
  }
};

TEST(ShardCoordinator, QueryBeforeAttachFails) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get());
  auto result = service.Query(fx.Query());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardCoordinator, RejectsInvalidQueries) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get());
  ASSERT_TRUE(service.Attach().ok());
  EngineQuery empty = fx.Query();
  empty.keywords.clear();
  EXPECT_EQ(service.Query(empty).status().code(),
            StatusCode::kInvalidArgument);
  EngineQuery unknown = fx.Query("no-such-algo");
  EXPECT_EQ(service.Query(unknown).status().code(), StatusCode::kNotFound);
}

TEST(ShardCoordinator, ExpiredDeadlineRejectedBeforeFanOut) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get());
  ASSERT_TRUE(service.Attach().ok());
  EngineQuery q = fx.Query();
  q.eval.deadline = Deadline::After(0);
  while (!q.eval.deadline.Expired()) {
  }
  auto result = service.Query(q);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Snapshot().deadline_misses, 1u);
}

TEST(ShardCoordinator, PerShardCachesHitOnRepeatAndInvalidateOnBump) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get());
  ASSERT_TRUE(service.Attach().ok());
  EngineQuery q = fx.Query();

  auto first = service.Query(q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(service.Snapshot().batched_queries, 2u);  // both shards fanned

  auto second = service.Query(q);
  ASSERT_TRUE(second.ok());
  // Both shards answered from the coordinator's caches: no new fan-out.
  EXPECT_EQ(service.Snapshot().batched_queries, 2u);
  EXPECT_EQ(Sorted(second->answers), Sorted(first->answers));

  service.BumpEpoch();
  auto third = service.Query(q);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(service.Snapshot().batched_queries, 4u);  // re-fanned after bump
  EXPECT_EQ(Sorted(third->answers), Sorted(first->answers));
}

TEST(ShardCoordinator, CacheDisabledAlwaysFansOut) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get(), {.enable_cache = false});
  ASSERT_TRUE(service.Attach().ok());
  EngineQuery q = fx.Query();
  ASSERT_TRUE(service.Query(q).ok());
  ASSERT_TRUE(service.Query(q).ok());
  EXPECT_EQ(service.Snapshot().batched_queries, 4u);
}

TEST(ShardCoordinator, ParallelFanOutMatchesSerial) {
  CoordinatorFixture fx(13, 4);
  ShardedSearchService serial(fx.substrate.get(), {.enable_cache = false});
  ShardedSearchService parallel(
      fx.substrate.get(), {.fanout_threads = 4, .enable_cache = false});
  ASSERT_TRUE(serial.Attach().ok());
  ASSERT_TRUE(parallel.Attach().ok());
  for (const char* algo : kAlgorithms) {
    EngineQuery q = fx.Query(algo);
    auto a = serial.Query(q);
    auto b = parallel.Query(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Sorted(a->answers), Sorted(b->answers));
  }
}

TEST(ShardCoordinator, AttachRejectsShardsOutOfOrder) {
  CoordinatorFixture fx;
  RemoteFleet fleet(*fx.substrate);
  std::vector<ShardEndpoint> reversed(fleet.endpoints.rbegin(),
                                      fleet.endpoints.rend());
  RemoteSubstrate remote(reversed);
  ShardedSearchService service(&remote);
  Status attached = service.Attach();
  EXPECT_EQ(attached.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardCoordinator, AttachRejectsWrongFleetSize) {
  CoordinatorFixture fx;  // shards built for num_shards=2
  RemoteFleet fleet(*fx.substrate);
  std::vector<ShardEndpoint> half = {fleet.endpoints[0]};
  RemoteSubstrate remote(half);
  ShardedSearchService service(&remote);
  EXPECT_EQ(service.Attach().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardCoordinator, AttachFailsWhenShardUnreachable) {
  CoordinatorFixture fx;
  RemoteFleet fleet(*fx.substrate);
  std::vector<ShardEndpoint> endpoints = fleet.endpoints;
  endpoints[1].port = 1;  // nothing listens there
  RemoteSubstrate remote(endpoints,
                         {.connect_timeout_ms = 100, .max_attempts = 1});
  ShardedSearchService service(&remote);
  EXPECT_EQ(service.Attach().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardCoordinator, AllowPartialServesSurvivingShards) {
  CoordinatorFixture fx;
  RemoteFleet fleet(*fx.substrate);
  RemoteSubstrate remote(fleet.endpoints,
                         {.connect_timeout_ms = 100, .max_attempts = 1});

  ShardedSearchService strict(&remote, {.enable_cache = false});
  ASSERT_TRUE(strict.Attach().ok());
  ShardedSearchService lenient(
      &remote, {.enable_cache = false, .allow_partial = true});
  ASSERT_TRUE(lenient.Attach().ok());

  fleet.servers[1]->Stop();  // shard 1 goes dark after attach

  EngineQuery q = fx.Query();
  auto failed = strict.Query(q);
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  auto partial = lenient.Query(q);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  // What did arrive is exactly shard 0's contribution.
  auto direct = fx.substrate->Query(0, q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Sorted(partial->answers), Sorted(direct->answers));
}

// --- Substrate contracts ---------------------------------------------------

TEST(ShardSubstrate, InProcessRejectsMisnumberedShards) {
  CoordinatorFixture fx;
  Graph g = MakeRandomGraph(GraphOptions(3));
  auto sharded = BuildShardedIndex(
      g, &fx.ontology, {.plan = {.num_shards = 2}, .index = {}});
  ASSERT_TRUE(sharded.ok());
  std::vector<BuiltShard> shards = std::move(sharded->shards);
  std::swap(shards[0], shards[1]);  // identities no longer match positions
  EXPECT_FALSE(InProcessSubstrate::Create(std::move(shards)).ok());
}

TEST(ShardSubstrate, OutOfRangeShardIsRejected) {
  CoordinatorFixture fx;
  EXPECT_EQ(fx.substrate->Query(7, fx.Query()).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fx.substrate->Info(7).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(fx.substrate->BumpEpoch(7).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ShardSubstrate, InfoReportsShardIdentity) {
  CoordinatorFixture fx;
  for (size_t s = 0; s < fx.substrate->num_shards(); ++s) {
    auto info = fx.substrate->Info(s);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->shard_id, s);
    EXPECT_EQ(info->num_shards, 2u);
    EXPECT_EQ(info->epoch, 1u);
    EXPECT_EQ(info->algorithms.size(), 4u);
  }
}

// --- INFO verb + wire plumbing ---------------------------------------------

TEST(InfoVerb, RoundTripsIdentityOverTheWire) {
  CoordinatorFixture fx;
  RemoteFleet fleet(*fx.substrate);
  RemoteSubstrate remote(fleet.endpoints);
  for (size_t s = 0; s < 2; ++s) {
    auto info = remote.Info(s);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto direct = fx.substrate->Info(s);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(info->epoch, direct->epoch);
    EXPECT_EQ(info->fingerprint, direct->fingerprint);
    EXPECT_EQ(info->num_layers, direct->num_layers);
    EXPECT_EQ(info->shard_id, direct->shard_id);
    EXPECT_EQ(info->num_shards, direct->num_shards);
    EXPECT_EQ(info->algorithms, direct->algorithms);
  }
}

TEST(InfoVerb, ParseInfoLineRejectsGarbage) {
  WireInfo info;
  EXPECT_FALSE(ParseInfoLine("OK nope", &info).ok());
  EXPECT_FALSE(ParseInfoLine("", &info).ok());
  Status ok = ParseInfoLine(
      "OK epoch=3 checksum=ff layers=2 shard=1/4 algos=a,b", &info);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(info.epoch, 3u);
  EXPECT_EQ(info.fingerprint, 0xffu);
  EXPECT_EQ(info.num_layers, 2u);
  EXPECT_EQ(info.shard_id, 1u);
  EXPECT_EQ(info.num_shards, 4u);
  EXPECT_EQ(info.algorithms, (std::vector<std::string>{"a", "b"}));
}

// --- ProtocolClient connect semantics --------------------------------------

TEST(ProtocolClient, UnreachablePortSurfacesUnavailable) {
  ProtocolClient client("127.0.0.1", 1,
                        {.connect_timeout_ms = 100,
                         .max_attempts = 2,
                         .backoff_base_ms = 10,
                         .backoff_cap_ms = 20});
  Timer t;
  Status connected = client.Connect();
  EXPECT_EQ(connected.code(), StatusCode::kUnavailable);
  // Bounded: 2 attempts + one 10ms backoff, far below a kernel TCP timeout.
  EXPECT_LT(t.ElapsedMillis(), 5000.0);
  EXPECT_FALSE(client.connected());
}

TEST(ProtocolClient, ResolveFailureIsInvalidArgumentWithoutRetry) {
  ProtocolClient client("no.such.host.invalid", 7419,
                        {.max_attempts = 4, .backoff_base_ms = 1000});
  Timer t;
  Status connected = client.Connect();
  EXPECT_EQ(connected.code(), StatusCode::kInvalidArgument);
  // No retry/backoff on permanent errors (4 attempts would sleep seconds).
  EXPECT_LT(t.ElapsedMillis(), 1000.0);
}

TEST(ProtocolClient, RequestReconnectsAfterServerRestart) {
  CoordinatorFixture fx;
  TcpServer server(fx.substrate->shard_service(0), nullptr,
                   TcpServerOptions{.port = 0});
  ASSERT_TRUE(server.Start().ok());
  ProtocolClient client("127.0.0.1", server.port());
  auto first = client.Request("info");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  server.Stop();
  // The lost connection surfaces as Unavailable...
  EXPECT_EQ(client.Request("info").status().code(), StatusCode::kUnavailable);
}

// --- Sharded index images --------------------------------------------------

TEST(ShardImage, RoundTripsShardIdentityAndRemap) {
  Graph g = MakeRandomGraph(GraphOptions(5));
  Ontology ontology = TestOntology();
  auto sharded = BuildShardedIndex(
      g, &ontology, {.plan = {.num_shards = 2}, .index = {.max_layers = 2}});
  ASSERT_TRUE(sharded.ok());

  LabelDictionary dict;
  for (size_t l = 0; l < ontology.LabelSlots(); ++l) {
    dict.Intern("L" + std::to_string(l));
  }
  std::string prefix =
      ::testing::TempDir() + "/shard_image_" + std::to_string(::getpid());
  ASSERT_TRUE(SaveShardImages(*sharded, dict, prefix).ok());

  for (const BuiltShard& built : sharded->shards) {
    std::string path =
        ShardImagePath(prefix, built.shard.shard_id, built.shard.num_shards);
    auto info = InspectIndexImage(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->shard_id, built.shard.shard_id);
    EXPECT_EQ(info->num_shards, 2u);
    EXPECT_NE(info->fingerprint, 0u);

    LabelDictionary load_dict;
    for (size_t l = 0; l < ontology.LabelSlots(); ++l) {
      load_dict.Intern("L" + std::to_string(l));
    }
    ShardImageInfo loaded_shard;
    auto loaded =
        LoadIndexImage(path, load_dict, &ontology, {}, &loaded_shard);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded_shard.shard_id, built.shard.shard_id);
    EXPECT_EQ(loaded_shard.num_shards, built.shard.num_shards);
    EXPECT_EQ(loaded_shard.global_of, built.shard.global_of);
    EXPECT_EQ(loaded->NumLayers(), built.index.NumLayers());
    std::remove(path.c_str());
  }
}

// bfs-mode shards carry a ghost manifest (the GHOSTS section); it must
// round-trip through the image byte-exactly so a worker restarted from disk
// reconstructs the same boundary the builder materialized.
TEST(ShardImage, RoundTripsGhostManifestUnderBfsPlans) {
  Graph g = MakeRandomGraph(GraphOptions(5));
  Ontology ontology = TestOntology();
  auto sharded = BuildShardedIndex(
      g, &ontology,
      {.plan = {.num_shards = 2,
                .mode = ShardMode::kBfsBlocks,
                .bfs_block_size = 12},
       .index = {.max_layers = 2}});
  ASSERT_TRUE(sharded.ok());
  ASSERT_FALSE(sharded->plan.CutEdges().empty());

  LabelDictionary dict;
  for (size_t l = 0; l < ontology.LabelSlots(); ++l) {
    dict.Intern("L" + std::to_string(l));
  }
  bool any_ghosts = false;
  for (const BuiltShard& built : sharded->shards) {
    std::ostringstream out;
    ASSERT_TRUE(
        WriteIndexImage(built.index, dict, built.shard, out).ok());
    auto bytes = std::make_shared<std::string>(out.str());
    LabelDictionary load_dict;
    ShardImageInfo loaded_shard;
    auto loaded = LoadIndexImageFromBuffer(
        std::shared_ptr<const std::string>(bytes), load_dict, &ontology, {},
        &loaded_shard);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded_shard.global_of, built.shard.global_of);
    EXPECT_EQ(loaded_shard.ghosts, built.shard.ghosts);
    any_ghosts = any_ghosts || !built.shard.ghosts.empty();
  }
  // A non-empty cut materializes ghosts on at least one shard, so the
  // round-trip above was not vacuous.
  EXPECT_TRUE(any_ghosts);
}

TEST(ShardImage, CorruptedShardMapFailsLoudly) {
  Graph g = MakeRandomGraph(GraphOptions(6));
  Ontology ontology = TestOntology();
  auto sharded = BuildShardedIndex(
      g, &ontology, {.plan = {.num_shards = 2}, .index = {.max_layers = 1}});
  ASSERT_TRUE(sharded.ok());
  LabelDictionary dict;
  for (size_t l = 0; l < ontology.LabelSlots(); ++l) {
    dict.Intern("L" + std::to_string(l));
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteIndexImage(sharded->shards[1].index, dict,
                              sharded->shards[1].shard, out)
                  .ok());
  auto bytes = std::make_shared<std::string>(out.str());
  // Flip one byte in the trailing SHARDMAP payload (the remap array).
  ASSERT_GT(bytes->size(), 16u);
  (*bytes)[bytes->size() - 8] ^= 0x40;
  LabelDictionary load_dict;
  auto loaded = LoadIndexImageFromBuffer(
      std::shared_ptr<const std::string>(bytes), load_dict, &ontology);
  EXPECT_FALSE(loaded.ok());
}

// --- Live updates through the coordinator ----------------------------------

GraphUpdate AddEdgeOp(VertexId u, VertexId v) {
  return {GraphUpdate::Kind::kAddEdge, u, v};
}
GraphUpdate RemoveEdgeOp(VertexId u, VertexId v) {
  return {GraphUpdate::Kind::kRemoveEdge, u, v};
}

TEST(ShardedUpdate, BeforeAttachFailsAndCountsRejected) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get());
  EXPECT_EQ(
      service.ApplyUpdate(std::vector<GraphUpdate>{AddEdgeOp(0, 1)})
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Snapshot().updates_rejected, 1u);
}

// The sharded post-update differential: remove an existing edge through the
// in-process coordinator, re-add it through the wire coordinator, and at
// each state the merged answers must equal a monolithic engine on the same
// graph for every algorithm at every layer. Under the default
// connectivity-closed plan both endpoints of any existing edge are on one
// shard, so each batch applies on exactly one worker and skips elsewhere.
TEST(ShardedUpdate, BroadcastMatchesMonolithicBothSubstrates) {
  Graph g = MakeRandomGraph(GraphOptions(21));
  Ontology ontology = TestOntology();
  const auto edges = g.Edges();
  ASSERT_FALSE(edges.empty());
  const auto [u, v] = edges[edges.size() / 2];

  auto sharded = BuildShardedIndex(
      g, &ontology, {.plan = {.num_shards = 2}, .index = {.max_layers = 2}});
  ASSERT_TRUE(sharded.ok());
  auto substrate = InProcessSubstrate::Create(std::move(sharded->shards),
                                              SubstrateOptions());
  ASSERT_TRUE(substrate.ok()) << substrate.status().ToString();

  // Caches off: both coordinators mutate the same substrate, and a
  // coordinator only learns of epoch bumps it issued itself (the documented
  // bump-through-the-coordinator contract).
  ShardedSearchService local(substrate->get(), {.enable_cache = false});
  ASSERT_TRUE(local.Attach().ok());
  RemoteFleet fleet(**substrate);
  RemoteSubstrate remote(fleet.endpoints);
  ShardedSearchService wire(&remote, {.enable_cache = false});
  ASSERT_TRUE(wire.Attach().ok());

  auto expect_matches_monolithic = [&](const Graph& state,
                                       const std::string& context) {
    auto mono_index = BigIndex::Build(state, &ontology, {.max_layers = 2});
    ASSERT_TRUE(mono_index.ok());
    QueryEngine mono(std::move(mono_index).value());
    UncapRClique(mono);
    for (const char* algo : kAlgorithms) {
      EngineQuery q;
      q.algorithm = algo;
      q.keywords = {0, 1};
      q.eval.top_k = 0;
      for (int layer = 0; layer <= static_cast<int>(mono.index().NumLayers());
           ++layer) {
        q.eval.forced_layer = layer;
        auto expected = mono.Evaluate(q);
        ASSERT_TRUE(expected.ok());
        auto via_local = local.Query(q);
        ASSERT_TRUE(via_local.ok()) << via_local.status().ToString();
        ASSERT_EQ(Sorted(via_local->answers), Sorted(expected->answers))
            << context << " local algo " << algo << " layer " << layer;
        auto via_wire = wire.Query(q);
        ASSERT_TRUE(via_wire.ok()) << via_wire.status().ToString();
        ASSERT_EQ(Sorted(via_wire->answers), Sorted(expected->answers))
            << context << " wire algo " << algo << " layer " << layer;
      }
    }
  };

  // Remove through the in-process coordinator.
  const uint64_t epoch_before = local.epoch();
  auto removed =
      local.ApplyUpdate(std::vector<GraphUpdate>{RemoveEdgeOp(u, v)});
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed->applied, 1u);
  EXPECT_EQ(removed->skipped, 0u);
  EXPECT_NE(removed->mode, UpdateOutcome::Mode::kNone);
  EXPECT_GT(removed->epoch, epoch_before);
  auto delta = NormalizeUpdates(g, std::vector<GraphUpdate>{RemoveEdgeOp(u, v)});
  ASSERT_TRUE(delta.ok());
  Graph without = ApplyDelta(g, *delta);
  expect_matches_monolithic(without, "after remove");
  EXPECT_EQ(local.Snapshot().updates_applied, 1u);

  // Re-add over the wire (RemoteSubstrate -> UPDATE verb -> worker).
  auto readded = wire.ApplyUpdate(std::vector<GraphUpdate>{AddEdgeOp(u, v)});
  ASSERT_TRUE(readded.ok()) << readded.status().ToString();
  EXPECT_EQ(readded->applied, 1u);
  expect_matches_monolithic(g, "after re-add");

  // A batch with no net effect anywhere: applied=0, mode none, no bump.
  const uint64_t wire_epoch = wire.epoch();
  auto noop = wire.ApplyUpdate(std::vector<GraphUpdate>{AddEdgeOp(u, v)});
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->applied, 0u);
  EXPECT_EQ(noop->skipped, 1u);
  EXPECT_EQ(noop->mode, UpdateOutcome::Mode::kNone);
  EXPECT_EQ(wire.epoch(), wire_epoch);
}

TEST(ShardedUpdate, CrossShardAddIsSkippedUnderWccPlans) {
  Graph g = MakeRandomGraph(GraphOptions(11));
  Ontology ontology = TestOntology();
  auto sharded = BuildShardedIndex(
      g, &ontology, {.plan = {.num_shards = 2}, .index = {.max_layers = 2}});
  ASSERT_TRUE(sharded.ok());
  // One vertex from each shard's cover: the edge between them is owned by
  // no shard (the documented wcc-mode limitation).
  ASSERT_FALSE(sharded->shards[0].shard.global_of.empty());
  ASSERT_FALSE(sharded->shards[1].shard.global_of.empty());
  const VertexId a = sharded->shards[0].shard.global_of.front();
  const VertexId b = sharded->shards[1].shard.global_of.front();
  auto substrate = InProcessSubstrate::Create(std::move(sharded->shards),
                                              SubstrateOptions());
  ASSERT_TRUE(substrate.ok());
  ShardedSearchService service(substrate->get());
  ASSERT_TRUE(service.Attach().ok());

  const uint64_t epoch = service.epoch();
  auto outcome = service.ApplyUpdate(std::vector<GraphUpdate>{AddEdgeOp(a, b)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, 0u);
  EXPECT_EQ(outcome->skipped, 1u);
  EXPECT_EQ(outcome->mode, UpdateOutcome::Mode::kNone);
  EXPECT_EQ(service.epoch(), epoch);
}

// Under bfs plans a cut edge is materialized in both incident shards via
// ghosts, but neither shard OWNS both endpoints: mutating it locally would
// desynchronize the replicas, so ghost-incident ops are skipped (the same
// documented limitation as wcc cross-shard adds) and reported in the
// coordinator's applied/skipped accounting.
TEST(ShardedUpdate, GhostIncidentOpsAreSkippedUnderBfsPlans) {
  Graph g = MakeRandomGraph(GraphOptions(11));
  Ontology ontology = TestOntology();
  auto sharded = BuildShardedIndex(
      g, &ontology,
      {.plan = {.num_shards = 2,
                .mode = ShardMode::kBfsBlocks,
                .bfs_block_size = 12},
       .index = {.max_layers = 2}});
  ASSERT_TRUE(sharded.ok());
  ASSERT_FALSE(sharded->plan.CutEdges().empty());
  const CutEdge cut = sharded->plan.CutEdges().front();
  auto substrate = InProcessSubstrate::Create(std::move(sharded->shards),
                                              SubstrateOptions());
  ASSERT_TRUE(substrate.ok());
  ShardedSearchService service(substrate->get(), CoordinatorOptions());
  ASSERT_TRUE(service.Attach().ok());

  const uint64_t epoch = service.epoch();
  // Removing an existing cut edge and re-adding it: both ops touch a ghost
  // on every shard that sees them, so nothing applies anywhere.
  for (const GraphUpdate& op :
       {RemoveEdgeOp(cut.source, cut.target),
        AddEdgeOp(cut.source, cut.target)}) {
    auto outcome = service.ApplyUpdate(std::vector<GraphUpdate>{op});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->applied, 0u);
    EXPECT_EQ(outcome->skipped, 1u);
    EXPECT_EQ(outcome->mode, UpdateOutcome::Mode::kNone);
  }
  EXPECT_EQ(service.epoch(), epoch);

  // The cut edge still serves: sharded answers still match the unmodified
  // monolithic graph (the skipped removal really was a no-op, not a
  // half-applied mutation).
  auto mono_index = BigIndex::Build(g, &ontology, {.max_layers = 2});
  ASSERT_TRUE(mono_index.ok());
  QueryEngine mono(std::move(mono_index).value());
  UncapRClique(mono);
  EngineQuery q;
  q.algorithm = "bkws";
  q.keywords = {0, 1};
  q.eval.top_k = 0;
  q.eval.forced_layer = 0;
  auto expected = mono.Evaluate(q);
  ASSERT_TRUE(expected.ok());
  auto got = service.Query(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Sorted(got->answers), Sorted(expected->answers));
}

// Coordinator ROLLBACK: broadcast to all workers, restore the pre-update
// answers, and stay retry-safe when only a subset of shards retained a
// previous version (the untouched shard answers FailedPrecondition, which
// the broadcast treats as "nothing to undo").
TEST(ShardedUpdate, RollbackBroadcastRestoresPreviousVersion) {
  Graph g = MakeRandomGraph(GraphOptions(21));
  Ontology ontology = TestOntology();
  const auto edges = g.Edges();
  ASSERT_FALSE(edges.empty());
  const auto [u, v] = edges[edges.size() / 2];

  auto sharded = BuildShardedIndex(
      g, &ontology, {.plan = {.num_shards = 2}, .index = {.max_layers = 2}});
  ASSERT_TRUE(sharded.ok());
  auto substrate = InProcessSubstrate::Create(std::move(sharded->shards),
                                              SubstrateOptions());
  ASSERT_TRUE(substrate.ok());
  ShardedSearchService service(substrate->get());
  ASSERT_TRUE(service.Attach().ok());

  EngineQuery q;
  q.algorithm = "bkws";
  q.keywords = {0, 1};
  q.eval.top_k = 0;
  q.eval.forced_layer = 0;
  auto before = service.Query(q);
  ASSERT_TRUE(before.ok());

  // Nothing to roll back yet.
  EXPECT_EQ(service.Rollback().status().code(),
            StatusCode::kFailedPrecondition);

  // A wcc-plan edge removal applies on exactly one shard; the other shard
  // retains no previous version, and the broadcast must tolerate that.
  auto removed =
      service.ApplyUpdate(std::vector<GraphUpdate>{RemoveEdgeOp(u, v)});
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  ASSERT_EQ(removed->applied, 1u);
  auto after_remove = service.Query(q);
  ASSERT_TRUE(after_remove.ok());

  const uint64_t epoch_before_rollback = service.epoch();
  auto rolled = service.Rollback();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_GT(*rolled, epoch_before_rollback);
  EXPECT_EQ(service.Snapshot().rollbacks, 1u);

  auto restored = service.Query(q);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(Sorted(restored->answers), Sorted(before->answers));

  // The version store keeps one generation: a second rollback has nothing
  // left to restore on any shard.
  EXPECT_EQ(service.Rollback().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedUpdate, UpdateInvalidatesCoordinatorCaches) {
  CoordinatorFixture fx;
  ShardedSearchService service(fx.substrate.get());
  ASSERT_TRUE(service.Attach().ok());
  EngineQuery q = fx.Query();
  q.eval.top_k = 0;        // full sets at layer 0: ranking-independent
  q.eval.forced_layer = 0;

  auto first = service.Query(q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(service.Query(q).ok());
  EXPECT_EQ(service.Snapshot().batched_queries, 2u);  // repeat hit the caches

  const auto edges = fx.graph.Edges();
  ASSERT_FALSE(edges.empty());
  auto outcome = service.ApplyUpdate(
      std::vector<GraphUpdate>{RemoveEdgeOp(edges[0].first, edges[0].second)});
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->applied, 1u);

  auto after = service.Query(q);
  ASSERT_TRUE(after.ok());
  // The changed shard's cache was cleared: at least one shard re-fanned,
  // and the answers reflect the updated graph.
  EXPECT_GT(service.Snapshot().batched_queries, 2u);
  auto updated = ApplyUpdates(
      fx.graph,
      std::vector<GraphUpdate>{RemoveEdgeOp(edges[0].first, edges[0].second)});
  ASSERT_TRUE(updated.ok());
  auto mono_index = BigIndex::Build(*updated, &fx.ontology, {.max_layers = 2});
  ASSERT_TRUE(mono_index.ok());
  QueryEngine mono(std::move(mono_index).value());
  UncapRClique(mono);
  EngineQuery ref = q;
  auto expected = mono.Evaluate(ref);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Sorted(after->answers), Sorted(expected->answers));
}

}  // namespace
}  // namespace bigindex
