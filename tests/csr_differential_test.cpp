// Differential lockdown of the flat-CSR graph and the index image.
//
// Three properties over 100 seeds of adversarially unstructured inputs:
//
//  1. The CSR Graph agrees accessor-by-accessor with a naive set-based
//     adjacency reference built from the same vertex/edge stream.
//  2. Every registered search algorithm returns identical answers on every
//     layer whether the index was (a) built in memory, (b) round-tripped
//     through the text serializer, or (c) loaded zero-copy from a flat
//     image — i.e. builder-backed and image-backed structures are
//     indistinguishable to the hot paths.
//  3. The serialized image is byte-identical across construction thread
//     counts (1, 2, 8), extending the PR-4 determinism guarantee through
//     the serialization layer.
//
// Suite name is CsrDifferential* so tools/ci.sh can select it for the
// sanitizer runs.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bigindex.h"
#include "testing/random_graph.h"

namespace bigindex {
namespace {

constexpr int kSeeds = 100;

/// Interns "L0".."L<count-1>" so ids 0..count-1 exist in insertion order.
void InternDenseLabels(LabelDictionary& dict, size_t count) {
  for (size_t i = 0; i < count; ++i) dict.Intern("L" + std::to_string(i));
}

/// The naive reference: labels plus set-based adjacency, filled from the
/// same stream of AddVertex/AddEdge calls the GraphBuilder consumes.
struct ReferenceAdjacency {
  std::vector<LabelId> labels;
  std::vector<std::set<VertexId>> out, in;
  std::map<LabelId, std::vector<VertexId>> by_label;

  VertexId AddVertex(LabelId l) {
    labels.push_back(l);
    out.emplace_back();
    in.emplace_back();
    by_label[l].push_back(static_cast<VertexId>(labels.size() - 1));
    return static_cast<VertexId>(labels.size() - 1);
  }
  void AddEdge(VertexId u, VertexId v) {
    out[u].insert(v);
    in[v].insert(u);
  }
  size_t NumEdges() const {
    size_t m = 0;
    for (const auto& s : out) m += s.size();
    return m;
  }
};

TEST(CsrDifferentialTest, StructureMatchesReferenceAdjacency) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<uint64_t>(seed));
    // Degenerate corners on early seeds, then growing random soups.
    const size_t n = seed == 1 ? 0 : seed == 2 ? 1 : 3 + rng.Uniform(80);
    const size_t num_labels = seed <= 3 ? 1 : 1 + rng.Uniform(9);
    const size_t target_edges =
        n == 0 ? 0 : static_cast<size_t>(rng.Uniform(3 * n + 1));

    ReferenceAdjacency ref;
    GraphBuilder b;
    for (size_t i = 0; i < n; ++i) {
      LabelId l = static_cast<LabelId>(rng.Uniform(num_labels));
      b.AddVertex(l);
      ref.AddVertex(l);
    }
    for (size_t i = 0; i < target_edges; ++i) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = rng.Bernoulli(0.05) ? u
                                       : static_cast<VertexId>(rng.Uniform(n));
      b.AddEdge(u, v);
      ref.AddEdge(u, v);
    }
    auto built = b.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const Graph& g = *built;

    ASSERT_EQ(g.NumVertices(), n);
    ASSERT_EQ(g.NumEdges(), ref.NumEdges());
    const CsrView out = g.Out(), in = g.In();
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(g.label(v), ref.labels[v]);
      // Span accessor vs reference.
      std::vector<VertexId> got_out(g.OutNeighbors(v).begin(),
                                    g.OutNeighbors(v).end());
      std::vector<VertexId> want_out(ref.out[v].begin(), ref.out[v].end());
      ASSERT_EQ(got_out, want_out) << "out-neighbors of " << v;
      std::vector<VertexId> got_in(g.InNeighbors(v).begin(),
                                   g.InNeighbors(v).end());
      std::vector<VertexId> want_in(ref.in[v].begin(), ref.in[v].end());
      ASSERT_EQ(got_in, want_in) << "in-neighbors of " << v;
      // HalfInterval accessor vs the same reference.
      const auto oi = out[v];
      ASSERT_EQ(oi.size(), want_out.size());
      for (uint64_t i = 0; i < oi.size(); ++i) {
        EXPECT_EQ(out.Slot(oi.begin + i), want_out[i]);
      }
      const auto ii = in[v];
      ASSERT_EQ(ii.size(), want_in.size());
      for (uint64_t i = 0; i < ii.size(); ++i) {
        EXPECT_EQ(in.Slot(ii.begin + i), want_in[i]);
      }
      EXPECT_EQ(g.OutDegree(v), want_out.size());
      EXPECT_EQ(g.InDegree(v), want_in.size());
      for (VertexId w : want_out) EXPECT_TRUE(g.HasEdge(v, w));
    }
    // Inverted label index vs reference.
    std::vector<LabelId> want_distinct;
    for (const auto& [label, vertices] : ref.by_label) {
      want_distinct.push_back(label);
      std::vector<VertexId> sorted = vertices;
      std::sort(sorted.begin(), sorted.end());
      std::vector<VertexId> got(g.VerticesWithLabel(label).begin(),
                                g.VerticesWithLabel(label).end());
      EXPECT_EQ(got, sorted) << "vertices with label " << label;
    }
    std::vector<LabelId> got_distinct(g.DistinctLabels().begin(),
                                      g.DistinctLabels().end());
    EXPECT_EQ(got_distinct, want_distinct);
  }
}

/// One test instance: graph + ontology + dictionary covering all type ids.
struct Instance {
  Graph graph;
  Ontology ontology;
  LabelDictionary dict;
};

Instance MakeInstance(uint64_t seed) {
  Instance inst;
  testing::RandomGraphOptions gopt;
  gopt.num_vertices = 24 + seed % 48;
  gopt.edge_density = 1.5 + 0.02 * static_cast<double>(seed % 30);
  gopt.num_labels = 6;
  gopt.label_skew = seed % 3 == 0 ? 0.8 : 0.0;
  gopt.seed = seed;
  testing::RandomOntologyOptions oopt;
  oopt.num_leaves = gopt.num_labels;
  oopt.seed = seed;
  inst.graph = testing::MakeRandomGraph(gopt);
  inst.ontology = testing::MakeRandomOntologyDag(oopt);
  InternDenseLabels(inst.dict, inst.ontology.LabelSlots());
  return inst;
}

StatusOr<BigIndex> BuildIndex(const Instance& inst, size_t threads) {
  BigIndexOptions opt;
  opt.max_layers = 3;
  opt.build.num_threads = threads;
  return BigIndex::Build(inst.graph, &inst.ontology, opt);
}

std::string ImageBytes(const BigIndex& index, const LabelDictionary& dict) {
  std::ostringstream out(std::ios::binary);
  Status st = WriteIndexImage(index, dict, out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out.str();
}

/// The registered algorithm set, configured as the CLI configures them.
std::vector<std::unique_ptr<KeywordSearchAlgorithm>> AllAlgorithms() {
  std::vector<std::unique_ptr<KeywordSearchAlgorithm>> algos;
  algos.push_back(std::make_unique<BkwsAlgorithm>(BkwsOptions{.d_max = 4}));
  algos.push_back(
      std::make_unique<BlinksAlgorithm>(BlinksOptions{.d_max = 4}));
  algos.push_back(
      std::make_unique<RCliqueAlgorithm>(RCliqueOptions{.r = 3}));
  algos.push_back(std::make_unique<BidirectionalAlgorithm>(
      BidirectionalOptions{.d_max = 4}));
  return algos;
}

TEST(CsrDifferentialTest, AlgorithmsAgreeAcrossIndexRepresentations) {
  auto algos = AllAlgorithms();
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Instance inst = MakeInstance(static_cast<uint64_t>(seed));
    auto built = BuildIndex(inst, /*threads=*/0);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    // (b) text round-trip through the legacy parsing loader.
    std::stringstream text(std::ios::in | std::ios::out);
    ASSERT_TRUE(WriteIndex(*built, inst.dict, text).ok());
    auto from_text = ReadIndex(text, inst.dict, &inst.ontology);
    ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();

    // (c) flat image, loaded zero-copy from an in-memory buffer.
    auto image = std::make_shared<const std::string>(
        ImageBytes(*built, inst.dict));
    auto from_image =
        LoadIndexImageFromBuffer(image, inst.dict, &inst.ontology);
    ASSERT_TRUE(from_image.ok()) << from_image.status().ToString();
    ASSERT_EQ(from_image->NumLayers(), built->NumLayers());

    // Two queries per seed over labels that occur in the graph.
    Rng rng(static_cast<uint64_t>(seed) * 7919);
    auto distinct = inst.graph.DistinctLabels();
    ASSERT_FALSE(distinct.empty());
    std::vector<std::vector<LabelId>> queries;
    for (size_t nq : {2u, 3u}) {
      std::vector<LabelId> q;
      for (size_t i = 0; i < nq; ++i) {
        q.push_back(distinct[rng.Uniform(distinct.size())]);
      }
      queries.push_back(std::move(q));
    }

    for (const auto& algo : algos) {
      for (size_t layer = 0; layer <= built->NumLayers(); ++layer) {
        EvalOptions eval;
        eval.forced_layer = static_cast<int>(layer);
        for (const auto& q : queries) {
          auto a = EvaluateWithIndex(*built, *algo, q, eval);
          auto b = EvaluateWithIndex(*from_text, *algo, q, eval);
          auto c = EvaluateWithIndex(*from_image, *algo, q, eval);
          EXPECT_EQ(a, b) << algo->Name() << " built vs text, layer "
                          << layer;
          EXPECT_EQ(a, c) << algo->Name() << " built vs image, layer "
                          << layer;
        }
      }
    }
  }
}

TEST(CsrDifferentialTest, ImageBytesIdenticalAcrossBuildThreads) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Instance inst = MakeInstance(static_cast<uint64_t>(seed));
    std::string reference;
    for (size_t threads : {1u, 2u, 8u}) {
      auto index = BuildIndex(inst, threads);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      std::string bytes = ImageBytes(*index, inst.dict);
      if (threads == 1) {
        reference = std::move(bytes);
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(bytes, reference)
            << "image bytes differ at " << threads << " build threads";
      }
    }
  }
}

TEST(CsrDifferentialTest, ImageRoundTripsThroughFileAndBuffer) {
  Instance inst = MakeInstance(7);
  auto built = BuildIndex(inst, 0);
  ASSERT_TRUE(built.ok());
  auto image = std::make_shared<const std::string>(
      ImageBytes(*built, inst.dict));

  std::string path = ::testing::TempDir() + "/csr_diff_roundtrip.img";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image->data(), static_cast<std::streamsize>(image->size()));
    ASSERT_TRUE(out.good());
  }
  ASSERT_TRUE(LooksLikeIndexImage(path));
  auto from_file = LoadIndexImage(path, inst.dict, &inst.ontology);
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();

  // Re-serializing the loaded index reproduces the image byte for byte:
  // load really is a view of the file, not a rebuild.
  EXPECT_EQ(ImageBytes(*from_file, inst.dict), *image);

  // A fresh dictionary is populated by the load and yields the same ids.
  LabelDictionary fresh;
  auto from_buffer = LoadIndexImageFromBuffer(image, fresh, &inst.ontology);
  ASSERT_TRUE(from_buffer.ok()) << from_buffer.status().ToString();
  EXPECT_EQ(fresh.size(), inst.dict.size());
  EXPECT_EQ(ImageBytes(*from_buffer, fresh), *image);

  // A conflicting dictionary (different string at an interned id) is
  // rejected: silently aliasing label ids would corrupt query results.
  LabelDictionary wrong;
  wrong.Intern("not-the-first-label");
  auto mismatch = LoadIndexImageFromBuffer(image, wrong, &inst.ontology);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bigindex
