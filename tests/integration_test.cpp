// End-to-end integration tests across modules: dataset -> files -> reload ->
// index -> query equality; serialized-index querying; fast-mode (Prop 5.3)
// properties against exact mode; and maintenance under updates followed by
// querying.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "bigindex.h"
#include "search/bidirectional.h"

namespace bigindex {
namespace {

using RootScore = std::pair<VertexId, uint32_t>;

std::set<RootScore> RootScores(const std::vector<Answer>& answers) {
  std::set<RootScore> out;
  for (const Answer& a : answers) out.emplace(a.root, a.score);
  return out;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("bigindex_it_") + name))
      .string();
}

TEST(IntegrationTest, FileRoundTripPreservesQueryResults) {
  auto ds = MakeDataset("yago3", 0.003);
  ASSERT_TRUE(ds.ok());

  std::string gpath = TempPath("g.txt");
  std::string opath = TempPath("o.txt");
  ASSERT_TRUE(SaveGraphFile(ds->graph, *ds->dict, gpath).ok());
  ASSERT_TRUE(
      SaveOntologyFile(ds->ontology.ontology, *ds->dict, opath).ok());

  LabelDictionary dict2;
  auto g2 = LoadGraphFile(gpath, dict2);
  ASSERT_TRUE(g2.ok());
  auto o2 = LoadOntologyFile(opath, dict2);
  ASSERT_TRUE(o2.ok());

  // Same query expressed through each dictionary gives the same answers.
  QueryGenOptions qopt;
  qopt.sizes = {2, 3};
  qopt.min_count = 5;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  ASSERT_FALSE(workload.empty());
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  for (const QuerySpec& q : workload) {
    std::vector<LabelId> translated;
    for (LabelId l : q.keywords) {
      translated.push_back(dict2.Find(ds->dict->Name(l)));
      ASSERT_NE(translated.back(), kInvalidLabel);
    }
    auto original = bkws.Evaluate(ds->graph, q.keywords);
    auto reloaded = bkws.Evaluate(*g2, translated);
    EXPECT_EQ(RootScores(original), RootScores(reloaded)) << q.id;
  }
  std::remove(gpath.c_str());
  std::remove(opath.c_str());
}

TEST(IntegrationTest, SerializedIndexAnswersLikeFreshIndex) {
  auto ds = MakeDataset("imdb", 0.003);
  ASSERT_TRUE(ds.ok());
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = 3});
  ASSERT_TRUE(index.ok());

  std::string ipath = TempPath("i.txt");
  ASSERT_TRUE(SaveIndexFile(*index, *ds->dict, ipath).ok());
  auto loaded = LoadIndexFile(ipath, *ds->dict, &ds->ontology.ontology);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  QueryGenOptions qopt;
  qopt.sizes = {2, 2, 3};
  qopt.min_count = 5;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  for (const QuerySpec& q : workload) {
    auto fresh = EvaluateWithIndex(*index, bkws, q.keywords, {});
    auto reloaded = EvaluateWithIndex(*loaded, bkws, q.keywords, {});
    EXPECT_EQ(RootScores(fresh), RootScores(reloaded)) << q.id;
  }
  std::remove(ipath.c_str());
}

TEST(IntegrationTest, FastModeAnswersAreValidUpperBounds) {
  // Prop 5.3 mode: every fast-mode answer names a genuine root whose exact
  // score is <= the fast (generalized) score, and exact mode's root set is a
  // superset of fast mode's.
  auto ds = MakeDataset("yago3", 0.004);
  ASSERT_TRUE(ds.ok());
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = 2});
  ASSERT_TRUE(index.ok());

  QueryGenOptions qopt;
  qopt.sizes = {2, 3};
  qopt.min_count = 5;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  for (const QuerySpec& q : workload) {
    EvalOptions fast;
    fast.forced_layer = 1;
    fast.exact_verification = false;
    auto fast_answers = EvaluateWithIndex(*index, bkws, q.keywords, fast);

    EvalOptions exact;
    exact.forced_layer = 1;
    auto exact_answers = EvaluateWithIndex(*index, bkws, q.keywords, exact);
    std::set<VertexId> exact_roots;
    std::map<VertexId, uint32_t> exact_score;
    for (const Answer& a : exact_answers) {
      exact_roots.insert(a.root);
      exact_score[a.root] = a.score;
    }
    for (const Answer& a : fast_answers) {
      EXPECT_TRUE(exact_roots.count(a.root))
          << q.id << " fast root " << a.root << " is not a true root";
      if (exact_roots.count(a.root)) {
        EXPECT_GE(a.score, exact_score[a.root])
            << q.id << " fast score must upper-bound the exact score";
      }
    }
  }
}

TEST(IntegrationTest, MaintenanceThenQueryStaysEquivalent) {
  auto ds = MakeDataset("yago3", 0.002);
  ASSERT_TRUE(ds.ok());
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = 2});
  ASSERT_TRUE(index.ok());

  // Mutate: rewire a handful of edges.
  Rng rng(5);
  std::vector<GraphUpdate> ups;
  const size_t n = index->base().NumVertices();
  for (int i = 0; i < 10; ++i) {
    ups.push_back({GraphUpdate::Kind::kAddEdge,
                   static_cast<VertexId>(rng.Uniform(n)),
                   static_cast<VertexId>(rng.Uniform(n))});
  }
  ASSERT_TRUE(index->ApplyUpdates(ups).ok());

  // Post-update hierarchy answers == direct answers on the updated graph.
  QueryGenOptions qopt;
  qopt.sizes = {2, 2};
  qopt.min_count = 5;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  for (const QuerySpec& q : workload) {
    auto direct = bkws.Evaluate(index->base(), q.keywords);
    auto hier = EvaluateWithIndex(*index, bkws, q.keywords,
                                  {.forced_layer = 1});
    EXPECT_EQ(RootScores(hier), RootScores(direct)) << q.id;
  }
}

TEST(IntegrationTest, AllFourSemanticsRunThroughOneIndex) {
  auto ds = MakeDataset("yago3", 0.003);
  ASSERT_TRUE(ds.ok());
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  QueryGenOptions qopt;
  qopt.sizes = {2};
  qopt.min_count = 8;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  ASSERT_FALSE(workload.empty());
  const auto& q = workload[0].keywords;

  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  BlinksAlgorithm blinks({.d_max = 4, .top_k = 0, .block_size = 256});
  BidirectionalAlgorithm bidi({.d_max = 4, .top_k = 0});
  RCliqueAlgorithm rclique({.r = 3, .top_k = 10});

  auto a1 = EvaluateWithIndex(*index, bkws, q, {});
  auto a2 = EvaluateWithIndex(*index, blinks, q, {});
  auto a3 = EvaluateWithIndex(*index, bidi, q, {});
  auto a4 = EvaluateWithIndex(*index, rclique, q, {.top_k = 10});

  // The three rooted semantics agree exactly; r-clique returns valid
  // cliques (possibly empty if nothing is within r).
  EXPECT_EQ(RootScores(a1), RootScores(a2));
  EXPECT_EQ(RootScores(a1), RootScores(a3));
  for (const Answer& a : a4) {
    EXPECT_EQ(a.keyword_vertices.size(), q.size());
  }
}

}  // namespace
}  // namespace bigindex
