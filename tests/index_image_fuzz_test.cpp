// Corruption-fuzz suite for the flat index image loader.
//
// Property: no input — truncated, bit-flipped, header-mangled, or with a
// forged section table — makes LoadIndexImage crash or exhibit UB. Every
// corrupt image yields a non-OK Status; the rare random flip that lands in
// padding (and so still checksums clean... it cannot: checksums cover the
// padding too) must still produce a queryable index. tools/ci.sh runs this
// suite under ASan/UBSan, which is what turns "no crash" into "no UB".

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bigindex.h"
#include "testing/random_graph.h"

namespace bigindex {
namespace {

/// Shared fixture state: one healthy image all corruptions start from.
class IndexImageFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    testing::RandomGraphOptions gopt;
    gopt.num_vertices = 60;
    gopt.edge_density = 2.0;
    gopt.num_labels = 6;
    gopt.seed = 11;
    testing::RandomOntologyOptions oopt;
    oopt.num_leaves = 6;
    oopt.seed = 11;
    state_->graph = testing::MakeRandomGraph(gopt);
    state_->ontology = testing::MakeRandomOntologyDag(oopt);
    for (size_t i = 0; i < state_->ontology.LabelSlots(); ++i) {
      state_->dict.Intern("L" + std::to_string(i));
    }
    BigIndexOptions opt;
    opt.max_layers = 2;
    auto index = BigIndex::Build(state_->graph, &state_->ontology, opt);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(WriteIndexImage(*index, state_->dict, out).ok());
    state_->image = out.str();
    ASSERT_GT(state_->image.size(), IndexImageFormat::kHeaderSize);
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  /// Attempts a load of `bytes` with a fresh dictionary. Never crashes; the
  /// returned StatusOr says whether the loader accepted it.
  static StatusOr<BigIndex> TryLoad(std::string bytes) {
    // A fresh dict per attempt: a corrupt dictionary section must not be
    // able to poison state shared with later loads.
    LabelDictionary fresh;
    return LoadIndexImageFromBuffer(
        std::make_shared<const std::string>(std::move(bytes)), fresh,
        &state_->ontology);
  }

  static void ExpectRejected(std::string bytes, const char* what) {
    auto result = TryLoad(std::move(bytes));
    EXPECT_FALSE(result.ok()) << what << ": corrupt image was accepted";
  }

  struct State {
    Graph graph;
    Ontology ontology;
    LabelDictionary dict;
    std::string image;
  };
  static State* state_;
};

IndexImageFuzzTest::State* IndexImageFuzzTest::state_ = nullptr;

TEST_F(IndexImageFuzzTest, HealthyImageLoadsAndServesQueries) {
  auto loaded = TryLoad(state_->image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  BkwsAlgorithm bkws(BkwsOptions{.d_max = 4});
  auto distinct = state_->graph.DistinctLabels();
  ASSERT_GE(distinct.size(), 2u);
  std::vector<LabelId> q{distinct[0], distinct[1]};
  auto answers = EvaluateWithIndex(*loaded, bkws, q, {});
  // Must agree with evaluating on a freshly built index.
  auto rebuilt = BigIndex::Build(state_->graph, &state_->ontology,
                                 {.max_layers = 2});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(answers, EvaluateWithIndex(*rebuilt, bkws, q, {}));
}

TEST_F(IndexImageFuzzTest, EveryTruncationIsRejected) {
  const std::string& image = state_->image;
  // Every prefix length up to the header, then a sweep of longer prefixes
  // (step keeps the loop tractable on big images).
  for (size_t len = 0; len < IndexImageFormat::kHeaderSize; ++len) {
    ExpectRejected(image.substr(0, len), "header truncation");
  }
  size_t step = std::max<size_t>(1, image.size() / 512);
  for (size_t len = IndexImageFormat::kHeaderSize; len < image.size();
       len += step) {
    ExpectRejected(image.substr(0, len), "payload truncation");
  }
}

TEST_F(IndexImageFuzzTest, HeaderFieldCorruptionsAreRejected) {
  ExpectRejected("", "empty file");
  ExpectRejected("BIGX", "legacy binary-graph magic");
  ExpectRejected(std::string(1024, '\0'), "all zeros");

  std::string flipped_magic = state_->image;
  flipped_magic[0] ^= 0x40;
  ExpectRejected(std::move(flipped_magic), "flipped magic");

  std::string bad_version = state_->image;
  bad_version[8] = 99;  // version field
  ExpectRejected(std::move(bad_version), "future version");

  std::string bad_endian = state_->image;
  std::swap(bad_endian[12], bad_endian[15]);  // byte-swapped marker
  std::swap(bad_endian[13], bad_endian[14]);
  ExpectRejected(std::move(bad_endian), "endianness marker");

  std::string bad_size = state_->image;
  bad_size[16] ^= 0x01;  // recorded file size
  ExpectRejected(std::move(bad_size), "file-size mismatch");

  std::string bad_layers = state_->image;
  bad_layers[28] += 1;  // layer count no longer matches section count
  ExpectRejected(std::move(bad_layers), "layer count");

  std::string bad_header_sum = state_->image;
  bad_header_sum[56] ^= 0xFF;  // header checksum
  ExpectRejected(std::move(bad_header_sum), "header checksum");

  // Growing the file without updating the recorded size is also corruption.
  ExpectRejected(state_->image + "trailing garbage", "trailing bytes");
}

TEST_F(IndexImageFuzzTest, SectionTableCorruptionsAreRejected) {
  const size_t header = IndexImageFormat::kHeaderSize;
  const size_t entry = IndexImageFormat::kSectionEntrySize;
  uint32_t section_count = 0;
  std::memcpy(&section_count, state_->image.data() + 24, sizeof section_count);
  ASSERT_GT(section_count, 0u);

  for (uint32_t s = 0; s < section_count; ++s) {
    SCOPED_TRACE("section " + std::to_string(s));
    const size_t base = header + s * entry;

    std::string bad_kind = state_->image;
    bad_kind[base] = 77;  // unknown section kind
    ExpectRejected(std::move(bad_kind), "section kind");

    std::string bad_offset = state_->image;
    bad_offset[base + 8] ^= 0x04;  // nudge offset (breaks alignment too)
    ExpectRejected(std::move(bad_offset), "section offset");

    std::string huge_offset = state_->image;
    // Offset close to UINT64_MAX: offset + length must not wrap around.
    uint64_t huge = ~uint64_t{0} - 7;
    std::memcpy(huge_offset.data() + base + 8, &huge, sizeof huge);
    ExpectRejected(std::move(huge_offset), "overflowing offset");

    std::string bad_length = state_->image;
    bad_length[base + 16] ^= 0x08;
    ExpectRejected(std::move(bad_length), "section length");

    std::string huge_length = state_->image;
    std::memcpy(huge_length.data() + base + 16, &huge, sizeof huge);
    ExpectRejected(std::move(huge_length), "overflowing length");

    std::string bad_checksum = state_->image;
    bad_checksum[base + 24] ^= 0xFF;
    ExpectRejected(std::move(bad_checksum), "section checksum");
  }
}

TEST_F(IndexImageFuzzTest, RandomByteFlipsNeverCrash) {
  Rng rng(20260808);
  constexpr int kFlips = 400;
  for (int i = 0; i < kFlips; ++i) {
    std::string mutated = state_->image;
    // 1-3 independent single-bit or whole-byte mutations anywhere.
    int mutations = 1 + static_cast<int>(rng.Uniform(3));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(mutated.size());
      if (rng.Bernoulli(0.5)) {
        mutated[pos] ^= static_cast<char>(1u << rng.Uniform(8));
      } else {
        mutated[pos] = static_cast<char>(rng.Next());
      }
    }
    auto result = TryLoad(std::move(mutated));
    if (result.ok()) {
      // Checksums make a surviving mutation overwhelmingly likely to be a
      // no-op (flipped back onto the same value). Whatever loaded must be
      // safely queryable.
      BkwsAlgorithm bkws(BkwsOptions{.d_max = 3});
      auto distinct = state_->graph.DistinctLabels();
      std::vector<LabelId> q{distinct[0], distinct[distinct.size() - 1]};
      EvaluateWithIndex(*result, bkws, q, {});
    }
  }
}

TEST_F(IndexImageFuzzTest, RandomTruncationPlusFlipNeverCrashes) {
  Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.Uniform(state_->image.size() + 1);
    std::string mutated = state_->image.substr(0, len);
    if (!mutated.empty()) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<char>(0xFF);
    }
    ExpectRejected(std::move(mutated), "truncate+flip");
  }
}

TEST_F(IndexImageFuzzTest, InspectRejectsMalformedAndFlagsBadChecksums) {
  std::string dir = ::testing::TempDir();
  std::string good_path = dir + "/fuzz_good.img";
  std::string bad_path = dir + "/fuzz_bad.img";
  {
    std::ofstream out(good_path, std::ios::binary | std::ios::trunc);
    out << state_->image;
  }
  auto info = InspectIndexImage(good_path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, IndexImageFormat::kVersion);
  EXPECT_EQ(info->file_size, state_->image.size());
  EXPECT_EQ(info->sections.size(), 2 + 3 * size_t{info->num_layers});
  for (const auto& s : info->sections) EXPECT_TRUE(s.checksum_ok);

  // A payload flip keeps the header valid: inspect still lists sections but
  // flags the damaged checksum instead of failing outright.
  std::string damaged = state_->image;
  damaged.back() ^= 0x01;
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out << damaged;
  }
  auto bad_info = InspectIndexImage(bad_path);
  ASSERT_TRUE(bad_info.ok()) << bad_info.status().ToString();
  bool any_bad = false;
  for (const auto& s : bad_info->sections) any_bad |= !s.checksum_ok;
  EXPECT_TRUE(any_bad);

  // Truncated header: inspect fails with a Status, like the loader.
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out << state_->image.substr(0, 10);
  }
  EXPECT_FALSE(InspectIndexImage(bad_path).ok());
  EXPECT_FALSE(InspectIndexImage(dir + "/does_not_exist.img").ok());

  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST_F(IndexImageFuzzTest, BinaryGraphV2RejectsWrongHeader) {
  // The graph/ontology binary format got the same version+endianness
  // treatment; spot-check its rejections here where the fuzz machinery
  // lives (full round-trip coverage is in io_extensions_test).
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(state_->graph, state_->dict, out).ok());
  std::string bytes = out.str();

  {  // version 1 gets the explicit re-serialize message
    std::string v1 = bytes;
    v1[4] = 1;
    std::istringstream in(v1, std::ios::binary);
    LabelDictionary d;
    auto g = ReadGraphBinary(in, d);
    ASSERT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("version 1"), std::string::npos);
  }
  {  // byte-swapped endianness marker
    std::string swapped = bytes;
    std::swap(swapped[8], swapped[11]);
    std::swap(swapped[9], swapped[10]);
    std::istringstream in(swapped, std::ios::binary);
    LabelDictionary d;
    auto g = ReadGraphBinary(in, d);
    ASSERT_FALSE(g.ok());
    EXPECT_NE(g.status().message().find("endian"), std::string::npos);
  }
}

}  // namespace
}  // namespace bigindex
