// Serving-side live-update tests: IndexVersionStore publish/rollback
// semantics, LiveUpdater outcome accounting and swap wiring, the UPDATE
// verb through the line protocol (monolithic and shard-remapped), the
// FormatUpdateLine/ParseUpdateOutcomeLine wire round-trip, and the
// answer-cache epoch-invalidation race (a query racing an epoch swap must
// never be served a pre-swap cached answer for a post-swap epoch).
// tools/ci.sh re-runs this suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "core/index_io.h"
#include "engine/query_engine.h"
#include "graph/label_dictionary.h"
#include "server/line_protocol.h"
#include "server/search_service.h"
#include "update/live_updater.h"
#include "update/version_store.h"

namespace bigindex {
namespace {

GraphUpdate Add(VertexId u, VertexId v) {
  return {GraphUpdate::Kind::kAddEdge, u, v};
}
GraphUpdate Remove(VertexId u, VertexId v) {
  return {GraphUpdate::Kind::kRemoveEdge, u, v};
}

// Ontology: leaves {0..5} -> mids {6,7,8} -> root 9 (as in server_test).
Ontology MakeOntology() {
  OntologyBuilder b;
  b.AddSupertypeEdge(0, 6);
  b.AddSupertypeEdge(1, 6);
  b.AddSupertypeEdge(2, 6);
  b.AddSupertypeEdge(3, 7);
  b.AddSupertypeEdge(4, 7);
  b.AddSupertypeEdge(5, 8);
  b.AddSupertypeEdge(6, 9);
  b.AddSupertypeEdge(7, 9);
  b.AddSupertypeEdge(8, 9);
  return std::move(b.Build()).value();
}

// Path graph 0(label 0) -> 1(label 1) -> 2(label 2), plus spare vertices.
// Removing/adding 1->2 flips whether keywords {0,2} connect — the served
// answer set changes observably with each toggle.
Graph ToggleGraph() {
  GraphBuilder b;
  for (LabelId l = 0; l < 6; ++l) b.AddVertex(l);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  return std::move(b.Build()).value();
}

std::string Serialize(const BigIndex& index) {
  LabelDictionary dict;
  for (size_t i = 0; i < 10; ++i) dict.Intern("t" + std::to_string(i));
  std::ostringstream out;
  EXPECT_TRUE(WriteIndex(index, dict, out).ok());
  return out.str();
}

/// The whole write path in one harness: service + updater, swap wired.
struct UpdateFixture {
  Ontology ontology = MakeOntology();
  std::shared_ptr<const BigIndex> index;
  std::shared_ptr<const QueryEngine> engine;
  SearchService service;
  LiveUpdater updater;

  explicit UpdateFixture(Graph g = ToggleGraph(),
                         SearchServiceOptions service_options = {},
                         LiveUpdaterOptions updater_options = {})
      : index(std::make_shared<const BigIndex>(
            std::move(BigIndex::Build(g, &ontology, {.max_layers = 2}))
                .value())),
        engine(std::make_shared<const QueryEngine>(index,
                                                   QueryEngineOptions{})),
        service(engine, service_options),
        updater(index, engine, std::move(updater_options)) {
    updater.set_swap([this](std::shared_ptr<const QueryEngine> next) {
      return service.SwapEngine(std::move(next));
    });
    service.set_updater([this](std::span<const GraphUpdate> updates) {
      return updater.Apply(updates);
    });
    service.set_rollbacker([this] { return updater.Rollback(); });
  }

  EngineQuery ConnectivityQuery() {
    EngineQuery q;
    q.algorithm = "bkws";
    q.keywords = {0, 2};
    return q;
  }
};

// ---------------------------------------------------------------------------
// IndexVersionStore.

TEST(VersionStore, PublishRetainsPreviousAndAdvancesSequence) {
  UpdateFixture fx;  // only for a ready-made index/engine pair
  IndexVersionStore store;
  EXPECT_EQ(store.Current(), nullptr);
  EXPECT_EQ(store.Previous(), nullptr);
  EXPECT_EQ(store.CurrentAgeSeconds(), 0.0);

  EXPECT_EQ(store.Publish(fx.index, fx.engine), 1u);
  ASSERT_NE(store.Current(), nullptr);
  EXPECT_EQ(store.Current()->sequence, 1u);
  EXPECT_EQ(store.Previous(), nullptr);
  EXPECT_GE(store.CurrentAgeSeconds(), 0.0);

  EXPECT_EQ(store.Publish(fx.index, fx.engine), 2u);
  EXPECT_EQ(store.Current()->sequence, 2u);
  ASSERT_NE(store.Previous(), nullptr);
  EXPECT_EQ(store.Previous()->sequence, 1u);
}

TEST(VersionStore, ReadersKeepPinnedVersionsAliveAcrossPublish) {
  UpdateFixture fx;
  IndexVersionStore store;
  store.Publish(fx.index, fx.engine);
  std::shared_ptr<const IndexVersion> pinned = store.Current();
  store.Publish(fx.index, fx.engine);
  store.Publish(fx.index, fx.engine);  // generation 1 leaves the store
  // The reader's pin is the RCU grace period: the old version stays valid
  // until the last snapshot drops.
  EXPECT_EQ(pinned->sequence, 1u);
  EXPECT_NE(pinned->index, nullptr);
  EXPECT_NE(pinned->engine, nullptr);
}

TEST(VersionStore, RollbackConsumesPreviousAndRepublishes) {
  UpdateFixture fx;
  IndexVersionStore store;
  EXPECT_EQ(store.Rollback().status().code(),
            StatusCode::kFailedPrecondition);

  store.Publish(fx.index, fx.engine);
  auto other = std::make_shared<const BigIndex>(*fx.index);
  store.Publish(other, fx.engine);

  auto rolled = store.Rollback();
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(*rolled, 3u);  // a rollback is a new generation, not a rewind
  EXPECT_EQ(store.Current()->index, fx.index);
  // The previous slot is consumed: no ping-pong rollback-of-rollback.
  EXPECT_EQ(store.Previous(), nullptr);
  EXPECT_EQ(store.Rollback().status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// LiveUpdater.

TEST(LiveUpdater, OutcomeAccountingCoversWholeBatch) {
  UpdateFixture fx;
  std::vector<GraphUpdate> batch = {
      Add(3, 4),     // net add
      Add(3, 4),     // duplicate
      Add(4, 5),     // cancelled below
      Remove(4, 5),  // add-then-remove
      Remove(2, 0),  // remove of an absent edge
  };
  auto outcome = fx.updater.Apply(batch);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, 1u);
  EXPECT_EQ(outcome->skipped, 4u);
  EXPECT_NE(outcome->mode, UpdateOutcome::Mode::kNone);
  EXPECT_GT(outcome->layers_rebuilt, 0u);
  EXPECT_EQ(outcome->epoch, fx.service.epoch());
}

TEST(LiveUpdater, NoopBatchPublishesNothing) {
  UpdateFixture fx;
  const uint64_t sequence = fx.updater.versions().Current()->sequence;
  const uint64_t epoch = fx.service.epoch();
  auto outcome = fx.updater.Apply(std::vector<GraphUpdate>{Remove(5, 0)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, 0u);
  EXPECT_EQ(outcome->skipped, 1u);
  EXPECT_EQ(outcome->mode, UpdateOutcome::Mode::kNone);
  EXPECT_EQ(outcome->epoch, 0u);  // sentinel: nothing was swapped
  EXPECT_EQ(fx.updater.versions().Current()->sequence, sequence);
  EXPECT_EQ(fx.service.epoch(), epoch);
}

TEST(LiveUpdater, SuccessorMatchesRebuildAndSwapInstallsIt) {
  UpdateFixture fx;
  auto outcome = fx.updater.Apply(std::vector<GraphUpdate>{Remove(1, 2)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, 1u);

  auto updated = ApplyUpdates(fx.index->base(),
                              std::vector<GraphUpdate>{Remove(1, 2)});
  ASSERT_TRUE(updated.ok());
  auto rebuilt = BigIndex::Build(*updated, &fx.ontology, {.max_layers = 2});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(Serialize(*fx.updater.versions().Current()->index),
            Serialize(*rebuilt));
  // The serving engine now evaluates over the successor index.
  EXPECT_EQ(fx.service.engine_snapshot()->index().base().NumEdges(),
            updated->NumEdges());
}

TEST(LiveUpdater, RollbackRestoresPreviousGeneration) {
  UpdateFixture fx;
  const std::string original = Serialize(*fx.index);
  ASSERT_TRUE(fx.updater.Apply(std::vector<GraphUpdate>{Add(3, 4)}).ok());
  EXPECT_NE(Serialize(*fx.updater.versions().Current()->index), original);

  const uint64_t epoch_before = fx.service.epoch();
  auto rolled = fx.updater.Rollback();
  ASSERT_TRUE(rolled.ok());
  EXPECT_GT(*rolled, epoch_before);  // rollback swaps: readers see a bump
  EXPECT_EQ(Serialize(*fx.updater.versions().Current()->index), original);
  EXPECT_EQ(fx.updater.Rollback().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveUpdater, ForceWholesaleReportsFallbackMode) {
  LiveUpdaterOptions opts;
  opts.maintain.force_wholesale = true;
  UpdateFixture fx(ToggleGraph(), {}, std::move(opts));
  auto outcome = fx.updater.Apply(std::vector<GraphUpdate>{Add(3, 4)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->mode, UpdateOutcome::Mode::kWholesale);
  // The serving layer counts wholesale/rebuild outcomes as fallbacks.
}

// ---------------------------------------------------------------------------
// SearchService::ApplyUpdate.

TEST(ServiceUpdate, NoUpdaterWiredReturnsUnimplemented) {
  Ontology ontology = MakeOntology();
  auto index = std::make_shared<const BigIndex>(
      std::move(BigIndex::Build(ToggleGraph(), &ontology, {})).value());
  SearchService service(
      std::make_shared<const QueryEngine>(index, QueryEngineOptions{}));
  auto outcome =
      service.ApplyUpdate(std::vector<GraphUpdate>{Add(3, 4)});
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnimplemented);
  EXPECT_EQ(service.Snapshot().updates_rejected, 1u);
}

TEST(ServiceUpdate, CountersAndEpochAdvanceThroughService) {
  UpdateFixture fx;
  const uint64_t epoch = fx.service.epoch();
  auto outcome =
      fx.service.ApplyUpdate(std::vector<GraphUpdate>{Remove(1, 2)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->epoch, epoch);
  EXPECT_EQ(outcome->epoch, fx.service.epoch());

  // No-net-effect batch through the service: epoch unchanged but reported
  // as the current one (the updater's 0 sentinel never escapes).
  auto noop = fx.service.ApplyUpdate(std::vector<GraphUpdate>{Add(1, 1),
                                                              Remove(1, 1)});
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->mode, UpdateOutcome::Mode::kNone);
  EXPECT_EQ(noop->epoch, fx.service.epoch());

  ServiceStats stats = fx.service.Snapshot();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.updates_rejected, 0u);
  EXPECT_GE(stats.epoch_age_s, 0.0);
}

TEST(ServiceUpdate, QueriesSeeTheUpdatedGraph) {
  UpdateFixture fx;
  EngineQuery q = fx.ConnectivityQuery();
  auto before = fx.service.Query(q);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->answers.empty());  // 0 -> 1 -> 2 connects {0,2}

  auto cut = fx.service.ApplyUpdate(std::vector<GraphUpdate>{Remove(1, 2)});
  ASSERT_TRUE(cut.ok());
  auto after = fx.service.Query(q);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->answers.empty());

  auto heal = fx.service.ApplyUpdate(std::vector<GraphUpdate>{Add(1, 2)});
  ASSERT_TRUE(heal.ok());
  auto healed = fx.service.Query(q);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->answers, before->answers);
}

// The satellite race test: readers hammer one query while the writer
// toggles the connecting edge through full epoch swaps. The admission path
// captures the cache-key epoch before the engine snapshot is pinned, so a
// cache entry keyed epoch E is always computed on the engine of epoch E or
// newer — which the writer observes as: a query issued after ApplyUpdate
// returns NEVER sees the pre-swap answer set. TSan (tools/ci.sh) checks the
// same interleavings for data races.
TEST(CacheEpochRace, PostSwapQueryNeverServedPreSwapCache) {
  UpdateFixture fx;
  EngineQuery q = fx.ConnectivityQuery();
  auto connected = fx.service.Query(q);
  ASSERT_TRUE(connected.ok());
  const std::vector<Answer> with_edge = connected->answers;
  ASSERT_FALSE(with_edge.empty());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&fx, &q, &with_edge, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = fx.service.Query(q);
        ASSERT_TRUE(result.ok());
        // Every result is one of the two consistent states — never a
        // partial or mixed view.
        ASSERT_TRUE(result->answers.empty() || result->answers == with_edge);
      }
    });
  }

  bool present = true;
  for (int i = 0; i < 12; ++i) {
    GraphUpdate toggle = present ? Remove(1, 2) : Add(1, 2);
    present = !present;
    auto outcome = fx.service.ApplyUpdate(std::vector<GraphUpdate>{toggle});
    ASSERT_TRUE(outcome.ok());
    // Issued strictly after the swap: must reflect the new graph, even
    // though the pre-swap answer for this exact query is still cached
    // under the old epoch.
    auto result = fx.service.Query(q);
    ASSERT_TRUE(result.ok());
    if (present) {
      ASSERT_EQ(result->answers, with_edge) << "iteration " << i;
    } else {
      ASSERT_TRUE(result->answers.empty()) << "iteration " << i;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
}

// ---------------------------------------------------------------------------
// Wire format round-trip.

TEST(UpdateProtocol, FormatAndParseRoundTrip) {
  std::vector<GraphUpdate> batch = {Add(1, 2), Remove(3, 4), Add(5, 5)};
  EXPECT_EQ(FormatUpdateLine(batch), "update add:1:2 remove:3:4 add:5:5");

  UpdateOutcome out;
  ASSERT_TRUE(ParseUpdateOutcomeLine(
                  "OK applied=3 skipped=1 rebuilt=2 epoch=7 mode=incremental",
                  &out)
                  .ok());
  EXPECT_EQ(out.applied, 3u);
  EXPECT_EQ(out.skipped, 1u);
  EXPECT_EQ(out.layers_rebuilt, 2u);
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.mode, UpdateOutcome::Mode::kIncremental);

  // Unknown keys are skipped (forward compatibility); missing required
  // keys and unknown modes are errors.
  ASSERT_TRUE(ParseUpdateOutcomeLine(
                  "OK applied=0 shiny=yes epoch=1 mode=none", &out)
                  .ok());
  EXPECT_EQ(out.mode, UpdateOutcome::Mode::kNone);
  EXPECT_FALSE(ParseUpdateOutcomeLine("OK skipped=1 mode=none", &out).ok());
  EXPECT_FALSE(
      ParseUpdateOutcomeLine("OK applied=1 epoch=2 mode=sideways", &out).ok());
}

// ---------------------------------------------------------------------------
// The UPDATE verb through the line protocol.

TEST(UpdateVerb, EndToEndThroughLineHandler) {
  UpdateFixture fx;
  LineHandler handler(&fx.service, nullptr);

  LineHandler::Result r = handler.Handle("update remove:1:2 add:3:4");
  ASSERT_TRUE(r.response.starts_with("OK applied=2")) << r.response;
  UpdateOutcome outcome;
  std::string head = r.response.substr(0, r.response.find('\n'));
  ASSERT_TRUE(ParseUpdateOutcomeLine(head, &outcome).ok()) << head;
  EXPECT_EQ(outcome.epoch, fx.service.epoch());
  EXPECT_NE(outcome.mode, UpdateOutcome::Mode::kNone);

  // INFO reflects the applied batch and carries the epoch age.
  LineHandler::Result info = handler.Handle("info");
  EXPECT_NE(info.response.find("updates=2/0/"), std::string::npos)
      << info.response;
  EXPECT_NE(info.response.find("epoch_age_s="), std::string::npos);

  // Malformed ops and empty batches are protocol errors, not crashes.
  EXPECT_TRUE(handler.Handle("update").response.starts_with("ERR"));
  EXPECT_TRUE(handler.Handle("update add:1").response.starts_with("ERR"));
  EXPECT_TRUE(handler.Handle("update grow:1:2").response.starts_with("ERR"));
  EXPECT_TRUE(handler.Handle("update add:x:2").response.starts_with("ERR"));
}

// ---------------------------------------------------------------------------
// The ROLLBACK verb.

TEST(RollbackVerb, NoRollbackerWiredReturnsUnimplemented) {
  Ontology ontology = MakeOntology();
  auto index = std::make_shared<const BigIndex>(
      std::move(BigIndex::Build(ToggleGraph(), &ontology, {})).value());
  SearchService service(
      std::make_shared<const QueryEngine>(index, QueryEngineOptions{}));
  LineHandler handler(&service, nullptr);
  LineHandler::Result r = handler.Handle("rollback");
  EXPECT_TRUE(r.response.starts_with("ERR Unimplemented")) << r.response;
}

TEST(RollbackVerb, EndToEndThroughLineHandler) {
  UpdateFixture fx;
  LineHandler handler(&fx.service, nullptr);
  EngineQuery q = fx.ConnectivityQuery();
  auto before = fx.service.Query(q);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->answers.empty());  // 0 -> 1 -> 2 connects {0,2}

  // Nothing retained yet: the verb refuses instead of serving garbage.
  LineHandler::Result premature = handler.Handle("rollback");
  EXPECT_TRUE(premature.response.starts_with("ERR FailedPrecondition"))
      << premature.response;

  // Cut the connecting edge, then undo it through the verb: the pre-update
  // answers come back and the epoch advances (the rollback is itself an
  // epoch swap, never an in-place mutation).
  ASSERT_TRUE(
      handler.Handle("update remove:1:2").response.starts_with("OK"));
  auto cut = fx.service.Query(q);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut->answers.empty());
  const uint64_t epoch_before = fx.service.epoch();

  LineHandler::Result r = handler.Handle("rollback");
  ASSERT_TRUE(r.response.starts_with("OK epoch=")) << r.response;
  EXPECT_GT(fx.service.epoch(), epoch_before);
  auto restored = fx.service.Query(q);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->answers, before->answers);

  // One generation of history: a second consecutive rollback refuses.
  LineHandler::Result again = handler.Handle("rollback");
  EXPECT_TRUE(again.response.starts_with("ERR FailedPrecondition"))
      << again.response;

  // INFO and STATS expose the (successful) rollback count.
  LineHandler::Result info = handler.Handle("info");
  EXPECT_NE(info.response.find("rollbacks=1"), std::string::npos)
      << info.response;
  EXPECT_EQ(fx.service.Snapshot().rollbacks, 1u);
}

TEST(UpdateVerb, ShardRemapTranslatesAndSkipsUnowned) {
  UpdateFixture fx;
  // This "shard" owns global vertices {10,11,12,13,14,15} as locals
  // {0..5}; everything else is unowned and must be skipped, not applied.
  ShardRemapService remapped(&fx.service,
                             std::vector<VertexId>{10, 11, 12, 13, 14, 15});
  std::vector<GraphUpdate> batch = {
      Remove(11, 12),  // both owned -> local remove:1:2
      Add(10, 99),     // 99 unowned -> skipped
      Add(7, 8),       // neither owned -> skipped
  };
  auto outcome = remapped.ApplyUpdate(batch);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, 1u);
  EXPECT_EQ(outcome->skipped, 2u);
  EXPECT_FALSE(fx.service.engine_snapshot()->index().base().HasEdge(1, 2));

  // A batch with no owned endpoints never reaches the inner service.
  auto all_foreign =
      remapped.ApplyUpdate(std::vector<GraphUpdate>{Add(20, 21)});
  ASSERT_TRUE(all_foreign.ok());
  EXPECT_EQ(all_foreign->applied, 0u);
  EXPECT_EQ(all_foreign->skipped, 1u);
  EXPECT_EQ(all_foreign->epoch, fx.service.epoch());
}

TEST(UpdateVerb, DefaultQueryServiceIsReadOnly) {
  UpdateFixture fx;
  // ShardRemapService with an identity map passes through; a QueryService
  // subclass that never overrides ApplyUpdate reports Unimplemented — the
  // compiled-in default keeps read-only services read-only.
  class ReadOnly : public QueryService {
   public:
    explicit ReadOnly(QueryService* inner) : inner_(inner) {}
    StatusOr<QueryResult> Query(EngineQuery query) override {
      return inner_->Query(std::move(query));
    }
    uint64_t epoch() const override { return inner_->epoch(); }
    uint64_t BumpEpoch() override { return inner_->BumpEpoch(); }
    ServiceStats Snapshot() const override { return inner_->Snapshot(); }
    std::vector<std::string> AlgorithmNames() const override {
      return inner_->AlgorithmNames();
    }
    ServiceIdentity Identity() const override { return inner_->Identity(); }

   private:
    QueryService* inner_;
  } read_only(&fx.service);
  EXPECT_EQ(read_only.ApplyUpdate(std::vector<GraphUpdate>{Add(0, 1)})
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace bigindex
