// Seeded random labeled-graph and ontology-DAG generation for test suites.
//
// Unlike the workload generators (src/workload/), which are tuned to imitate
// knowledge-graph *shape*, these produce adversarially unstructured inputs:
// uniform or Zipf-skewed labels over arbitrary edge soup, plus degenerate
// corners (empty graph, single vertex, one label). They are the substrate of
// the randomized differential tests — any pair of implementations that must
// agree (serial vs parallel Bisim, build determinism) is exercised over many
// seeds of these. Everything is a pure function of its options, so a failing
// seed reproduces exactly.

#ifndef BIGINDEX_TESTS_TESTING_RANDOM_GRAPH_H_
#define BIGINDEX_TESTS_TESTING_RANDOM_GRAPH_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "ontology/ontology.h"
#include "util/random.h"

namespace bigindex {
namespace testing {

/// Knobs for MakeRandomGraph.
struct RandomGraphOptions {
  /// Vertex count; 0 yields the empty graph.
  size_t num_vertices = 100;

  /// Mean out-degree: ~num_vertices * edge_density directed edges are drawn
  /// (duplicates collapse, so the realized count can be slightly lower).
  double edge_density = 2.0;

  /// Labels are drawn from [0, num_labels); 1 gives the all-same-label case.
  size_t num_labels = 8;

  /// Zipf exponent of the label distribution; 0 = uniform, ~1 = the heavy
  /// skew of real knowledge graphs.
  double label_skew = 0.0;

  /// Probability that an edge is a self-loop candidate drawn separately
  /// (bisimulation must handle them; keep a trickle by default).
  double self_loop_fraction = 0.02;

  uint64_t seed = 1;
};

/// Generates a random directed labeled graph. Deterministic given options.
inline Graph MakeRandomGraph(const RandomGraphOptions& options) {
  GraphBuilder b;
  const size_t n = options.num_vertices;
  if (n == 0) return std::move(b.Build()).value();
  Rng rng(options.seed);
  ZipfSampler labels(options.num_labels == 0 ? 1 : options.num_labels,
                     options.label_skew);
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(labels.Sample(rng)));
  }
  const size_t target_edges =
      static_cast<size_t>(static_cast<double>(n) * options.edge_density);
  for (size_t i = 0; i < target_edges; ++i) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = rng.Bernoulli(options.self_loop_fraction)
                     ? u
                     : static_cast<VertexId>(rng.Uniform(n));
    b.AddEdge(u, v);
  }
  return std::move(b.Build()).value();
}

/// Knobs for MakeRandomOntologyDag.
struct RandomOntologyOptions {
  /// Leaf types are [0, num_leaves) — the ids MakeRandomGraph labels with
  /// when num_labels == num_leaves.
  size_t num_leaves = 8;

  /// Supertype levels above the leaves (>= 1 for any generalization to
  /// exist).
  uint32_t height = 3;

  /// Mean number of types per level shrinks by this factor level over level
  /// (coarser going up), floored at one type per level.
  double shrink = 2.0;

  /// Probability that a type gets a second parent — exercises the DAG (not
  /// tree) shape of real ontologies, where greedy search must pick among
  /// multiple supertypes.
  double multi_parent = 0.25;

  uint64_t seed = 1;
};

/// Generates a random ontology DAG above leaf types [0, num_leaves). Interior
/// ids continue densely after the leaves. Acyclic by construction (edges only
/// point to higher levels). Deterministic given options.
inline Ontology MakeRandomOntologyDag(const RandomOntologyOptions& options) {
  OntologyBuilder b;
  Rng rng(options.seed);
  std::vector<LabelId> level;  // current level, bottom-up
  level.reserve(options.num_leaves);
  for (size_t i = 0; i < options.num_leaves; ++i) {
    level.push_back(static_cast<LabelId>(i));
  }
  LabelId next_id = static_cast<LabelId>(options.num_leaves);
  double width = static_cast<double>(options.num_leaves);
  for (uint32_t h = 0; h < options.height && !level.empty(); ++h) {
    width = width / (options.shrink <= 1.0 ? 2.0 : options.shrink);
    size_t parents_count =
        width < 1.0 ? 1 : static_cast<size_t>(width);
    std::vector<LabelId> parents;
    parents.reserve(parents_count);
    for (size_t i = 0; i < parents_count; ++i) parents.push_back(next_id++);
    for (LabelId child : level) {
      LabelId p = parents[rng.Uniform(parents.size())];
      b.AddSupertypeEdge(child, p);
      if (parents.size() > 1 && rng.Bernoulli(options.multi_parent)) {
        LabelId q = parents[rng.Uniform(parents.size())];
        if (q != p) b.AddSupertypeEdge(child, q);
      }
    }
    level = std::move(parents);
  }
  return std::move(b.Build()).value();
}

/// A graph plus a compatible ontology DAG over its label space, from one
/// seed — the common setup of construction tests.
struct RandomInstance {
  Graph graph;
  Ontology ontology;
};

inline RandomInstance MakeRandomInstance(const RandomGraphOptions& graph_opts,
                                         const RandomOntologyOptions& ont_opts) {
  RandomInstance inst;
  inst.graph = MakeRandomGraph(graph_opts);
  inst.ontology = MakeRandomOntologyDag(ont_opts);
  return inst;
}

}  // namespace testing
}  // namespace bigindex

#endif  // BIGINDEX_TESTS_TESTING_RANDOM_GRAPH_H_
