// Randomized differential tests for parallel index construction.
//
// The contract under test (BisimOptions::pool, BuildOptions): parallel and
// serial construction are *byte-identical* — same quotient graphs, same
// Bisim^-1 mappings, same serialized index — for every thread count. The
// harness drives both paths over many seeded random graphs
// (tests/testing/random_graph.h) plus the degenerate corners, so any
// scheduling-dependent divergence (chunk-order id drift, RNG stream mixups,
// FP reduction reordering) shows up as a concrete failing seed.
//
// These suites are in the TSan preset of tools/ci.sh: the same runs that
// check equivalence also check freedom from data races.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bisim/bisimulation.h"
#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "core/index_io.h"
#include "engine/executor.h"
#include "testing/random_graph.h"
#include "workload/datasets.h"

namespace bigindex {
namespace {

using bigindex::testing::MakeRandomGraph;
using bigindex::testing::RandomGraphOptions;

// Mappings must agree vertex-for-vertex, not just up to renaming: the
// deterministic block-id contract is exact equality.
void ExpectSameBisim(const BisimResult& serial, const BisimResult& parallel,
                     const std::string& context) {
  EXPECT_TRUE(GraphsIdentical(serial.summary, parallel.summary)) << context;
  ASSERT_EQ(serial.mapping.NumVertices(), parallel.mapping.NumVertices())
      << context;
  ASSERT_EQ(serial.mapping.NumSupernodes(), parallel.mapping.NumSupernodes())
      << context;
  for (VertexId v = 0; v < serial.mapping.NumVertices(); ++v) {
    ASSERT_EQ(serial.mapping.SuperOf(v), parallel.mapping.SuperOf(v))
        << context << " vertex " << v;
  }
  // Bisim^-1 (member lists) follows from SuperOf equality, but check a layer
  // of it anyway — it is what specialization actually reads.
  for (VertexId s = 0; s < serial.mapping.NumSupernodes(); ++s) {
    auto a = serial.mapping.Members(s);
    auto b = parallel.mapping.Members(s);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()))
        << context << " supernode " << s;
  }
  EXPECT_EQ(serial.refinement_rounds, parallel.refinement_rounds) << context;
}

TEST(ParallelBisimTest, MatchesSerialOnRandomGraphs) {
  // >= 100 random graphs, each checked at 1, 2, and 8 threads. Sizes, edge
  // densities, label alphabets, skews, and relation directions all cycle
  // with the seed; min_chunk_vertices is lowered so even the small graphs
  // take the multi-chunk path.
  ExecutorPool pool1(1), pool2(2), pool8(8);
  ExecutorPool* pools[] = {&pool1, &pool2, &pool8};
  const BisimDirection directions[] = {BisimDirection::kSuccessor,
                                       BisimDirection::kPredecessor,
                                       BisimDirection::kBoth};
  for (uint64_t seed = 0; seed < 100; ++seed) {
    RandomGraphOptions opt;
    opt.seed = seed;
    opt.num_vertices = 20 + (seed * 37) % 400;
    opt.edge_density = 0.5 + static_cast<double>(seed % 7);
    opt.num_labels = 1 + seed % 12;
    opt.label_skew = (seed % 3) * 0.6;
    Graph g = MakeRandomGraph(opt);

    BisimOptions base;
    base.direction = directions[seed % 3];
    BisimResult serial = ComputeBisimulation(g, base);
    if (base.direction != BisimDirection::kPredecessor) {
      // Successor-side stability holds for kSuccessor and for the finer
      // kBoth partition; a predecessor-only quotient need not satisfy it.
      EXPECT_TRUE(IsStableBisimulation(g, serial.mapping)) << "seed " << seed;
    }

    for (ExecutorPool* pool : pools) {
      BisimOptions par = base;
      par.pool = pool;
      par.min_chunk_vertices = 16;
      BisimResult parallel = ComputeBisimulation(g, par);
      ExpectSameBisim(serial, parallel,
                      "seed " + std::to_string(seed) + " threads " +
                          std::to_string(pool->num_workers()));
    }
  }
}

TEST(ParallelBisimTest, MatchesSerialAtDefaultChunkThreshold) {
  // One graph big enough to engage the production chunking (>= 2 * 2048
  // vertices) without any test-only knobs.
  RandomGraphOptions opt;
  opt.seed = 17;
  opt.num_vertices = 6000;
  opt.edge_density = 3.0;
  opt.num_labels = 10;
  opt.label_skew = 0.8;
  Graph g = MakeRandomGraph(opt);

  BisimResult serial = ComputeBisimulation(g);
  ExecutorPool pool(8);
  BisimResult parallel = ComputeBisimulation(g, {.pool = &pool});
  ExpectSameBisim(serial, parallel, "default-threshold 6000 vertices");
}

TEST(ParallelBisimTest, EdgeCases) {
  ExecutorPool pool(8);
  struct Case {
    const char* name;
    RandomGraphOptions opt;
  };
  std::vector<Case> cases;
  {
    Case empty{"empty", {}};
    empty.opt.num_vertices = 0;
    cases.push_back(empty);
    Case single{"single-node", {}};
    single.opt.num_vertices = 1;
    single.opt.edge_density = 0.0;
    cases.push_back(single);
    Case single_loop{"single-node-self-loop", {}};
    single_loop.opt.num_vertices = 1;
    single_loop.opt.edge_density = 2.0;
    single_loop.opt.self_loop_fraction = 1.0;
    cases.push_back(single_loop);
    Case same_label{"all-same-label", {}};
    same_label.opt.num_vertices = 150;
    same_label.opt.num_labels = 1;
    same_label.opt.edge_density = 2.5;
    same_label.opt.seed = 5;
    cases.push_back(same_label);
    Case no_edges{"no-edges", {}};
    no_edges.opt.num_vertices = 64;
    no_edges.opt.edge_density = 0.0;
    no_edges.opt.num_labels = 4;
    no_edges.opt.seed = 6;
    cases.push_back(no_edges);
  }
  for (const Case& c : cases) {
    Graph g = MakeRandomGraph(c.opt);
    BisimResult serial = ComputeBisimulation(g);
    BisimOptions par;
    par.pool = &pool;
    par.min_chunk_vertices = 1;
    BisimResult parallel = ComputeBisimulation(g, par);
    ExpectSameBisim(serial, parallel, c.name);
  }
}

// ---- whole-build determinism ----

std::string SerializeBuild(const Dataset& ds, size_t num_threads,
                           uint64_t seed) {
  BigIndexOptions opt;
  opt.max_layers = 3;
  // Greedy configuration search exercises the full parallel surface:
  // sampling, baseline estimation, and candidate scoring, on top of Bisim.
  opt.use_greedy_config = true;
  opt.config_search.theta = 0.9;
  opt.config_search.cost.sample_count = 40;
  opt.build.num_threads = num_threads;
  opt.build.seed = seed;
  auto index = BigIndex::Build(ds.graph, &ds.ontology.ontology, opt);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  std::ostringstream out;
  EXPECT_TRUE(WriteIndex(*index, *ds.dict, out).ok());
  return std::move(out).str();
}

TEST(BuildDeterminismTest, ByteIdenticalAcrossRunsAndThreadCounts) {
  auto ds = MakeDataset("yago3", 0.002);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  const std::string serial = SerializeBuild(*ds, 0, 123);
  ASSERT_FALSE(serial.empty());
  // Same options, fresh run: bit-for-bit identical.
  EXPECT_EQ(serial, SerializeBuild(*ds, 0, 123));
  // Any thread count: still identical.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    EXPECT_EQ(serial, SerializeBuild(*ds, threads, 123))
        << threads << " threads";
  }
  // The seed is load-bearing: a different master seed may legitimately pick
  // different samples (this guards against the seed being ignored — equality
  // here would be suspicious, but is not *impossible*, so only check that
  // the build still succeeds).
  EXPECT_FALSE(SerializeBuild(*ds, 2, 999).empty());
}

TEST(BuildDeterminismTest, DefaultConfigBuildIdenticalAcrossThreadCounts) {
  // The experiments' default (one-step generalization, no sampling) must be
  // thread-count invariant too — this isolates the Bisim contract inside a
  // multi-layer build.
  auto ds = MakeDataset("dbpedia", 0.001);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  BigIndexOptions opt;
  opt.max_layers = 4;
  auto reference = BigIndex::Build(ds->graph, &ds->ontology.ontology, opt);
  ASSERT_TRUE(reference.ok());
  std::ostringstream ref_out;
  ASSERT_TRUE(WriteIndex(*reference, *ds->dict, ref_out).ok());

  opt.build.num_threads = 4;
  auto parallel = BigIndex::Build(ds->graph, &ds->ontology.ontology, opt);
  ASSERT_TRUE(parallel.ok());
  std::ostringstream par_out;
  ASSERT_TRUE(WriteIndex(*parallel, *ds->dict, par_out).ok());
  EXPECT_EQ(ref_out.str(), par_out.str());
}

}  // namespace
}  // namespace bigindex
