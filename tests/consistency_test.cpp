// Cross-cutting consistency sweeps: parameterized equivalence of the whole
// pipeline across generated datasets and query shapes, r-clique top-k
// consistency against exhaustive enumeration, and Blinks early-termination
// invariance over many seeds. These run on the same generators the benches
// use, tying the reproduction workloads into the correctness suite.

#include <gtest/gtest.h>

#include <set>

#include "bigindex.h"
#include "search/bidirectional.h"

namespace bigindex {
namespace {

using RootScore = std::pair<VertexId, uint32_t>;

std::set<RootScore> RootScores(const std::vector<Answer>& answers) {
  std::set<RootScore> out;
  for (const Answer& a : answers) out.emplace(a.root, a.score);
  return out;
}

// ---------- dataset-level Thm 4.2 sweep ----------

struct DatasetCase {
  const char* name;
  double scale;
  size_t query_size;
  uint64_t query_seed;
};

void PrintTo(const DatasetCase& c, std::ostream* os) {
  *os << c.name << "/s" << c.scale << "/q" << c.query_size << "/seed"
      << c.query_seed;
}

class DatasetEquivalenceTest : public ::testing::TestWithParam<DatasetCase> {
 protected:
  void SetUp() override {
    auto ds = MakeDataset(GetParam().name, GetParam().scale);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<Dataset>(std::move(ds).value());
    auto index = BigIndex::Build(dataset_->graph,
                                 &dataset_->ontology.ontology,
                                 {.max_layers = 2});
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<BigIndex>(std::move(index).value());

    QueryGenOptions qopt;
    qopt.sizes = {GetParam().query_size};
    qopt.min_count = 5;
    qopt.seed = GetParam().query_seed;
    auto workload = GenerateQueryWorkload(*dataset_, qopt);
    ASSERT_FALSE(workload.empty());
    query_ = workload[0].keywords;
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<BigIndex> index_;
  std::vector<LabelId> query_;
};

TEST_P(DatasetEquivalenceTest, BkwsThm42) {
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  auto direct = RootScores(bkws.Evaluate(index_->base(), query_));
  for (size_t m = 0; m <= index_->NumLayers(); ++m) {
    if (!QueryDistinctAtLayer(*index_, query_, m)) continue;
    auto hier = EvaluateWithIndex(*index_, bkws, query_,
                                  {.forced_layer = static_cast<int>(m)});
    EXPECT_EQ(RootScores(hier), direct) << "layer " << m;
  }
}

TEST_P(DatasetEquivalenceTest, BidirectionalAgreesWithBkws) {
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  BidirectionalAlgorithm bidi({.d_max = 4, .top_k = 0});
  EXPECT_EQ(RootScores(bidi.Evaluate(index_->base(), query_)),
            RootScores(bkws.Evaluate(index_->base(), query_)));
}

TEST_P(DatasetEquivalenceTest, GeneralizedAnswersCoverDirectRoots) {
  // Lemma 4.1 at the system level: every direct answer root's image appears
  // among the generalized answers' root candidates at layer 1.
  if (index_->NumLayers() < 1) GTEST_SKIP();
  if (!QueryDistinctAtLayer(*index_, query_, 1)) GTEST_SKIP();
  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  auto direct = bkws.Evaluate(index_->base(), query_);

  auto qm = index_->GeneralizeKeywords(query_, 1);
  auto generalized = bkws.Evaluate(index_->LayerGraph(1), qm);
  std::set<VertexId> generalized_roots;
  for (const Answer& a : generalized) generalized_roots.insert(a.root);
  for (const Answer& a : direct) {
    EXPECT_TRUE(generalized_roots.count(index_->MapUp(a.root, 0, 1)))
        << "root " << a.root;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, DatasetEquivalenceTest,
    ::testing::Values(DatasetCase{"yago3", 0.002, 2, 1},
                      DatasetCase{"yago3", 0.002, 3, 2},
                      DatasetCase{"dbpedia", 0.001, 2, 3},
                      DatasetCase{"imdb", 0.002, 2, 4},
                      DatasetCase{"imdb", 0.002, 3, 5},
                      DatasetCase{"synt-1m", 0.01, 2, 6}));

// ---------- r-clique: greedy top-k vs exhaustive enumeration ----------

struct RCliqueCase {
  uint64_t seed;
  size_t n, m;
};

class RCliqueConsistencyTest : public ::testing::TestWithParam<RCliqueCase> {
};

Graph SmallRandomGraph(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(4)));
  }
  for (size_t i = 0; i < m; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
              static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(b.Build()).value();
}

TEST_P(RCliqueConsistencyTest, EveryGreedyAnswerAppearsInEnumeration) {
  const auto& c = GetParam();
  Graph g = SmallRandomGraph(c.seed, c.n, c.m);
  auto index = NeighborIndex::Build(g, 3);
  ASSERT_TRUE(index.ok());
  auto greedy = RCliqueSearch(g, *index, {0, 1}, {.r = 3, .top_k = 50});
  auto all = RCliqueEnumerateAll(g, *index, {0, 1}, 3);
  std::set<std::vector<VertexId>> valid;
  for (const Answer& a : all) valid.insert(a.keyword_vertices);
  for (const Answer& a : greedy) {
    EXPECT_TRUE(valid.count(a.keyword_vertices))
        << "greedy produced an invalid tuple";
  }
}

TEST_P(RCliqueConsistencyTest, TwoKeywordTopKIsExact) {
  // With |Q| = 2 the greedy candidate for each anchor IS the optimum for
  // that anchor, and Lawler decomposition enumerates disjoint spaces — the
  // top-k weights must match enumeration's top-k weights.
  const auto& c = GetParam();
  Graph g = SmallRandomGraph(c.seed ^ 0xAA, c.n, c.m);
  auto index = NeighborIndex::Build(g, 3);
  ASSERT_TRUE(index.ok());
  auto greedy = RCliqueSearch(g, *index, {0, 1}, {.r = 3, .top_k = 5});
  auto all = RCliqueEnumerateAll(g, *index, {0, 1}, 3);
  for (size_t i = 0; i < greedy.size() && i < all.size(); ++i) {
    EXPECT_EQ(greedy[i].score, all[i].score) << "rank " << i;
  }
  EXPECT_EQ(greedy.size(), std::min<size_t>(5, all.size()));
}

INSTANTIATE_TEST_SUITE_P(Random, RCliqueConsistencyTest,
                         ::testing::Values(RCliqueCase{1, 40, 100},
                                           RCliqueCase{2, 60, 150},
                                           RCliqueCase{3, 50, 200},
                                           RCliqueCase{4, 30, 60},
                                           RCliqueCase{5, 70, 210}));

// ---------- Blinks early termination invariance ----------

TEST(BlinksConsistencyTest, EarlyTerminationNeverChangesTopK) {
  for (uint64_t seed = 100; seed < 112; ++seed) {
    Rng rng(seed);
    GraphBuilder b;
    for (int i = 0; i < 150; ++i) {
      b.AddVertex(static_cast<LabelId>(rng.Uniform(5)));
    }
    for (int i = 0; i < 450; ++i) {
      b.AddEdge(static_cast<VertexId>(rng.Uniform(150)),
                static_cast<VertexId>(rng.Uniform(150)));
    }
    Graph g = std::move(b.Build()).value();
    BlinksIndex index = BlinksIndex::Build(g, 32);
    auto full = BlinksSearch(g, index, {0, 1, 2}, {.d_max = 5, .top_k = 0});
    for (size_t k : {1, 3, 7}) {
      auto topk =
          BlinksSearch(g, index, {0, 1, 2},
                       {.d_max = 5, .top_k = k});
      size_t expect = std::min(k, full.size());
      ASSERT_EQ(topk.size(), expect) << "seed " << seed << " k " << k;
      for (size_t i = 0; i < expect; ++i) {
        EXPECT_EQ(topk[i].root, full[i].root) << "seed " << seed;
        EXPECT_EQ(topk[i].score, full[i].score);
      }
    }
  }
}

}  // namespace
}  // namespace bigindex
