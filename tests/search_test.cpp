// Tests for the three keyword search semantics: bkws (backward search),
// Blinks (ranked distinct-root top-k + bi-level index), and r-clique
// (distance-bounded multi-center answers + neighbor index).

#include <gtest/gtest.h>

#include <set>

#include "graph/traversal.h"
#include "search/answer.h"
#include "search/bkws.h"
#include "search/blinks.h"
#include "search/partitioner.h"
#include "search/rclique.h"
#include "util/random.h"

namespace bigindex {
namespace {

Graph BuildGraph(std::vector<LabelId> labels,
                 std::vector<std::pair<VertexId, VertexId>> edges) {
  GraphBuilder b;
  for (LabelId l : labels) b.AddVertex(l);
  for (auto [u, v] : edges) b.AddEdge(u, v);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Graph RandomGraph(uint64_t seed, size_t n, size_t m, size_t num_labels) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(num_labels)));
  }
  for (size_t i = 0; i < m; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
              static_cast<VertexId>(rng.Uniform(n)));
  }
  return std::move(b.Build()).value();
}

// ---------- answer helpers ----------

TEST(AnswerTest, DeterministicOrdering) {
  Answer a{.vertices = {1}, .keyword_vertices = {1}, .root = 1, .score = 3};
  Answer b{.vertices = {2}, .keyword_vertices = {2}, .root = 2, .score = 3};
  Answer c{.vertices = {0}, .keyword_vertices = {0}, .root = 0, .score = 1};
  std::vector<Answer> v{b, a, c};
  SortAnswers(v);
  EXPECT_EQ(v[0].root, 0u);
  EXPECT_EQ(v[1].root, 1u);
  EXPECT_EQ(v[2].root, 2u);
}

TEST(AnswerTest, CanonicalizeDedupsAndSorts) {
  Answer a;
  a.vertices = {5, 2, 5, 1};
  CanonicalizeAnswer(a);
  EXPECT_EQ(a.vertices, (std::vector<VertexId>{1, 2, 5}));
}

TEST(AnswerTest, ConnectivityCheck) {
  Graph g = BuildGraph({0, 0, 0, 0}, {{0, 1}, {2, 3}});
  Answer connected;
  connected.vertices = {0, 1};
  Answer split;
  split.vertices = {0, 3};
  EXPECT_TRUE(AnswerIsConnected(g, connected));
  EXPECT_FALSE(AnswerIsConnected(g, split));
}

TEST(AnswerTest, ToStringSmoke) {
  Answer a{.vertices = {1, 2}, .keyword_vertices = {2}, .root = 1, .score = 7};
  EXPECT_EQ(AnswerToString(a), "root=1 score=7 kw=[2] V={1,2}");
}

// ---------- bkws ----------

// Paper Fig. 1 in miniature:
//   r(0,Root) -> a(1,KwA) ; r -> m(2,Mid) -> b(3,KwB)
// Query {KwA, KwB}: root 0 with dists 1 and 2, score 3.
TEST(BkwsTest, FindsRootedTree) {
  Graph g = BuildGraph({0, 1, 2, 3}, {{0, 1}, {0, 2}, {2, 3}});
  auto answers = BackwardKeywordSearch(g, {1, 3}, {.d_max = 3});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].root, 0u);
  EXPECT_EQ(answers[0].score, 3u);
  EXPECT_EQ(answers[0].keyword_vertices, (std::vector<VertexId>{1, 3}));
  // Path vertices materialized: {0,1,2,3}.
  EXPECT_EQ(answers[0].vertices, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(BkwsTest, RespectsDmax) {
  // Chain 0 -> 1 -> 2 -> 3(KwA); keyword at distance 3 from vertex 0.
  Graph g = BuildGraph({0, 0, 0, 1}, {{0, 1}, {1, 2}, {2, 3}});
  auto far = BackwardKeywordSearch(g, {1}, {.d_max = 2});
  // Roots within 2 hops of the keyword: 1, 2, 3.
  EXPECT_EQ(far.size(), 3u);
  auto near = BackwardKeywordSearch(g, {1}, {.d_max = 3});
  EXPECT_EQ(near.size(), 4u);
}

TEST(BkwsTest, KeywordVertexIsItsOwnRoot) {
  Graph g = BuildGraph({1}, {});
  auto answers = BackwardKeywordSearch(g, {1}, {});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].root, 0u);
  EXPECT_EQ(answers[0].score, 0u);
}

TEST(BkwsTest, MissingKeywordMeansNoAnswers) {
  Graph g = BuildGraph({0, 1}, {{0, 1}});
  EXPECT_TRUE(BackwardKeywordSearch(g, {1, 9}, {}).empty());
}

TEST(BkwsTest, EmptyQueryMeansNoAnswers) {
  Graph g = BuildGraph({0}, {});
  EXPECT_TRUE(BackwardKeywordSearch(g, {}, {}).empty());
}

TEST(BkwsTest, TopKTruncatesByScore) {
  // Star: center 0 -> {1(KwA), 2(KwB)}; also 3 -> 0.
  Graph g = BuildGraph({0, 1, 2, 0}, {{0, 1}, {0, 2}, {3, 0}});
  auto all = BackwardKeywordSearch(g, {1, 2}, {.d_max = 3});
  ASSERT_EQ(all.size(), 2u);  // roots 0 (score 2) and 3 (score 4)
  EXPECT_EQ(all[0].root, 0u);
  EXPECT_LT(all[0].score, all[1].score);
  auto top1 = BackwardKeywordSearch(g, {1, 2}, {.d_max = 3, .top_k = 1});
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].root, 0u);
}

TEST(BkwsTest, AnswersAreConnectedTrees) {
  Graph g = RandomGraph(77, 60, 150, 4);
  auto answers = BackwardKeywordSearch(g, {0, 1, 2}, {.d_max = 4});
  for (const Answer& a : answers) {
    EXPECT_TRUE(AnswerIsConnected(g, a)) << AnswerToString(a);
    // Each keyword vertex carries the right label and is within d_max.
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(g.label(a.keyword_vertices[i]), static_cast<LabelId>(i));
      EXPECT_LE(ShortestDistance(g, a.root, a.keyword_vertices[i], 10), 4u);
    }
  }
}

TEST(BkwsTest, ScoreEqualsSumOfShortestDistances) {
  Graph g = RandomGraph(78, 40, 100, 3);
  auto answers = BackwardKeywordSearch(g, {0, 2}, {.d_max = 4});
  for (const Answer& a : answers) {
    uint32_t expect = 0;
    for (LabelId q : {0, 2}) {
      uint32_t best = kInfDistance;
      for (VertexId v : g.VerticesWithLabel(q)) {
        best = std::min(best, ShortestDistance(g, a.root, v, 4));
      }
      ASSERT_NE(best, kInfDistance);
      expect += best;
    }
    EXPECT_EQ(a.score, expect) << AnswerToString(a);
  }
}

// ---------- partitioner ----------

TEST(PartitionerTest, CoversAllVertices) {
  Graph g = RandomGraph(5, 100, 250, 3);
  Partition p = PartitionGraph(g, 16);
  EXPECT_EQ(p.NumVertices(), 100u);
  std::vector<bool> seen(100, false);
  for (uint32_t b = 0; b < p.NumBlocks(); ++b) {
    EXPECT_LE(p.BlockMembers(b).size(), 16u);
    for (VertexId v : p.BlockMembers(b)) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
      EXPECT_EQ(p.BlockOf(v), b);
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(PartitionerTest, SingleBlockWhenTargetLarge) {
  Graph g = BuildGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  Partition p = PartitionGraph(g, 100);
  EXPECT_EQ(p.NumBlocks(), 1u);
}

TEST(PartitionerTest, PortalsAreCrossingVertices) {
  // Two 2-vertex components joined by edge 1 -> 2, block size 2 forces the
  // components apart.
  Graph g = BuildGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  Partition p = PartitionGraph(g, 2);
  auto portals = ComputePortals(g, p);
  for (VertexId v : portals) {
    bool crossing = false;
    for (VertexId w : g.OutNeighbors(v)) {
      crossing |= p.BlockOf(w) != p.BlockOf(v);
    }
    for (VertexId w : g.InNeighbors(v)) {
      crossing |= p.BlockOf(w) != p.BlockOf(v);
    }
    EXPECT_TRUE(crossing);
  }
  EXPECT_FALSE(portals.empty());
}

// ---------- Blinks ----------

TEST(BlinksIndexTest, InBlockDistances) {
  // 0 -> 1 -> 2(Kw); single block.
  Graph g = BuildGraph({0, 0, 1}, {{0, 1}, {1, 2}});
  BlinksIndex index = BlinksIndex::Build(g, 100);
  EXPECT_EQ(index.InBlockKeywordDistance(2, 1), 0u);
  EXPECT_EQ(index.InBlockKeywordDistance(1, 1), 1u);
  EXPECT_EQ(index.InBlockKeywordDistance(0, 1), 2u);
  EXPECT_EQ(index.InBlockKeywordDistance(0, 9), kInfDistance);
}

TEST(BlinksIndexTest, InBlockDistanceRespectsBlockBoundary) {
  // Path 0 -> 1 -> 2 -> 3(Kw), block size 2 splits {0,1} | {2,3}.
  Graph g = BuildGraph({0, 0, 0, 1}, {{0, 1}, {1, 2}, {2, 3}});
  BlinksIndex index = BlinksIndex::Build(g, 2);
  // Vertex 1 is in the first block, which contains no Kw vertex.
  EXPECT_EQ(index.InBlockKeywordDistance(1, 1), kInfDistance);
  EXPECT_EQ(index.InBlockKeywordDistance(2, 1), 1u);
}

TEST(BlinksIndexTest, KeywordBlockLists) {
  Graph g = BuildGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}});
  BlinksIndex index = BlinksIndex::Build(g, 2);
  auto blocks = index.BlocksWithKeyword(1);
  EXPECT_EQ(blocks.size(), 2u);
  EXPECT_TRUE(index.BlocksWithKeyword(7).empty());
}

TEST(BlinksIndexTest, BiLevelSmallerThanSingleLevel) {
  Graph g = RandomGraph(11, 300, 900, 30);
  BlinksIndex index = BlinksIndex::Build(g, 32);
  EXPECT_GT(index.MemoryBytes(), 0u);
  EXPECT_LT(index.MemoryBytes(), BlinksIndex::SingleLevelMemoryEstimate(g) * 2);
}

TEST(BlinksTest, MatchesBkwsSemantics) {
  // With top_k = 0 Blinks must return exactly the distinct-root answer set
  // of backward search (same roots, same scores).
  for (uint64_t seed : {1, 2, 3, 4}) {
    Graph g = RandomGraph(seed, 80, 200, 4);
    BlinksIndex index = BlinksIndex::Build(g, 16);
    auto blinks =
        BlinksSearch(g, index, {0, 1}, {.d_max = 4, .top_k = 0});
    auto bkws = BackwardKeywordSearch(g, {0, 1}, {.d_max = 4});
    ASSERT_EQ(blinks.size(), bkws.size()) << "seed " << seed;
    for (size_t i = 0; i < blinks.size(); ++i) {
      EXPECT_EQ(blinks[i].root, bkws[i].root);
      EXPECT_EQ(blinks[i].score, bkws[i].score);
    }
  }
}

TEST(BlinksTest, TopKPrefixMatchesFullRun) {
  for (uint64_t seed : {10, 20, 30, 40, 50}) {
    Graph g = RandomGraph(seed, 120, 360, 5);
    BlinksIndex index = BlinksIndex::Build(g, 16);
    auto full = BlinksSearch(g, index, {0, 1, 2}, {.d_max = 4, .top_k = 0});
    BlinksStats stats;
    auto topk = BlinksSearch(g, index, {0, 1, 2},
                             {.d_max = 4, .top_k = 5}, &stats);
    size_t expect = std::min<size_t>(5, full.size());
    ASSERT_EQ(topk.size(), expect) << "seed " << seed;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(topk[i].root, full[i].root) << "seed " << seed << " i " << i;
      EXPECT_EQ(topk[i].score, full[i].score);
    }
  }
}

TEST(BlinksTest, EarlyTerminationHappensOnEasyQueries) {
  // Dense keyword coverage: lots of score-0..1 roots, so the k best are
  // provably done long before the cones exhaust d_max.
  Rng rng(99);
  GraphBuilder b;
  for (int i = 0; i < 400; ++i) b.AddVertex(static_cast<LabelId>(i % 2));
  for (int i = 0; i < 1600; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(400)),
              static_cast<VertexId>(rng.Uniform(400)));
  }
  Graph g = std::move(b.Build()).value();
  BlinksIndex index = BlinksIndex::Build(g, 64);
  BlinksStats stats;
  auto topk =
      BlinksSearch(g, index, {0, 1}, {.d_max = 5, .top_k = 3}, &stats);
  EXPECT_EQ(topk.size(), 3u);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_GT(stats.probes, 0u);
}

TEST(BlinksTest, AnswersAreValidTrees) {
  Graph g = RandomGraph(123, 100, 300, 4);
  BlinksIndex index = BlinksIndex::Build(g, 16);
  auto answers = BlinksSearch(g, index, {0, 1, 3}, {.d_max = 4, .top_k = 10});
  for (const Answer& a : answers) {
    EXPECT_TRUE(AnswerIsConnected(g, a));
    for (size_t i = 0; i < a.keyword_vertices.size(); ++i) {
      EXPECT_LE(ShortestDistance(g, a.root, a.keyword_vertices[i], 10), 4u);
    }
  }
}

TEST(BlinksTest, AlgorithmAdapterCachesIndex) {
  Graph g = RandomGraph(5, 50, 120, 3);
  BlinksAlgorithm algo({.d_max = 4, .top_k = 0});
  auto a1 = algo.Evaluate(g, {0, 1});
  auto a2 = algo.Evaluate(g, {0, 1});
  EXPECT_EQ(a1.size(), a2.size());
  EXPECT_EQ(algo.Name(), "blinks");
  algo.ClearCache();
  auto a3 = algo.Evaluate(g, {0, 1});
  EXPECT_EQ(a1.size(), a3.size());
}

// ---------- r-clique ----------

TEST(NeighborIndexTest, DistancesMatchUndirectedBfs) {
  Graph g = RandomGraph(42, 60, 120, 3);
  auto index = NeighborIndex::Build(g, 3);
  ASSERT_TRUE(index.ok());
  BfsScratch scratch;
  for (VertexId u = 0; u < g.NumVertices(); u += 7) {
    // Undirected BFS oracle: expand both directions.
    std::vector<uint32_t> dist(g.NumVertices(), kInfDistance);
    std::vector<VertexId> queue{u};
    dist[u] = 0;
    size_t head = 0;
    while (head < queue.size()) {
      VertexId v = queue[head++];
      if (dist[v] >= 3) continue;
      auto visit = [&](VertexId w) {
        if (dist[w] != kInfDistance) return;
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      };
      for (VertexId w : g.OutNeighbors(v)) visit(w);
      for (VertexId w : g.InNeighbors(v)) visit(w);
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      uint32_t got = index->Distance(u, v);
      if (dist[v] <= 3) {
        EXPECT_EQ(got, dist[v]) << u << "->" << v;
      } else {
        EXPECT_EQ(got, kInfDistance);
      }
    }
  }
}

TEST(NeighborIndexTest, BudgetFailureReproducesInfeasibility) {
  Graph g = RandomGraph(7, 200, 800, 3);
  auto index = NeighborIndex::Build(g, 4, /*memory_budget_bytes=*/64);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NeighborIndexTest, MemoryEstimateIsPlausible) {
  Graph g = RandomGraph(8, 150, 450, 3);
  auto index = NeighborIndex::Build(g, 3);
  ASSERT_TRUE(index.ok());
  Rng rng(1);
  size_t estimate = NeighborIndex::EstimateMemoryBytes(g, 3, 150, rng);
  size_t actual = index->NumEntries() * sizeof(std::pair<VertexId, uint32_t>);
  // Sampling every vertex once: estimate within 2x of actual.
  EXPECT_GT(estimate, actual / 2);
  EXPECT_LT(estimate, actual * 2 + 1024);
}

TEST(RCliqueTest, FindsTriangleClique) {
  // 0(A) -- 1(B) -- 2(C) chain: with r=2 all pairs within bound.
  Graph g = BuildGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  auto index = NeighborIndex::Build(g, 2);
  ASSERT_TRUE(index.ok());
  auto answers = RCliqueSearch(g, *index, {0, 1, 2}, {.r = 2, .top_k = 5});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].keyword_vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(answers[0].score, 1u + 2u + 1u);  // d(0,1)+d(0,2)+d(1,2)
}

TEST(RCliqueTest, RespectsDistanceBound) {
  // 0(A) -> 1 -> 2 -> 3(B): undirected distance 3.
  Graph g = BuildGraph({0, 9, 9, 1}, {{0, 1}, {1, 2}, {2, 3}});
  auto i2 = NeighborIndex::Build(g, 2);
  ASSERT_TRUE(i2.ok());
  EXPECT_TRUE(RCliqueSearch(g, *i2, {0, 1}, {.r = 2, .top_k = 5}).empty());
  auto i3 = NeighborIndex::Build(g, 3);
  ASSERT_TRUE(i3.ok());
  EXPECT_EQ(RCliqueSearch(g, *i3, {0, 1}, {.r = 3, .top_k = 5}).size(), 1u);
}

TEST(RCliqueTest, TopKWeightsNondecreasingAndUnique) {
  Graph g = RandomGraph(55, 80, 240, 3);
  auto index = NeighborIndex::Build(g, 4);
  ASSERT_TRUE(index.ok());
  auto answers = RCliqueSearch(g, *index, {0, 1}, {.r = 4, .top_k = 20});
  std::set<std::vector<VertexId>> seen;
  for (size_t i = 0; i < answers.size(); ++i) {
    if (i) {
      EXPECT_GE(answers[i].score, answers[i - 1].score);
    }
    EXPECT_TRUE(seen.insert(answers[i].keyword_vertices).second)
        << "duplicate answer";
  }
  EXPECT_FALSE(answers.empty());
}

TEST(RCliqueTest, AllAnswersAreValidCliques) {
  Graph g = RandomGraph(56, 70, 210, 4);
  auto index = NeighborIndex::Build(g, 4);
  ASSERT_TRUE(index.ok());
  auto answers = RCliqueSearch(g, *index, {0, 1, 2}, {.r = 4, .top_k = 15});
  for (const Answer& a : answers) {
    for (size_t i = 0; i < a.keyword_vertices.size(); ++i) {
      EXPECT_EQ(g.label(a.keyword_vertices[i]), static_cast<LabelId>(i));
      for (size_t j = i + 1; j < a.keyword_vertices.size(); ++j) {
        uint32_t d =
            index->Distance(a.keyword_vertices[i], a.keyword_vertices[j]);
        EXPECT_LE(d, 4u);
      }
    }
  }
}

TEST(RCliqueTest, GreedyTopAnswerWithinTwiceOptimal) {
  // The greedy best answer is a 2-approximation of the optimum weight.
  for (uint64_t seed : {60, 61, 62}) {
    Graph g = RandomGraph(seed, 50, 150, 3);
    auto index = NeighborIndex::Build(g, 3);
    ASSERT_TRUE(index.ok());
    auto exact = RCliqueEnumerateAll(g, *index, {0, 1, 2}, 3);
    auto greedy = RCliqueSearch(g, *index, {0, 1, 2}, {.r = 3, .top_k = 1});
    if (exact.empty()) {
      EXPECT_TRUE(greedy.empty());
      continue;
    }
    ASSERT_FALSE(greedy.empty());
    EXPECT_LE(greedy[0].score, exact[0].score * 2);
  }
}

TEST(RCliqueTest, EnumerateAllMatchesValidity) {
  Graph g = RandomGraph(57, 30, 90, 3);
  auto index = NeighborIndex::Build(g, 3);
  ASSERT_TRUE(index.ok());
  auto all = RCliqueEnumerateAll(g, *index, {0, 1}, 3);
  for (const Answer& a : all) {
    uint32_t d =
        index->Distance(a.keyword_vertices[0], a.keyword_vertices[1]);
    EXPECT_LE(d, 3u);
    EXPECT_EQ(a.score, d);
  }
  // Count against the brute-force definition.
  size_t count = 0;
  for (VertexId u : g.VerticesWithLabel(0)) {
    for (VertexId v : g.VerticesWithLabel(1)) {
      if (index->Distance(u, v) <= 3) ++count;
    }
  }
  EXPECT_EQ(all.size(), count);
}

TEST(RCliqueTest, SingleKeywordAnswers) {
  Graph g = BuildGraph({0, 1, 1}, {{0, 1}});
  auto index = NeighborIndex::Build(g, 2);
  ASSERT_TRUE(index.ok());
  auto answers = RCliqueSearch(g, *index, {1}, {.r = 2, .top_k = 10});
  EXPECT_EQ(answers.size(), 2u);
  for (const Answer& a : answers) EXPECT_EQ(a.score, 0u);
}

TEST(RCliqueTest, AdapterFallsBackGracefullyOnBudget) {
  Graph g = RandomGraph(58, 100, 400, 3);
  RCliqueAlgorithm algo({.r = 4, .top_k = 5, .memory_budget_bytes = 16});
  EXPECT_TRUE(algo.Evaluate(g, {0, 1}).empty());
  EXPECT_EQ(algo.Name(), "r-clique");
}

TEST(RCliqueTest, MissingKeywordMeansNoAnswers) {
  Graph g = BuildGraph({0, 1}, {{0, 1}});
  auto index = NeighborIndex::Build(g, 2);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(RCliqueSearch(g, *index, {0, 42}, {.r = 2}).empty());
}

}  // namespace
}  // namespace bigindex
