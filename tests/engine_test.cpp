// Tests of the engine layer: ExecutorPool scheduling, QueryContext scratch
// invariants, and the QueryEngine facade — above all that EvaluateBatch over
// a shared index returns answer sets identical to serial Evaluate for every
// algorithm and every forced layer (the re-entrancy contract under real
// thread interleavings).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/big_index.h"
#include "core/evaluator.h"
#include "engine/executor.h"
#include "engine/query_context.h"
#include "engine/query_engine.h"
#include "search/bidirectional.h"
#include "search/bkws.h"
#include "search/blinks.h"
#include "search/rclique.h"
#include "util/random.h"

namespace bigindex {
namespace {

// Ontology: leaves {0..5} -> mids {6,7,8} -> root 9 (as in evaluator_test).
Ontology MakeOntology() {
  OntologyBuilder b;
  b.AddSupertypeEdge(0, 6);
  b.AddSupertypeEdge(1, 6);
  b.AddSupertypeEdge(2, 6);
  b.AddSupertypeEdge(3, 7);
  b.AddSupertypeEdge(4, 7);
  b.AddSupertypeEdge(5, 8);
  b.AddSupertypeEdge(6, 9);
  b.AddSupertypeEdge(7, 9);
  b.AddSupertypeEdge(8, 9);
  return std::move(b.Build()).value();
}

Graph MotifGraph(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(6)));
  }
  size_t made = 0;
  while (made < m) {
    VertexId hub = static_cast<VertexId>(rng.Uniform(n));
    size_t batch = rng.UniformRange(3, 10);
    for (size_t i = 0; i < batch && made < m; ++i) {
      VertexId src = static_cast<VertexId>(rng.Uniform(n));
      if (src != hub) {
        b.AddEdge(src, hub);
        ++made;
      }
    }
  }
  return std::move(b.Build()).value();
}

// ---------------------------------------------------------------------------
// ExecutorPool

TEST(ExecutorPoolTest, SerialFallbackRunsEverythingInline) {
  ExecutorPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  EXPECT_EQ(pool.num_slots(), 1u);

  std::vector<int> hits(100, 0);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(hits.size(), [&](size_t slot, size_t i) {
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecutorPoolTest, ParallelForRunsEachIndexExactlyOnce) {
  ExecutorPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  EXPECT_EQ(pool.num_slots(), 4u);

  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t slot, size_t i) {
    ASSERT_LT(slot, pool.num_slots());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorPoolTest, SlotInvocationsNeverOverlap) {
  ExecutorPool pool(4);
  std::vector<std::atomic<int>> in_flight(pool.num_slots());
  std::atomic<bool> overlapped{false};
  pool.ParallelFor(2000, [&](size_t slot, size_t) {
    if (in_flight[slot].fetch_add(1) != 0) overlapped = true;
    // Widen the race window a little.
    std::this_thread::yield();
    in_flight[slot].fetch_sub(1);
  });
  EXPECT_FALSE(overlapped.load());
}

TEST(ExecutorPoolTest, ExceptionIsRethrownAfterDrain) {
  ExecutorPool pool(2);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t, size_t i) {
                         ran.fetch_add(1);
                         if (i == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a throwing batch.
  std::atomic<size_t> after{0};
  pool.ParallelFor(10, [&](size_t, size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10u);
}

TEST(ExecutorPoolTest, ConcurrentParallelForCallsInterleave) {
  ExecutorPool pool(4);
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(500, [&](size_t, size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 1500u);
}

// ---------------------------------------------------------------------------
// QueryContext

TEST(QueryContextTest, ConeReleaseRestoresInvariant) {
  QueryContext ctx;
  ConeScratch& s = ctx.Cone(0, 64);
  s.dist[3] = 1;
  s.witness[3] = 7;
  s.parent[3] = 9;
  s.queue.push_back(3);
  s.Release();
  ConeScratch& again = ctx.Cone(0, 64);
  EXPECT_EQ(&again, &s);  // same storage, reused
  EXPECT_EQ(again.dist[3], kInfDistance);
  EXPECT_EQ(again.witness[3], kInvalidVertex);
  EXPECT_EQ(again.parent[3], kInvalidVertex);
  EXPECT_TRUE(again.queue.empty());
}

TEST(QueryContextTest, ZeroedVertexArrayIsZeroedOnEveryAcquisition) {
  QueryContext ctx;
  auto& a = ctx.ZeroedVertexArray(0, 16);
  a[5] = 42;
  auto& b = ctx.ZeroedVertexArray(0, 16);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b[5], 0u);
}

TEST(QueryContextTest, ScratchReferencesStayStableAsPoolsGrow) {
  QueryContext ctx;
  auto& v0 = ctx.VertexScratch(0);
  v0.push_back(11);
  // Acquiring many later slots must not invalidate v0.
  for (size_t s = 1; s < 40; ++s) ctx.VertexScratch(s);
  EXPECT_EQ(v0.size(), 1u);
  EXPECT_EQ(v0[0], 11u);
}

// ---------------------------------------------------------------------------
// QueryEngine

struct EngineFixture {
  Ontology ontology = MakeOntology();
  std::shared_ptr<const BigIndex> index;

  explicit EngineFixture(uint64_t seed = 42, size_t n = 400, size_t m = 900) {
    auto built =
        BigIndex::Build(MotifGraph(seed, n, m), &ontology, {.max_layers = 2});
    index = std::make_shared<const BigIndex>(std::move(built).value());
  }
};

std::vector<EngineQuery> MakeWorkload(int forced_layer) {
  // Queries per registered default algorithm; d_max etc. are the defaults the
  // engine registers, identical for the serial and batch paths.
  std::vector<std::vector<LabelId>> keyword_sets = {
      {0, 1}, {2, 3}, {0, 4, 5}, {1, 2, 3}, {4, 5}, {0, 3}};
  std::vector<std::string> algorithms = {"bkws", "blinks", "r-clique",
                                         "bidirectional"};
  std::vector<EngineQuery> queries;
  for (const auto& algo : algorithms) {
    for (const auto& kw : keyword_sets) {
      EngineQuery q;
      q.keywords = kw;
      q.algorithm = algo;
      q.eval.forced_layer = forced_layer;
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

TEST(QueryEngineTest, BatchMatchesSerialForAllAlgorithmsAndLayers) {
  EngineFixture fx;
  QueryEngine serial(fx.index);  // num_threads = 0
  QueryEngine pooled(fx.index, {.num_threads = 4});

  // Forced layers 0..h plus the cost-model choice (-1).
  for (int layer = -1;
       layer <= static_cast<int>(fx.index->NumLayers()); ++layer) {
    auto queries = MakeWorkload(layer);
    auto batch = pooled.EvaluateBatch(queries);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto one = serial.Evaluate(queries[i]);
      ASSERT_TRUE(one.ok()) << one.status().ToString();
      EXPECT_EQ((*batch)[i].answers, one->answers)
          << "query " << i << " (" << queries[i].algorithm << ") at layer "
          << layer;
    }
  }
}

TEST(QueryEngineTest, BatchIsDeterministicAcrossRuns) {
  EngineFixture fx(7, 300, 700);
  QueryEngine pooled(fx.index, {.num_threads = 4});
  auto queries = MakeWorkload(-1);
  auto first = pooled.EvaluateBatch(queries);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = pooled.EvaluateBatch(queries);
    ASSERT_TRUE(again.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ((*again)[i].answers, (*first)[i].answers) << "query " << i;
    }
  }
}

TEST(QueryEngineTest, ConcurrentEvaluateCallersAgreeWithSerial) {
  EngineFixture fx(9, 300, 700);
  QueryEngine engine(fx.index);
  auto queries = MakeWorkload(-1);

  std::vector<std::vector<Answer>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = engine.Evaluate(queries[i]);
    ASSERT_TRUE(r.ok());
    expected[i] = std::move(r->answers);
  }

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = engine.Evaluate(queries[i]);
        if (!r.ok() || r->answers != expected[i]) mismatch = true;
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(QueryEngineTest, UnknownAlgorithmIsNotFound) {
  EngineFixture fx;
  QueryEngine engine(fx.index);
  EngineQuery q;
  q.keywords = {0, 1};
  q.algorithm = "no-such-semantics";
  auto one = engine.Evaluate(q);
  EXPECT_EQ(one.status().code(), StatusCode::kNotFound)
      << one.status().ToString();

  auto queries = MakeWorkload(-1);
  queries.push_back(q);
  auto batch = engine.EvaluateBatch(queries);
  EXPECT_EQ(batch.status().code(), StatusCode::kNotFound)
      << batch.status().ToString();
}

TEST(QueryEngineTest, ValidateRejectsBadQueriesBeforeEvaluation) {
  EngineFixture fx;
  QueryEngine engine(fx.index);

  EngineQuery empty;
  empty.algorithm = "bkws";
  EXPECT_EQ(engine.Validate(empty).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Evaluate(empty).status().code(),
            StatusCode::kInvalidArgument);

  EngineQuery unknown;
  unknown.keywords = {0, 1};
  unknown.algorithm = "no-such-semantics";
  EXPECT_EQ(engine.Validate(unknown).code(), StatusCode::kNotFound);

  EngineQuery good;
  good.keywords = {0, 1};
  good.algorithm = "bkws";
  EXPECT_TRUE(engine.Validate(good).ok());

  // A batch containing one invalid query fails whole before any evaluation.
  auto batch = engine.EvaluateBatch(std::vector<EngineQuery>{good, empty});
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, NormalizeKeywordsSortsAndDeduplicates) {
  EngineQuery q;
  q.keywords = {4, 1, 4, 0, 1};
  q.NormalizeKeywords();
  EXPECT_EQ(q.keywords, (std::vector<LabelId>{0, 1, 4}));

  // Normalization never changes the answer set: keyword queries have set
  // semantics (Def 2.3).
  EngineFixture fx;
  QueryEngine engine(fx.index);
  auto messy = engine.Evaluate({.keywords = {1, 0, 1}, .algorithm = "bkws"});
  auto clean = engine.Evaluate({.keywords = {0, 1}, .algorithm = "bkws"});
  ASSERT_TRUE(messy.ok());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(messy->answers.size(), clean->answers.size());
}

TEST(QueryEngineTest, ExpiredDeadlineMapsToDeadlineExceeded) {
  EngineFixture fx;
  QueryEngine engine(fx.index);
  EngineQuery q;
  q.keywords = {0, 1};
  q.eval.deadline = Deadline::After(-1);
  auto r = engine.Evaluate(q);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
}

TEST(QueryEngineTest, RegistryListsAndReplacesByName) {
  EngineFixture fx;
  QueryEngine engine(fx.index);
  auto names = engine.AlgorithmNames();
  EXPECT_EQ(names.size(), 4u);
  ASSERT_NE(engine.algorithm("bkws"), nullptr);
  EXPECT_EQ(engine.algorithm("bkws")->Name(), "bkws");
  EXPECT_EQ(engine.algorithm("nope"), nullptr);

  // Re-registering replaces in place without growing the registry.
  engine.Register(std::make_unique<BkwsAlgorithm>(BkwsOptions{.d_max = 1}));
  EXPECT_EQ(engine.AlgorithmNames().size(), 4u);
  auto* bkws = dynamic_cast<const BkwsAlgorithm*>(engine.algorithm("bkws"));
  ASSERT_NE(bkws, nullptr);
  EXPECT_EQ(bkws->options().d_max, 1u);
}

TEST(QueryEngineTest, ResultsCarryPerQueryStats) {
  EngineFixture fx;
  QueryEngine engine(fx.index, {.num_threads = 2});
  EngineQuery q;
  q.keywords = {0, 1};
  q.eval.forced_layer = static_cast<int>(fx.index->NumLayers());

  auto r = engine.Evaluate(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algorithm, "bkws");
  EXPECT_GE(r->wall_ms, 0.0);
  EXPECT_EQ(r->breakdown.final_answers, r->answers.size());
  EXPECT_LE(r->breakdown.layer, fx.index->NumLayers());

  auto batch = engine.EvaluateBatch(std::vector<EngineQuery>{q, q, q});
  ASSERT_TRUE(batch.ok());
  for (const QueryResult& br : *batch) {
    EXPECT_EQ(br.breakdown.layer, r->breakdown.layer);
    EXPECT_EQ(br.answers, r->answers);
  }
}

TEST(QueryEngineTest, OwningConstructorWorksToo) {
  Ontology ont = MakeOntology();
  auto built = BigIndex::Build(MotifGraph(3, 200, 400), &ont,
                               {.max_layers = 2});
  ASSERT_TRUE(built.ok());
  QueryEngine engine(std::move(built).value(), {.num_threads = 2});
  auto r = engine.Evaluate({.keywords = {0, 1}, .algorithm = "blinks"});
  ASSERT_TRUE(r.ok());
  // Serial convenience wrapper on the same algorithm object agrees.
  auto direct = EvaluateWithIndex(engine.index(),
                                  *engine.algorithm("blinks"), {0, 1});
  EXPECT_EQ(r->answers, direct);
}

}  // namespace
}  // namespace bigindex
