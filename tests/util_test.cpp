// Unit tests for util: Status/StatusOr, Rng/ZipfSampler, Timer.

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace bigindex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    BIGINDEX_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a.Next() != b.Next();
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    uint64_t x = rng.UniformRange(3, 5);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 5u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewPrefersSmallIndices) {
  Rng rng(23);
  ZipfSampler zipf(100, 1.2);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Sample(rng) < 10) ++low;
  }
  // With s = 1.2 the first 10 of 100 values carry well over half the mass.
  EXPECT_GT(low, total / 2);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(29);
  ZipfSampler zipf(10, 0.0);
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  for (size_t c : counts) {
    EXPECT_GT(c, 1500u);
    EXPECT_LT(c, 2500u);
  }
}

TEST(ZipfTest, SamplesCoverDomainBounds) {
  Rng rng(31);
  ZipfSampler zipf(5, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 5u);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3 * 0.5);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double before = t.ElapsedSeconds();
  t.Restart();
  EXPECT_LE(t.ElapsedSeconds(), before + 1.0);
}


TEST(LoggingTest, LevelFilteringAndRestore) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output assertions —
  // stderr is not captured here; this exercises the filtering branch).
  BIGINDEX_LOG(kInfo) << "dropped " << 42;
  BIGINDEX_LOG(kError) << "emitted " << 43;
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace bigindex
