// Observability tests: counter exactness under concurrent increments (the
// suite tools/ci.sh re-runs under ThreadSanitizer), histogram quantiles
// against a sorted-vector oracle, registry identity / kind-mismatch /
// Prometheus exposition contracts, and span nesting with a chrome://tracing
// dump round-trip.
//
// Tracer tests share the process-wide Tracer::Global() (TRACE_SPAN has no
// registry parameter), so each one starts with SetEnabled + Clear; metrics
// tests use private MetricsRegistry instances throughout.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace bigindex {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("t_total", "test");
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncs; ++i) counter.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kIncs);

  counter.Inc(5);
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kIncs + 5);
}

TEST(MetricsTest, GaugeTracksLevel) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("t_depth", "test");
  gauge.Set(10);
  gauge.Add(5);
  gauge.Sub(12);
  EXPECT_EQ(gauge.value(), 3);
  gauge.Sub(7);
  EXPECT_EQ(gauge.value(), -4);  // signed: transient negatives are legal
}

// ---------------------------------------------------------------------------
// Histogram

/// The header's documented bucket function, restated independently.
size_t OracleBucket(double v) {
  if (!(v > Histogram::kBase)) return 0;
  double idx = std::log(v / Histogram::kBase) / std::log(Histogram::kGrowth);
  return std::min(Histogram::kBuckets - 1, static_cast<size_t>(idx));
}

TEST(MetricsTest, HistogramQuantileMatchesSortedOracle) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("t_ms", "test");
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over ~6 decades: exercises many distinct buckets.
    values.push_back(1e-3 * std::pow(10.0, rng.NextDouble() * 6.0));
    hist.Record(values.back());
  }
  std::sort(values.begin(), values.end());

  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    // The implementation's documented rank convention: 1-based ceiling.
    size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * values.size())));
    double oracle = values[rank - 1];
    double estimate = hist.Quantile(q);
    // The estimate is the upper bound of the oracle value's bucket: never
    // below the true value, and at most one growth factor above it.
    EXPECT_EQ(estimate, Histogram::BucketUpper(OracleBucket(oracle)))
        << "q=" << q;
    EXPECT_GE(estimate, oracle) << "q=" << q;
    EXPECT_LE(estimate, oracle * Histogram::kGrowth * 1.0001) << "q=" << q;
  }
}

TEST(MetricsTest, HistogramEmptyAndEdgeValues) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("t_ms", "test");
  EXPECT_EQ(hist.Quantile(0.5), 0);
  EXPECT_EQ(hist.count(), 0u);

  hist.Record(0.0);    // at/below kBase -> bucket 0
  hist.Record(-1.0);   // negative -> bucket 0, sum may go down
  hist.Record(1e9);    // beyond the range -> last bucket
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.Quantile(0.01), Histogram::BucketUpper(0));
  EXPECT_EQ(hist.Quantile(1.0),
            Histogram::BucketUpper(Histogram::kBuckets - 1));
}

TEST(MetricsTest, HistogramConcurrentRecordsAllCounted) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("t_ms", "test");
  constexpr int kThreads = 4;
  constexpr int kRecords = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      Rng rng(static_cast<uint64_t>(t));
      for (int i = 0; i < kRecords; ++i) hist.Record(rng.NextDouble() * 10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_GT(hist.sum(), 0);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsTest, SameNameAndLabelsReturnSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("t_total", "test");
  Counter& b = registry.GetCounter("t_total", "ignored on re-registration");
  EXPECT_EQ(&a, &b);

  Counter& bkws = registry.GetCounter("t_total", "test", R"(algo="bkws")");
  Counter& blinks = registry.GetCounter("t_total", "test", R"(algo="blinks")");
  EXPECT_NE(&bkws, &blinks);
  EXPECT_NE(&a, &bkws);
  EXPECT_EQ(&bkws, &registry.GetCounter("t_total", "test", R"(algo="bkws")"));
  EXPECT_EQ(registry.NumSeries(), 3u);
}

TEST(MetricsTest, KindMismatchDetachesInsteadOfAliasing) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("t_total", "test");
  counter.Inc(7);
  Gauge& wrong = registry.GetGauge("t_total", "test");
  wrong.Set(99);  // usable, but parked off to the side
  EXPECT_EQ(counter.value(), 7u);  // the counter was not corrupted

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE t_total counter"), std::string::npos);
  EXPECT_EQ(text.find("t_total 99"), std::string::npos);
  EXPECT_NE(text.find("bigindex_obs_detached_total 1"), std::string::npos);
}

/// Minimal structural check of the exposition format: every line is either a
/// comment or `name[{labels}] value` with a parseable finite value. Shared
/// idea with the server test's METRICS assertions.
void ExpectParseablePrometheus(const std::string& text) {
  size_t start = 0;
  int samples = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated last line";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) FAIL() << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* parse_end = nullptr;
    double v = std::strtod(line.c_str() + sp + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    EXPECT_TRUE(std::isfinite(v)) << line;
    std::string name_part = line.substr(0, sp);
    size_t brace = name_part.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name_part.back(), '}') << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(MetricsTest, RenderPrometheusShape) {
  MetricsRegistry registry;
  registry.GetCounter("t_total", "plain counter").Inc(3);
  registry.GetCounter("t_total", "plain counter", R"(algo="bkws")").Inc(2);
  registry.GetGauge("t_depth", "a gauge").Set(-4);
  Histogram& h = registry.GetHistogram("t_ms", "a histogram");
  h.Record(0.5);
  h.Record(2.0);

  std::string text = registry.RenderPrometheus();
  ExpectParseablePrometheus(text);
  EXPECT_NE(text.find("# HELP t_total plain counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\nt_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_total{algo=\"bkws\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("t_depth -4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("t_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("t_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("t_ms_sum"), std::string::npos);
  EXPECT_NE(text.find("t_ms_count 2\n"), std::string::npos);
}

TEST(MetricsTest, ConcurrentRegistrationIsIdempotent) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter& c = registry.GetCounter("t_total", "test");
      c.Inc();
      seen[static_cast<size_t>(t)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(registry.NumSeries(), 1u);
}

// ---------------------------------------------------------------------------
// Tracer

/// Extracts the ts / dur fields of the first event named `name` in a dump.
struct ParsedSpan {
  bool found = false;
  uint64_t ts = 0;
  uint64_t dur = 0;
};
ParsedSpan FindSpan(const std::string& json, const std::string& name) {
  ParsedSpan span;
  size_t at = json.find("{\"name\":\"" + name + "\"");
  if (at == std::string::npos) return span;
  size_t ts_at = json.find("\"ts\":", at);
  size_t dur_at = json.find("\"dur\":", at);
  if (ts_at == std::string::npos || dur_at == std::string::npos) return span;
  span.found = true;
  span.ts = std::strtoull(json.c_str() + ts_at + 5, nullptr, 10);
  span.dur = std::strtoull(json.c_str() + dur_at + 6, nullptr, 10);
  return span;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  {
    TRACE_SPAN("test/never");
  }
  Tracer::Stats stats = tracer.GetStats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(Tracer::Global().DumpJson().find("test/never"),
            std::string::npos);
}

TEST(TraceTest, NestedSpansDumpWithTimeContainment) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  {
    TRACE_SPAN("test/outer");
    {
      TRACE_SPAN("test/inner");
      // Volatile spin so inner (and outer) have measurable width even on a
      // coarse steady clock.
      volatile uint64_t sink = 0;
      for (int i = 0; i < 200000; ++i) sink += static_cast<uint64_t>(i);
    }
  }
  tracer.SetEnabled(false);

  std::string json = tracer.DumpJson();
  // Single line, chrome://tracing shape.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  ParsedSpan outer = FindSpan(json, "test/outer");
  ParsedSpan inner = FindSpan(json, "test/inner");
  ASSERT_TRUE(outer.found);
  ASSERT_TRUE(inner.found);
  // chrome://tracing nests by time containment; the inner interval must sit
  // inside the outer one.
  EXPECT_GE(inner.ts, outer.ts);
  EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);

  EXPECT_EQ(tracer.GetStats().events, 2u);
  tracer.Clear();
  EXPECT_EQ(tracer.GetStats().events, 0u);
  EXPECT_EQ(tracer.DumpJson().find("test/outer"), std::string::npos);
}

TEST(TraceTest, RingOverwriteCountsDropped) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  constexpr uint64_t kExtra = 7;
  for (uint64_t i = 0; i < Tracer::kRingCapacity + kExtra; ++i) {
    tracer.Append("test/flood", i, 1);
  }
  tracer.SetEnabled(false);
  Tracer::Stats stats = tracer.GetStats();
  EXPECT_EQ(stats.events, Tracer::kRingCapacity);
  EXPECT_EQ(stats.dropped, kExtra);
  tracer.Clear();
}

TEST(TraceTest, ConcurrentSpansFromManyThreads) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(true);
  tracer.Clear();
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpans; ++i) {
        TRACE_SPAN("test/worker");
        if (i % 100 == 0) (void)tracer.DumpJson();  // dump while appending
      }
    });
  }
  for (auto& t : threads) t.join();
  tracer.SetEnabled(false);
  Tracer::Stats stats = tracer.GetStats();
  EXPECT_EQ(stats.events + stats.dropped,
            static_cast<uint64_t>(kThreads) * kSpans);
  tracer.Clear();
}

}  // namespace
}  // namespace bigindex
