// End-to-end tests of hierarchical query processing (Algorithm 2):
// the Theorem 4.2 equivalence eval_Ont(G, Q, f) = eval(G, Q, f) for rooted
// semantics, validity/consistency for r-clique, ablation equivalence
// (Algorithms 3 vs 4, specialization order on/off), and the per-phase
// breakdown.

#include <gtest/gtest.h>

#include <set>

#include "core/big_index.h"
#include "core/evaluator.h"
#include "search/bkws.h"
#include "search/blinks.h"
#include "search/rclique.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/query_gen.h"

namespace bigindex {
namespace {

// Ontology: leaves {0..5} -> mids {6,7,8} -> root 9 (as in core_test).
Ontology MakeOntology() {
  OntologyBuilder b;
  b.AddSupertypeEdge(0, 6);
  b.AddSupertypeEdge(1, 6);
  b.AddSupertypeEdge(2, 6);
  b.AddSupertypeEdge(3, 7);
  b.AddSupertypeEdge(4, 7);
  b.AddSupertypeEdge(5, 8);
  b.AddSupertypeEdge(6, 9);
  b.AddSupertypeEdge(7, 9);
  b.AddSupertypeEdge(8, 9);
  return std::move(b.Build()).value();
}

Graph MotifGraph(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(6)));
  }
  size_t made = 0;
  while (made < m) {
    VertexId hub = static_cast<VertexId>(rng.Uniform(n));
    size_t batch = rng.UniformRange(3, 10);
    for (size_t i = 0; i < batch && made < m; ++i) {
      VertexId src = static_cast<VertexId>(rng.Uniform(n));
      if (src != hub) {
        b.AddEdge(src, hub);
        ++made;
      }
    }
  }
  return std::move(b.Build()).value();
}

using RootScore = std::pair<VertexId, uint32_t>;

std::set<RootScore> RootScores(const std::vector<Answer>& answers) {
  std::set<RootScore> out;
  for (const Answer& a : answers) out.emplace(a.root, a.score);
  return out;
}

struct EquivalenceCase {
  uint64_t seed;
  size_t n;
  size_t m;
  std::vector<LabelId> query;
};

class Thm42Test : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(Thm42Test, BkwsEquivalentAtEveryLayer) {
  const auto& c = GetParam();
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(c.seed, c.n, c.m), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());

  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  auto direct = bkws.Evaluate(index->base(), c.query);
  auto direct_set = RootScores(direct);

  for (size_t m = 0; m <= index->NumLayers(); ++m) {
    if (!QueryDistinctAtLayer(*index, c.query, m)) continue;
    EvalOptions opt;
    opt.forced_layer = static_cast<int>(m);
    auto hier = EvaluateWithIndex(*index, bkws, c.query, opt);
    EXPECT_EQ(RootScores(hier), direct_set)
        << "seed=" << c.seed << " layer=" << m;
  }
}

TEST_P(Thm42Test, BlinksEquivalentAtEveryLayer) {
  const auto& c = GetParam();
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(c.seed ^ 0xBEEF, c.n, c.m), &ont,
                      {.max_layers = 2});
  ASSERT_TRUE(index.ok());

  BlinksAlgorithm blinks({.d_max = 3, .top_k = 0, .block_size = 32});
  auto direct = blinks.Evaluate(index->base(), c.query);
  auto direct_set = RootScores(direct);

  for (size_t m = 0; m <= index->NumLayers(); ++m) {
    if (!QueryDistinctAtLayer(*index, c.query, m)) continue;
    EvalOptions opt;
    opt.forced_layer = static_cast<int>(m);
    auto hier = EvaluateWithIndex(*index, blinks, c.query, opt);
    EXPECT_EQ(RootScores(hier), direct_set)
        << "seed=" << c.seed << " layer=" << m;
  }
}

TEST_P(Thm42Test, OptimalLayerEquivalentToo) {
  const auto& c = GetParam();
  Ontology ont = MakeOntology();
  auto index = BigIndex::Build(MotifGraph(c.seed ^ 0xF00D, c.n, c.m), &ont,
                               {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  auto direct_set = RootScores(bkws.Evaluate(index->base(), c.query));
  auto hier = EvaluateWithIndex(*index, bkws, c.query, {});  // cost model
  EXPECT_EQ(RootScores(hier), direct_set);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, Thm42Test,
    ::testing::Values(EquivalenceCase{31, 120, 360, {0, 3}},
                      EquivalenceCase{32, 150, 500, {0, 5}},
                      EquivalenceCase{33, 200, 500, {1, 4, 5}},
                      EquivalenceCase{34, 100, 400, {2, 3}},
                      EquivalenceCase{35, 180, 700, {0, 4}},
                      EquivalenceCase{36, 90, 270, {0, 3, 5}}));

TEST(EvaluatorTest, AblationModesAgree) {
  // Fig 17/18 switches change timing, never results.
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(41, 150, 500), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});

  std::vector<LabelId> q{0, 3};
  std::set<RootScore> reference;
  bool first = true;
  for (bool path_based : {false, true}) {
    for (bool spec_order : {false, true}) {
      EvalOptions opt;
      opt.forced_layer = 1;
      opt.answer_gen.use_path_based = path_based;
      opt.answer_gen.use_specialization_order = spec_order;
      auto result = EvaluateWithIndex(*index, bkws, q, opt);
      if (first) {
        reference = RootScores(result);
        first = false;
      } else {
        EXPECT_EQ(RootScores(result), reference)
            << "path=" << path_based << " order=" << spec_order;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(EvaluatorTest, TopKReturnsValidPrefix) {
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(42, 200, 700), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  std::vector<LabelId> q{0, 3};

  auto full = EvaluateWithIndex(*index, bkws, q, {.forced_layer = 1});
  ASSERT_GT(full.size(), 3u);

  EvalOptions opt;
  opt.forced_layer = 1;
  opt.top_k = 3;
  auto topk = EvaluateWithIndex(*index, bkws, q, opt);
  ASSERT_EQ(topk.size(), 3u);
  // Sorted, and every returned answer is a genuine answer.
  auto full_set = RootScores(full);
  for (size_t i = 0; i < topk.size(); ++i) {
    if (i) {
      EXPECT_GE(topk[i].score, topk[i - 1].score);
    }
    EXPECT_TRUE(full_set.count({topk[i].root, topk[i].score}));
  }
}

TEST(EvaluatorTest, RCliqueAnswersAreValidAndExactlyScored) {
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(43, 150, 500), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  RCliqueAlgorithm rclique({.r = 3, .top_k = 10});
  std::vector<LabelId> q{0, 3};

  EvalOptions opt;
  opt.forced_layer = 1;
  opt.top_k = 10;
  auto answers = EvaluateWithIndex(*index, rclique, q, opt);
  auto direct = rclique.Evaluate(index->base(), q);

  // Every hierarchical answer is a valid r-clique (VerifyCandidate is the
  // gate), labels match the query, and scores are exact sums of pairwise
  // distances, mirrored by the direct answers being valid too.
  auto idx = NeighborIndex::Build(index->base(), 3);
  ASSERT_TRUE(idx.ok());
  for (const Answer& a : answers) {
    ASSERT_EQ(a.keyword_vertices.size(), q.size());
    uint32_t weight = 0;
    for (size_t i = 0; i < q.size(); ++i) {
      EXPECT_EQ(index->base().label(a.keyword_vertices[i]), q[i]);
      for (size_t j = i + 1; j < q.size(); ++j) {
        uint32_t d = idx->Distance(a.keyword_vertices[i],
                                   a.keyword_vertices[j]);
        ASSERT_LE(d, 3u);
        weight += d;
      }
    }
    EXPECT_EQ(a.score, weight);
  }
  // The hierarchical route must find an answer at least as good as the
  // direct greedy's best (it enumerates realizations of the generalized
  // top answers).
  if (!direct.empty() && !answers.empty()) {
    EXPECT_LE(answers[0].score, direct[0].score);
  }
}

TEST(EvaluatorTest, BreakdownIsPopulated) {
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(44, 150, 500), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  EvalBreakdown bd;
  auto result =
      EvaluateWithIndex(*index, bkws, {0, 3}, {.forced_layer = 1}, &bd);
  EXPECT_EQ(bd.layer, 1u);
  EXPECT_GT(bd.generalized_answers, 0u);
  EXPECT_GT(bd.candidate_roots, 0u);
  EXPECT_EQ(bd.final_answers, result.size());
  EXPECT_GE(bd.explore_ms, 0.0);
}

TEST(EvaluatorTest, ForcedLayerFallsBackOnDef41Violation) {
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(45, 150, 500), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  // 0 and 1 merge at layer 1 (both -> 6): forcing layer 1 must fall back
  // to layer 0 and still be correct.
  EvalBreakdown bd;
  auto hier = EvaluateWithIndex(*index, bkws, {0, 1}, {.forced_layer = 1}, &bd);
  EXPECT_EQ(bd.layer, 0u);
  auto direct_set = RootScores(bkws.Evaluate(index->base(), {0, 1}));
  EXPECT_EQ(RootScores(hier), direct_set);
}

TEST(EvaluatorTest, EmptyQueryYieldsNothing) {
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(46, 50, 150), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws;
  EXPECT_TRUE(EvaluateWithIndex(*index, bkws, {}, {}).empty());
}

TEST(EvaluatorTest, MissingKeywordYieldsNothing) {
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(47, 80, 240), &ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  // Label 42 does not occur.
  EXPECT_TRUE(
      EvaluateWithIndex(*index, bkws, {0, 42}, {.forced_layer = 1}).empty());
}

TEST(EvaluatorTest, OntologyGeneralizedQueryFindsAnswers) {
  // The Q3 = {Person, Univ, Startup} scenario of Example 1.1: querying with
  // *generalized* keywords on the hierarchy. A direct search for mid-level
  // type 6 finds nothing (no vertex carries it), but vertices labeled with
  // its subtypes exist; BiG-index makes the generalized query meaningful at
  // layer >= 1. We emulate by querying leaf labels and evaluating at the
  // layer where they coincide with mid types.
  Ontology ont = MakeOntology();
  auto index =
      BigIndex::Build(MotifGraph(48, 150, 500), &ont, {.max_layers = 1});
  ASSERT_TRUE(index.ok());
  // Direct search for the mid-level type finds nothing at layer 0.
  BkwsAlgorithm bkws({.d_max = 3, .top_k = 0});
  EXPECT_TRUE(bkws.Evaluate(index->base(), {6, 7}).empty());
  // The same concept expressed with leaf keywords evaluated at layer 1
  // (where they become 6 and 7) does find answers.
  auto hier = EvaluateWithIndex(*index, bkws, {0, 3}, {.forced_layer = 1});
  EXPECT_FALSE(hier.empty());
}

// Larger end-to-end smoke on a generated dataset with the real workload
// machinery (ties the workload module into the evaluator).
TEST(EvaluatorTest, DatasetWorkloadEndToEnd) {
  auto ds = MakeDataset("yago3", 0.002);  // ~5k vertices
  ASSERT_TRUE(ds.ok());
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  EXPECT_GE(index->NumLayers(), 1u);

  QueryGenOptions qopt;
  qopt.sizes = {2, 3};
  qopt.min_count = 10;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  ASSERT_FALSE(workload.empty());

  BkwsAlgorithm bkws({.d_max = 4, .top_k = 0});
  for (const QuerySpec& q : workload) {
    auto direct_set = RootScores(bkws.Evaluate(index->base(), q.keywords));
    auto hier = EvaluateWithIndex(*index, bkws, q.keywords, {});
    EXPECT_EQ(RootScores(hier), direct_set) << q.id;
  }
}

}  // namespace
}  // namespace bigindex
