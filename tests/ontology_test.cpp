// Unit tests for the ontology DAG, generalization configs, and Gen/Spec.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/label_dictionary.h"
#include "ontology/config.h"
#include "ontology/ontology.h"
#include "ontology/ontology_io.h"

namespace bigindex {
namespace {

// Mirrors the paper's Fig. 2 fragment:
//   Academics -> Person, Investor -> Person (we use ids)
//   Univ -> Organization, IvyLeague -> Organization
//   Eastern -> Location, Western -> Location
struct Fixture {
  LabelDictionary dict;
  LabelId person, academics, investor, organization, univ, ivy, location,
      eastern, western;
  Ontology ont;

  Fixture() {
    person = dict.Intern("Person");
    academics = dict.Intern("Academics");
    investor = dict.Intern("Investor");
    organization = dict.Intern("Organization");
    univ = dict.Intern("Univ");
    ivy = dict.Intern("IvyLeague");
    location = dict.Intern("Location");
    eastern = dict.Intern("Eastern");
    western = dict.Intern("Western");

    OntologyBuilder b;
    b.AddSupertypeEdge(academics, person);
    b.AddSupertypeEdge(investor, person);
    b.AddSupertypeEdge(univ, organization);
    b.AddSupertypeEdge(ivy, organization);
    b.AddSupertypeEdge(eastern, location);
    b.AddSupertypeEdge(western, location);
    auto built = b.Build();
    EXPECT_TRUE(built.ok());
    ont = std::move(built).value();
  }
};

TEST(OntologyTest, DirectSupertypes) {
  Fixture f;
  auto supers = f.ont.Supertypes(f.academics);
  ASSERT_EQ(supers.size(), 1u);
  EXPECT_EQ(supers[0], f.person);
  EXPECT_TRUE(f.ont.Supertypes(f.person).empty());
  EXPECT_TRUE(f.ont.HasSupertype(f.univ));
  EXPECT_FALSE(f.ont.HasSupertype(f.location));
}

TEST(OntologyTest, DirectSubtypes) {
  Fixture f;
  auto subs = f.ont.Subtypes(f.person);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0], f.academics);
  EXPECT_EQ(subs[1], f.investor);
}

TEST(OntologyTest, IsSupertypeTransitiveAndReflexive) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A"), b = dict.Intern("B"), c = dict.Intern("C");
  OntologyBuilder builder;
  builder.AddSupertypeEdge(c, b);  // B super of C
  builder.AddSupertypeEdge(b, a);  // A super of B
  Ontology ont = std::move(builder.Build()).value();
  EXPECT_TRUE(ont.IsSupertype(a, c));  // transitive
  EXPECT_TRUE(ont.IsSupertype(b, c));
  EXPECT_TRUE(ont.IsSupertype(c, c));  // reflexive
  EXPECT_FALSE(ont.IsSupertype(c, a));
}

TEST(OntologyTest, HeightAbove) {
  LabelDictionary dict;
  LabelId a = dict.Intern("A"), b = dict.Intern("B"), c = dict.Intern("C");
  OntologyBuilder builder;
  builder.AddSupertypeEdge(c, b);
  builder.AddSupertypeEdge(b, a);
  Ontology ont = std::move(builder.Build()).value();
  EXPECT_EQ(ont.HeightAbove(c), 2u);
  EXPECT_EQ(ont.HeightAbove(b), 1u);
  EXPECT_EQ(ont.HeightAbove(a), 0u);
}

TEST(OntologyTest, CycleRejected) {
  OntologyBuilder builder;
  builder.AddSupertypeEdge(0, 1);
  builder.AddSupertypeEdge(1, 2);
  builder.AddSupertypeEdge(2, 0);
  auto built = builder.Build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(OntologyTest, SelfLoopRejected) {
  OntologyBuilder builder;
  builder.AddSupertypeEdge(0, 0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(OntologyTest, DiamondDagAccepted) {
  OntologyBuilder builder;
  builder.AddSupertypeEdge(3, 1);
  builder.AddSupertypeEdge(3, 2);
  builder.AddSupertypeEdge(1, 0);
  builder.AddSupertypeEdge(2, 0);
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->IsSupertype(0, 3));
  EXPECT_EQ(built->NumTypes(), 4u);
  EXPECT_EQ(built->NumEdges(), 4u);
  EXPECT_EQ(built->Size(), 8u);
}

TEST(OntologyTest, EmptyOntology) {
  OntologyBuilder builder;
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->NumTypes(), 0u);
  EXPECT_TRUE(built->Supertypes(42).empty());
  EXPECT_TRUE(built->IsSupertype(3, 3));  // reflexive even without data
  EXPECT_FALSE(built->IsSupertype(3, 4));
}

// --- configurations ---

TEST(ConfigTest, AddAndGeneralize) {
  Fixture f;
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(f.academics, f.person).ok());
  ASSERT_TRUE(c.AddMapping(f.investor, f.person).ok());
  EXPECT_EQ(c.Generalize(f.academics), f.person);
  EXPECT_EQ(c.Generalize(f.univ), f.univ);  // unmapped: unchanged
  EXPECT_TRUE(c.Maps(f.investor));
  EXPECT_FALSE(c.Maps(f.univ));
  EXPECT_EQ(c.size(), 2u);
}

TEST(ConfigTest, ConflictingMappingRejected) {
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(1, 2).ok());
  EXPECT_FALSE(c.AddMapping(1, 3).ok());
  EXPECT_TRUE(c.AddMapping(1, 2).ok());  // same target: fine
}

TEST(ConfigTest, IdentityMappingIgnored) {
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(5, 5).ok());
  EXPECT_TRUE(c.empty());
}

TEST(ConfigTest, ValidateAgainstOntology) {
  Fixture f;
  GeneralizationConfig good;
  ASSERT_TRUE(good.AddMapping(f.academics, f.person).ok());
  EXPECT_TRUE(good.Validate(f.ont).ok());

  GeneralizationConfig bad;
  ASSERT_TRUE(bad.AddMapping(f.academics, f.organization).ok());
  EXPECT_FALSE(bad.Validate(f.ont).ok());

  GeneralizationConfig skip_level;
  // Person is not a *direct* supertype of anything two levels down here, but
  // mapping univ -> person is simply not an ontology edge.
  ASSERT_TRUE(skip_level.AddMapping(f.univ, f.person).ok());
  EXPECT_FALSE(skip_level.Validate(f.ont).ok());
}

TEST(ConfigTest, PreimageAndFamilySize) {
  Fixture f;
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(f.academics, f.person).ok());
  ASSERT_TRUE(c.AddMapping(f.investor, f.person).ok());
  ASSERT_TRUE(c.AddMapping(f.univ, f.organization).ok());
  auto pre = c.Preimage(f.person);
  ASSERT_EQ(pre.size(), 2u);
  EXPECT_EQ(c.FamilySize(f.academics), 2u);  // academics+investor -> person
  EXPECT_EQ(c.FamilySize(f.univ), 1u);
  EXPECT_EQ(c.FamilySize(f.western), 0u);  // unmapped
  EXPECT_TRUE(c.Preimage(f.location).empty());
}

TEST(ConfigTest, GeneralizeGraphRelabelsOnly) {
  Fixture f;
  GraphBuilder b;
  VertexId v0 = b.AddVertex(f.academics);
  VertexId v1 = b.AddVertex(f.univ);
  VertexId v2 = b.AddVertex(f.eastern);
  b.AddEdge(v0, v1);
  b.AddEdge(v1, v2);
  Graph g = std::move(b.Build()).value();

  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(f.academics, f.person).ok());
  ASSERT_TRUE(c.AddMapping(f.eastern, f.location).ok());
  Graph gc = Generalize(g, c);

  ASSERT_EQ(gc.NumVertices(), 3u);
  EXPECT_EQ(gc.label(v0), f.person);
  EXPECT_EQ(gc.label(v1), f.univ);  // untouched
  EXPECT_EQ(gc.label(v2), f.location);
  EXPECT_EQ(gc.Edges(), g.Edges());  // structure identical
}

TEST(ConfigTest, LabelPreservingProperty) {
  // Def 2.2: for every vertex, either its label was mapped by C or it is
  // unchanged. Holds by construction; verify on a random-ish graph.
  Fixture f;
  GraphBuilder b;
  std::vector<LabelId> labels = {f.academics, f.investor, f.univ,
                                 f.ivy,       f.eastern,  f.western};
  for (int i = 0; i < 30; ++i) b.AddVertex(labels[i % labels.size()]);
  for (int i = 0; i < 29; ++i) {
    b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  Graph g = std::move(b.Build()).value();
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(f.academics, f.person).ok());
  ASSERT_TRUE(c.AddMapping(f.univ, f.organization).ok());
  Graph gc = Generalize(g, c);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (c.Maps(g.label(v))) {
      EXPECT_EQ(gc.label(v), c.Generalize(g.label(v)));
    } else {
      EXPECT_EQ(gc.label(v), g.label(v));
    }
  }
}

TEST(ConfigTest, SpecializeWithLabelsRoundTrip) {
  Fixture f;
  GraphBuilder b;
  b.AddVertex(f.academics);
  b.AddVertex(f.univ);
  b.AddEdge(0, 1);
  Graph g = std::move(b.Build()).value();
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(f.academics, f.person).ok());
  Graph gc = Generalize(g, c);

  std::vector<LabelId> original(g.labels().begin(), g.labels().end());
  auto back = SpecializeWithLabels(gc, original);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->label(0), f.academics);
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(ConfigTest, SpecializeWithWrongLabelCountFails) {
  Fixture f;
  GraphBuilder b;
  b.AddVertex(f.person);
  Graph g = std::move(b.Build()).value();
  std::vector<LabelId> wrong = {f.person, f.univ};
  EXPECT_FALSE(SpecializeWithLabels(g, wrong).ok());
}

// --- ontology I/O ---

TEST(OntologyIoTest, RoundTrip) {
  Fixture f;
  std::stringstream ss;
  ASSERT_TRUE(WriteOntology(f.ont, f.dict, ss).ok());
  LabelDictionary dict2;
  auto ont2 = ReadOntology(ss, dict2);
  ASSERT_TRUE(ont2.ok());
  EXPECT_EQ(ont2->NumEdges(), f.ont.NumEdges());
  EXPECT_EQ(ont2->NumTypes(), f.ont.NumTypes());
  LabelId acad2 = dict2.Find("Academics");
  LabelId person2 = dict2.Find("Person");
  ASSERT_NE(acad2, kInvalidLabel);
  EXPECT_TRUE(ont2->IsSupertype(person2, acad2));
}

TEST(OntologyIoTest, RejectsGarbage) {
  std::stringstream ss("nope\n");
  LabelDictionary dict;
  EXPECT_FALSE(ReadOntology(ss, dict).ok());
}

TEST(OntologyIoTest, RejectsMissingTab) {
  std::stringstream ss("bigindex-ontology v1\n1\nA B\n");
  LabelDictionary dict;
  auto ont = ReadOntology(ss, dict);
  EXPECT_FALSE(ont.ok());
  EXPECT_EQ(ont.status().code(), StatusCode::kCorruption);
}

TEST(OntologyIoTest, RejectsTruncation) {
  std::stringstream ss("bigindex-ontology v1\n3\nA\tB\n");
  LabelDictionary dict;
  EXPECT_FALSE(ReadOntology(ss, dict).ok());
}

}  // namespace
}  // namespace bigindex
