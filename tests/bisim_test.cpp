// Unit + property tests for maximal bisimulation summarization and
// maintenance. Includes the paper's key structural properties:
// path preservation (Def 2.1), reachability preservation (Prop 5.1), and
// distance contraction (Prop 5.2).

#include <gtest/gtest.h>

#include "bisim/bisimulation.h"
#include "bisim/maintenance.h"
#include "graph/traversal.h"
#include "util/random.h"

namespace bigindex {
namespace {

Graph BuildGraph(size_t n, std::vector<LabelId> labels,
                 std::vector<std::pair<VertexId, VertexId>> edges) {
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) b.AddVertex(labels[i]);
  for (auto [u, v] : edges) b.AddEdge(u, v);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// The paper's Example 2.1 in miniature: many Person vertices all pointing at
// the same Univ vertex collapse into one supernode.
TEST(BisimTest, CollapsesIdenticalPersons) {
  // Vertices 0..9: label 0 (Person), vertex 10: label 1 (Univ).
  std::vector<LabelId> labels(11, 0);
  labels[10] = 1;
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 10; ++v) edges.push_back({v, 10});
  Graph g = BuildGraph(11, labels, edges);

  BisimResult r = ComputeBisimulation(g);
  EXPECT_EQ(r.summary.NumVertices(), 2u);
  EXPECT_EQ(r.summary.NumEdges(), 1u);
  // All persons share one supernode.
  VertexId s = r.mapping.SuperOf(0);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(r.mapping.SuperOf(v), s);
  EXPECT_NE(r.mapping.SuperOf(10), s);
  EXPECT_EQ(r.mapping.Members(s).size(), 10u);
}

TEST(BisimTest, DifferentLabelsNeverMerge) {
  Graph g = BuildGraph(2, {0, 1}, {});
  BisimResult r = ComputeBisimulation(g);
  EXPECT_EQ(r.summary.NumVertices(), 2u);
}

TEST(BisimTest, DifferentSuccessorsSplit) {
  // 0 and 1 share label 0; 0 -> 2 (label 1), 1 -> 3 (label 2).
  Graph g = BuildGraph(4, {0, 0, 1, 2}, {{0, 2}, {1, 3}});
  BisimResult r = ComputeBisimulation(g);
  EXPECT_NE(r.mapping.SuperOf(0), r.mapping.SuperOf(1));
  EXPECT_EQ(r.summary.NumVertices(), 4u);
}

TEST(BisimTest, ChainSplitsByDepth) {
  // A directed path of 5 same-label vertices: successor structure differs at
  // every depth, so no two merge.
  Graph g = BuildGraph(5, {0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  BisimResult r = ComputeBisimulation(g);
  EXPECT_EQ(r.summary.NumVertices(), 5u);
  EXPECT_GE(r.refinement_rounds, 4u);
}

TEST(BisimTest, CycleOfEquivalentVertices) {
  // A 4-cycle with one label: every vertex has the same infinite behaviour,
  // so all collapse to one supernode with a self-loop.
  Graph g = BuildGraph(4, {0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  BisimResult r = ComputeBisimulation(g);
  EXPECT_EQ(r.summary.NumVertices(), 1u);
  EXPECT_TRUE(r.summary.HasEdge(0, 0));
}

TEST(BisimTest, SummaryLabelsMatchMembers) {
  Graph g = BuildGraph(6, {0, 0, 1, 1, 2, 2},
                       {{0, 2}, {1, 3}, {2, 4}, {3, 5}});
  BisimResult r = ComputeBisimulation(g);
  for (VertexId s = 0; s < r.summary.NumVertices(); ++s) {
    for (VertexId v : r.mapping.Members(s)) {
      EXPECT_EQ(r.summary.label(s), g.label(v));
    }
  }
}

TEST(BisimTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = std::move(b.Build()).value();
  BisimResult r = ComputeBisimulation(g);
  EXPECT_EQ(r.summary.NumVertices(), 0u);
  EXPECT_EQ(r.mapping.NumSupernodes(), 0u);
}

TEST(BisimTest, ResultIsStable) {
  Graph g = BuildGraph(6, {0, 0, 1, 1, 2, 2},
                       {{0, 2}, {1, 2}, {2, 4}, {3, 5}, {0, 3}});
  BisimResult r = ComputeBisimulation(g);
  EXPECT_TRUE(IsStableBisimulation(g, r.mapping));
}

TEST(BisimTest, IdempotentOnSummary) {
  // Summarizing a summary must be a no-op (maximal bisim is a fixpoint).
  std::vector<LabelId> labels(20, 0);
  for (size_t i = 10; i < 20; ++i) labels[i] = 1;
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 10; ++v) edges.push_back({v, VertexId(10 + v % 2)});
  edges.push_back({10, 11});
  Graph g = BuildGraph(20, labels, edges);
  BisimResult r1 = ComputeBisimulation(g);
  BisimResult r2 = ComputeBisimulation(r1.summary);
  EXPECT_EQ(r2.summary.NumVertices(), r1.summary.NumVertices());
  EXPECT_EQ(r2.summary.NumEdges(), r1.summary.NumEdges());
}

TEST(BisimTest, MaxRoundsCapCoarsens) {
  // With a 1-round cap, the depth-refinement of a chain is incomplete.
  Graph g = BuildGraph(5, {0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  BisimOptions opt;
  opt.max_rounds = 1;
  BisimResult r = ComputeBisimulation(g, opt);
  EXPECT_LT(r.summary.NumVertices(), 5u);
}

// ---- Randomized property suite (parameterized over seeds) ----

struct RandomGraphCase {
  uint64_t seed;
  size_t n;
  size_t m;
  size_t num_labels;
};

class BisimPropertyTest : public ::testing::TestWithParam<RandomGraphCase> {};

Graph RandomGraph(const RandomGraphCase& c) {
  Rng rng(c.seed);
  GraphBuilder b;
  for (size_t i = 0; i < c.n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(c.num_labels)));
  }
  for (size_t i = 0; i < c.m; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.Uniform(c.n)),
              static_cast<VertexId>(rng.Uniform(c.n)));
  }
  return std::move(b.Build()).value();
}

TEST_P(BisimPropertyTest, PartitionIsStable) {
  Graph g = RandomGraph(GetParam());
  BisimResult r = ComputeBisimulation(g);
  EXPECT_TRUE(IsStableBisimulation(g, r.mapping));
}

TEST_P(BisimPropertyTest, PathPreserving) {
  // Def 2.1: every edge (and hence path) of G maps to an edge of Bisim(G).
  Graph g = RandomGraph(GetParam());
  BisimResult r = ComputeBisimulation(g);
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_TRUE(r.summary.HasEdge(r.mapping.SuperOf(u), r.mapping.SuperOf(v)));
  }
  // And conversely every summary edge is witnessed by at least one data edge
  // (no phantom edges).
  for (const auto& [su, sv] : r.summary.Edges()) {
    bool witnessed = false;
    for (VertexId u : r.mapping.Members(su)) {
      for (VertexId w : g.OutNeighbors(u)) {
        if (r.mapping.SuperOf(w) == sv) {
          witnessed = true;
          break;
        }
      }
      if (witnessed) break;
    }
    EXPECT_TRUE(witnessed);
  }
}

TEST_P(BisimPropertyTest, ReachabilityPreserved) {
  // Prop 5.1: reach(u, v, G) implies reach(Bisim(u), Bisim(v), Bisim(G)).
  Graph g = RandomGraph(GetParam());
  BisimResult r = ComputeBisimulation(g);
  Rng rng(GetParam().seed ^ 0xABCD);
  BfsScratch scratch;
  for (int trial = 0; trial < 5; ++trial) {
    VertexId u = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    auto reached = scratch.BoundedDistances(g, u, 6, Direction::kForward);
    for (auto [v, d] : reached) {
      EXPECT_TRUE(ReachableWithin(r.summary, r.mapping.SuperOf(u),
                                  r.mapping.SuperOf(v), 6));
    }
  }
}

TEST_P(BisimPropertyTest, DistanceContraction) {
  // Prop 5.2: dist(Bisim(u), Bisim(v)) <= dist(u, v).
  Graph g = RandomGraph(GetParam());
  BisimResult r = ComputeBisimulation(g);
  Rng rng(GetParam().seed ^ 0x1234);
  BfsScratch scratch;
  for (int trial = 0; trial < 5; ++trial) {
    VertexId u = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    auto reached = scratch.BoundedDistances(g, u, 5, Direction::kForward);
    for (auto [v, d] : reached) {
      uint32_t ds = ShortestDistance(r.summary, r.mapping.SuperOf(u),
                                     r.mapping.SuperOf(v), 16);
      EXPECT_LE(ds, d);
    }
  }
}

TEST_P(BisimPropertyTest, MembersPartitionVertexSet) {
  Graph g = RandomGraph(GetParam());
  BisimResult r = ComputeBisimulation(g);
  std::vector<bool> seen(g.NumVertices(), false);
  for (VertexId s = 0; s < r.mapping.NumSupernodes(); ++s) {
    for (VertexId v : r.mapping.Members(s)) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
      EXPECT_EQ(r.mapping.SuperOf(v), s);
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BisimPropertyTest,
    ::testing::Values(RandomGraphCase{1, 50, 100, 3},
                      RandomGraphCase{2, 100, 300, 5},
                      RandomGraphCase{3, 200, 250, 2},
                      RandomGraphCase{4, 80, 400, 8},
                      RandomGraphCase{5, 30, 30, 1},
                      RandomGraphCase{6, 150, 600, 4}));

// ---- maintenance ----

TEST(MaintenanceTest, ApplyAddAndRemove) {
  Graph g = BuildGraph(3, {0, 0, 0}, {{0, 1}});
  std::vector<GraphUpdate> ups = {
      {GraphUpdate::Kind::kAddEdge, 1, 2},
      {GraphUpdate::Kind::kRemoveEdge, 0, 1},
  };
  auto g2 = ApplyUpdates(g, ups);
  ASSERT_TRUE(g2.ok());
  EXPECT_FALSE(g2->HasEdge(0, 1));
  EXPECT_TRUE(g2->HasEdge(1, 2));
}

TEST(MaintenanceTest, RedundantUpdatesAreNoOps) {
  Graph g = BuildGraph(2, {0, 0}, {{0, 1}});
  std::vector<GraphUpdate> ups = {
      {GraphUpdate::Kind::kAddEdge, 0, 1},     // duplicate
      {GraphUpdate::Kind::kRemoveEdge, 1, 0},  // absent
  };
  auto g2 = ApplyUpdates(g, ups);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->NumEdges(), 1u);
}

TEST(MaintenanceTest, OutOfRangeUpdateFails) {
  Graph g = BuildGraph(2, {0, 0}, {});
  std::vector<GraphUpdate> ups = {{GraphUpdate::Kind::kAddEdge, 0, 9}};
  EXPECT_FALSE(ApplyUpdates(g, ups).ok());
}

TEST(MaintenanceTest, DetectsUnchangedSummary) {
  // Two bisimilar persons pointing at the same target; adding a *parallel*
  // structure edge that already exists in summary form leaves it unchanged.
  Graph g = BuildGraph(3, {0, 0, 1}, {{0, 2}});
  BisimResult r = ComputeBisimulation(g);
  EXPECT_EQ(r.summary.NumVertices(), 3u);  // 0 has an edge, 1 does not

  // Adding 1 -> 2 makes 0 and 1 bisimilar: summary changes.
  std::vector<GraphUpdate> ups = {{GraphUpdate::Kind::kAddEdge, 1, 2}};
  auto m = ResummarizeAfterUpdates(g, r.summary, ups);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->summary_changed);
  EXPECT_EQ(m->bisim.summary.NumVertices(), 2u);

  // Re-running with no updates: summary unchanged.
  auto m2 = ResummarizeAfterUpdates(m->updated_graph, m->bisim.summary, {});
  ASSERT_TRUE(m2.ok());
  EXPECT_FALSE(m2->summary_changed);
}

TEST(MaintenanceTest, GraphsIdenticalDetectsLabelDiff) {
  Graph a = BuildGraph(2, {0, 1}, {{0, 1}});
  Graph b = BuildGraph(2, {0, 2}, {{0, 1}});
  Graph c = BuildGraph(2, {0, 1}, {{0, 1}});
  EXPECT_FALSE(GraphsIdentical(a, b));
  EXPECT_TRUE(GraphsIdentical(a, c));
}

TEST(MaintenanceTest, EdgeInsertionCanMergeBlocks) {
  // The "previous partition is not reusable" scenario from DESIGN: adding an
  // edge merges previously distinct blocks. Exercises full recompute path.
  Graph g = BuildGraph(4, {0, 0, 1, 2}, {{0, 2}, {0, 3}, {1, 2}});
  BisimResult before = ComputeBisimulation(g);
  EXPECT_NE(before.mapping.SuperOf(0), before.mapping.SuperOf(1));
  std::vector<GraphUpdate> ups = {{GraphUpdate::Kind::kAddEdge, 1, 3}};
  auto m = ResummarizeAfterUpdates(g, before.summary, ups);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->bisim.mapping.SuperOf(0), m->bisim.mapping.SuperOf(1));
}


// ---- direction variants (future-work summarization formalisms) ----

TEST(BisimDirectionTest, PredecessorVariantSplitsByInEdges) {
  // 0 -> 2, 1 has no edge; 2 and 3 share a label. Successor bisim merges
  // 2 and 3 (no out-edges); predecessor bisim splits them (different
  // in-neighbor structure).
  Graph g = BuildGraph(4, {0, 0, 1, 1}, {{0, 2}});
  BisimResult succ = ComputeBisimulation(g);
  EXPECT_EQ(succ.mapping.SuperOf(2), succ.mapping.SuperOf(3));

  BisimOptions opt;
  opt.direction = BisimDirection::kPredecessor;
  BisimResult pred = ComputeBisimulation(g, opt);
  EXPECT_NE(pred.mapping.SuperOf(2), pred.mapping.SuperOf(3));
  // And conversely 0 and 1 split under successor, merge under predecessor.
  EXPECT_NE(succ.mapping.SuperOf(0), succ.mapping.SuperOf(1));
  EXPECT_EQ(pred.mapping.SuperOf(0), pred.mapping.SuperOf(1));
}

TEST(BisimDirectionTest, FnBIsFinest) {
  for (uint64_t seed : {21, 22, 23}) {
    RandomGraphCase c{seed, 120, 360, 4};
    Graph g = RandomGraph(c);
    BisimResult succ = ComputeBisimulation(g);
    BisimOptions both_opt;
    both_opt.direction = BisimDirection::kBoth;
    BisimResult both = ComputeBisimulation(g, both_opt);
    BisimOptions pred_opt;
    pred_opt.direction = BisimDirection::kPredecessor;
    BisimResult pred = ComputeBisimulation(g, pred_opt);
    // F&B refines both one-sided variants: at least as many blocks.
    EXPECT_GE(both.summary.NumVertices(), succ.summary.NumVertices());
    EXPECT_GE(both.summary.NumVertices(), pred.summary.NumVertices());
    // And two F&B-equivalent vertices are equivalent under both variants.
    for (VertexId v = 0; v + 1 < g.NumVertices(); ++v) {
      if (both.mapping.SuperOf(v) == both.mapping.SuperOf(v + 1)) {
        EXPECT_EQ(succ.mapping.SuperOf(v), succ.mapping.SuperOf(v + 1));
        EXPECT_EQ(pred.mapping.SuperOf(v), pred.mapping.SuperOf(v + 1));
      }
    }
  }
}

TEST(BisimDirectionTest, AllVariantsPathPreserving) {
  RandomGraphCase c{31, 100, 300, 3};
  Graph g = RandomGraph(c);
  for (BisimDirection dir :
       {BisimDirection::kSuccessor, BisimDirection::kPredecessor,
        BisimDirection::kBoth}) {
    BisimOptions opt;
    opt.direction = dir;
    BisimResult r = ComputeBisimulation(g, opt);
    for (const auto& [u, v] : g.Edges()) {
      EXPECT_TRUE(
          r.summary.HasEdge(r.mapping.SuperOf(u), r.mapping.SuperOf(v)));
    }
  }
}

}  // namespace
}  // namespace bigindex
