// Tests for the workload module: ontology/graph generators, the dataset
// registry, and the query workload generator.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "bisim/bisimulation.h"
#include "core/big_index.h"
#include "core/config_search.h"
#include "core/cost_model.h"
#include "search/bkws.h"
#include "workload/datasets.h"
#include "workload/graph_gen.h"
#include "workload/ontology_gen.h"
#include "workload/query_gen.h"

namespace bigindex {
namespace {

TEST(OntologyGenTest, RespectsShapeParameters) {
  LabelDictionary dict;
  OntologyGenOptions opt;
  opt.height = 5;
  opt.branching = 4.0;
  opt.num_roots = 2;
  opt.max_leaf_types = 200;
  opt.seed = 1;
  GeneratedOntology g = GenerateOntology(dict, opt);
  EXPECT_GT(g.leaf_types.size(), 100u);
  EXPECT_LE(g.leaf_types.size(), 220u);  // near the budget
  // Every leaf sits `height` supertype steps below a root.
  for (size_t i = 0; i < 10; ++i) {
    LabelId leaf = g.leaf_types[i * g.leaf_types.size() / 10];
    EXPECT_EQ(g.ontology.HeightAbove(leaf), opt.height);
  }
}

TEST(OntologyGenTest, LeavesReachRootsInHeightSteps) {
  LabelDictionary dict;
  OntologyGenOptions opt;
  opt.height = 4;
  opt.num_roots = 3;
  opt.max_leaf_types = 100;
  GeneratedOntology g = GenerateOntology(dict, opt);
  // Walking up from any leaf terminates within `height` steps.
  for (LabelId leaf : g.leaf_types) {
    LabelId cur = leaf;
    uint32_t steps = 0;
    while (g.ontology.HasSupertype(cur) && steps <= opt.height) {
      cur = g.ontology.Supertypes(cur).front();
      ++steps;
    }
    ASSERT_LE(steps, opt.height);
    EXPECT_FALSE(g.ontology.HasSupertype(cur));  // reached a root
  }
}

TEST(OntologyGenTest, DeterministicForSeed) {
  LabelDictionary d1, d2;
  OntologyGenOptions opt;
  opt.seed = 42;
  GeneratedOntology a = GenerateOntology(d1, opt);
  GeneratedOntology b = GenerateOntology(d2, opt);
  EXPECT_EQ(a.leaf_types, b.leaf_types);
  EXPECT_EQ(a.ontology.NumEdges(), b.ontology.NumEdges());
}

TEST(OntologyGenTest, SiblingFamiliesAreNontrivial) {
  // The generalization story needs families of >= 2 siblings at the leaf
  // level for a decent share of parents.
  LabelDictionary dict;
  OntologyGenOptions opt;
  opt.height = 6;
  opt.max_leaf_types = 300;
  GeneratedOntology g = GenerateOntology(dict, opt);
  std::unordered_map<LabelId, size_t> family_size;
  for (LabelId leaf : g.leaf_types) {
    family_size[g.ontology.Supertypes(leaf).front()]++;
  }
  size_t with_siblings = 0;
  for (const auto& [parent, count] : family_size) {
    if (count >= 2) ++with_siblings;
  }
  EXPECT_GT(with_siblings, family_size.size() / 3);
}

TEST(GraphGenTest, ProducesRequestedShape) {
  LabelDictionary dict;
  GeneratedOntology ont = GenerateOntology(dict, {.max_leaf_types = 100});
  GraphGenOptions opt;
  opt.num_vertices = 2000;
  opt.num_edges = 6000;
  Graph g = GenerateKnowledgeGraph(ont, opt);
  EXPECT_EQ(g.NumVertices(), 2000u);
  // Edge budget is approximate (duplicates collapse) but close.
  EXPECT_GT(g.NumEdges(), 4000u);
  EXPECT_LE(g.NumEdges(), 6000u);
  // All labels come from the ontology's leaves.
  std::unordered_set<LabelId> leaves(ont.leaf_types.begin(),
                                     ont.leaf_types.end());
  for (LabelId l : g.DistinctLabels()) EXPECT_TRUE(leaves.count(l));
}

TEST(GraphGenTest, DeterministicForSeed) {
  LabelDictionary dict;
  GeneratedOntology ont = GenerateOntology(dict, {.max_leaf_types = 80});
  GraphGenOptions opt;
  opt.num_vertices = 500;
  opt.num_edges = 1500;
  Graph a = GenerateKnowledgeGraph(ont, opt);
  Graph b = GenerateKnowledgeGraph(ont, opt);
  EXPECT_EQ(a.Edges(), b.Edges());
  EXPECT_TRUE(std::equal(a.labels().begin(), a.labels().end(),
                         b.labels().begin(), b.labels().end()));
}

TEST(GraphGenTest, NoiseDegradesCompression) {
  // The central generator property: more noise, less layer-1 compression.
  LabelDictionary dict;
  GeneratedOntology ont = GenerateOntology(dict, {.max_leaf_types = 150});
  auto layer1_ratio = [&](double noise) {
    GraphGenOptions opt;
    opt.num_vertices = 3000;
    opt.num_edges = 9000;
    opt.noise_fraction = noise;
    Graph g = GenerateKnowledgeGraph(ont, opt);
    GeneralizationConfig c = FullOneStepConfiguration(g, ont.ontology);
    return CostModel::ExactCompress(g, c);
  };
  double low_noise = layer1_ratio(0.05);
  double high_noise = layer1_ratio(0.6);
  EXPECT_LT(low_noise, high_noise);
}

TEST(GraphGenTest, GeneralizationUnlocksCompression) {
  // Sibling-family slots: plain bisimulation compresses less than
  // generalize-then-summarize (the paper's core premise).
  LabelDictionary dict;
  GeneratedOntology ont = GenerateOntology(dict, {.max_leaf_types = 150});
  GraphGenOptions opt;
  opt.num_vertices = 3000;
  opt.num_edges = 9000;
  opt.noise_fraction = 0.1;
  Graph g = GenerateKnowledgeGraph(ont, opt);
  BisimResult plain = ComputeBisimulation(g);
  double plain_ratio = static_cast<double>(plain.summary.Size()) / g.Size();
  GeneralizationConfig c = FullOneStepConfiguration(g, ont.ontology);
  double gen_ratio = CostModel::ExactCompress(g, c);
  EXPECT_LT(gen_ratio, plain_ratio);
}

TEST(DatasetsTest, AllRegisteredNamesBuild) {
  for (const std::string& name : DatasetNames()) {
    auto ds = MakeDataset(name, 0.001);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_GT(ds->graph.NumVertices(), 0u);
    EXPECT_GT(ds->ontology.ontology.NumTypes(), 0u);
    EXPECT_EQ(ds->name, name);
    EXPECT_GT(ds->paper_vertices, 0u);
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeDataset("freebase", 0.01).ok());
  EXPECT_EQ(MakeDataset("freebase", 0.01).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetsTest, BadScaleRejected) {
  EXPECT_FALSE(MakeDataset("yago3", 0.0).ok());
  EXPECT_FALSE(MakeDataset("yago3", -1.0).ok());
}

TEST(DatasetsTest, ScaleControlsSize) {
  auto small = MakeDataset("yago3", 0.001);
  auto large = MakeDataset("yago3", 0.004);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->graph.NumVertices() * 3, large->graph.NumVertices());
}

TEST(DatasetsTest, CompressionOrderingMatchesPaper) {
  // Tab. 3 ordering at layer 1: yago3 < imdb < dbpedia (smaller = more
  // compression).
  std::map<std::string, double> ratio;
  for (const char* name : {"yago3", "imdb", "dbpedia"}) {
    auto ds = MakeDataset(name, 0.005);
    ASSERT_TRUE(ds.ok());
    auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                                 {.max_layers = 1});
    ASSERT_TRUE(index.ok());
    ratio[name] = index->LayerCompressionRatio(1);
  }
  EXPECT_LT(ratio["yago3"], ratio["imdb"]);
  EXPECT_LT(ratio["imdb"], ratio["dbpedia"]);
}

TEST(QueryGenTest, GeneratesRequestedSizes) {
  auto ds = MakeDataset("yago3", 0.005);
  ASSERT_TRUE(ds.ok());
  QueryGenOptions opt;
  opt.sizes = {2, 3, 4};
  opt.min_count = 5;
  auto workload = GenerateQueryWorkload(*ds, opt);
  ASSERT_EQ(workload.size(), 3u);
  EXPECT_EQ(workload[0].keywords.size(), 2u);
  EXPECT_EQ(workload[1].keywords.size(), 3u);
  EXPECT_EQ(workload[2].keywords.size(), 4u);
}

TEST(QueryGenTest, KeywordsAreDistinctAndFrequent) {
  auto ds = MakeDataset("imdb", 0.005);
  ASSERT_TRUE(ds.ok());
  QueryGenOptions opt;
  opt.min_count = 8;
  auto workload = GenerateQueryWorkload(*ds, opt);
  for (const QuerySpec& q : workload) {
    std::set<LabelId> distinct(q.keywords.begin(), q.keywords.end());
    EXPECT_EQ(distinct.size(), q.keywords.size()) << q.id;
    ASSERT_EQ(q.counts.size(), q.keywords.size());
    for (size_t i = 0; i < q.keywords.size(); ++i) {
      EXPECT_EQ(ds->graph.LabelCount(q.keywords[i]), q.counts[i]);
      // The floor may have been relaxed, but never below 1.
      EXPECT_GE(q.counts[i], 1u);
    }
  }
}

TEST(QueryGenTest, DeterministicForSeed) {
  auto ds = MakeDataset("yago3", 0.003);
  ASSERT_TRUE(ds.ok());
  QueryGenOptions opt;
  opt.min_count = 5;
  auto w1 = GenerateQueryWorkload(*ds, opt);
  auto w2 = GenerateQueryWorkload(*ds, opt);
  ASSERT_EQ(w1.size(), w2.size());
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].keywords, w2[i].keywords);
  }
}

TEST(QueryGenTest, QueriesHaveAnswers) {
  // Keywords come from one vertex's neighborhood, so a search should find
  // connections for at least most queries.
  auto ds = MakeDataset("yago3", 0.005);
  ASSERT_TRUE(ds.ok());
  QueryGenOptions opt;
  opt.sizes = {2, 2, 3};
  opt.min_count = 5;
  auto workload = GenerateQueryWorkload(*ds, opt);
  size_t with_answers = 0;
  for (const QuerySpec& q : workload) {
    auto answers = BackwardKeywordSearch(ds->graph, q.keywords, {.d_max = 6});
    if (!answers.empty()) ++with_answers;
  }
  EXPECT_GE(with_answers, workload.size() / 2);
}

TEST(QueryGenTest, WorkloadToStringRendersAllQueries) {
  auto ds = MakeDataset("yago3", 0.002);
  ASSERT_TRUE(ds.ok());
  QueryGenOptions opt;
  opt.sizes = {2, 2};
  opt.min_count = 2;
  auto workload = GenerateQueryWorkload(*ds, opt);
  std::string rendered = WorkloadToString(*ds, workload);
  for (const QuerySpec& q : workload) {
    EXPECT_NE(rendered.find(q.id), std::string::npos);
  }
}

}  // namespace
}  // namespace bigindex
