// Graph-sharder tests: plan invariants (coverage, balance, boundary
// manifest) over 50 random seeds for both shard modes, order-preserving
// extraction, plan determinism, and a sharded-vs-monolithic differential in
// connectivity-closed mode — the scatter-gather union of per-shard answer
// sets must equal the monolithic answer set for every registered algorithm
// at every layer (tests/shard_test.cpp runs the full 100-seed acceptance
// gate through the substrates; this one exercises the partitioner + extract
// layer directly).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/big_index.h"
#include "engine/query_engine.h"
#include "search/answer.h"
#include "search/partitioner.h"
#include "search/rclique.h"
#include "shard/shard_build.h"
#include "testing/random_graph.h"
#include "util/random.h"

namespace bigindex {
namespace {

using testing::MakeRandomGraph;
using testing::MakeRandomOntologyDag;
using testing::RandomGraphOptions;

constexpr int kSeeds = 50;

RandomGraphOptions GraphOptions(uint64_t seed) {
  RandomGraphOptions opts;
  opts.num_vertices = 40 + seed % 140;
  opts.edge_density = 0.5 + 0.04 * static_cast<double>(seed % 50);
  opts.num_labels = 6;
  opts.label_skew = seed % 3 ? 0.0 : 0.8;
  opts.seed = seed;
  return opts;
}

// --- Plan invariants ------------------------------------------------------

void CheckCover(const Graph& g, const ShardPlan& plan) {
  ASSERT_EQ(plan.NumVertices(), g.NumVertices());
  size_t total = 0;
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    std::span<const VertexId> members = plan.ShardMembers(s);
    total += members.size();
    ASSERT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (VertexId v : members) EXPECT_EQ(plan.ShardOf(v), s);
  }
  // Sorted-within-shard + ShardOf agreement + total count == exact cover.
  EXPECT_EQ(total, g.NumVertices());
}

void CheckManifest(const Graph& g, const ShardPlan& plan) {
  // The manifest must list exactly the severed edges, sorted by
  // (source, target).
  std::vector<CutEdge> expected;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (plan.ShardOf(u) != plan.ShardOf(v)) expected.push_back({u, v});
    }
  }
  std::span<const CutEdge> cut = plan.CutEdges();
  ASSERT_EQ(cut.size(), expected.size());
  for (size_t i = 0; i < cut.size(); ++i) {
    EXPECT_EQ(cut[i], expected[i]);
    if (i > 0) {
      EXPECT_TRUE(cut[i - 1].source < cut[i].source ||
                  (cut[i - 1].source == cut[i].source &&
                   cut[i - 1].target < cut[i].target));
    }
  }
}

TEST(ShardPlan, ConnectivityClosedInvariantsOver50Seeds) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    for (size_t n : {1u, 2u, 4u, 7u}) {
      auto plan = PlanShards(g, {.num_shards = n});
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      ASSERT_EQ(plan->num_shards(), n);
      CheckCover(g, *plan);
      // Whole components per shard => no edge is ever severed.
      EXPECT_TRUE(plan->CutEdges().empty()) << "seed " << seed;
      CheckManifest(g, *plan);
      // Component closure: every edge stays within one shard.
      for (VertexId u = 0; u < g.NumVertices(); ++u) {
        for (VertexId v : g.OutNeighbors(u)) {
          ASSERT_EQ(plan->ShardOf(u), plan->ShardOf(v));
        }
      }
    }
  }
}

TEST(ShardPlan, BfsBlocksInvariantsAndBalanceOver50Seeds) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    const size_t block = 16;
    for (size_t n : {2u, 4u}) {
      auto plan = PlanShards(
          g, {.num_shards = n, .mode = ShardMode::kBfsBlocks,
              .bfs_block_size = block});
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      CheckCover(g, *plan);
      CheckManifest(g, *plan);
      // LPT guarantee: no shard exceeds ideal share + one packing unit.
      size_t max_size = 0;
      for (uint32_t s = 0; s < n; ++s) {
        max_size = std::max(max_size, plan->ShardMembers(s).size());
      }
      double ideal = static_cast<double>(g.NumVertices()) / n;
      EXPECT_LE(static_cast<double>(max_size), ideal + block)
          << "seed " << seed << " shards " << n;
    }
  }
}

TEST(ShardPlan, Deterministic) {
  for (int seed : {3, 17, 42}) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    for (ShardMode mode :
         {ShardMode::kConnectivityClosed, ShardMode::kBfsBlocks}) {
      ShardPlanOptions opts{.num_shards = 3, .mode = mode,
                            .bfs_block_size = 16};
      auto a = PlanShards(g, opts);
      auto b = PlanShards(g, opts);
      ASSERT_TRUE(a.ok() && b.ok());
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        ASSERT_EQ(a->ShardOf(v), b->ShardOf(v));
      }
      ASSERT_TRUE(std::equal(a->CutEdges().begin(), a->CutEdges().end(),
                             b->CutEdges().begin(), b->CutEdges().end()));
    }
  }
}

TEST(ShardPlan, RejectsZeroShards) {
  Graph g = MakeRandomGraph(GraphOptions(1));
  EXPECT_FALSE(PlanShards(g, {.num_shards = 0}).ok());
}

TEST(ShardPlan, EmptyGraph) {
  Graph g;
  auto plan = PlanShards(g, {.num_shards = 3});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumVertices(), 0u);
  for (uint32_t s = 0; s < 3; ++s) EXPECT_TRUE(plan->ShardMembers(s).empty());
}

// --- Extraction -----------------------------------------------------------

TEST(ExtractShard, OrderPreservingRemapAndEdgeAccounting) {
  for (int seed = 1; seed <= 10; ++seed) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    for (ShardMode mode :
         {ShardMode::kConnectivityClosed, ShardMode::kBfsBlocks}) {
      auto plan = PlanShards(
          g, {.num_shards = 3, .mode = mode, .bfs_block_size = 16});
      ASSERT_TRUE(plan.ok());
      size_t edges = 0, cut_copies = 0;
      for (uint32_t s = 0; s < plan->num_shards(); ++s) {
        auto ex = ExtractShard(g, *plan, s);
        ASSERT_TRUE(ex.ok()) << ex.status().ToString();
        std::span<const VertexId> members = plan->ShardMembers(s);
        // global_of covers members plus materialized ghosts, and local id i
        // is the i-th smallest global id of that union (order-preserving).
        ASSERT_EQ(ex->global_of.size(), members.size() + ex->ghosts.size());
        ASSERT_EQ(ex->graph.NumVertices(), ex->global_of.size());
        ASSERT_TRUE(std::is_sorted(ex->global_of.begin(),
                                   ex->global_of.end()));
        ASSERT_TRUE(std::adjacent_find(ex->global_of.begin(),
                                       ex->global_of.end()) ==
                    ex->global_of.end());
        // Stripping the ghosts leaves exactly the sorted member list.
        std::set<VertexId> ghost_locals(ex->ghosts.begin(),
                                        ex->ghosts.end());
        std::vector<VertexId> owned;
        for (VertexId local = 0; local < ex->graph.NumVertices(); ++local) {
          if (!ghost_locals.count(local)) {
            owned.push_back(ex->global_of[local]);
          }
        }
        EXPECT_TRUE(std::equal(owned.begin(), owned.end(), members.begin(),
                               members.end()));
        if (mode == ShardMode::kConnectivityClosed) {
          EXPECT_TRUE(ex->ghosts.empty());
        }
        // Labels ride along unchanged, ghosts included.
        for (VertexId local = 0; local < ex->graph.NumVertices(); ++local) {
          EXPECT_EQ(ex->graph.label(local), g.label(ex->global_of[local]));
        }
        edges += ex->graph.NumEdges();
        // Every incident cut edge is materialized in this shard.
        for (const CutEdge& e : plan->CutEdges()) {
          if (plan->ShardOf(e.source) != s && plan->ShardOf(e.target) != s) {
            continue;
          }
          ++cut_copies;
          auto local_of = [&](VertexId global, VertexId* local) {
            auto it = std::lower_bound(ex->global_of.begin(),
                                       ex->global_of.end(), global);
            if (it == ex->global_of.end() || *it != global) return false;
            *local = static_cast<VertexId>(it - ex->global_of.begin());
            return true;
          };
          VertexId lu, lv;
          ASSERT_TRUE(local_of(e.source, &lu) && local_of(e.target, &lv));
          auto out = ex->graph.OutNeighbors(lu);
          EXPECT_TRUE(std::find(out.begin(), out.end(), lv) != out.end())
              << "cut edge " << e.source << "->" << e.target
              << " missing in shard " << s;
        }
      }
      // Every intra-shard edge lands in exactly one shard subgraph; every
      // cut edge is materialized in both incident shards.
      EXPECT_EQ(cut_copies, 2 * plan->CutEdges().size());
      EXPECT_EQ(edges, g.NumEdges() + plan->CutEdges().size());
    }
  }
}

TEST(ExtractShard, RejectsOutOfRangeShard) {
  Graph g = MakeRandomGraph(GraphOptions(1));
  auto plan = PlanShards(g, {.num_shards = 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(ExtractShard(g, *plan, 2).ok());
}

// --- Ghost / cut-manifest invariants (DESIGN.md §9) -----------------------

TEST(GhostManifest, RemapRoundTripsOver50Seeds) {
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    for (size_t n : {2u, 4u}) {
      auto plan = PlanShards(g, {.num_shards = n,
                                 .mode = ShardMode::kBfsBlocks,
                                 .bfs_block_size = 16});
      ASSERT_TRUE(plan.ok());
      for (uint32_t s = 0; s < n; ++s) {
        auto ex = ExtractShard(g, *plan, s);
        ASSERT_TRUE(ex.ok());
        ASSERT_TRUE(std::is_sorted(ex->ghosts.begin(), ex->ghosts.end()));
        ASSERT_TRUE(std::adjacent_find(ex->ghosts.begin(),
                                       ex->ghosts.end()) ==
                    ex->ghosts.end());
        // global -> local -> global is the identity for every materialized
        // vertex: the remap is a strictly ascending bijection onto locals.
        for (VertexId local = 0; local < ex->graph.NumVertices(); ++local) {
          VertexId global = ex->global_of[local];
          auto it = std::lower_bound(ex->global_of.begin(),
                                     ex->global_of.end(), global);
          ASSERT_TRUE(it != ex->global_of.end() && *it == global);
          ASSERT_EQ(static_cast<VertexId>(it - ex->global_of.begin()),
                    local);
        }
        // Ghosts are exactly the foreign endpoints of this shard's
        // incident cut edges — no more, no fewer — and each is owned by a
        // different shard.
        std::set<VertexId> expected_ghosts;
        for (const CutEdge& e : plan->CutEdges()) {
          if (plan->ShardOf(e.source) == s) expected_ghosts.insert(e.target);
          if (plan->ShardOf(e.target) == s) expected_ghosts.insert(e.source);
        }
        std::set<VertexId> actual_ghosts;
        for (VertexId local : ex->ghosts) {
          ASSERT_LT(local, ex->graph.NumVertices());
          VertexId global = ex->global_of[local];
          EXPECT_NE(plan->ShardOf(global), s);
          // "Exactly once": inserting twice would mean a duplicate.
          EXPECT_TRUE(actual_ghosts.insert(global).second);
        }
        EXPECT_EQ(actual_ghosts, expected_ghosts)
            << "seed " << seed << " shard " << s << "/" << n;
      }
    }
  }
}

TEST(GhostManifest, StableAcrossBuildThreadCounts) {
  for (int seed : {3, 29}) {
    Graph g = MakeRandomGraph(GraphOptions(seed));
    Ontology ontology =
        MakeRandomOntologyDag({.num_leaves = 6, .height = 3, .seed = 7});
    std::vector<std::vector<VertexId>> global_of, ghosts;
    std::vector<std::vector<CutEdge>> cuts;
    for (size_t threads : {0u, 4u}) {
      ShardBuildOptions opts;
      opts.plan = {.num_shards = 3, .mode = ShardMode::kBfsBlocks,
                   .bfs_block_size = 16};
      opts.index = {.max_layers = 2, .build = {.num_threads = threads}};
      auto sharded = BuildShardedIndex(g, &ontology, opts);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      std::vector<VertexId> flat_global, flat_ghosts;
      for (const BuiltShard& built : sharded->shards) {
        flat_global.insert(flat_global.end(), built.shard.global_of.begin(),
                           built.shard.global_of.end());
        flat_ghosts.insert(flat_ghosts.end(), built.shard.ghosts.begin(),
                           built.shard.ghosts.end());
      }
      global_of.push_back(std::move(flat_global));
      ghosts.push_back(std::move(flat_ghosts));
      cuts.emplace_back(sharded->plan.CutEdges().begin(),
                        sharded->plan.CutEdges().end());
    }
    // The plan, the remaps, and the ghost sets are functions of the graph
    // alone — build parallelism must not leak into them.
    EXPECT_EQ(global_of[0], global_of[1]) << "seed " << seed;
    EXPECT_EQ(ghosts[0], ghosts[1]) << "seed " << seed;
    ASSERT_EQ(cuts[0].size(), cuts[1].size());
    for (size_t i = 0; i < cuts[0].size(); ++i) {
      EXPECT_EQ(cuts[0][i], cuts[1][i]);
    }
  }
}

// --- Sharded-vs-monolithic differential ----------------------------------

// r-clique's default registration caps answers at top_k=10 internally; the
// differential compares full answer sets, so every engine re-registers it
// uncapped. All other defaults already enumerate exhaustively.
void UncapRClique(QueryEngine& engine) {
  engine.Register(
      std::make_unique<RCliqueAlgorithm>(RCliqueOptions{.r = 4, .top_k = 0}));
}

TEST(ShardDifferential, UnionOfShardAnswersEqualsMonolithic) {
  for (int seed = 1; seed <= 12; ++seed) {
    RandomGraphOptions gopts = GraphOptions(seed);
    gopts.num_vertices = 40 + seed % 40;
    Graph g = MakeRandomGraph(gopts);
    Ontology ontology =
        MakeRandomOntologyDag({.num_leaves = 6, .height = 3, .seed = 7});

    auto mono_index = BigIndex::Build(g, &ontology, {.max_layers = 3});
    ASSERT_TRUE(mono_index.ok());
    QueryEngine mono(std::move(mono_index).value());
    UncapRClique(mono);

    auto plan = PlanShards(g, {.num_shards = 4});
    ASSERT_TRUE(plan.ok());
    std::vector<std::unique_ptr<QueryEngine>> engines;
    size_t max_layers = mono.index().NumLayers();
    for (uint32_t s = 0; s < plan->num_shards(); ++s) {
      auto ex = ExtractShard(g, *plan, s);
      ASSERT_TRUE(ex.ok());
      auto index =
          BigIndex::Build(std::move(ex->graph), &ontology, {.max_layers = 3});
      ASSERT_TRUE(index.ok());
      engines.push_back(
          std::make_unique<QueryEngine>(std::move(index).value()));
      UncapRClique(*engines.back());
    }

    Rng rng(seed * 977);
    std::vector<ShardExtract> extracts;
    for (uint32_t s = 0; s < plan->num_shards(); ++s) {
      extracts.push_back(std::move(ExtractShard(g, *plan, s)).value());
    }
    for (const char* algo :
         {"bkws", "blinks", "r-clique", "bidirectional"}) {
      EngineQuery q;
      q.algorithm = algo;
      q.keywords = {static_cast<LabelId>(rng.Uniform(6)),
                    static_cast<LabelId>(rng.Uniform(6))};
      q.NormalizeKeywords();
      q.eval.top_k = 0;  // full set equality, every layer
      for (int layer = 0; layer <= static_cast<int>(max_layers); ++layer) {
        q.eval.forced_layer = layer;
        auto mono_result = mono.Evaluate(q);
        ASSERT_TRUE(mono_result.ok()) << mono_result.status().ToString();
        std::vector<Answer> merged;
        for (uint32_t s = 0; s < plan->num_shards(); ++s) {
          auto r = engines[s]->Evaluate(q);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          for (Answer a : r->answers) {
            // Remap shard-local ids to global before comparing.
            const std::vector<VertexId>& remap = extracts[s].global_of;
            for (VertexId& v : a.vertices) v = remap[v];
            for (VertexId& v : a.keyword_vertices) v = remap[v];
            if (a.root != kInvalidVertex) a.root = remap[a.root];
            merged.push_back(std::move(a));
          }
        }
        SortAnswers(merged);
        std::vector<Answer> expected = mono_result->answers;
        SortAnswers(expected);
        ASSERT_EQ(merged, expected)
            << "seed " << seed << " algo " << algo << " layer " << layer;
      }
    }
  }
}

}  // namespace
}  // namespace bigindex
