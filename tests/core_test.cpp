// Tests for the BiG-index core: cost model (Formula 3), configuration search
// (Algorithm 1), hierarchy construction (Def 3.1), query-layer selection
// (Formula 4 / Def 4.1), serialization, and maintenance.

#include <gtest/gtest.h>

#include <sstream>

#include "core/big_index.h"
#include "core/config_search.h"
#include "core/cost_model.h"
#include "core/index_io.h"
#include "core/query.h"
#include "util/random.h"
#include "workload/datasets.h"
#include "workload/graph_gen.h"
#include "workload/ontology_gen.h"

namespace bigindex {
namespace {

// A two-level ontology over 6 leaf labels: {0,1,2}->6, {3,4}->7, {5}->8,
// and 6,7,8 -> 9 ("Thing").
struct Fixture {
  Ontology ont;

  Fixture() {
    OntologyBuilder b;
    b.AddSupertypeEdge(0, 6);
    b.AddSupertypeEdge(1, 6);
    b.AddSupertypeEdge(2, 6);
    b.AddSupertypeEdge(3, 7);
    b.AddSupertypeEdge(4, 7);
    b.AddSupertypeEdge(5, 8);
    b.AddSupertypeEdge(6, 9);
    b.AddSupertypeEdge(7, 9);
    b.AddSupertypeEdge(8, 9);
    ont = std::move(b.Build()).value();
  }
};

Graph MotifGraph(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(6)));
  }
  // Fan-in motifs for compressibility.
  size_t made = 0;
  while (made < m) {
    VertexId hub = static_cast<VertexId>(rng.Uniform(n));
    size_t batch = rng.UniformRange(3, 10);
    for (size_t i = 0; i < batch && made < m; ++i) {
      VertexId src = static_cast<VertexId>(rng.Uniform(n));
      if (src != hub) {
        b.AddEdge(src, hub);
        ++made;
      }
    }
  }
  return std::move(b.Build()).value();
}

// ---- cost model ----

TEST(CostModelTest, EmptyConfigHasZeroDistort) {
  Fixture f;
  Graph g = MotifGraph(1, 200, 400);
  CostModel model(g, {.sample_count = 50});
  GeneralizationConfig empty;
  EXPECT_DOUBLE_EQ(model.Distort(empty), 0.0);
}

TEST(CostModelTest, DistortGrowsWithFamilySize) {
  Fixture f;
  Graph g = MotifGraph(2, 200, 400);
  CostModel model(g, {.sample_count = 50});

  GeneralizationConfig lone;  // only label 5 -> 8: family of 1, distort 0
  ASSERT_TRUE(lone.AddMapping(5, 8).ok());
  EXPECT_DOUBLE_EQ(model.Distort(lone), 0.0);

  GeneralizationConfig family;  // {0,1,2} -> 6: families of 3
  ASSERT_TRUE(family.AddMapping(0, 6).ok());
  ASSERT_TRUE(family.AddMapping(1, 6).ok());
  ASSERT_TRUE(family.AddMapping(2, 6).ok());
  EXPECT_GT(model.Distort(family), 0.0);
  EXPECT_LT(model.Distort(family), 1.0);
}

TEST(CostModelTest, DistortExampleFromPaper) {
  // Example 3.1: two labels generalized to the same supertype each have
  // distort 1/2.
  Graph g = MotifGraph(3, 100, 200);
  CostModel model(g, {.sample_count = 10});
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(0, 6).ok());
  ASSERT_TRUE(c.AddMapping(1, 6).ok());
  // distort(ℓ) = 1 - 1/2 for both; weighted normalization over |X| = 2 with
  // equal per-label formula gives 0.5 / 2 = 0.25.
  EXPECT_NEAR(model.Distort(c), 0.25, 1e-9);
}

TEST(CostModelTest, GeneralizationImprovesCompress) {
  Graph g = MotifGraph(4, 400, 1200);
  CostModel model(g, {.sample_count = 100, .seed = 5});
  GeneralizationConfig none;
  GeneralizationConfig all;
  for (LabelId l = 0; l < 6; ++l) {
    ASSERT_TRUE(all.AddMapping(l, l < 3 ? 6 : (l < 5 ? 7 : 8)).ok());
  }
  // Merging labels can only increase bisimilarity.
  EXPECT_LE(model.EstimateCompress(all), model.EstimateCompress(none) + 1e-9);
}

TEST(CostModelTest, EstimateTracksExactCompress) {
  Graph g = MotifGraph(5, 500, 1500);
  CostModel model(g, {.sample_radius = 2, .sample_count = 300, .seed = 7});
  GeneralizationConfig all;
  for (LabelId l = 0; l < 6; ++l) {
    ASSERT_TRUE(all.AddMapping(l, l < 3 ? 6 : (l < 5 ? 7 : 8)).ok());
  }
  double estimated = model.EstimateCompress(all);
  double exact = CostModel::ExactCompress(g, all);
  // The estimator indicates the ballpark (the paper validates *relative*
  // ordering, Fig 16); allow generous tolerance.
  EXPECT_NEAR(estimated, exact, 0.35);
}

TEST(CostModelTest, CostCombinesTerms) {
  Graph g = MotifGraph(6, 100, 200);
  CostModelOptions opt{.alpha = 1.0, .sample_count = 30};
  CostModel compress_only(g, opt);
  GeneralizationConfig c;
  ASSERT_TRUE(c.AddMapping(0, 6).ok());
  ASSERT_TRUE(c.AddMapping(1, 6).ok());
  EXPECT_DOUBLE_EQ(compress_only.Cost(c), compress_only.EstimateCompress(c));
  opt.alpha = 0.0;
  CostModel distort_only(g, opt);
  EXPECT_DOUBLE_EQ(distort_only.Cost(c), distort_only.Distort(c));
}

// ---- config search ----

TEST(ConfigSearchTest, FullOneStepMapsEveryLabelWithSupertype) {
  Fixture f;
  Graph g = MotifGraph(7, 100, 200);
  GeneralizationConfig c = FullOneStepConfiguration(g, f.ont);
  EXPECT_TRUE(c.Validate(f.ont).ok());
  for (LabelId l : g.DistinctLabels()) {
    if (f.ont.HasSupertype(l)) {
      EXPECT_TRUE(c.Maps(l)) << "label " << l;
    } else {
      EXPECT_FALSE(c.Maps(l));
    }
  }
}

TEST(ConfigSearchTest, GreedyRespectsBudgetPi) {
  Fixture f;
  Graph g = MotifGraph(8, 200, 500);
  ConfigSearchOptions opt;
  opt.pi = 2;
  opt.theta = 10.0;  // no cost limit
  opt.cost.sample_count = 30;
  GeneralizationConfig c = FindConfiguration(g, f.ont, opt);
  EXPECT_LE(c.size(), 2u);
  EXPECT_TRUE(c.Validate(f.ont).ok());
}

TEST(ConfigSearchTest, GreedyRespectsThetaZero) {
  Fixture f;
  Graph g = MotifGraph(9, 200, 500);
  ConfigSearchOptions opt;
  opt.theta = 0.0;  // nothing is cheap enough
  opt.cost.sample_count = 30;
  GeneralizationConfig c = FindConfiguration(g, f.ont, opt);
  EXPECT_TRUE(c.empty());
}

TEST(ConfigSearchTest, GreedyProducesValidLowCostConfig) {
  Fixture f;
  Graph g = MotifGraph(10, 300, 900);
  ConfigSearchOptions opt;
  opt.theta = 0.9;
  opt.cost.sample_count = 50;
  GeneralizationConfig c = FindConfiguration(g, f.ont, opt);
  EXPECT_TRUE(c.Validate(f.ont).ok());
  CostModel model(g, opt.cost);
  if (!c.empty()) {
    EXPECT_LE(model.Cost(c), opt.theta + 1e-9);
  }
}

// ---- BigIndex construction ----

TEST(BigIndexTest, BuildsLayersAndShrinks) {
  Fixture f;
  Graph g = MotifGraph(11, 500, 1500);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 4});
  ASSERT_TRUE(index.ok());
  EXPECT_GE(index->NumLayers(), 1u);
  // Summary layers never grow.
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    EXPECT_LE(index->LayerGraph(m).Size(), index->LayerGraph(m - 1).Size());
  }
  EXPECT_LT(index->LayerCompressionRatio(index->NumLayers()), 1.0);
}

TEST(BigIndexTest, NullOntologyRejected) {
  Graph g = MotifGraph(12, 50, 100);
  EXPECT_FALSE(BigIndex::Build(std::move(g), nullptr, {}).ok());
}

TEST(BigIndexTest, MapUpAndSpecializeAreInverse) {
  Fixture f;
  Graph g = MotifGraph(13, 300, 900);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    const Graph& lower = index->LayerGraph(m - 1);
    for (VertexId v = 0; v < lower.NumVertices(); ++v) {
      VertexId super = index->MapUp(v, m - 1, m);
      auto members = index->SpecializeVertex(super, m);
      EXPECT_TRUE(std::find(members.begin(), members.end(), v) !=
                  members.end());
    }
  }
}

TEST(BigIndexTest, LayerLabelsAreGeneralizations) {
  Fixture f;
  Graph g = MotifGraph(14, 200, 600);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  const Graph& base = index->base();
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    const Graph& layer = index->LayerGraph(m);
    for (VertexId v = 0; v < base.NumVertices(); ++v) {
      VertexId super = index->MapUp(v, 0, m);
      EXPECT_EQ(layer.label(super),
                index->GeneralizeLabel(base.label(v), m));
    }
  }
}

TEST(BigIndexTest, PathPreservationAcrossLayers) {
  // Prop 5.1 lifted through the whole hierarchy: every base edge maps to an
  // edge at every layer.
  Fixture f;
  Graph g = MotifGraph(15, 300, 900);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    const Graph& layer = index->LayerGraph(m);
    for (const auto& [u, v] : index->base().Edges()) {
      EXPECT_TRUE(
          layer.HasEdge(index->MapUp(u, 0, m), index->MapUp(v, 0, m)));
    }
  }
}

TEST(BigIndexTest, GeneralizeKeywordsChainsConfigs) {
  Fixture f;
  Graph g = MotifGraph(16, 200, 400);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  ASSERT_GE(index->NumLayers(), 2u);
  // Layer 1 lifts leaves to mid types; layer 2 lifts mids to the root type.
  EXPECT_EQ(index->GeneralizeLabel(0, 1), 6u);
  EXPECT_EQ(index->GeneralizeLabel(0, 2), 9u);
  auto q = index->GeneralizeKeywords({0, 3}, 1);
  EXPECT_EQ(q, (std::vector<LabelId>{6, 7}));
}

TEST(BigIndexTest, StopsWhenNothingToGain) {
  // All labels already roots: configs are empty; an incompressible graph
  // (distinct labels) stops layering immediately.
  OntologyBuilder ob;
  ob.AddSupertypeEdge(100, 101);  // unrelated to the graph's labels
  Ontology ont = std::move(ob.Build()).value();
  GraphBuilder b;
  for (int i = 0; i < 10; ++i) b.AddVertex(static_cast<LabelId>(i));
  for (int i = 0; i + 1 < 10; ++i) {
    b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  auto index = BigIndex::Build(std::move(b.Build()).value(), &ont,
                               {.max_layers = 5});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumLayers(), 0u);
}

TEST(BigIndexTest, GreedyConfigModeBuilds) {
  Fixture f;
  Graph g = MotifGraph(17, 200, 600);
  BigIndexOptions opt;
  opt.max_layers = 2;
  opt.use_greedy_config = true;
  opt.config_search.theta = 0.95;
  opt.config_search.cost.sample_count = 30;
  auto index = BigIndex::Build(std::move(g), &f.ont, opt);
  ASSERT_TRUE(index.ok());
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    EXPECT_TRUE(index->Layer(m).config.Validate(f.ont).ok());
  }
}

TEST(BigIndexTest, TotalSummarySize) {
  Fixture f;
  Graph g = MotifGraph(18, 200, 600);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  size_t total = 0;
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    total += index->LayerGraph(m).Size();
  }
  EXPECT_EQ(index->TotalSummarySize(), total);
}

// ---- maintenance ----

TEST(BigIndexMaintenanceTest, UpdatesKeepInvariants) {
  Fixture f;
  Graph g = MotifGraph(19, 200, 500);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());

  std::vector<GraphUpdate> ups = {
      {GraphUpdate::Kind::kAddEdge, 1, 2},
      {GraphUpdate::Kind::kAddEdge, 3, 4},
      {GraphUpdate::Kind::kRemoveEdge, 0, 1},
  };
  auto rebuilt = index->ApplyUpdates(ups);
  ASSERT_TRUE(rebuilt.ok());

  // Invariants hold after maintenance: path preservation at every layer.
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    const Graph& layer = index->LayerGraph(m);
    for (const auto& [u, v] : index->base().Edges()) {
      EXPECT_TRUE(
          layer.HasEdge(index->MapUp(u, 0, m), index->MapUp(v, 0, m)));
    }
  }
}

TEST(BigIndexMaintenanceTest, NoOpUpdateRebuildsNothing) {
  Fixture f;
  Graph g = MotifGraph(20, 100, 300);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  auto rebuilt = index->ApplyUpdates({});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, 0u);
}

TEST(BigIndexMaintenanceTest, BadUpdateRejected) {
  Fixture f;
  Graph g = MotifGraph(21, 50, 100);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  std::vector<GraphUpdate> ups = {{GraphUpdate::Kind::kAddEdge, 0, 999999}};
  EXPECT_FALSE(index->ApplyUpdates(ups).ok());
}

// ---- query layer selection ----

TEST(QueryLayerTest, DistinctnessCondition) {
  Fixture f;
  Graph g = MotifGraph(22, 300, 900);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  ASSERT_GE(index->NumLayers(), 2u);
  // 0 and 1 both generalize to 6 at layer 1: not distinct there.
  EXPECT_TRUE(QueryDistinctAtLayer(*index, {0, 1}, 0));
  EXPECT_FALSE(QueryDistinctAtLayer(*index, {0, 1}, 1));
  // 0 and 3 stay distinct at layer 1 (6 vs 7) but merge at layer 2 (9).
  EXPECT_TRUE(QueryDistinctAtLayer(*index, {0, 3}, 1));
  EXPECT_FALSE(QueryDistinctAtLayer(*index, {0, 3}, 2));
}

TEST(QueryLayerTest, OptimalLayerRespectsDistinctness) {
  Fixture f;
  Graph g = MotifGraph(23, 300, 900);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  for (double beta : {0.1, 0.5, 0.9}) {
    size_t m = OptimalQueryLayer(*index, {0, 3}, beta);
    EXPECT_TRUE(QueryDistinctAtLayer(*index, {0, 3}, m));
    EXPECT_LE(m, index->NumLayers());
  }
}

TEST(QueryLayerTest, CostTradesSizeAgainstSupport) {
  Fixture f;
  Graph g = MotifGraph(24, 400, 1200);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());
  ASSERT_GE(index->NumLayers(), 1u);
  // β = 1: only graph size matters -> higher layers are never worse.
  double c0 = QueryLayerCost(*index, {0, 3}, 0, 1.0);
  double c1 = QueryLayerCost(*index, {0, 3}, 1, 1.0);
  EXPECT_LE(c1, c0 + 1e-9);
  // β = 0: only keyword support matters -> layer 0 is never worse.
  double s0 = QueryLayerCost(*index, {0, 3}, 0, 0.0);
  double s1 = QueryLayerCost(*index, {0, 3}, 1, 0.0);
  EXPECT_LE(s0, s1 + 1e-9);
}

// ---- serialization ----

TEST(IndexIoTest, RoundTrip) {
  Fixture f;
  LabelDictionary dict;
  for (int i = 0; i < 10; ++i) dict.Intern("L" + std::to_string(i));
  Graph g = MotifGraph(25, 150, 450);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 3});
  ASSERT_TRUE(index.ok());

  std::stringstream ss;
  ASSERT_TRUE(WriteIndex(*index, dict, ss).ok());
  LabelDictionary dict2;
  for (int i = 0; i < 10; ++i) dict2.Intern("L" + std::to_string(i));
  auto loaded = ReadIndex(ss, dict2, &f.ont);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->NumLayers(), index->NumLayers());
  EXPECT_EQ(loaded->base().NumVertices(), index->base().NumVertices());
  EXPECT_EQ(loaded->base().NumEdges(), index->base().NumEdges());
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    EXPECT_EQ(loaded->LayerGraph(m).NumVertices(),
              index->LayerGraph(m).NumVertices());
    EXPECT_EQ(loaded->LayerGraph(m).NumEdges(),
              index->LayerGraph(m).NumEdges());
    EXPECT_EQ(loaded->Layer(m).config.size(), index->Layer(m).config.size());
    for (VertexId v = 0; v < index->LayerGraph(m - 1).NumVertices(); ++v) {
      EXPECT_EQ(loaded->Layer(m).mapping.SuperOf(v),
                index->Layer(m).mapping.SuperOf(v));
    }
  }
}

TEST(IndexIoTest, RejectsGarbage) {
  std::stringstream ss("garbage\n");
  LabelDictionary dict;
  Fixture f;
  EXPECT_FALSE(ReadIndex(ss, dict, &f.ont).ok());
}

TEST(IndexIoTest, RejectsTruncation) {
  Fixture f;
  LabelDictionary dict;
  for (int i = 0; i < 10; ++i) dict.Intern("L" + std::to_string(i));
  Graph g = MotifGraph(26, 50, 100);
  auto index = BigIndex::Build(std::move(g), &f.ont, {.max_layers = 2});
  ASSERT_TRUE(index.ok());
  std::stringstream ss;
  ASSERT_TRUE(WriteIndex(*index, dict, ss).ok());
  std::string full = ss.str();
  // Chop the file at several points; every prefix must be rejected (or be
  // the full file).
  for (size_t frac = 1; frac <= 3; ++frac) {
    std::stringstream cut(full.substr(0, full.size() * frac / 4));
    LabelDictionary d2;
    EXPECT_FALSE(ReadIndex(cut, d2, &f.ont).ok()) << "fraction " << frac;
  }
}

}  // namespace
}  // namespace bigindex
