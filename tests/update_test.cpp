// Unit + differential tests for the live-update subsystem's core:
// NormalizeUpdates edge semantics (duplicates, add-then-remove, self-loops),
// IncrementalBisimulation == ComputeBisimulation over random update batches
// (including merge-inducing removals and additions), and MaintainIndex ==
// from-scratch BigIndex::Build, down to serialized bytes.
//
// tools/ci.sh runs these under TSan alongside the other differential
// suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bisim/bisimulation.h"
#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "core/index_io.h"
#include "graph/label_dictionary.h"
#include "testing/random_graph.h"
#include "update/incremental.h"
#include "update/maintain.h"
#include "util/random.h"

namespace bigindex {
namespace {

using bigindex::testing::MakeRandomGraph;
using bigindex::testing::MakeRandomInstance;
using bigindex::testing::RandomGraphOptions;
using bigindex::testing::RandomInstance;
using bigindex::testing::RandomOntologyOptions;

GraphUpdate Add(VertexId u, VertexId v) {
  return {GraphUpdate::Kind::kAddEdge, u, v};
}
GraphUpdate Remove(VertexId u, VertexId v) {
  return {GraphUpdate::Kind::kRemoveEdge, u, v};
}

Graph MakeGraph(size_t n, LabelId label,
                std::vector<std::pair<VertexId, VertexId>> edges) {
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) b.AddVertex(label);
  for (auto [u, v] : edges) b.AddEdge(u, v);
  return std::move(b.Build()).value();
}

// Random update batch against `g`: a mix of removals of present edges,
// additions of (mostly) absent edges, self-loops, duplicates, and
// add/remove flip-flops on the same edge.
std::vector<GraphUpdate> MakeRandomBatch(const Graph& g, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<GraphUpdate> batch;
  const size_t n = g.NumVertices();
  if (n == 0) return batch;
  const auto edges = g.Edges();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t pick = rng.Uniform(10);
    if (pick < 4 && !edges.empty()) {
      auto [u, v] = edges[rng.Uniform(edges.size())];
      batch.push_back(Remove(u, v));
    } else if (pick < 8) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = rng.Bernoulli(0.1) ? u : static_cast<VertexId>(rng.Uniform(n));
      batch.push_back(Add(u, v));
    } else if (!batch.empty()) {
      // Duplicate or invert an earlier op on the same edge.
      GraphUpdate prior = batch[rng.Uniform(batch.size())];
      if (rng.Bernoulli(0.5)) {
        prior.kind = prior.kind == GraphUpdate::Kind::kAddEdge
                         ? GraphUpdate::Kind::kRemoveEdge
                         : GraphUpdate::Kind::kAddEdge;
      }
      batch.push_back(prior);
    } else {
      batch.push_back(Add(static_cast<VertexId>(rng.Uniform(n)),
                          static_cast<VertexId>(rng.Uniform(n))));
    }
  }
  return batch;
}

// Dirty frontier for a batch at the base layer: sources of every net edge
// change (successor bisimulation only observes out-neighborhoods).
std::vector<VertexId> DirtySources(const UpdateDelta& delta) {
  std::vector<VertexId> dirty;
  for (const auto& [u, v] : delta.added) dirty.push_back(u);
  for (const auto& [u, v] : delta.removed) dirty.push_back(u);
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

void ExpectSameBisim(const BisimResult& a, const BisimResult& b,
                     const std::string& context) {
  EXPECT_TRUE(GraphsIdentical(a.summary, b.summary)) << context;
  ASSERT_EQ(a.mapping.NumVertices(), b.mapping.NumVertices()) << context;
  ASSERT_EQ(a.mapping.NumSupernodes(), b.mapping.NumSupernodes()) << context;
  for (VertexId v = 0; v < a.mapping.NumVertices(); ++v) {
    ASSERT_EQ(a.mapping.SuperOf(v), b.mapping.SuperOf(v))
        << context << " vertex " << v;
  }
}

// Serializes an index with a synthetic dictionary covering every label slot
// the ontology can produce; byte equality of this is the strongest
// equivalence the system defines (it is what images and the wire carry).
std::string Serialize(const BigIndex& index, size_t label_slots) {
  LabelDictionary dict;
  for (size_t i = 0; i < label_slots; ++i) {
    dict.Intern("t" + std::to_string(i));
  }
  std::ostringstream out;
  EXPECT_TRUE(WriteIndex(index, dict, out).ok());
  return out.str();
}

// ---------------------------------------------------------------------------
// NormalizeUpdates / ApplyUpdates edge semantics (satellite: duplicates,
// add-then-remove, self-loops must behave identically on every path).

TEST(NormalizeUpdatesTest, LastOpWinsAndRedundantsAreCounted) {
  Graph g = MakeGraph(3, 7, {{0, 1}});
  std::vector<GraphUpdate> batch = {
      Add(0, 2),     // net add
      Add(0, 2),     // duplicate -> redundant
      Remove(0, 1),  // superseded below -> redundant
      Add(0, 1),     // re-add of a present edge -> net no-op, redundant
      Add(1, 2),     // superseded below -> redundant
      Remove(1, 2),  // add-then-remove of an absent edge -> net no-op
      Remove(2, 0),  // remove of an absent edge -> redundant
  };
  auto delta = NormalizeUpdates(g, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->added, (std::vector<std::pair<VertexId, VertexId>>{{0, 2}}));
  EXPECT_TRUE(delta->removed.empty());
  EXPECT_EQ(delta->redundant, 6u);
}

TEST(NormalizeUpdatesTest, RemoveThenAddOfPresentEdgeIsNoOp) {
  Graph g = MakeGraph(2, 0, {{0, 1}});
  std::vector<GraphUpdate> batch = {Remove(0, 1), Add(0, 1)};
  auto delta = NormalizeUpdates(g, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST(NormalizeUpdatesTest, SelfLoopsAreOrdinaryEdges) {
  Graph g = MakeGraph(2, 0, {{1, 1}});
  std::vector<GraphUpdate> batch = {Add(0, 0), Remove(1, 1)};
  auto delta = NormalizeUpdates(g, batch);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->added, (std::vector<std::pair<VertexId, VertexId>>{{0, 0}}));
  EXPECT_EQ(delta->removed,
            (std::vector<std::pair<VertexId, VertexId>>{{1, 1}}));

  auto updated = ApplyUpdates(g, batch);
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->HasEdge(0, 0));
  EXPECT_FALSE(updated->HasEdge(1, 1));
}

TEST(NormalizeUpdatesTest, OutOfRangeEndpointsFail) {
  Graph g = MakeGraph(2, 0, {});
  EXPECT_FALSE(NormalizeUpdates(g, std::vector<GraphUpdate>{Add(0, 2)}).ok());
  EXPECT_FALSE(
      NormalizeUpdates(g, std::vector<GraphUpdate>{Remove(5, 0)}).ok());
}

TEST(NormalizeUpdatesTest, MatchesSequentialApplicationOnRandomBatches) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    RandomGraphOptions opt;
    opt.seed = seed;
    opt.num_vertices = 10 + seed % 40;
    opt.edge_density = 1.0 + static_cast<double>(seed % 4);
    Graph g = MakeRandomGraph(opt);
    auto batch = MakeRandomBatch(g, 1 + seed % 25, seed * 13 + 1);

    // Reference: one-op-at-a-time application.
    Graph reference = g;
    for (const GraphUpdate& up : batch) {
      auto next = ApplyUpdates(reference, std::vector<GraphUpdate>{up});
      ASSERT_TRUE(next.ok());
      reference = std::move(next).value();
    }
    auto batched = ApplyUpdates(g, batch);
    ASSERT_TRUE(batched.ok());
    EXPECT_TRUE(GraphsIdentical(reference, *batched)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// IncrementalBisimulation == ComputeBisimulation.

TEST(IncrementalBisimTest, RemovalCanMergeBlocks) {
  // a->b, c: removing a->b makes all three bisimilar — splitting alone can
  // never produce that; the quotient merge phase must.
  Graph g0 = MakeGraph(3, 5, {{0, 1}});
  BisimResult before = ComputeBisimulation(g0);
  ASSERT_EQ(before.mapping.NumSupernodes(), 2u);

  auto g1 = ApplyUpdates(g0, std::vector<GraphUpdate>{Remove(0, 1)});
  ASSERT_TRUE(g1.ok());
  std::vector<VertexId> seed(3);
  for (VertexId v = 0; v < 3; ++v) seed[v] = before.mapping.SuperOf(v);
  auto incremental =
      IncrementalBisimulation(*g1, seed, std::vector<VertexId>{0});
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(incremental->mapping.NumSupernodes(), 1u);
  ExpectSameBisim(ComputeBisimulation(*g1), *incremental, "removal merge");
}

TEST(IncrementalBisimTest, AdditionCanMergeBlocks) {
  // a->b plus isolated c,d: adding c->d makes a ~ c and b ~ d.
  Graph g0 = MakeGraph(4, 5, {{0, 1}});
  BisimResult before = ComputeBisimulation(g0);
  auto g1 = ApplyUpdates(g0, std::vector<GraphUpdate>{Add(2, 3)});
  ASSERT_TRUE(g1.ok());
  std::vector<VertexId> seed(4);
  for (VertexId v = 0; v < 4; ++v) seed[v] = before.mapping.SuperOf(v);
  auto incremental =
      IncrementalBisimulation(*g1, seed, std::vector<VertexId>{2});
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(incremental->mapping.NumSupernodes(), 2u);
  ExpectSameBisim(ComputeBisimulation(*g1), *incremental, "addition merge");
}

TEST(IncrementalBisimTest, MatchesWholesaleOnRandomUpdateStreams) {
  size_t incremental_runs = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    RandomGraphOptions opt;
    opt.seed = seed;
    opt.num_vertices = 15 + (seed * 31) % 300;
    opt.edge_density = 0.5 + static_cast<double>(seed % 6);
    opt.num_labels = 1 + seed % 10;
    opt.label_skew = (seed % 3) * 0.5;
    Graph g = MakeRandomGraph(opt);

    // Chain several batches so seeds themselves come from incremental runs.
    BisimResult current = ComputeBisimulation(g);
    for (int step = 0; step < 3; ++step) {
      auto batch = MakeRandomBatch(g, 1 + (seed + step) % 12,
                                   seed * 97 + step + 1);
      auto delta = NormalizeUpdates(g, batch);
      ASSERT_TRUE(delta.ok());
      Graph next = ApplyDelta(g, *delta);

      std::vector<VertexId> seed_partition(g.NumVertices());
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        seed_partition[v] = current.mapping.SuperOf(v);
      }
      IncrementalBisimOptions iopt;
      iopt.fallback_dirty_ratio = 1.0;  // force the localized path
      IncrementalBisimStats stats;
      auto incremental = IncrementalBisimulation(
          next, seed_partition, DirtySources(*delta), iopt, &stats);
      ASSERT_TRUE(incremental.ok());
      EXPECT_FALSE(stats.fell_back);
      ++incremental_runs;

      BisimResult wholesale = ComputeBisimulation(next);
      ExpectSameBisim(wholesale, *incremental,
                      "seed " + std::to_string(seed) + " step " +
                          std::to_string(step));
      g = std::move(next);
      current = std::move(*incremental);
    }
  }
  EXPECT_GE(incremental_runs, 300u);
}

TEST(IncrementalBisimTest, FallbackThresholdTriggersWholesale) {
  RandomGraphOptions opt;
  opt.seed = 3;
  opt.num_vertices = 100;
  Graph g = MakeRandomGraph(opt);
  BisimResult before = ComputeBisimulation(g);
  auto g1 = ApplyUpdates(g, std::vector<GraphUpdate>{Add(0, 1)});
  ASSERT_TRUE(g1.ok());
  std::vector<VertexId> seed(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    seed[v] = before.mapping.SuperOf(v);
  }
  IncrementalBisimOptions iopt;
  iopt.fallback_dirty_ratio = 0.0;  // everything falls back
  IncrementalBisimStats stats;
  auto result =
      IncrementalBisimulation(*g1, seed, std::vector<VertexId>{0}, iopt,
                              &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.fell_back);
  ExpectSameBisim(ComputeBisimulation(*g1), *result, "fallback");
}

TEST(IncrementalBisimTest, RejectsMalformedInput) {
  Graph g = MakeGraph(3, 0, {});
  EXPECT_FALSE(
      IncrementalBisimulation(g, std::vector<VertexId>{0, 1}, {}).ok());
  std::vector<VertexId> seed{0, 0, 0};
  EXPECT_FALSE(
      IncrementalBisimulation(g, seed, std::vector<VertexId>{9}).ok());
}

// ---------------------------------------------------------------------------
// MaintainIndex == from-scratch Build, serialized bytes.

RandomInstance MakeInstance(uint64_t seed) {
  RandomGraphOptions gopt;
  gopt.seed = seed;
  gopt.num_vertices = 20 + (seed * 41) % 250;
  gopt.edge_density = 1.0 + static_cast<double>(seed % 4);
  gopt.num_labels = 4 + seed % 8;
  RandomOntologyOptions oopt;
  oopt.num_leaves = gopt.num_labels;
  oopt.height = 2 + seed % 3;
  oopt.seed = seed + 1;
  return MakeRandomInstance(gopt, oopt);
}

TEST(MaintainIndexTest, MatchesFromScratchBuildOnRandomStreams) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    RandomInstance inst = MakeInstance(seed);
    BigIndexOptions opts;
    opts.max_layers = 4;
    auto index = BigIndex::Build(inst.graph, &inst.ontology, opts);
    ASSERT_TRUE(index.ok());

    Graph base = inst.graph;
    BigIndex current = *index;
    for (int step = 0; step < 2; ++step) {
      auto batch =
          MakeRandomBatch(base, 1 + (seed + step) % 10, seed * 71 + step);
      MaintainReport report;
      auto maintained =
          MaintainIndex(current, batch, MaintainOptions{}, &report);
      ASSERT_TRUE(maintained.ok()) << "seed " << seed << " step " << step;

      auto updated_base = ApplyUpdates(base, batch);
      ASSERT_TRUE(updated_base.ok());
      auto rebuilt = BigIndex::Build(*updated_base, &inst.ontology, opts);
      ASSERT_TRUE(rebuilt.ok());

      const size_t slots = inst.ontology.LabelSlots();
      EXPECT_EQ(Serialize(*maintained, slots), Serialize(*rebuilt, slots))
          << "seed " << seed << " step " << step;
      base = std::move(*updated_base);
      current = std::move(*maintained);
    }
  }
}

TEST(MaintainIndexTest, ForceWholesaleMatchesIncremental) {
  RandomInstance inst = MakeInstance(7);
  BigIndexOptions opts;
  opts.max_layers = 3;
  auto index = BigIndex::Build(inst.graph, &inst.ontology, opts);
  ASSERT_TRUE(index.ok());
  auto batch = MakeRandomBatch(inst.graph, 8, 1234);

  MaintainOptions wholesale;
  wholesale.force_wholesale = true;
  auto a = MaintainIndex(*index, batch, MaintainOptions{});
  auto b = MaintainIndex(*index, batch, wholesale);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const size_t slots = inst.ontology.LabelSlots();
  EXPECT_EQ(Serialize(*a, slots), Serialize(*b, slots));
}

TEST(MaintainIndexTest, NoNetChangeReturnsUnchangedIndex) {
  RandomInstance inst = MakeInstance(11);
  auto index = BigIndex::Build(inst.graph, &inst.ontology, {});
  ASSERT_TRUE(index.ok());

  // A batch that cancels itself out entirely.
  std::vector<GraphUpdate> batch = {Add(0, 1), Remove(0, 1)};
  if (inst.graph.HasEdge(0, 1)) batch = {Remove(0, 1), Add(0, 1)};
  MaintainReport report;
  auto maintained = MaintainIndex(*index, batch, MaintainOptions{}, &report);
  ASSERT_TRUE(maintained.ok());
  EXPECT_TRUE(report.delta.empty());
  EXPECT_EQ(report.LayersRebuilt(), 0u);
  const size_t slots = inst.ontology.LabelSlots();
  EXPECT_EQ(Serialize(*maintained, slots), Serialize(*index, slots));
}

TEST(MaintainIndexTest, EdgeSemanticsMatchWholesalePath) {
  // Satellite regression: duplicate updates, add-then-remove, and self-loops
  // must land identically via incremental maintenance and the wholesale
  // member ApplyUpdates (both normalize through NormalizeUpdates).
  RandomInstance inst = MakeInstance(13);
  BigIndexOptions opts;
  opts.max_layers = 3;
  auto index = BigIndex::Build(inst.graph, &inst.ontology, opts);
  ASSERT_TRUE(index.ok());
  std::vector<GraphUpdate> batch = {
      Add(1, 1), Add(1, 1),            // duplicate self-loop add
      Add(2, 3), Remove(2, 3),         // add-then-remove
      Remove(0, 0), Add(0, 0),         // remove-then-add of a self-loop
      Add(4, 5),
  };
  auto maintained = MaintainIndex(*index, batch);
  ASSERT_TRUE(maintained.ok());

  BigIndex wholesale = *index;
  ASSERT_TRUE(wholesale.ApplyUpdates(batch).ok());
  EXPECT_TRUE(GraphsIdentical(maintained->base(), wholesale.base()));
  EXPECT_TRUE(maintained->base().HasEdge(1, 1));
  EXPECT_FALSE(maintained->base().HasEdge(2, 3));
  EXPECT_TRUE(maintained->base().HasEdge(0, 0));
  EXPECT_TRUE(maintained->base().HasEdge(4, 5));
}

TEST(MaintainIndexTest, GreedyConfigFallsBackToFullRebuild) {
  RandomInstance inst = MakeInstance(17);
  BigIndexOptions opts;
  opts.max_layers = 2;
  opts.use_greedy_config = true;
  auto index = BigIndex::Build(inst.graph, &inst.ontology, opts);
  ASSERT_TRUE(index.ok());
  auto batch = MakeRandomBatch(inst.graph, 5, 99);
  MaintainReport report;
  auto maintained = MaintainIndex(*index, batch, MaintainOptions{}, &report);
  ASSERT_TRUE(maintained.ok());
  if (!report.delta.empty()) {
    EXPECT_TRUE(report.full_rebuild);
    auto updated_base = ApplyUpdates(inst.graph, batch);
    ASSERT_TRUE(updated_base.ok());
    auto rebuilt = BigIndex::Build(*updated_base, &inst.ontology, opts);
    ASSERT_TRUE(rebuilt.ok());
    const size_t slots = inst.ontology.LabelSlots();
    EXPECT_EQ(Serialize(*maintained, slots), Serialize(*rebuilt, slots));
  }
}

}  // namespace
}  // namespace bigindex
