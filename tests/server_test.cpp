// Serving-layer tests: Deadline semantics, the sharded LRU answer cache,
// and the SearchService contracts — cache hits return answers identical to
// cold evaluation, epoch bumps invalidate, a full admission queue resolves
// with the documented overload status instead of blocking, expired deadlines
// never reach the engine (and never yield partial answers), and concurrent
// clients over the pooled engine agree with serial evaluation (the suite
// tools/ci.sh re-runs under ThreadSanitizer).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/big_index.h"
#include "engine/query_engine.h"
#include "search/bkws.h"
#include "server/answer_cache.h"
#include "server/line_protocol.h"
#include "server/search_service.h"
#include "server/tcp_server.h"
#include "util/random.h"
#include "util/timer.h"

namespace bigindex {
namespace {

// Ontology: leaves {0..5} -> mids {6,7,8} -> root 9 (as in engine_test).
Ontology MakeOntology() {
  OntologyBuilder b;
  b.AddSupertypeEdge(0, 6);
  b.AddSupertypeEdge(1, 6);
  b.AddSupertypeEdge(2, 6);
  b.AddSupertypeEdge(3, 7);
  b.AddSupertypeEdge(4, 7);
  b.AddSupertypeEdge(5, 8);
  b.AddSupertypeEdge(6, 9);
  b.AddSupertypeEdge(7, 9);
  b.AddSupertypeEdge(8, 9);
  return std::move(b.Build()).value();
}

Graph MotifGraph(uint64_t seed, size_t n, size_t m) {
  Rng rng(seed);
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    b.AddVertex(static_cast<LabelId>(rng.Uniform(6)));
  }
  size_t made = 0;
  while (made < m) {
    VertexId hub = static_cast<VertexId>(rng.Uniform(n));
    size_t batch = rng.UniformRange(3, 10);
    for (size_t i = 0; i < batch && made < m; ++i) {
      VertexId src = static_cast<VertexId>(rng.Uniform(n));
      if (src != hub) {
        b.AddEdge(src, hub);
        ++made;
      }
    }
  }
  return std::move(b.Build()).value();
}

struct ServiceFixture {
  Ontology ontology = MakeOntology();
  std::shared_ptr<QueryEngine> engine;

  explicit ServiceFixture(size_t num_threads = 0, uint64_t seed = 42,
                          size_t n = 400, size_t m = 900) {
    auto built =
        BigIndex::Build(MotifGraph(seed, n, m), &ontology, {.max_layers = 2});
    engine = std::make_shared<QueryEngine>(
        std::make_shared<const BigIndex>(std::move(built).value()),
        QueryEngineOptions{.num_threads = num_threads});
  }
};

/// Counts how many times the engine actually evaluates it; otherwise bkws.
class CountingAlgorithm : public KeywordSearchAlgorithm {
 public:
  using KeywordSearchAlgorithm::Evaluate;
  using KeywordSearchAlgorithm::VerifyCandidate;

  std::string_view Name() const override { return "counting"; }
  bool IsRooted() const override { return true; }

  std::vector<Answer> Evaluate(const Graph& g,
                               const std::vector<LabelId>& keywords,
                               QueryContext& ctx) const override {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    return inner_.Evaluate(g, keywords, ctx);
  }

  std::optional<Answer> VerifyCandidate(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const Answer& candidate,
                                        QueryContext& ctx) const override {
    return inner_.VerifyCandidate(g, keywords, candidate, ctx);
  }

  mutable std::atomic<int> evaluations{0};

 private:
  BkwsAlgorithm inner_;
};

/// Parks every Evaluate() call until Release(); makes queue states
/// deterministic in the overflow tests.
class BlockingAlgorithm : public KeywordSearchAlgorithm {
 public:
  using KeywordSearchAlgorithm::Evaluate;
  using KeywordSearchAlgorithm::VerifyCandidate;

  std::string_view Name() const override { return "blocking"; }
  bool IsRooted() const override { return true; }

  std::vector<Answer> Evaluate(const Graph&, const std::vector<LabelId>&,
                               QueryContext&) const override {
    std::unique_lock<std::mutex> lock(mutex_);
    started_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
    return {};
  }

  std::optional<Answer> VerifyCandidate(const Graph&,
                                        const std::vector<LabelId>&,
                                        const Answer&,
                                        QueryContext&) const override {
    return std::nullopt;
  }

  /// Blocks until some Evaluate() call is parked inside the engine.
  void WaitUntilStarted() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return started_; });
  }

  /// Releases every parked and future Evaluate() call.
  void Release() const {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable bool started_ = false;
  mutable bool released_ = false;
};

EngineQuery Q(std::vector<LabelId> keywords, std::string algorithm = "bkws") {
  EngineQuery q;
  q.keywords = std::move(keywords);
  q.algorithm = std::move(algorithm);
  return q;
}

// ---------------------------------------------------------------------------
// Deadline

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.IsNever());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(),
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(Deadline::Never().Expired());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(0).Expired());
  EXPECT_TRUE(Deadline::After(-5).Expired());
  EXPECT_LE(Deadline::After(-5).RemainingMillis(), 0.0);
}

TEST(DeadlineTest, FutureBudgetExpiresAfterItPasses) {
  Deadline d = Deadline::After(1e7);  // far future
  EXPECT_FALSE(d.IsNever());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1e6);

  Deadline soon = Deadline::After(1);
  while (!soon.Expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LE(soon.RemainingMillis(), 0.0);
}

// ---------------------------------------------------------------------------
// AnswerCache

QueryResult MarkedResult(uint32_t marker) {
  QueryResult r;
  Answer a;
  a.root = marker;
  a.score = marker;
  r.answers.push_back(a);
  return r;
}

TEST(AnswerCacheTest, LruEvictsColdestAndCounts) {
  AnswerCache cache({.capacity = 2, .shards = 1});
  cache.Insert("a", MarkedResult(1));
  cache.Insert("b", MarkedResult(2));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refresh: "b" is now coldest
  cache.Insert("c", MarkedResult(3));     // evicts "b"

  EXPECT_EQ(cache.Lookup("b"), nullptr);
  auto a = cache.Lookup("a");
  auto c = cache.Lookup("c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(a->answers[0].root, 1u);
  EXPECT_EQ(c->answers[0].root, 3u);

  AnswerCacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(AnswerCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  AnswerCache cache({.capacity = 4, .shards = 2});
  cache.Insert("k", MarkedResult(1));
  cache.Insert("k", MarkedResult(9));
  auto v = cache.Lookup("k");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->answers[0].root, 9u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(AnswerCacheTest, ZeroCapacityDisables) {
  AnswerCache cache({.capacity = 0});
  cache.Insert("k", MarkedResult(1));
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// SearchService: cache semantics

TEST(SearchServiceTest, CacheHitReturnsAnswersIdenticalToColdEvaluation) {
  ServiceFixture fx(/*num_threads=*/2);
  SearchService service(fx.engine, {.max_linger_ms = 0});

  EngineQuery q = Q({0, 1});
  auto direct = fx.engine->Evaluate(q);
  ASSERT_TRUE(direct.ok());

  auto cold = service.Query(q);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto hot = service.Query(q);
  ASSERT_TRUE(hot.ok()) << hot.status().ToString();

  EXPECT_EQ(cold->answers, direct->answers);
  EXPECT_EQ(hot->answers, cold->answers);

  ServiceStats s = service.Snapshot();
  EXPECT_GE(s.cache_hits, 1u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.epoch, 1u);
}

TEST(SearchServiceTest, NormalizedKeywordVariantsShareOneCacheEntry) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});

  auto first = service.Query(Q({1, 0, 1}));
  ASSERT_TRUE(first.ok());
  auto second = service.Query(Q({0, 1}));  // same keyword *set*
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->answers, first->answers);
  EXPECT_GE(service.Snapshot().cache_hits, 1u);
}

TEST(SearchServiceTest, EpochBumpInvalidatesCache) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});

  EngineQuery q = Q({0, 1});
  auto before = service.Query(q);
  ASSERT_TRUE(before.ok());
  uint64_t misses_before_bump = service.Snapshot().cache_misses;

  EXPECT_EQ(service.BumpEpoch(), 2u);
  auto after = service.Query(q);
  ASSERT_TRUE(after.ok());

  // The post-bump query could not be served by the pre-bump entry...
  EXPECT_GT(service.Snapshot().cache_misses, misses_before_bump);
  // ...but evaluates to the same answers (the index did not change here).
  EXPECT_EQ(after->answers, before->answers);

  // The new-epoch entry serves hits again.
  uint64_t hits = service.Snapshot().cache_hits;
  ASSERT_TRUE(service.Query(q).ok());
  EXPECT_GT(service.Snapshot().cache_hits, hits);
}

TEST(SearchServiceTest, DisabledCacheNeverHits) {
  ServiceFixture fx;
  SearchService service(fx.engine,
                        {.max_linger_ms = 0, .enable_cache = false});
  EngineQuery q = Q({0, 1});
  ASSERT_TRUE(service.Query(q).ok());
  ASSERT_TRUE(service.Query(q).ok());
  ServiceStats s = service.Snapshot();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_entries, 0u);
}

// ---------------------------------------------------------------------------
// SearchService: admission control

TEST(SearchServiceTest, QueueOverflowRejectsNewestWithUnavailable) {
  ServiceFixture fx;
  auto blocking = std::make_unique<BlockingAlgorithm>();
  const BlockingAlgorithm* block = blocking.get();
  fx.engine->Register(std::move(blocking));

  SearchService service(fx.engine, {.queue_capacity = 2,
                                    .max_batch_size = 1,
                                    .max_linger_ms = 0,
                                    .enable_cache = false});
  auto mk = [&](LabelId kw) {
    EngineQuery q = Q({kw}, "blocking");
    q.eval.forced_layer = 0;  // evaluate directly: exactly one Evaluate()
    return q;
  };

  // First request parks inside the engine; the queue is empty again.
  auto f1 = service.SubmitAsync(mk(0));
  block->WaitUntilStarted();

  // Fill the queue to capacity, then overflow it.
  auto f2 = service.SubmitAsync(mk(1));
  auto f3 = service.SubmitAsync(mk(2));
  auto f4 = service.SubmitAsync(mk(3));

  // The overflow resolved immediately — admission never blocks.
  ASSERT_EQ(f4.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto r4 = f4.get();
  EXPECT_EQ(r4.status().code(), StatusCode::kUnavailable)
      << r4.status().ToString();
  EXPECT_EQ(service.Snapshot().rejected_overload, 1u);

  block->Release();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_TRUE(f3.get().ok());
}

TEST(SearchServiceTest, RejectOldestPolicyDisplacesHeadOfQueue) {
  ServiceFixture fx;
  auto blocking = std::make_unique<BlockingAlgorithm>();
  const BlockingAlgorithm* block = blocking.get();
  fx.engine->Register(std::move(blocking));

  SearchService service(
      fx.engine, {.queue_capacity = 1,
                  .max_batch_size = 1,
                  .max_linger_ms = 0,
                  .overload_policy = OverloadPolicy::kRejectOldest,
                  .enable_cache = false});
  auto mk = [&](LabelId kw) {
    EngineQuery q = Q({kw}, "blocking");
    q.eval.forced_layer = 0;
    return q;
  };

  auto f1 = service.SubmitAsync(mk(0));
  block->WaitUntilStarted();
  auto f2 = service.SubmitAsync(mk(1));  // queued
  auto f3 = service.SubmitAsync(mk(2));  // displaces f2

  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f2.get().status().code(), StatusCode::kUnavailable);

  block->Release();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f3.get().ok());
}

TEST(SearchServiceTest, InvalidQueriesRejectedAtAdmission) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});

  auto empty = service.Query(Q({}));
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument)
      << empty.status().ToString();

  auto unknown = service.Query(Q({0, 1}, "no-such-semantics"));
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound)
      << unknown.status().ToString();

  ServiceStats s = service.Snapshot();
  EXPECT_EQ(s.rejected_invalid, 2u);
  EXPECT_EQ(s.completed, 0u);
}

// ---------------------------------------------------------------------------
// SearchService: deadlines

TEST(SearchServiceTest, ExpiredDeadlineReturnsWithoutEvaluating) {
  ServiceFixture fx;
  auto counting = std::make_unique<CountingAlgorithm>();
  const CountingAlgorithm* counter = counting.get();
  fx.engine->Register(std::move(counting));

  SearchService service(fx.engine, {.max_linger_ms = 0});
  EngineQuery q = Q({0, 1}, "counting");
  q.eval.deadline = Deadline::After(-1);

  auto r = service.Query(q);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_EQ(counter->evaluations.load(), 0);

  ServiceStats s = service.Snapshot();
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_EQ(s.completed, 0u);

  // Sanity: the same query without a deadline does evaluate.
  q.eval.deadline = Deadline::Never();
  EXPECT_TRUE(service.Query(q).ok());
  EXPECT_EQ(counter->evaluations.load(), 1);
}

TEST(SearchServiceTest, DeadlineExpiringWhileQueuedNeverReachesEngine) {
  ServiceFixture fx;
  auto blocking = std::make_unique<BlockingAlgorithm>();
  const BlockingAlgorithm* block = blocking.get();
  auto counting = std::make_unique<CountingAlgorithm>();
  const CountingAlgorithm* counter = counting.get();
  fx.engine->Register(std::move(blocking));
  fx.engine->Register(std::move(counting));

  SearchService service(fx.engine, {.max_batch_size = 1,
                                    .max_linger_ms = 0,
                                    .enable_cache = false});
  // Park the batcher, then queue a request whose deadline dies in the queue.
  EngineQuery blocker = Q({0}, "blocking");
  blocker.eval.forced_layer = 0;
  auto f1 = service.SubmitAsync(blocker);
  block->WaitUntilStarted();

  EngineQuery doomed = Q({0, 1}, "counting");
  doomed.eval.deadline = Deadline::After(5);
  auto f2 = service.SubmitAsync(doomed);
  while (!doomed.eval.deadline.Expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  block->Release();
  auto r2 = f2.get();
  EXPECT_EQ(r2.status().code(), StatusCode::kDeadlineExceeded)
      << r2.status().ToString();
  EXPECT_EQ(counter->evaluations.load(), 0);
  EXPECT_TRUE(f1.get().ok());
}

// ---------------------------------------------------------------------------
// SearchService: concurrency (re-run under TSan by tools/ci.sh)

TEST(SearchServiceTest, ConcurrentClientsAgreeWithSerialEvaluation) {
  ServiceFixture fx(/*num_threads=*/2, /*seed=*/9, /*n=*/300, /*m=*/700);

  std::vector<EngineQuery> queries;
  std::vector<std::vector<LabelId>> keyword_sets = {
      {0, 1}, {2, 3}, {0, 4, 5}, {1, 2, 3}, {4, 5}, {0, 3}};
  for (const char* algo : {"bkws", "blinks", "r-clique", "bidirectional"}) {
    for (const auto& kw : keyword_sets) queries.push_back(Q(kw, algo));
  }
  std::vector<std::vector<Answer>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = fx.engine->Evaluate(queries[i]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected[i] = std::move(r->answers);
  }

  SearchService service(fx.engine, {.max_batch_size = 8,
                                    .max_linger_ms = 0.2,
                                    .cache = {.capacity = 16}});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (size_t rep = 0; rep < 3; ++rep) {
        for (size_t i = t % 3; i < queries.size(); ++i) {
          auto r = service.Query(queries[i]);
          if (!r.ok() || r->answers != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);

  ServiceStats s = service.Snapshot();
  EXPECT_GT(s.completed, 0u);
  EXPECT_EQ(s.rejected_overload, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  // The tiny cache must have cycled (insertions beyond capacity => evictions).
  EXPECT_GT(s.cache_evictions, 0u);
}

TEST(SearchServiceTest, ShutdownResolvesQueuedRequests) {
  ServiceFixture fx;
  auto blocking = std::make_unique<BlockingAlgorithm>();
  const BlockingAlgorithm* block = blocking.get();
  fx.engine->Register(std::move(blocking));

  auto service = std::make_unique<SearchService>(
      fx.engine, SearchServiceOptions{.max_batch_size = 1,
                                      .max_linger_ms = 0,
                                      .enable_cache = false});
  EngineQuery q = Q({0}, "blocking");
  q.eval.forced_layer = 0;
  auto f1 = service->SubmitAsync(q);
  block->WaitUntilStarted();
  auto f2 = service->SubmitAsync(q);  // still queued

  std::thread shutdown([&] { service->Shutdown(); });
  // Give Shutdown() a moment to raise the stop flag; the release below
  // unblocks the in-flight batch so the join can finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  block->Release();
  shutdown.join();

  EXPECT_TRUE(f1.get().ok());  // in-flight work completed
  // f2 either drained with Unavailable or slipped into the final batch —
  // both are legal; what shutdown guarantees is that it resolves.
  auto r2 = f2.get();
  EXPECT_TRUE(r2.ok() || r2.status().code() == StatusCode::kUnavailable)
      << r2.status().ToString();

  // Post-shutdown submissions resolve immediately with Unavailable.
  auto f3 = service->SubmitAsync(Q({0, 1}));
  EXPECT_EQ(f3.get().status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Line protocol + TCP transport

TEST(LineProtocolTest, CommandsAndErrors) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});
  LineHandler handler(&service);

  EXPECT_EQ(handler.Handle("ping").response, "OK pong\n.\n");

  LineHandler::Result r = handler.Handle("query bkws 0,1 top_k=5");
  EXPECT_EQ(r.response.substr(0, 5), "OK n=");
  EXPECT_EQ(r.response.substr(r.response.size() - 2), ".\n");
  EXPECT_FALSE(r.close);

  EXPECT_EQ(handler.Handle("query nope 0,1").response.substr(0, 12),
            "ERR NotFound");
  EXPECT_EQ(handler.Handle("query bkws").response.substr(0, 3), "ERR");
  EXPECT_EQ(handler.Handle("bogus-command").response.substr(0, 3), "ERR");
  EXPECT_EQ(handler.Handle("query bkws 0,1 nope=3").response.substr(0, 3),
            "ERR");

  EXPECT_EQ(handler.Handle("bump").response, "OK epoch=2\n.\n");
  EXPECT_EQ(handler.Handle("stats").response.substr(0, 13), "OK submitted=");

  std::string algos = handler.Handle("algos").response;
  EXPECT_NE(algos.find("bkws"), std::string::npos);
  EXPECT_NE(algos.find("r-clique"), std::string::npos);

  LineHandler::Result quit = handler.Handle("quit");
  EXPECT_TRUE(quit.close);
}

TEST(LineProtocolTest, QueryAnswersMatchEngine) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});
  LineHandler handler(&service);

  auto direct = fx.engine->Evaluate(Q({0, 1}));
  ASSERT_TRUE(direct.ok());

  std::string resp = handler.Handle("query bkws 0,1").response;
  // One "A " line per answer between the head and the terminator.
  size_t lines = 0;
  for (size_t pos = 0; (pos = resp.find("\nA ", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, direct->answers.size());
}

/// Parses a Prometheus exposition into name{labels} -> value, asserting the
/// structural rules on the way (comment lines are HELP/TYPE; sample lines
/// end in one parseable finite value).
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> samples;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    EXPECT_NE(end, std::string::npos) << "unterminated last line";
    if (end == std::string::npos) break;
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition";
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    if (sp == std::string::npos) continue;
    char* parse_end = nullptr;
    double v = std::strtod(line.c_str() + sp + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    samples[line.substr(0, sp)] = v;
  }
  return samples;
}

TEST(LineProtocolTest, MetricsVerbParsesAndIsMonotone) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});
  LineHandler handler(&service);

  ASSERT_TRUE(service.Query(Q({0, 1})).ok());
  std::string resp = handler.Handle("metrics").response;
  ASSERT_EQ(resp.substr(0, 3), "OK\n");
  ASSERT_EQ(resp.substr(resp.size() - 2), ".\n");
  std::map<std::string, double> before =
      ParsePrometheus(resp.substr(3, resp.size() - 5));

  // The exposition covers all three instrumented layers.
  EXPECT_TRUE(before.count("bigindex_build_runs_total"));
  EXPECT_TRUE(before.count("bigindex_engine_queries_total{algorithm=\"bkws\"}"));
  EXPECT_TRUE(before.count("bigindex_server_requests_total"));
  EXPECT_TRUE(before.count("bigindex_server_request_ms_count"));
  EXPECT_GE(before["bigindex_server_completed_total"], 1);

  // The verb is case-insensitive, per the documented grammar.
  EXPECT_EQ(handler.Handle("METRICS").response.substr(0, 3), "OK\n");

  ASSERT_TRUE(service.Query(Q({0, 2})).ok());
  resp = handler.Handle("metrics").response;
  std::map<std::string, double> after =
      ParsePrometheus(resp.substr(3, resp.size() - 5));

  // Counters are monotone across requests; the request counters moved.
  // (Other tests share the process-global registry, so compare >=, and
  // completed strictly advanced because *this* service finished one more.)
  for (const auto& [name, value] : before) {
    if (name.find("_total") == std::string::npos) continue;
    ASSERT_TRUE(after.count(name)) << name << " vanished";
    EXPECT_GE(after[name], value) << name << " went backwards";
  }
  EXPECT_GE(after["bigindex_server_completed_total"],
            before["bigindex_server_completed_total"] + 1);
}

TEST(LineProtocolTest, TraceVerbsRoundTrip) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});
  LineHandler handler(&service);

  EXPECT_EQ(handler.Handle("trace clear").response, "OK cleared\n.\n");
  EXPECT_EQ(handler.Handle("trace on").response, "OK trace=on\n.\n");
  ASSERT_TRUE(service.Query(Q({0, 1})).ok());
  EXPECT_EQ(handler.Handle("trace off").response, "OK trace=off\n.\n");

  std::string status = handler.Handle("trace status").response;
  EXPECT_EQ(status.substr(0, 13), "OK enabled=0 ");
  EXPECT_NE(status.find(" events="), std::string::npos);

  std::string dump = handler.Handle("trace dump").response;
  ASSERT_EQ(dump.substr(0, 3), "OK\n");
  ASSERT_EQ(dump.substr(dump.size() - 2), ".\n");
  // Body is exactly one JSON line with the serving + engine spans from the
  // query that ran while tracing was on.
  std::string json = dump.substr(3, dump.size() - 6);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"name\":\"server/admit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine/evaluate\""), std::string::npos);

  EXPECT_EQ(handler.Handle("trace clear").response, "OK cleared\n.\n");
  std::string cleared = handler.Handle("trace dump").response;
  EXPECT_EQ(cleared.find("server/admit"), std::string::npos);
  EXPECT_EQ(handler.Handle("trace bogus").response.substr(0, 3), "ERR");
  EXPECT_EQ(handler.Handle("trace").response.substr(0, 3), "ERR");
}

TEST(TcpServerTest, ServesLineProtocolOverLoopback) {
  ServiceFixture fx;
  SearchService service(fx.engine, {.max_linger_ms = 0});
  TcpServer server(&service, nullptr, {.port = 0});
  Status started = server.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "cannot bind loopback socket: " << started.ToString();
  }
  ASSERT_NE(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  auto roundtrip = [&](const std::string& request) {
    std::string line = request + "\n";
    EXPECT_EQ(::write(fd, line.data(), line.size()),
              static_cast<ssize_t>(line.size()));
    std::string response;
    char chunk[1024];
    while (response.find("\n.\n") == std::string::npos &&
           response.rfind(".\n", 0) != 0) {
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      response.append(chunk, static_cast<size_t>(n));
    }
    return response;
  };

  EXPECT_EQ(roundtrip("ping"), "OK pong\n.\n");
  std::string query_resp = roundtrip("query bkws 0,1 top_k=3");
  EXPECT_EQ(query_resp.substr(0, 5), "OK n=");
  std::string err_resp = roundtrip("query nope 0,1");
  EXPECT_EQ(err_resp.substr(0, 3), "ERR");

  ::close(fd);
  server.Stop();
  ServiceStats s = service.Snapshot();
  EXPECT_GE(s.submitted, 2u);
}

}  // namespace
}  // namespace bigindex
