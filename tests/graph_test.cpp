// Unit tests for the graph substrate: LabelDictionary, Graph/GraphBuilder,
// traversal, sampling, and text I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/label_dictionary.h"
#include "graph/sampling.h"
#include "graph/traversal.h"
#include "util/random.h"

namespace bigindex {
namespace {

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  LabelId a = dict.Intern("Person");
  LabelId b = dict.Intern("Person");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(LabelDictionaryTest, IdsAreDenseInsertionOrder) {
  LabelDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
  EXPECT_EQ(dict.Name(1), "b");
}

TEST(LabelDictionaryTest, FindMissingReturnsInvalid) {
  LabelDictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Find("y"), kInvalidLabel);
  EXPECT_FALSE(dict.Contains("y"));
  EXPECT_TRUE(dict.Contains("x"));
}

TEST(LabelDictionaryTest, StableAcrossGrowth) {
  LabelDictionary dict;
  LabelId first = dict.Intern("first");
  for (int i = 0; i < 1000; ++i) dict.Intern("label" + std::to_string(i));
  EXPECT_EQ(dict.Find("first"), first);
  EXPECT_EQ(dict.Name(first), "first");
}

// Builds the little diamond 0->1, 0->2, 1->3, 2->3 with labels a,b,b,c.
Graph Diamond() {
  GraphBuilder b;
  b.AddVertex(0);  // a
  b.AddVertex(1);  // b
  b.AddVertex(1);  // b
  b.AddVertex(2);  // c
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  auto g = b.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(GraphTest, BasicCounts) {
  Graph g = Diamond();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Size(), 8u);
}

TEST(GraphTest, OutAndInNeighbors) {
  Graph g = Diamond();
  auto out0 = g.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_EQ(out0[1], 2u);
  auto in3 = g.InNeighbors(3);
  ASSERT_EQ(in3.size(), 2u);
  EXPECT_EQ(in3[0], 1u);
  EXPECT_EQ(in3[1], 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphTest, HasEdge) {
  Graph g = Diamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphTest, SelfLoopAllowed) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddEdge(0, 0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_TRUE(g->HasEdge(0, 0));
}

TEST(GraphTest, OutOfRangeEdgeFailsBuild) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddEdge(0, 5);
  auto g = b.Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, LabelIndex) {
  Graph g = Diamond();
  auto bs = g.VerticesWithLabel(1);
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0], 1u);
  EXPECT_EQ(bs[1], 2u);
  EXPECT_EQ(g.LabelCount(0), 1u);
  EXPECT_EQ(g.LabelCount(7), 0u);
  EXPECT_TRUE(g.VerticesWithLabel(99).empty());
}

TEST(GraphTest, DistinctLabelsSorted) {
  Graph g = Diamond();
  auto labels = g.DistinctLabels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 2u);
}

TEST(GraphTest, LabelSupport) {
  Graph g = Diamond();
  EXPECT_DOUBLE_EQ(g.LabelSupport(1), 0.5);
  EXPECT_DOUBLE_EQ(g.LabelSupport(9), 0.0);
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b;
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0u);
  EXPECT_EQ(g->NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g->LabelSupport(0), 0.0);
}

TEST(GraphTest, EdgesRoundTrip) {
  Graph g = Diamond();
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], std::make_pair(VertexId{0}, VertexId{1}));
  EXPECT_EQ(edges[3], std::make_pair(VertexId{2}, VertexId{3}));
}

// --- traversal ---

// Path 0 -> 1 -> 2 -> 3 -> 4 plus shortcut 0 -> 3.
Graph PathWithShortcut() {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(0, 3);
  return std::move(b.Build()).value();
}

TEST(TraversalTest, BoundedDistancesForward) {
  Graph g = PathWithShortcut();
  BfsScratch scratch;
  auto dists = scratch.BoundedDistances(g, 0, 2, Direction::kForward);
  // 0@0, 1@1, 3@1, 2@2, 4@2.
  ASSERT_EQ(dists.size(), 5u);
  std::vector<uint32_t> dist_of(5, 99);
  for (auto [v, d] : dists) dist_of[v] = d;
  EXPECT_EQ(dist_of[0], 0u);
  EXPECT_EQ(dist_of[1], 1u);
  EXPECT_EQ(dist_of[3], 1u);
  EXPECT_EQ(dist_of[2], 2u);
  EXPECT_EQ(dist_of[4], 2u);
}

TEST(TraversalTest, BoundedDistancesRespectsBound) {
  Graph g = PathWithShortcut();
  BfsScratch scratch;
  auto dists = scratch.BoundedDistances(g, 1, 1, Direction::kForward);
  ASSERT_EQ(dists.size(), 2u);  // 1@0, 2@1
}

TEST(TraversalTest, BackwardDirection) {
  Graph g = PathWithShortcut();
  BfsScratch scratch;
  auto dists = scratch.BoundedDistances(g, 3, 1, Direction::kBackward);
  // 3@0; predecessors of 3: 2 and 0.
  ASSERT_EQ(dists.size(), 3u);
}

TEST(TraversalTest, MultiSource) {
  Graph g = PathWithShortcut();
  BfsScratch scratch;
  auto dists =
      scratch.BoundedDistancesMulti(g, {1, 3}, 1, Direction::kForward);
  // 1@0, 3@0, 2@1, 4@1.
  ASSERT_EQ(dists.size(), 4u);
}

TEST(TraversalTest, ScratchReusableAcrossRuns) {
  Graph g = PathWithShortcut();
  BfsScratch scratch;
  for (int i = 0; i < 10; ++i) {
    auto dists = scratch.BoundedDistances(g, 0, 4, Direction::kForward);
    EXPECT_EQ(dists.size(), 5u);
  }
}

TEST(TraversalTest, ShortestDistance) {
  Graph g = PathWithShortcut();
  EXPECT_EQ(ShortestDistance(g, 0, 4, 10), 2u);  // via shortcut
  EXPECT_EQ(ShortestDistance(g, 0, 0, 10), 0u);
  EXPECT_EQ(ShortestDistance(g, 4, 0, 10), kInfDistance);  // directed
  EXPECT_EQ(ShortestDistance(g, 0, 4, 1), kInfDistance);   // capped
}

TEST(TraversalTest, ReachableWithin) {
  Graph g = PathWithShortcut();
  EXPECT_TRUE(ReachableWithin(g, 0, 4, 2));
  EXPECT_FALSE(ReachableWithin(g, 0, 4, 1));
  EXPECT_FALSE(ReachableWithin(g, 4, 0, 10));
}

// --- sampling ---

TEST(SamplingTest, SampleIsNodeInduced) {
  Graph g = Diamond();
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    SampledSubgraph s = SampleRadiusSubgraph(g, 2, rng);
    ASSERT_EQ(s.graph.NumVertices(), s.original.size());
    // Every edge among sampled originals must appear in the sample.
    for (VertexId i = 0; i < s.graph.NumVertices(); ++i) {
      for (VertexId j = 0; j < s.graph.NumVertices(); ++j) {
        EXPECT_EQ(s.graph.HasEdge(i, j),
                  g.HasEdge(s.original[i], s.original[j]));
      }
    }
    // Labels preserved.
    for (VertexId i = 0; i < s.graph.NumVertices(); ++i) {
      EXPECT_EQ(s.graph.label(i), g.label(s.original[i]));
    }
  }
}

TEST(SamplingTest, RadiusZeroIsSingleton) {
  Graph g = Diamond();
  Rng rng(9);
  SampledSubgraph s = SampleRadiusSubgraph(g, 0, rng);
  EXPECT_EQ(s.graph.NumVertices(), 1u);
}

TEST(SamplingTest, EmptyGraphYieldsEmptySample) {
  GraphBuilder b;
  Graph g = std::move(b.Build()).value();
  Rng rng(1);
  SampledSubgraph s = SampleRadiusSubgraph(g, 2, rng);
  EXPECT_EQ(s.graph.NumVertices(), 0u);
}

TEST(SamplingTest, CountAndFormula) {
  Graph g = Diamond();
  Rng rng(3);
  auto samples = SampleRadiusSubgraphs(g, 1, 7, rng);
  EXPECT_EQ(samples.size(), 7u);
  EXPECT_EQ(SampleSizeForError(1.96, 0.05), 385u);  // paper rounds to 400
}

// --- I/O ---

TEST(GraphIoTest, RoundTrip) {
  LabelDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  dict.Intern("c");
  Graph g = Diamond();

  std::stringstream ss;
  ASSERT_TRUE(WriteGraph(g, dict, ss).ok());
  LabelDictionary dict2;
  auto g2 = ReadGraph(ss, dict2);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->NumVertices(), g.NumVertices());
  EXPECT_EQ(g2->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(dict2.Name(g2->label(v)), dict.Name(g.label(v)));
  }
  EXPECT_EQ(g2->Edges(), g.Edges());
}

TEST(GraphIoTest, RejectsMissingHeader) {
  std::stringstream ss("not a graph\n");
  LabelDictionary dict;
  auto g = ReadGraph(ss, dict);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsTruncatedVertexSection) {
  std::stringstream ss("bigindex-graph v1\n3 0\nonly_one_label\n");
  LabelDictionary dict;
  auto g = ReadGraph(ss, dict);
  EXPECT_FALSE(g.ok());
}

TEST(GraphIoTest, RejectsBadEdge) {
  std::stringstream ss("bigindex-graph v1\n1 1\nv\n0 7\n");
  LabelDictionary dict;
  auto g = ReadGraph(ss, dict);
  EXPECT_FALSE(g.ok());
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# header comment\nbigindex-graph v1\n\n2 1\na\n# mid\nb\n0 1\n");
  LabelDictionary dict;
  auto g = ReadGraph(ss, dict);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphIoTest, FileMissingFails) {
  LabelDictionary dict;
  auto g = LoadGraphFile("/nonexistent/path/graph.txt", dict);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace bigindex
