// Index explorer: inspects what BiG-index actually builds — per-layer
// statistics, the configurations Algorithm 1 picks vs. the default full
// generalization, the Formula-3 cost surface, and a Gen/Spec round trip of a
// sampled subgraph.
//
//   ./index_explorer [dataset] [scale]    (default: dbpedia at 0.003)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bigindex.h"

using namespace bigindex;

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "dbpedia";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.003;

  auto ds = MakeDataset(name, scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const Graph& g = ds->graph;
  const Ontology& ont = ds->ontology.ontology;
  std::printf("Dataset %s: |V| = %zu, |E| = %zu, %zu distinct labels\n",
              name.c_str(), g.NumVertices(), g.NumEdges(),
              g.DistinctLabels().size());

  // --- Cost model: compare a few configurations (Formula 3). ---
  CostModelOptions cm_opt;
  cm_opt.sample_count = 200;
  CostModel model(g, cm_opt);
  GeneralizationConfig full = FullOneStepConfiguration(g, ont);
  std::printf("\nFull one-step configuration: %zu mappings\n", full.size());
  std::printf("  compress (estimated) = %.3f, distort = %.3f, cost = %.3f\n",
              model.EstimateCompress(full), model.Distort(full),
              model.Cost(full));

  ConfigSearchOptions cs_opt;
  cs_opt.theta = 0.8;
  cs_opt.cost = cm_opt;
  GeneralizationConfig greedy = FindConfiguration(g, ont, cs_opt);
  std::printf("Algorithm-1 greedy configuration (theta 0.8): %zu mappings\n",
              greedy.size());
  std::printf("  compress (estimated) = %.3f, distort = %.3f, cost = %.3f\n",
              model.EstimateCompress(greedy), model.Distort(greedy),
              model.Cost(greedy));

  // --- Hierarchy. ---
  auto index = BigIndex::Build(g, &ont, {.max_layers = 7});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("\nLayer  |V|       |E|       |G|       ratio   config\n");
  for (size_t m = 0; m <= index->NumLayers(); ++m) {
    const Graph& layer = index->LayerGraph(m);
    std::printf("%-6zu %-9zu %-9zu %-9zu %-7.3f %zu\n", m,
                layer.NumVertices(), layer.NumEdges(), layer.Size(),
                index->LayerCompressionRatio(m),
                m == 0 ? 0 : index->Layer(m).config.size());
  }
  std::printf("Total summary footprint: %zu (= sum of layers)\n",
              index->TotalSummarySize());

  // --- Gen/Spec round trip on a sample (χ and χ^-1). ---
  Rng rng(3);
  SampledSubgraph sample = SampleRadiusSubgraph(g, 2, rng);
  std::printf("\nSampled radius-2 subgraph: %zu vertices\n",
              sample.graph.NumVertices());
  if (index->NumLayers() >= 1 && sample.graph.NumVertices() > 0) {
    VertexId v0 = sample.original[0];
    VertexId up = index->MapUp(v0, 0, 1);
    auto members = index->SpecializeVertex(up, 1);
    std::printf("  vertex %u  --χ-->  supernode %u  --χ^-1-->  %zu members "
                "(contains the original: %s)\n",
                v0, up, members.size(),
                std::find(members.begin(), members.end(), v0) != members.end()
                    ? "yes"
                    : "NO (bug!)");
    std::printf("  label chain: %s -> %s\n",
                ds->dict->Name(g.label(v0)).c_str(),
                ds->dict->Name(index->LayerGraph(1).label(up)).c_str());
  }

  // --- Query-layer cost curve (Formula 4) for a sample query. ---
  QueryGenOptions qopt;
  qopt.sizes = {3};
  qopt.min_count = 10;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  if (!workload.empty()) {
    const auto& q = workload[0];
    std::printf("\ncost_q(m) for %s (beta 0.5):\n", q.id.c_str());
    for (size_t m = 0; m <= index->NumLayers(); ++m) {
      bool feasible = QueryDistinctAtLayer(*index, q.keywords, m);
      std::printf("  m = %zu: %s%.4f\n", m, feasible ? "" : "(infeasible) ",
                  QueryLayerCost(*index, q.keywords, m, 0.5));
    }
    std::printf("  optimal layer: %zu\n",
                OptimalQueryLayer(*index, q.keywords, 0.5));
  }
  return 0;
}
