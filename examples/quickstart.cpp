// Quickstart: the paper's running example (Figs. 1-4) end to end.
//
// Builds the mini knowledge graph around "P. Graham" and its ontology,
// constructs a BiG-index wrapped in a QueryEngine, and answers the keyword
// query Q1 = {Massachusetts, Ivy League, California} (d_max = 3) with
// backward keyword search, both directly and through the engine.
//
//   ./quickstart

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bigindex.h"

using namespace bigindex;

int main() {
  LabelDictionary dict;

  // --- Data graph (Fig. 1). ---
  GraphBuilder gb;
  auto v = [&](const std::string& label) {
    return gb.AddVertex(dict.Intern(label));
  };
  VertexId graham = v("P. Graham");
  VertexId yc = v("Y Combinator");
  VertexId harvard = v("Harvard Univ.");
  VertexId cornell = v("Cornell Univ.");
  VertexId ivy = v("Ivy League");
  VertexId mass = v("Massachusetts");
  VertexId ny = v("New York");
  VertexId cal = v("California");
  VertexId berkeley = v("UC Berkeley");
  gb.AddEdge(graham, yc);
  gb.AddEdge(graham, harvard);
  gb.AddEdge(graham, cornell);
  gb.AddEdge(harvard, ivy);
  gb.AddEdge(cornell, ivy);
  gb.AddEdge(harvard, mass);
  gb.AddEdge(cornell, ny);
  gb.AddEdge(yc, cal);
  gb.AddEdge(berkeley, cal);
  // The "100 persons" of Fig. 1 who all studied at UC Berkeley.
  std::vector<std::string> person_names;
  for (int i = 0; i < 100; ++i) {
    person_names.push_back("Person_" + std::to_string(i));
    VertexId p = v(person_names.back());
    gb.AddEdge(p, berkeley);
  }
  auto graph = gb.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  // --- Ontology (Fig. 2): entities -> types -> supertypes. ---
  OntologyBuilder ob;
  auto sub = [&](const std::string& child, const std::string& parent) {
    ob.AddSupertypeEdge(dict.Intern(child), dict.Intern(parent));
  };
  sub("P. Graham", "Investor");
  sub("S. Russell", "Academics");
  sub("Investor", "Person");
  sub("Academics", "Person");
  for (const std::string& name : person_names) sub(name, "Academics");
  sub("UC Berkeley", "Univ.");
  sub("Harvard Univ.", "Univ.");
  sub("Cornell Univ.", "Univ.");
  sub("Ivy League", "Organization");
  sub("Univ.", "Organization");
  sub("Y Combinator", "Startup");
  sub("Startup", "Organization");
  sub("California", "Western");
  sub("Massachusetts", "Eastern");
  sub("New York", "Eastern");
  sub("Eastern", "State");
  sub("Western", "State");
  auto ont = ob.Build();
  if (!ont.ok()) {
    std::fprintf(stderr, "ontology: %s\n", ont.status().ToString().c_str());
    return 1;
  }

  // --- Build the BiG-index: Gen + Bisim, repeated (Def 3.1). ---
  auto index =
      BigIndex::Build(std::move(graph).value(), &*ont, {.max_layers = 3});
  if (!index.ok()) {
    std::fprintf(stderr, "index: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("Data graph |G^0| = %zu (%zu vertices, %zu edges)\n",
              index->base().Size(), index->base().NumVertices(),
              index->base().NumEdges());
  for (size_t m = 1; m <= index->NumLayers(); ++m) {
    std::printf("Summary layer %zu: |G^%zu| = %-4zu (ratio %.3f)\n", m, m,
                index->LayerGraph(m).Size(), index->LayerCompressionRatio(m));
  }

  // --- Wrap the index in a QueryEngine; register bkws with d_max = 3. ---
  QueryEngine engine(std::move(index).value(),
                     {.register_default_algorithms = false});
  engine.Register(std::make_unique<BkwsAlgorithm>(
      BkwsOptions{.d_max = 3, .top_k = 0}));
  const Graph& base = engine.index().base();

  // --- Query Q1 = {Massachusetts, Ivy League, California}, d_max = 3. ---
  std::vector<LabelId> q1 = {dict.Find("Massachusetts"),
                             dict.Find("Ivy League"),
                             dict.Find("California")};

  auto direct = engine.algorithm("bkws")->Evaluate(base, q1);
  std::printf("\nDirect evaluation: %zu answer(s)\n", direct.size());

  auto hier = engine.Evaluate({.keywords = q1, .algorithm = "bkws"});
  if (!hier.ok()) {
    std::fprintf(stderr, "query: %s\n", hier.status().ToString().c_str());
    return 1;
  }
  std::printf("QueryEngine evaluation (cost model chose layer %zu): %zu "
              "answer(s) in %.2f ms\n",
              hier->breakdown.layer, hier->answers.size(), hier->wall_ms);
  for (const Answer& a : hier->answers) {
    std::printf("  root = %-12s score = %u  keyword vertices: ",
                dict.Name(base.label(a.root)).c_str(), a.score);
    for (VertexId kw : a.keyword_vertices) {
      std::printf("[%s] ", dict.Name(base.label(kw)).c_str());
    }
    std::printf("\n");
  }

  // The answer of Fig. 1: the subtree rooted at P. Graham.
  bool found_graham = false;
  for (const Answer& a : hier->answers) found_graham |= a.root == graham;
  std::printf("\nP. Graham is %sthe expected answer root.\n",
              found_graham ? "" : "NOT ");
  return found_graham && hier->answers.size() == direct.size() ? 0 : 1;
}
