// Knowledge-graph search: Blinks with and without BiG-index on a YAGO3-like
// generated knowledge graph — the Fig. 10 scenario as a runnable program.
//
//   ./knowledge_graph_search [scale]     (default scale 0.01, ~26k vertices)

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bigindex.h"

using namespace bigindex;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  std::printf("Generating yago3-like knowledge graph (scale %.4f)...\n",
              scale);
  auto ds = MakeDataset("yago3", scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("  |V| = %zu, |E| = %zu, |V_ont| = %zu, |E_ont| = %zu\n",
              ds->graph.NumVertices(), ds->graph.NumEdges(),
              ds->ontology.ontology.NumTypes(),
              ds->ontology.ontology.NumEdges());

  Timer build_timer;
  auto index = BigIndex::Build(ds->graph, &ds->ontology.ontology,
                               {.max_layers = 5});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("BiG-index built in %.1f ms: %zu layers, layer-1 ratio %.3f\n",
              build_timer.ElapsedMillis(), index->NumLayers(),
              index->LayerCompressionRatio(1));

  // Table-4-style workload.
  QueryGenOptions qopt;
  qopt.min_count = static_cast<size_t>(3000 * scale) + 5;
  auto workload = GenerateQueryWorkload(*ds, qopt);
  std::printf("\nWorkload (Table 4 style):\n%s\n",
              WorkloadToString(*ds, workload).c_str());

  // Direct queries ask for top-10; the index route evaluates the summary
  // with a 5x candidate multiplier for progressive specialization
  // (Sec. 4.3.4), exactly as the reproduction benches do. Both routes run
  // through one QueryEngine: "blinks" is the summary-tuned instance the
  // hierarchical evaluator uses, and direct evaluation calls the
  // direct-tuned instance on the base graph.
  QueryEngine engine(std::move(index).value(),
                     {.register_default_algorithms = false});
  engine.Register(std::make_unique<BlinksAlgorithm>(
      BlinksOptions{.d_max = 5, .top_k = 50, .block_size = 1000}));
  BlinksAlgorithm blinks({.d_max = 5, .top_k = 10, .block_size = 1000});
  const Graph& base = engine.index().base();
  if (!workload.empty()) {  // warm per-graph Blinks indexes
    (void)blinks.Evaluate(base, workload[0].keywords);
    (void)engine.Evaluate(
        {.keywords = workload[0].keywords,
         .algorithm = "blinks",
         .eval = {.top_k = 10, .exact_verification = false}});
  }

  std::printf("%-4s %10s %12s %14s %8s %s\n", "id", "answers",
              "direct(ms)", "bigindex(ms)", "layer", "speedup");
  double total_direct = 0, total_big = 0;
  for (const QuerySpec& q : workload) {
    Timer t;
    auto direct = blinks.Evaluate(base, q.keywords);
    double direct_ms = t.ElapsedMillis();

    // exact_verification = false is the paper's answer-generation mode.
    auto hier = engine.Evaluate(
        {.keywords = q.keywords,
         .algorithm = "blinks",
         .eval = {.top_k = 10, .exact_verification = false}});
    if (!hier.ok()) {
      std::fprintf(stderr, "%s\n", hier.status().ToString().c_str());
      return 1;
    }
    double big_ms = hier->wall_ms;

    total_direct += direct_ms;
    total_big += big_ms;
    std::printf("%-4s %10zu %12.2f %14.2f %8zu %6.2fx\n", q.id.c_str(),
                hier->answers.size(), direct_ms, big_ms, hier->breakdown.layer,
                big_ms > 0 ? direct_ms / big_ms : 0.0);
  }
  std::printf("\nTotal: direct %.1f ms, BiG-index %.1f ms (%.1f%% reduction; "
              "paper reports 61.8%% on YAGO3)\n",
              total_direct, total_big,
              total_direct > 0
                  ? 100.0 * (total_direct - total_big) / total_direct
                  : 0.0);
  return 0;
}
