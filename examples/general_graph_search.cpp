// General-graph support (the paper's Appendix A.2 / DBpedia treatment):
// index a graph whose labels are NOT ontology types by attaching untyped
// labels under a fallback type, then search it through BiG-index.
//
//   ./general_graph_search

#include <cstdio>
#include <memory>
#include <string>

#include "bigindex.h"

using namespace bigindex;

int main() {
  LabelDictionary dict;

  // A "social network"-ish graph: unique user handles (no ontology knows
  // them) plus a few typed pages.
  GraphBuilder gb;
  Rng rng(17);
  std::vector<VertexId> users;
  for (int i = 0; i < 2000; ++i) {
    users.push_back(gb.AddVertex(dict.Intern("user_" + std::to_string(i))));
  }
  VertexId cpp_page = gb.AddVertex(dict.Intern("cpp_forum"));
  VertexId db_page = gb.AddVertex(dict.Intern("database_forum"));
  VertexId ml_page = gb.AddVertex(dict.Intern("ml_forum"));
  for (VertexId u : users) {
    gb.AddEdge(u, cpp_page + rng.Uniform(3));  // each user follows one forum
    if (rng.Bernoulli(0.2)) {                  // some follow a second one
      gb.AddEdge(u, cpp_page + rng.Uniform(3));
    }
  }
  Graph g = std::move(gb.Build()).value();

  // Partial ontology: only the forums are typed.
  OntologyBuilder ob;
  ob.AddSupertypeEdge(dict.Find("cpp_forum"), dict.Intern("Forum"));
  ob.AddSupertypeEdge(dict.Find("database_forum"), dict.Intern("Forum"));
  ob.AddSupertypeEdge(dict.Find("ml_forum"), dict.Intern("Forum"));
  Ontology partial = std::move(ob.Build()).value();

  // Appendix A.2: attach the 2000 untyped user labels under a fallback.
  auto typed = AttachUntypedLabels(g, partial, dict, "User");
  if (!typed.ok()) {
    std::fprintf(stderr, "%s\n", typed.status().ToString().c_str());
    return 1;
  }
  std::printf("typing: %zu labels already typed, %zu attached under "
              "'User' (%.1f%% pre-typed; the paper reports 73.2%% for "
              "DBpedia against YAGO's ontology)\n",
              typed->typed, typed->attached,
              100.0 * typed->typed_fraction());

  auto index = BigIndex::Build(g, &typed->ontology, {.max_layers = 2});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("index: layer-1 ratio %.4f — 2000 unique user labels collapse "
              "once generalized to 'User'\n",
              index->LayerCompressionRatio(1));

  // Keyword query over concrete labels: "who connects user_42 and the
  // database forum?"
  QueryEngine engine(std::move(index).value(),
                     {.register_default_algorithms = false});
  engine.Register(std::make_unique<BkwsAlgorithm>(
      BkwsOptions{.d_max = 3, .top_k = 5}));
  std::vector<LabelId> q = {dict.Find("user_42"),
                            dict.Find("database_forum")};
  auto result = engine.Evaluate(
      {.keywords = q, .algorithm = "bkws", .eval = {.top_k = 5}});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query {user_42, database_forum}: %zu answer(s) at layer "
              "%zu\n", result->answers.size(), result->breakdown.layer);
  for (const Answer& a : result->answers) {
    std::printf("  root %-22s score %u\n",
                dict.Name(g.label(a.root)).c_str(), a.score);
  }
  return result->answers.empty() ? 1 : 0;
}
