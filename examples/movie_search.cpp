// Movie search: r-clique on an IMDB-like graph — including the paper's
// observation that the r-clique neighbor list is infeasible on IMDB
// (estimated 16 TB, Sec. 6.2) while BiG-index + a neighbor list on the
// *summary* layer still answers the queries.
//
//   ./movie_search [scale]     (default scale 0.004, ~6.7k vertices)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bigindex.h"

using namespace bigindex;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.004;

  std::printf("Generating imdb-like movie graph (scale %.4f)...\n", scale);
  auto ds = MakeDataset("imdb", scale);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const Graph& g = ds->graph;
  std::printf("  |V| = %zu, |E| = %zu\n", g.NumVertices(), g.NumEdges());

  // The paper's infeasibility estimate: project the full-size neighbor-list
  // footprint from samples (IMDB: m̄ ≈ 105K -> ~16 TB).
  Rng rng(1);
  size_t est =
      NeighborIndex::EstimateMemoryBytes(g, /*r=*/4, /*samples=*/200, rng);
  std::printf("\nNeighbor-list estimate at R = 4: %.2f MB for this scaled "
              "graph\n", est / 1e6);
  double full_scale_est = static_cast<double>(est) / scale / scale;
  std::printf("Naive projection to paper-size IMDB (entries grow ~|V|*m̄): "
              "%.1f TB — matches the paper's \"16 TB\" infeasibility.\n",
              full_scale_est / 1e12);

  // Budgeted build: cap at 512 MB, as a production system would.
  auto budgeted = NeighborIndex::Build(g, 4, 512ull << 20);
  if (!budgeted.ok()) {
    std::printf("Direct r-clique index build failed as expected: %s\n",
                budgeted.status().ToString().c_str());
  } else {
    std::printf("Direct neighbor index fits at this scale: %.1f MB, %zu "
                "entries\n",
                budgeted->MemoryBytes() / 1e6, budgeted->NumEntries());
  }

  // BiG-index route: the neighbor list is built on the (much smaller)
  // optimal query layer only.
  Timer t;
  auto index = BigIndex::Build(g, &ds->ontology.ontology, {.max_layers = 4});
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("\nBiG-index built in %.1f ms (%zu layers; layer-1 ratio "
              "%.3f)\n", t.ElapsedMillis(), index->NumLayers(),
              index->LayerCompressionRatio(1));

  QueryGenOptions qopt;
  qopt.sizes = {2, 2, 3};
  qopt.min_count = 10;
  auto workload = GenerateQueryWorkload(*ds, qopt);

  // Engine route: the whole workload goes through EvaluateBatch, fanned out
  // over a small thread pool, one warm QueryContext per worker.
  QueryEngine engine(std::move(index).value(),
                     {.num_threads = 2, .register_default_algorithms = false});
  engine.Register(
      std::make_unique<RCliqueAlgorithm>(RCliqueOptions{.r = 4, .top_k = 5}));

  std::vector<EngineQuery> queries;
  for (const QuerySpec& q : workload) {
    // Fast mode = the paper's answer generation (generalized scores);
    // exact verification on hub-dense movie graphs costs 4-hop balls per
    // candidate, which is exactly the blow-up the paper's Sec. 6.2 flags.
    queries.push_back({.keywords = q.keywords,
                       .algorithm = "r-clique",
                       .eval = {.top_k = 5, .exact_verification = false}});
  }
  std::printf("(the first query on each layer pays that layer's neighbor-"
              "list construction — still far cheaper than the data graph's)\n");
  t.Restart();
  auto results = engine.EvaluateBatch(queries);
  double batch_ms = t.ElapsedMillis();
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < results->size(); ++i) {
    const QueryResult& r = (*results)[i];
    std::printf("%s: %zu answers in %.2f ms (layer %zu)",
                workload[i].id.c_str(), r.answers.size(), r.wall_ms,
                r.breakdown.layer);
    if (!r.answers.empty()) {
      std::printf("; best weight %u, keywords:", r.answers[0].score);
      for (VertexId kw : r.answers[0].keyword_vertices) {
        std::printf(" %s", ds->dict->Name(g.label(kw)).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("batch: %zu queries in %.2f ms across %zu worker slot(s)\n",
              queries.size(), batch_ms, engine.num_slots());
  return 0;
}
