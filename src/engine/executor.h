// Fixed-size thread pool with a serial fallback — the execution substrate of
// the QueryEngine's batch evaluation.
//
// Design: persistent worker threads pulling from one mutex-guarded task
// queue. ParallelFor() is the primitive batch evaluation uses: it carves an
// index range into dynamically load-balanced chunks (workers race on an
// atomic cursor, so skewed per-item costs — some queries are 100× slower
// than others — don't idle workers), tags every invocation with a stable
// *slot* id so callers can give each concurrent strand its own scratch
// state, and blocks until the whole range is done. With zero threads the
// pool degenerates to inline serial execution, which keeps single-threaded
// builds and tiny deployments free of thread machinery.
//
// ParallelFor is re-entrant across threads (concurrent calls interleave on
// the shared workers) but must not be called from inside a pool task — the
// nested call would wait on workers that may all be occupied by its parent.

#ifndef BIGINDEX_ENGINE_EXECUTOR_H_
#define BIGINDEX_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bigindex {

class ExecutorPool {
 public:
  /// Sentinel for "one worker per hardware thread".
  static constexpr size_t kHardwareConcurrency = static_cast<size_t>(-1);

  /// Spawns `num_threads` workers. 0 = serial fallback: all work runs inline
  /// on the calling thread and no threads are created.
  explicit ExecutorPool(size_t num_threads);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Number of worker threads (0 in serial fallback).
  size_t num_workers() const { return workers_.size(); }

  /// Upper bound (exclusive) on the slot ids ParallelFor passes to `fn`;
  /// the natural size for a per-slot scratch array.
  size_t num_slots() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Runs fn(slot, index) for every index in [0, count), then returns.
  /// Invocations sharing a slot never overlap in time, so per-slot state
  /// needs no synchronization; indices are claimed dynamically in ascending
  /// order. The first exception thrown by `fn` (if any) is rethrown here
  /// after the range completes or drains.
  void ParallelFor(size_t count,
                   const std::function<void(size_t slot, size_t index)>& fn);

  /// Enqueues one fire-and-forget task (serial fallback: runs it inline).
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

}  // namespace bigindex

#endif  // BIGINDEX_ENGINE_EXECUTOR_H_
