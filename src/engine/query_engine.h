// QueryEngine — the re-entrant front door of the query path.
//
// The engine owns (or shares) one immutable BigIndex plus a registry of
// KeywordSearchAlgorithm implementations keyed by Name(), and evaluates
// keyword queries through the hierarchical evaluator (eval_Ont, Algorithm 2).
// Two entry points:
//
//   Evaluate(query)        — one query, runs on the calling thread;
//   EvaluateBatch(queries) — fans the batch out across the engine's
//                            ExecutorPool, one QueryContext per worker slot.
//
// Re-entrancy: the index and the registered algorithms are shared read-only
// state (algorithm-internal per-graph caches are mutex-guarded); every
// in-flight evaluation draws its scratch from a QueryContext leased from an
// internal pool, so Evaluate() may itself be called from many threads
// concurrently. Contexts keep their capacity between queries — steady-state
// evaluation allocates nothing per call in the hot search loops.

#ifndef BIGINDEX_ENGINE_QUERY_ENGINE_H_
#define BIGINDEX_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/big_index.h"
#include "core/evaluator.h"
#include "core/search_algorithm.h"
#include "engine/executor.h"
#include "engine/query_context.h"
#include "search/answer.h"
#include "util/status.h"

namespace bigindex {

/// Engine construction knobs.
struct QueryEngineOptions {
  /// Worker threads for EvaluateBatch; 0 = serial (no threads are created).
  /// ExecutorPool::kHardwareConcurrency = one per hardware thread.
  size_t num_threads = 0;

  /// Register the four built-in algorithms (bkws, blinks, r-clique,
  /// bidirectional) with default options at construction. Register() can
  /// later replace any of them with differently-configured instances.
  bool register_default_algorithms = true;
};

/// One query: what to search for, with which semantics, evaluated how.
struct EngineQuery {
  std::vector<LabelId> keywords;

  /// Registered algorithm name; see QueryEngine::AlgorithmNames().
  std::string algorithm = "bkws";

  /// Hierarchical-evaluation options (layer choice, top-k, verification,
  /// per-request deadline).
  EvalOptions eval;

  /// Canonicalizes the keyword list to a sorted, duplicate-free set. Keyword
  /// queries are sets (Def 2.3), so this never changes which answers exist —
  /// only the order of Answer::keyword_vertices slots. The serving layer
  /// normalizes at admission so syntactic variants share one cache entry.
  void NormalizeKeywords();
};

/// One query's outcome: the answers plus the per-query statistics the
/// breakdown figures report (layer chosen, candidates generated/verified,
/// per-phase and total wall time).
struct QueryResult {
  std::vector<Answer> answers;
  EvalBreakdown breakdown;
  double wall_ms = 0;
  std::string algorithm;
};

class QueryEngine {
 public:
  /// Takes ownership of the index. The ontology the index borrows must
  /// outlive the engine.
  explicit QueryEngine(BigIndex index, QueryEngineOptions options = {});

  /// Shares an index (e.g. several engines with different thread counts over
  /// one index, as bench_engine does).
  explicit QueryEngine(std::shared_ptr<const BigIndex> index,
                       QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  const BigIndex& index() const { return *index_; }
  const QueryEngineOptions& options() const { return options_; }

  /// Registers `algorithm` under its Name(), replacing any previous
  /// registration of that name. Not thread-safe against concurrent
  /// Evaluate()/EvaluateBatch() — register before serving queries.
  void Register(std::unique_ptr<KeywordSearchAlgorithm> algorithm);

  /// The registered algorithm of that name, or nullptr.
  const KeywordSearchAlgorithm* algorithm(std::string_view name) const;

  /// Registered names, in registration order.
  std::vector<std::string_view> AlgorithmNames() const;

  /// Cheap admission-time validation: InvalidArgument for an empty keyword
  /// list, NotFound for an unregistered algorithm name, OK otherwise. The
  /// serving layer calls this before enqueueing so malformed requests are
  /// rejected at the door instead of failing deep inside Evaluate.
  Status Validate(const EngineQuery& query) const;

  /// Evaluates one query on the calling thread. Fails with Validate()'s
  /// status for malformed queries and DeadlineExceeded when
  /// query.eval.deadline expired before or during evaluation (an expired
  /// query returns no answers, never a partial set). Safe to call
  /// concurrently from many threads.
  StatusOr<QueryResult> Evaluate(const EngineQuery& query) const;

  /// Evaluates a batch, fanned out across the pool (serial when
  /// num_threads = 0). Results are in input order. The whole batch fails
  /// with Validate()'s status if any query is malformed (checked up front —
  /// no partial evaluation). Per-query deadlines do NOT fail the batch:
  /// an expired query yields an empty result whose
  /// breakdown.deadline_expired is set; callers decide how to surface it.
  StatusOr<std::vector<QueryResult>> EvaluateBatch(
      std::span<const EngineQuery> queries) const;

  /// Slots the batch path fans out over (>= 1; 1 in serial mode).
  size_t num_slots() const { return pool_.num_slots(); }

 private:
  class ContextLease;

  std::shared_ptr<const BigIndex> index_;
  QueryEngineOptions options_;
  std::vector<std::unique_ptr<KeywordSearchAlgorithm>> algorithms_;
  mutable ExecutorPool pool_;

  // Free list of warm contexts; leased per evaluation, returned after.
  mutable std::mutex context_mutex_;
  mutable std::vector<std::unique_ptr<QueryContext>> free_contexts_;
};

}  // namespace bigindex

#endif  // BIGINDEX_ENGINE_QUERY_ENGINE_H_
