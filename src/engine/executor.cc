#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "obs/metrics.h"

namespace bigindex {
namespace {

/// Tasks sitting in the pool's queue right now. One gauge for all pools in
/// the process — the daemon runs one.
Gauge& QueueDepthGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "bigindex_executor_queue_depth",
      "Tasks waiting in executor pool queues");
  return g;
}

}  // namespace

ExecutorPool::ExecutorPool(size_t num_threads) {
  if (num_threads == kHardwareConcurrency) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ExecutorPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge().Sub(1);
    task();
  }
}

void ExecutorPool::Submit(std::function<void()> task) {
  static Counter& tasks = MetricsRegistry::Global().GetCounter(
      "bigindex_executor_tasks_total", "Tasks submitted to executor pools");
  tasks.Inc();
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  QueueDepthGauge().Add(1);
  work_available_.notify_one();
}

void ExecutorPool::ParallelFor(
    size_t count, const std::function<void(size_t slot, size_t index)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  // One driver task per useful worker; each driver races on `next` so slow
  // items never strand work behind a static partition.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::mutex done_mutex;
    std::condition_variable done;
    size_t drivers_left;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<SharedState>();
  const size_t drivers = std::min(count, workers_.size());
  state->drivers_left = drivers;

  for (size_t slot = 0; slot < drivers; ++slot) {
    Submit([state, &fn, count, slot] {
      for (;;) {
        size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        try {
          fn(slot, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->done_mutex);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
          // Drain the rest of the range so other drivers stop quickly.
          state->next.store(count, std::memory_order_relaxed);
          break;
        }
      }
      std::lock_guard<std::mutex> lock(state->done_mutex);
      if (--state->drivers_left == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done.wait(lock, [&] { return state->drivers_left == 0; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace bigindex
