#include "engine/query_engine.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/bidirectional.h"
#include "search/bkws.h"
#include "search/blinks.h"
#include "search/rclique.h"
#include "util/timer.h"

namespace bigindex {
namespace {

/// Once-per-query metric recording from the finished result — all counter
/// bumps and histogram records, so the cost is a handful of relaxed atomics
/// plus two labeled-series lookups per query.
void RecordQueryMetrics(const std::string& algorithm, const QueryResult& r) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::string label = "algorithm=\"" + algorithm + "\"";
  reg.GetCounter("bigindex_engine_queries_total",
                 "Queries evaluated by the engine", label)
      .Inc();
  reg.GetHistogram("bigindex_engine_eval_ms",
                   "End-to-end evaluation latency per query, ms", label)
      .Record(r.wall_ms);

  static Counter& deadline_expired = reg.GetCounter(
      "bigindex_engine_deadline_expired_total",
      "Evaluations abandoned at a deadline checkpoint");
  if (r.breakdown.deadline_expired) deadline_expired.Inc();

  // Algorithm 2 phase times and specialization fan-out (EvalBreakdown).
  static Histogram& explore_ms = reg.GetHistogram(
      "bigindex_eval_explore_ms", "Summary-graph exploration time, ms");
  static Histogram& specialize_ms = reg.GetHistogram(
      "bigindex_eval_specialize_ms", "Answer specialization time, ms");
  static Histogram& generate_ms = reg.GetHistogram(
      "bigindex_eval_generate_ms", "Answer generation time (Algos 3/4), ms");
  static Histogram& verify_ms = reg.GetHistogram(
      "bigindex_eval_verify_ms", "Data-graph verification time, ms");
  explore_ms.Record(r.breakdown.explore_ms);
  specialize_ms.Record(r.breakdown.specialize_ms);
  generate_ms.Record(r.breakdown.generate_ms);
  verify_ms.Record(r.breakdown.verify_ms);

  static Counter& generalized = reg.GetCounter(
      "bigindex_eval_generalized_answers_total",
      "Generalized answers produced on summary graphs");
  static Counter& pruned = reg.GetCounter(
      "bigindex_eval_pruned_answers_total",
      "Generalized answers pruned during specialization");
  static Counter& roots = reg.GetCounter(
      "bigindex_eval_candidate_roots_total",
      "Candidates sent to data-graph verification (specialization fan-out)");
  static Counter& finals = reg.GetCounter(
      "bigindex_eval_final_answers_total", "Answers returned to callers");
  generalized.Inc(r.breakdown.generalized_answers);
  pruned.Inc(r.breakdown.pruned_answers);
  roots.Inc(r.breakdown.candidate_roots);
  finals.Inc(r.breakdown.final_answers);

  reg.GetCounter("bigindex_engine_layer_selected_total",
                 "Queries evaluated at each index layer",
                 "layer=\"" + std::to_string(r.breakdown.layer) + "\"")
      .Inc();
}

}  // namespace

/// RAII lease of a QueryContext from the engine's free list; creates a fresh
/// context when the list is empty, returns it (warm) on destruction.
class QueryEngine::ContextLease {
 public:
  explicit ContextLease(const QueryEngine& engine) : engine_(engine) {
    std::lock_guard<std::mutex> lock(engine_.context_mutex_);
    if (!engine_.free_contexts_.empty()) {
      context_ = std::move(engine_.free_contexts_.back());
      engine_.free_contexts_.pop_back();
    }
    if (!context_) context_ = std::make_unique<QueryContext>();
  }

  ~ContextLease() {
    std::lock_guard<std::mutex> lock(engine_.context_mutex_);
    engine_.free_contexts_.push_back(std::move(context_));
  }

  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

  QueryContext& operator*() { return *context_; }

 private:
  const QueryEngine& engine_;
  std::unique_ptr<QueryContext> context_;
};

void EngineQuery::NormalizeKeywords() {
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
}

QueryEngine::QueryEngine(BigIndex index, QueryEngineOptions options)
    : QueryEngine(std::make_shared<const BigIndex>(std::move(index)),
                  std::move(options)) {}

QueryEngine::QueryEngine(std::shared_ptr<const BigIndex> index,
                         QueryEngineOptions options)
    : index_(std::move(index)),
      options_(options),
      pool_(options.num_threads) {
  if (options_.register_default_algorithms) {
    Register(std::make_unique<BkwsAlgorithm>());
    Register(std::make_unique<BlinksAlgorithm>());
    Register(std::make_unique<RCliqueAlgorithm>());
    Register(std::make_unique<BidirectionalAlgorithm>());
  }
}

void QueryEngine::Register(std::unique_ptr<KeywordSearchAlgorithm> algorithm) {
  for (auto& existing : algorithms_) {
    if (existing->Name() == algorithm->Name()) {
      existing = std::move(algorithm);
      return;
    }
  }
  algorithms_.push_back(std::move(algorithm));
}

const KeywordSearchAlgorithm* QueryEngine::algorithm(
    std::string_view name) const {
  for (const auto& a : algorithms_) {
    if (a->Name() == name) return a.get();
  }
  return nullptr;
}

std::vector<std::string_view> QueryEngine::AlgorithmNames() const {
  std::vector<std::string_view> names;
  names.reserve(algorithms_.size());
  for (const auto& a : algorithms_) names.push_back(a->Name());
  return names;
}

Status QueryEngine::Validate(const EngineQuery& query) const {
  if (query.keywords.empty()) {
    return Status::InvalidArgument("query has an empty keyword list");
  }
  if (algorithm(query.algorithm) == nullptr) {
    return Status::NotFound("no algorithm registered as '" + query.algorithm +
                            "'");
  }
  return Status::OK();
}

StatusOr<QueryResult> QueryEngine::Evaluate(const EngineQuery& query) const {
  BIGINDEX_RETURN_IF_ERROR(Validate(query));
  if (query.eval.deadline.Expired()) {
    return Status::DeadlineExceeded("deadline expired before evaluation");
  }
  const KeywordSearchAlgorithm* f = algorithm(query.algorithm);
  ContextLease lease(*this);
  QueryResult result;
  result.algorithm = query.algorithm;
  Timer timer;
  {
    TRACE_SPAN("engine/evaluate");
    result.answers = EvaluateWithIndex(*index_, *f, query.keywords,
                                       query.eval, *lease, &result.breakdown);
  }
  result.wall_ms = timer.ElapsedMillis();
  RecordQueryMetrics(query.algorithm, result);
  if (result.breakdown.deadline_expired) {
    return Status::DeadlineExceeded("deadline expired during evaluation");
  }
  return result;
}

StatusOr<std::vector<QueryResult>> QueryEngine::EvaluateBatch(
    std::span<const EngineQuery> queries) const {
  // Validate everything up front: the batch either runs fully or not at
  // all, and workers then touch only read-only state plus their own slot.
  std::vector<const KeywordSearchAlgorithm*> fs(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    BIGINDEX_RETURN_IF_ERROR(Validate(queries[i]));
    fs[i] = algorithm(queries[i].algorithm);
  }

  std::vector<std::unique_ptr<ContextLease>> leases;
  leases.reserve(pool_.num_slots());
  for (size_t s = 0; s < pool_.num_slots(); ++s) {
    leases.push_back(std::make_unique<ContextLease>(*this));
  }

  static Counter& batches = MetricsRegistry::Global().GetCounter(
      "bigindex_engine_batches_total", "EvaluateBatch dispatches");
  static Histogram& batch_size = MetricsRegistry::Global().GetHistogram(
      "bigindex_engine_batch_size", "Queries per EvaluateBatch dispatch");
  batches.Inc();
  batch_size.Record(static_cast<double>(queries.size()));

  std::vector<QueryResult> results(queries.size());
  pool_.ParallelFor(queries.size(), [&](size_t slot, size_t i) {
    TRACE_SPAN("engine/evaluate");
    const EngineQuery& q = queries[i];
    QueryResult& r = results[i];
    r.algorithm = q.algorithm;
    Timer timer;
    r.answers = EvaluateWithIndex(*index_, *fs[i], q.keywords, q.eval,
                                  **leases[slot], &r.breakdown);
    r.wall_ms = timer.ElapsedMillis();
    RecordQueryMetrics(q.algorithm, r);
  });
  return results;
}

}  // namespace bigindex
