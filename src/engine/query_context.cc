#include "engine/query_context.h"

#include <algorithm>

namespace bigindex {

void ConeScratch::EnsureSize(size_t num_vertices) {
  if (dist.size() < num_vertices) {
    dist.resize(num_vertices, kInfDistance);
    witness.resize(num_vertices, kInvalidVertex);
    parent.resize(num_vertices, kInvalidVertex);
  }
}

void ConeScratch::Release() {
  for (VertexId v : queue) {
    dist[v] = kInfDistance;
    witness[v] = kInvalidVertex;
    parent[v] = kInvalidVertex;
  }
  queue.clear();
}

void BallCache::SwitchTo(const Graph* g, uint32_t radius) {
  if (graph != g || radius_ != radius) {
    balls.clear();
    graph = g;
    radius_ = radius;
  }
}

ConeScratch& QueryContext::Cone(size_t i, size_t num_vertices) {
  while (bfs_.size() <= i) bfs_.push_back(std::make_unique<ConeScratch>());
  ConeScratch& scratch = *bfs_[i];
  scratch.EnsureSize(num_vertices);
  return scratch;
}

std::vector<uint32_t>& QueryContext::ZeroedVertexArray(size_t slot,
                                                       size_t num_vertices) {
  if (vertex_arrays_.size() <= slot) vertex_arrays_.resize(slot + 1);
  std::vector<uint32_t>& a = vertex_arrays_[slot];
  a.assign(num_vertices, 0);
  return a;
}

std::vector<VertexId>& QueryContext::VertexScratch(size_t slot) {
  if (vertex_scratch_.size() <= slot) vertex_scratch_.resize(slot + 1);
  vertex_scratch_[slot].clear();
  return vertex_scratch_[slot];
}

std::unordered_set<VertexId>& QueryContext::VertexSet() {
  vertex_set_.clear();
  return vertex_set_;
}

std::unordered_set<std::string>& QueryContext::KeySet() {
  key_set_.clear();
  return key_set_;
}

std::string& QueryContext::KeyBuffer() {
  key_buffer_.clear();
  return key_buffer_;
}

std::vector<std::pair<uint32_t, VertexId>>& QueryContext::BestPerKeyword() {
  best_per_keyword_.clear();
  return best_per_keyword_;
}

}  // namespace bigindex
