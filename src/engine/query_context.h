// Per-query reusable scratch state (the engine layer's answer to "hot search
// loops must stop allocating per call").
//
// Every KeywordSearchAlgorithm entry point receives a QueryContext& and draws
// its working memory from it: BFS cone arrays (distance / witness / next hop /
// frontier queue), per-vertex mask and accumulator arrays, candidate vectors,
// dedup sets, and the r-clique verification ball cache. A context is NOT
// thread-safe — it is the unit of thread affinity: the engine hands each
// worker its own context, and within one context calls are strictly
// sequential. Contexts grow to the largest graph they have served and keep
// their capacity across queries, so steady-state query evaluation performs no
// per-call O(|V|) allocations.

#ifndef BIGINDEX_ENGINE_QUERY_CONTEXT_H_
#define BIGINDEX_ENGINE_QUERY_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.h"

namespace bigindex {

class Graph;

/// Scratch for one bounded BFS cone: persistent per-vertex arrays plus the
/// visit queue, which doubles as the touched list. Invariant between uses:
/// dist is kInfDistance everywhere, witness/parent are kInvalidVertex
/// everywhere, and queue is empty — Release() restores it in O(touched)
/// instead of O(|V|).
struct ConeScratch {
  std::vector<uint32_t> dist;      // kInfDistance = unreached
  std::vector<VertexId> witness;   // keyword vertex the distance leads to
  std::vector<VertexId> parent;    // predecessor / next hop on the path
  std::vector<VertexId> queue;     // visit order == exactly the touched set

  /// Grows the arrays to cover `num_vertices`, preserving the invariant.
  void EnsureSize(size_t num_vertices);

  /// Restores the invariant by undoing every write recorded in `queue`.
  /// Every vertex whose dist/witness/parent was written MUST be in queue.
  void Release();
};

/// The r-clique verification ball cache (bounded undirected r-balls around
/// keyword vertices), formerly algorithm-level mutable state guarded by a
/// mutex; per-context it needs no locking and stops serializing verification.
struct BallCache {
  const Graph* graph = nullptr;    // balls are valid for this graph only
  std::unordered_map<VertexId, std::unordered_map<VertexId, uint32_t>> balls;

  /// Drops stale balls when the target graph (or radius) changes.
  void SwitchTo(const Graph* g, uint32_t radius);

 private:
  uint32_t radius_ = 0;
};

/// All scratch state one query evaluation needs. Owned by the caller (the
/// QueryEngine keeps a pool, one handed to each in-flight evaluation);
/// stateless algorithm objects stay const and re-entrant by writing only
/// here.
class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// BFS scratch slot `i`, sized for `num_vertices`. Algorithms use slots
  /// [0, |Q|) for per-keyword cones; slot usage never nests across public
  /// entry points (every entry point Release()s what it acquired before
  /// returning).
  ConeScratch& Cone(size_t i, size_t num_vertices);

  /// Per-vertex uint32 array, zero-filled to `num_vertices` on every call
  /// (capacity is reused; the fill is a memset, not an allocation).
  std::vector<uint32_t>& ZeroedVertexArray(size_t slot, size_t num_vertices);

  /// Reusable vertex vector, cleared on every call.
  std::vector<VertexId>& VertexScratch(size_t slot);

  /// Reusable dedup set over vertices (evaluator root dedup), cleared.
  std::unordered_set<VertexId>& VertexSet();

  /// Reusable dedup set over string keys (evaluator r-clique dedup), cleared.
  std::unordered_set<std::string>& KeySet();

  /// Reusable key-assembly buffer.
  std::string& KeyBuffer();

  /// Reusable (distance, vertex) accumulator with one entry per query
  /// keyword, cleared on every call (rooted-answer completion).
  std::vector<std::pair<uint32_t, VertexId>>& BestPerKeyword();

  BallCache& Balls() { return balls_; }

 private:
  // Deques (and the unique_ptr indirection) keep the returned references
  // address-stable while later slots are acquired and the pools grow.
  std::vector<std::unique_ptr<ConeScratch>> bfs_;
  std::deque<std::vector<uint32_t>> vertex_arrays_;
  std::deque<std::vector<VertexId>> vertex_scratch_;
  std::unordered_set<VertexId> vertex_set_;
  std::unordered_set<std::string> key_set_;
  std::string key_buffer_;
  std::vector<std::pair<uint32_t, VertexId>> best_per_keyword_;
  BallCache balls_;
};

}  // namespace bigindex

#endif  // BIGINDEX_ENGINE_QUERY_CONTEXT_H_
