#include "update/version_store.h"

#include <utility>

namespace bigindex {

uint64_t IndexVersionStore::Publish(std::shared_ptr<const BigIndex> index,
                                    std::shared_ptr<const QueryEngine> engine) {
  auto version = std::make_shared<IndexVersion>();
  version->index = std::move(index);
  version->engine = std::move(engine);
  std::lock_guard<std::mutex> lock(mutex_);
  version->sequence = next_sequence_++;
  previous_ = std::move(current_);
  current_ = std::move(version);
  age_.Restart();
  return current_->sequence;
}

std::shared_ptr<const IndexVersion> IndexVersionStore::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::shared_ptr<const IndexVersion> IndexVersionStore::Previous() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return previous_;
}

StatusOr<uint64_t> IndexVersionStore::Rollback() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (previous_ == nullptr) {
    return Status::FailedPrecondition("no previous index version retained");
  }
  auto version = std::make_shared<IndexVersion>(*previous_);
  version->sequence = next_sequence_++;
  current_ = std::move(version);
  previous_ = nullptr;  // consumed: rollback cannot ping-pong
  age_.Restart();
  return current_->sequence;
}

double IndexVersionStore::CurrentAgeSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (current_ == nullptr) return 0;
  return age_.ElapsedSeconds();
}

}  // namespace bigindex
