#include "update/incremental.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigindex {
namespace {

// FNV-1a over a word sequence (same scheme as bisim/bisimulation.cc);
// collisions are resolved by full comparison in the group map.
uint64_t HashWords(std::span<const uint32_t> v) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  return h;
}

struct SigKey {
  std::vector<uint32_t> words;
  uint64_t hash;
  bool operator==(const SigKey& o) const {
    return hash == o.hash && words == o.words;
  }
};

struct SigKeyHash {
  size_t operator()(const SigKey& k) const { return k.hash; }
};

// Renumbers `block` in first-occurrence order over the vertex scan — the
// numbering ComputeBisimulation's final interner round produces — and
// materializes the quotient summary exactly as bisim/bisimulation.cc does,
// so serialized results are byte-identical to a from-scratch run.
BisimResult Finalize(const Graph& g, std::vector<uint32_t>& block,
                     size_t id_bound, size_t rounds) {
  const size_t n = g.NumVertices();
  std::vector<uint32_t> dense(id_bound, std::numeric_limits<uint32_t>::max());
  size_t num_blocks = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint32_t& d = dense[block[v]];
    if (d == std::numeric_limits<uint32_t>::max()) {
      d = static_cast<uint32_t>(num_blocks++);
    }
    block[v] = d;
  }

  BisimResult result;
  result.refinement_rounds = rounds;
  result.mapping = BisimMapping(block, num_blocks);

  TRACE_SPAN("bisim/materialize");
  GraphBuilder builder;
  builder.Reserve(num_blocks, g.NumEdges());
  {
    std::vector<LabelId> super_label(num_blocks, kInvalidLabel);
    for (VertexId v = 0; v < n; ++v) super_label[block[v]] = g.label(v);
    for (size_t s = 0; s < num_blocks; ++s) builder.AddVertex(super_label[s]);
  }
  const CsrView out = g.Out();
  for (VertexId u = 0; u < n; ++u) {
    const auto [b, e] = out[u];
    for (uint64_t i = b; i < e; ++i) {
      builder.AddEdge(block[u], block[out.Slot(i)]);  // dups collapse in Build
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  result.summary = std::move(built).value();
  return result;
}

}  // namespace

StatusOr<BisimResult> IncrementalBisimulation(
    const Graph& g, std::span<const VertexId> seed_partition,
    std::span<const VertexId> dirty, const IncrementalBisimOptions& options,
    IncrementalBisimStats* stats) {
  TRACE_SPAN("update/incremental_bisim");
  static Counter& runs = MetricsRegistry::Global().GetCounter(
      "bigindex_update_incremental_runs_total",
      "Incremental bisimulation invocations");
  static Counter& fallbacks = MetricsRegistry::Global().GetCounter(
      "bigindex_update_incremental_fallback_total",
      "Incremental invocations that fell back to wholesale refinement");
  static Counter& resigned = MetricsRegistry::Global().GetCounter(
      "bigindex_update_resigned_vertices_total",
      "Vertex signatures recomputed by the localized split pass");
  runs.Inc();

  const size_t n = g.NumVertices();
  if (seed_partition.size() != n) {
    return Status::InvalidArgument("seed partition size != vertex count");
  }
  for (VertexId v : dirty) {
    if (v >= n) return Status::InvalidArgument("dirty vertex out of range");
  }
  IncrementalBisimStats local_stats;
  IncrementalBisimStats& st = stats != nullptr ? *stats : local_stats;
  st = IncrementalBisimStats{};
  st.dirty_seed = dirty.size();

  if (static_cast<double>(dirty.size()) >
      options.fallback_dirty_ratio * static_cast<double>(n)) {
    st.fell_back = true;
    fallbacks.Inc();
    return ComputeBisimulation(g, {.pool = options.pool});
  }

  // Densify the seed into block ids 0..B-1 (first-occurrence order; the
  // final Finalize renumber makes the choice here irrelevant to output) and
  // build block -> members lists, members ascending.
  std::vector<uint32_t> block(n);
  std::vector<std::vector<VertexId>> members_of;
  {
    std::unordered_map<VertexId, uint32_t> dense;
    dense.reserve(n / 4 + 16);
    for (VertexId v = 0; v < n; ++v) {
      auto [it, inserted] = dense.try_emplace(
          seed_partition[v], static_cast<uint32_t>(members_of.size()));
      if (inserted) members_of.emplace_back();
      block[v] = it->second;
      members_of[it->second].push_back(v);
    }
  }

  // Worklist refinement. dirty_flag/dirty_list carry the *next* round's
  // frontier; per round we collect the blocks containing frontier vertices,
  // re-sign every member of those blocks against the current partition, and
  // split by (label, sorted-unique out-neighbor block set). The group
  // holding the block's first member keeps the block id; other groups take
  // fresh ids, and their members' in-neighbors join the next frontier
  // (their signatures now see a different block id).
  const CsrView out = g.Out();
  const CsrView in = g.In();
  std::vector<char> dirty_flag(n, 0);
  std::vector<VertexId> frontier;
  frontier.reserve(dirty.size());
  for (VertexId v : dirty) {
    if (!dirty_flag[v]) {
      dirty_flag[v] = 1;
      frontier.push_back(v);
    }
  }

  std::vector<char> touched_flag(members_of.size(), 0);
  std::vector<uint32_t> touched;
  std::vector<VertexId> moved;
  size_t rounds = 0;
  while (!frontier.empty()) {
    TRACE_SPAN("update/split_round");
    ++rounds;
    touched.clear();
    for (VertexId v : frontier) {
      dirty_flag[v] = 0;
      const uint32_t b = block[v];
      if (b >= touched_flag.size()) touched_flag.resize(b + 1, 0);
      if (!touched_flag[b]) {
        touched_flag[b] = 1;
        touched.push_back(b);
      }
    }
    frontier.clear();
    std::sort(touched.begin(), touched.end());

    moved.clear();
    for (uint32_t b : touched) {
      touched_flag[b] = 0;
      std::vector<VertexId>& mem = members_of[b];
      if (mem.size() <= 1) continue;  // singletons cannot split

      // Group members by signature, first-occurrence group order (members
      // are ascending, so group 0 holds mem[0] and keeps the id).
      std::unordered_map<SigKey, uint32_t, SigKeyHash> group_of;
      std::vector<std::vector<VertexId>> groups;
      SigKey key;
      for (VertexId v : mem) {
        key.words.clear();
        key.words.push_back(g.label(v));
        const size_t first = key.words.size();
        const auto [s, e] = out[v];
        for (uint64_t i = s; i < e; ++i) {
          key.words.push_back(block[out.Slot(i)]);
        }
        std::sort(key.words.begin() + first, key.words.end());
        key.words.erase(
            std::unique(key.words.begin() + first, key.words.end()),
            key.words.end());
        key.hash = HashWords(key.words);
        auto [it, inserted] =
            group_of.try_emplace(key, static_cast<uint32_t>(groups.size()));
        if (inserted) groups.emplace_back();
        groups[it->second].push_back(v);
      }
      st.vertices_resigned += mem.size();
      if (groups.size() <= 1) continue;

      mem = std::move(groups.front());
      for (size_t j = 1; j < groups.size(); ++j) {
        const uint32_t fresh = static_cast<uint32_t>(members_of.size());
        for (VertexId v : groups[j]) {
          block[v] = fresh;
          moved.push_back(v);
        }
        members_of.push_back(std::move(groups[j]));
        touched_flag.push_back(0);
      }
    }

    for (VertexId v : moved) {
      const auto [s, e] = in[v];
      for (uint64_t i = s; i < e; ++i) {
        const VertexId u = in.Slot(i);
        if (!dirty_flag[u]) {
          dirty_flag[u] = 1;
          frontier.push_back(u);
        }
      }
    }
  }
  st.split_rounds = rounds;
  resigned.Inc(st.vertices_resigned);

  // Phase 2: the split-stable partition P may still be finer than maximal
  // bisimulation (updates can *merge* blocks). P is stable and
  // label-uniform, so max-bisim(g) is the pullback of max-bisim(g/P):
  // quotient, summarize the (summary-sized) quotient, compose.
  std::vector<uint32_t> p1(n);
  size_t p1_blocks = 0;
  {
    std::vector<uint32_t> dense(members_of.size(),
                                std::numeric_limits<uint32_t>::max());
    for (VertexId v = 0; v < n; ++v) {
      uint32_t& d = dense[block[v]];
      if (d == std::numeric_limits<uint32_t>::max()) {
        d = static_cast<uint32_t>(p1_blocks++);
      }
      p1[v] = d;
    }
  }
  st.quotient_vertices = p1_blocks;

  Graph quotient;
  {
    TRACE_SPAN("update/quotient");
    GraphBuilder qb;
    qb.Reserve(p1_blocks, g.NumEdges());
    std::vector<LabelId> qlabel(p1_blocks, kInvalidLabel);
    for (VertexId v = 0; v < n; ++v) qlabel[p1[v]] = g.label(v);
    for (size_t s = 0; s < p1_blocks; ++s) qb.AddVertex(qlabel[s]);
    for (VertexId u = 0; u < n; ++u) {
      const auto [s, e] = out[u];
      for (uint64_t i = s; i < e; ++i) qb.AddEdge(p1[u], p1[out.Slot(i)]);
    }
    auto built = qb.Build();
    assert(built.ok());
    quotient = std::move(built).value();
  }
  BisimResult merged = ComputeBisimulation(quotient, {.pool = options.pool});

  std::vector<uint32_t> final_block(n);
  for (VertexId v = 0; v < n; ++v) {
    final_block[v] = merged.mapping.SuperOf(p1[v]);
  }
  return Finalize(g, final_block, merged.mapping.NumSupernodes(),
                  rounds + merged.refinement_rounds);
}

}  // namespace bigindex
