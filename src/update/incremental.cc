#include "update/incremental.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigindex {
namespace {

constexpr uint32_t kUnset32 = std::numeric_limits<uint32_t>::max();

// FNV-1a over a word sequence (same scheme as bisim/bisimulation.cc);
// collisions are resolved by full comparison in the group map.
uint64_t HashWords(std::span<const uint32_t> v) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  return h;
}

struct SigKey {
  std::vector<uint32_t> words;
  uint64_t hash;
  bool operator==(const SigKey& o) const {
    return hash == o.hash && words == o.words;
  }
};

struct SigKeyHash {
  size_t operator()(const SigKey& k) const { return k.hash; }
};

// Working partition for SplitToStability. `block`/`members_of` are mutually
// consistent (members ascending within each block); `origin_of`/`fragmented`
// carry initial-block provenance: every working block descends from exactly
// one initial block (splits preserve the origin, splitting never merges),
// and an initial block fragments the first time any block of its line
// splits.
struct RefineState {
  std::vector<uint32_t> block;                    // vertex -> working block
  std::vector<std::vector<VertexId>> members_of;  // block -> members, asc.
  std::vector<uint32_t> origin_of;                // block -> initial block
  std::vector<char> fragmented;                   // initial block -> split?
};

// Worklist signature refinement to fixpoint: per round, collect the blocks
// containing frontier vertices, re-sign every member of those blocks against
// the current partition, and split by (label, sorted-unique out-neighbor
// block set). The group holding the block's first member keeps the block id;
// other groups take fresh ids, and their members' in-neighbors join the next
// frontier (their signatures now see a different block id). At fixpoint the
// partition is the *coarsest stable refinement* of the initial one — splits
// are forced (any stable refinement must make them) and untouched blocks
// stay signature-uniform by a transfer argument. Returns the round count;
// `resigned` accumulates signature recomputations.
size_t SplitToStability(const Graph& g, std::span<const LabelId> labels,
                        RefineState& rs, std::vector<VertexId> frontier,
                        size_t* resigned) {
  auto label_of = [&](VertexId v) {
    return labels.empty() ? g.label(v) : labels[v];
  };
  const CsrView out = g.Out();
  const CsrView in = g.In();
  std::vector<char> dirty_flag(g.NumVertices(), 0);
  for (VertexId v : frontier) dirty_flag[v] = 1;

  std::vector<char> touched_flag(rs.members_of.size(), 0);
  std::vector<uint32_t> touched;
  std::vector<VertexId> moved;
  size_t rounds = 0;
  while (!frontier.empty()) {
    TRACE_SPAN("update/split_round");
    ++rounds;
    touched.clear();
    for (VertexId v : frontier) {
      dirty_flag[v] = 0;
      const uint32_t b = rs.block[v];
      if (b >= touched_flag.size()) touched_flag.resize(b + 1, 0);
      if (!touched_flag[b]) {
        touched_flag[b] = 1;
        touched.push_back(b);
      }
    }
    frontier.clear();
    std::sort(touched.begin(), touched.end());

    moved.clear();
    for (uint32_t b : touched) {
      touched_flag[b] = 0;
      std::vector<VertexId>& mem = rs.members_of[b];
      if (mem.size() <= 1) continue;  // singletons cannot split

      // Group members by signature, first-occurrence group order (members
      // are ascending, so group 0 holds mem[0] and keeps the id).
      std::unordered_map<SigKey, uint32_t, SigKeyHash> group_of;
      std::vector<std::vector<VertexId>> groups;
      SigKey key;
      for (VertexId v : mem) {
        key.words.clear();
        key.words.push_back(label_of(v));
        const size_t first = key.words.size();
        const auto [s, e] = out[v];
        for (uint64_t i = s; i < e; ++i) {
          key.words.push_back(rs.block[out.Slot(i)]);
        }
        std::sort(key.words.begin() + first, key.words.end());
        key.words.erase(
            std::unique(key.words.begin() + first, key.words.end()),
            key.words.end());
        key.hash = HashWords(key.words);
        auto [it, inserted] =
            group_of.try_emplace(key, static_cast<uint32_t>(groups.size()));
        if (inserted) groups.emplace_back();
        groups[it->second].push_back(v);
      }
      if (resigned != nullptr) *resigned += mem.size();
      if (groups.size() <= 1) continue;

      rs.fragmented[rs.origin_of[b]] = 1;
      mem = std::move(groups.front());
      for (size_t j = 1; j < groups.size(); ++j) {
        const uint32_t fresh = static_cast<uint32_t>(rs.members_of.size());
        for (VertexId v : groups[j]) {
          rs.block[v] = fresh;
          moved.push_back(v);
        }
        rs.members_of.push_back(std::move(groups[j]));
        rs.origin_of.push_back(rs.origin_of[b]);
        touched_flag.push_back(0);
      }
    }

    for (VertexId v : moved) {
      const auto [s, e] = in[v];
      for (uint64_t i = s; i < e; ++i) {
        const VertexId u = in.Slot(i);
        if (!dirty_flag[u]) {
          dirty_flag[u] = 1;
          frontier.push_back(u);
        }
      }
    }
  }
  return rounds;
}

// (label, sorted-unique successor-label set) hash — a bisimulation
// invariant: bisimilar nodes have equal successor class sets, classes are
// label-uniform, hence equal successor label sets.
uint64_t OneStepInvariant(const Graph& q, VertexId v,
                          std::vector<uint32_t>& scratch) {
  scratch.clear();
  scratch.push_back(q.label(v));
  const size_t fixed = scratch.size();
  for (VertexId w : q.OutNeighbors(v)) scratch.push_back(q.label(w));
  std::sort(scratch.begin() + fixed, scratch.end());
  scratch.erase(std::unique(scratch.begin() + fixed, scratch.end()),
                scratch.end());
  return HashWords(scratch);
}

}  // namespace

MergeScan DetectMerges(const Graph& q, std::span<const VertexId> changed,
                       double fallback_active_ratio, ExecutorPool* pool) {
  TRACE_SPAN("update/merge_scan");
  const size_t m = q.NumVertices();
  MergeScan scan;

  // Ancestors: backward closure of the changed set. A node outside it has
  // an unchanged forward cone, so (the pre-image graph being reduced) two
  // distinct non-ancestors can never be bisimilar.
  std::vector<char> active(m, 0);
  std::vector<VertexId> stack;
  for (VertexId v : changed) {
    if (v < m && !active[v]) {
      active[v] = 1;
      stack.push_back(v);
    }
  }
  const CsrView in = q.In();
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    const auto [s, e] = in[v];
    for (uint64_t i = s; i < e; ++i) {
      const VertexId u = in.Slot(i);
      if (!active[u]) {
        active[u] = 1;
        stack.push_back(u);
      }
    }
  }

  // Partner filter: a merge class holds at most one non-ancestor, and its
  // members share the one-step invariant — so a non-ancestor is a merge
  // candidate only if some ancestor matches its hash (collisions cost work,
  // never correctness). A label pre-filter skips the invariant hash for the
  // bulk of the graph.
  {
    std::unordered_set<uint64_t> anchor;
    std::vector<char> anchor_label(q.LabelSlots(), 0);
    std::vector<uint32_t> scratch;
    for (VertexId v = 0; v < m; ++v) {
      if (active[v]) {
        anchor.insert(OneStepInvariant(q, v, scratch));
        anchor_label[q.label(v)] = 1;
      }
    }
    if (!anchor.empty()) {
      for (VertexId v = 0; v < m; ++v) {
        if (!active[v] && anchor_label[q.label(v)] &&
            anchor.count(OneStepInvariant(q, v, scratch))) {
          active[v] = 1;
        }
      }
    }
  }
  for (VertexId v = 0; v < m; ++v) scan.active += active[v];

  if (static_cast<double>(scan.active) >
      fallback_active_ratio * static_cast<double>(m)) {
    // The working set covers most of the graph — the localized refinement
    // would approximate a wholesale pass anyway.
    BisimResult merged = ComputeBisimulation(q, {.pool = pool});
    scan.block_of.resize(m);
    for (VertexId v = 0; v < m; ++v) scan.block_of[v] = merged.mapping.SuperOf(v);
    scan.num_classes = merged.mapping.NumSupernodes();
    scan.rounds = merged.refinement_rounds;
    scan.localized = false;
    return scan;
  }

  // Initial partition P0: actives grouped by label, everything else a
  // singleton. The maximal bisimulation refines P0 (every multi-member
  // class lies inside one active label group), so the coarsest stable
  // refinement of P0 — which the split worklist computes — IS the maximal
  // bisimulation.
  RefineState rs;
  rs.block.resize(m);
  std::vector<VertexId> frontier;
  {
    std::unordered_map<LabelId, uint32_t> label_block;
    for (VertexId v = 0; v < m; ++v) {
      if (active[v]) {
        auto [it, inserted] = label_block.try_emplace(
            q.label(v), static_cast<uint32_t>(rs.members_of.size()));
        if (inserted) rs.members_of.emplace_back();
        rs.block[v] = it->second;
        rs.members_of[it->second].push_back(v);
        frontier.push_back(v);
      } else {
        rs.block[v] = static_cast<uint32_t>(rs.members_of.size());
        rs.members_of.push_back({v});
      }
    }
  }
  rs.origin_of.resize(rs.members_of.size());
  for (uint32_t b = 0; b < rs.origin_of.size(); ++b) rs.origin_of[b] = b;
  rs.fragmented.assign(rs.members_of.size(), 0);

  scan.rounds = SplitToStability(q, {}, rs, std::move(frontier), nullptr);
  scan.localized = true;

  scan.block_of.resize(m);
  std::vector<uint32_t> dense(rs.members_of.size(), kUnset32);
  for (VertexId v = 0; v < m; ++v) {
    uint32_t& d = dense[rs.block[v]];
    if (d == kUnset32) d = static_cast<uint32_t>(scan.num_classes++);
    scan.block_of[v] = d;
  }
  return scan;
}

BisimResult MaterializePartition(const Graph& g,
                                 std::span<const LabelId> labels,
                                 std::vector<uint32_t> partition,
                                 size_t id_bound, size_t rounds,
                                 std::vector<uint32_t>* old_to_final) {
  // Renumber in first-occurrence order over the vertex scan — the numbering
  // ComputeBisimulation's final interner round produces — then materialize
  // the summary exactly as bisim/bisimulation.cc does, so serialized results
  // are byte-identical to a from-scratch run.
  const size_t n = g.NumVertices();
  std::vector<uint32_t> dense(id_bound, kUnset32);
  size_t num_blocks = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint32_t& d = dense[partition[v]];
    if (d == kUnset32) d = static_cast<uint32_t>(num_blocks++);
    partition[v] = d;
  }

  BisimResult result;
  result.refinement_rounds = rounds;
  result.mapping = BisimMapping(partition, num_blocks);

  TRACE_SPAN("bisim/materialize");
  GraphBuilder builder;
  builder.Reserve(num_blocks, g.NumEdges());
  {
    std::vector<LabelId> super_label(num_blocks, kInvalidLabel);
    for (VertexId v = 0; v < n; ++v) {
      super_label[partition[v]] = labels.empty() ? g.label(v) : labels[v];
    }
    for (size_t s = 0; s < num_blocks; ++s) builder.AddVertex(super_label[s]);
  }
  const CsrView out = g.Out();
  for (VertexId u = 0; u < n; ++u) {
    const auto [b, e] = out[u];
    for (uint64_t i = b; i < e; ++i) {
      // Duplicate block edges collapse in Build.
      builder.AddEdge(partition[u], partition[out.Slot(i)]);
    }
  }
  auto built = builder.Build();
  assert(built.ok());
  result.summary = std::move(built).value();
  if (old_to_final != nullptr) *old_to_final = std::move(dense);
  return result;
}

StatusOr<BisimResult> IncrementalBisimulation(
    const Graph& g, std::span<const VertexId> seed_partition,
    std::span<const VertexId> dirty, const IncrementalBisimOptions& options,
    IncrementalBisimStats* stats, IncrementalBisimTrace* trace) {
  TRACE_SPAN("update/incremental_bisim");
  static Counter& runs = MetricsRegistry::Global().GetCounter(
      "bigindex_update_incremental_runs_total",
      "Incremental bisimulation invocations");
  static Counter& fallbacks = MetricsRegistry::Global().GetCounter(
      "bigindex_update_incremental_fallback_total",
      "Incremental invocations that fell back to wholesale refinement");
  static Counter& resigned = MetricsRegistry::Global().GetCounter(
      "bigindex_update_resigned_vertices_total",
      "Vertex signatures recomputed by the localized split pass");
  runs.Inc();

  const size_t n = g.NumVertices();
  if (seed_partition.size() != n) {
    return Status::InvalidArgument("seed partition size != vertex count");
  }
  if (!options.labels.empty() && options.labels.size() != n) {
    return Status::InvalidArgument("label override size != vertex count");
  }
  for (VertexId v : dirty) {
    if (v >= n) return Status::InvalidArgument("dirty vertex out of range");
  }
  IncrementalBisimStats local_stats;
  IncrementalBisimStats& st = stats != nullptr ? *stats : local_stats;
  st = IncrementalBisimStats{};
  st.dirty_seed = dirty.size();
  if (trace != nullptr) *trace = IncrementalBisimTrace{};

  const std::span<const LabelId> labels = options.labels;

  if (static_cast<double>(dirty.size()) >
      options.fallback_dirty_ratio * static_cast<double>(n)) {
    st.fell_back = true;
    fallbacks.Inc();
    if (labels.empty()) return ComputeBisimulation(g, {.pool = options.pool});
    // The wholesale pass needs a real graph carrying the override labels;
    // building it through GraphBuilder matches Generalize() byte for byte.
    GraphBuilder rb;
    rb.Reserve(n, g.NumEdges());
    for (VertexId v = 0; v < n; ++v) rb.AddVertex(labels[v]);
    const CsrView gout = g.Out();
    for (VertexId u = 0; u < n; ++u) {
      const auto [s, e] = gout[u];
      for (uint64_t i = s; i < e; ++i) rb.AddEdge(u, gout.Slot(i));
    }
    auto relabeled = rb.Build();
    assert(relabeled.ok());
    return ComputeBisimulation(*relabeled, {.pool = options.pool});
  }

  // Densify the seed into block ids 0..B-1 (first-occurrence order; the
  // final renumber makes the choice here irrelevant to output) and build
  // block -> members lists, members ascending. When the caller bounds the
  // seed-id space (seed_id_bound) a flat table replaces the hash map.
  RefineState rs;
  rs.block.resize(n);
  std::vector<VertexId> seed_value_of;
  if (options.seed_id_bound > 0) {
    std::vector<uint32_t> dense(options.seed_id_bound, kUnset32);
    for (VertexId v = 0; v < n; ++v) {
      const VertexId s = seed_partition[v];
      if (s >= options.seed_id_bound) {
        return Status::InvalidArgument("seed id >= seed_id_bound");
      }
      uint32_t& d = dense[s];
      if (d == kUnset32) {
        d = static_cast<uint32_t>(rs.members_of.size());
        rs.members_of.emplace_back();
        seed_value_of.push_back(s);
      }
      rs.block[v] = d;
      rs.members_of[d].push_back(v);
    }
  } else {
    std::unordered_map<VertexId, uint32_t> dense;
    dense.reserve(n / 4 + 16);
    for (VertexId v = 0; v < n; ++v) {
      auto [it, inserted] = dense.try_emplace(
          seed_partition[v], static_cast<uint32_t>(rs.members_of.size()));
      if (inserted) {
        rs.members_of.emplace_back();
        seed_value_of.push_back(seed_partition[v]);
      }
      rs.block[v] = it->second;
      rs.members_of[it->second].push_back(v);
    }
  }
  const size_t num_seeds = rs.members_of.size();
  rs.origin_of.resize(num_seeds);
  for (uint32_t b = 0; b < num_seeds; ++b) rs.origin_of[b] = b;
  rs.fragmented.assign(num_seeds, 0);

  // Phase 1 (split): worklist refinement seeded from the dirty set.
  std::vector<VertexId> frontier;
  frontier.reserve(dirty.size());
  {
    std::vector<char> seen(n, 0);
    for (VertexId v : dirty) {
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push_back(v);
      }
    }
  }
  const size_t rounds =
      SplitToStability(g, labels, rs, std::move(frontier),
                       &st.vertices_resigned);
  st.split_rounds = rounds;
  resigned.Inc(st.vertices_resigned);

  // Phase 2 (merge): the split-stable partition P may still be finer than
  // maximal bisimulation (updates can *merge* blocks). P is stable and
  // label-uniform, so max-bisim(g) is the pullback of max-bisim(g/P):
  // quotient, summarize the (summary-sized) quotient, compose.
  std::vector<uint32_t> p1(n);
  std::vector<uint32_t> p1_origin;
  std::vector<uint32_t> p1_work;  // p1 block -> working block (members list)
  size_t p1_blocks = 0;
  {
    std::vector<uint32_t> dense(rs.members_of.size(), kUnset32);
    for (VertexId v = 0; v < n; ++v) {
      uint32_t& d = dense[rs.block[v]];
      if (d == kUnset32) {
        d = static_cast<uint32_t>(p1_blocks++);
        p1_origin.push_back(rs.origin_of[rs.block[v]]);
        p1_work.push_back(rs.block[v]);
      }
      p1[v] = d;
    }
  }
  st.quotient_vertices = p1_blocks;

  auto label_of = [&](VertexId v) {
    return labels.empty() ? g.label(v) : labels[v];
  };
  const CsrView out = g.Out();
  Graph quotient;
  {
    TRACE_SPAN("update/quotient");
    GraphBuilder qb;
    qb.Reserve(p1_blocks, g.NumEdges());
    std::vector<LabelId> qlabel(p1_blocks, kInvalidLabel);
    for (VertexId v = 0; v < n; ++v) qlabel[p1[v]] = label_of(v);
    for (size_t s = 0; s < p1_blocks; ++s) qb.AddVertex(qlabel[s]);
    // Pre-dedupe block edges with a stamp array so Build's sort works on
    // ~|E_q| entries instead of |E| — Build sorts and uniques regardless, so
    // the result is byte-identical to feeding every vertex-level edge.
    std::vector<uint32_t> stamp(p1_blocks, kUnset32);
    for (uint32_t b = 0; b < p1_blocks; ++b) {
      for (VertexId u : rs.members_of[p1_work[b]]) {
        const auto [s, e] = out[u];
        for (uint64_t i = s; i < e; ++i) {
          const uint32_t t = p1[out.Slot(i)];
          if (stamp[t] != b) {
            stamp[t] = b;
            qb.AddEdge(b, t);
          }
        }
      }
    }
    auto built = qb.Build();
    assert(built.ok());
    quotient = std::move(built).value();
  }

  if (options.seed_maximal) {
    // The seed came from a maximal bisimulation, so the old quotient was
    // *reduced* (no two blocks bisimilar) and merge classes are confined to
    // the backward closure of the changed quotient nodes: blocks holding a
    // dirty vertex, plus every block descending from a fragmented seed.
    std::vector<VertexId> qchanged;
    {
      const std::span<const VertexId> core =
          options.merge_changed.empty() ? dirty : options.merge_changed;
      std::vector<char> qflag(p1_blocks, 0);
      for (VertexId v : core) {
        if (v < n && !qflag[p1[v]]) {
          qflag[p1[v]] = 1;
          qchanged.push_back(p1[v]);
        }
      }
      for (uint32_t b = 0; b < p1_blocks; ++b) {
        if (rs.fragmented[p1_origin[b]] && !qflag[b]) {
          qflag[b] = 1;
          qchanged.push_back(b);
        }
      }
    }
    MergeScan scan = DetectMerges(quotient, qchanged,
                                  kMergeScanFallbackRatio, options.pool);
    st.merge_active = scan.active;
    st.merge_localized = scan.localized;

    if (scan.num_classes == p1_blocks) {
      // Discrete: P1 is the maximal bisimulation. `quotient` was built by
      // the exact builder-call sequence MaterializePartition would issue
      // for this partition (p1 is already in first-occurrence order), so it
      // IS the byte-identical summary — no second full-graph pass.
      BisimResult result;
      result.refinement_rounds = rounds + scan.rounds;
      result.mapping = BisimMapping(p1, p1_blocks);
      result.summary = std::move(quotient);
      if (trace != nullptr) {
        trace->seed_of_final.assign(p1_blocks, kInvalidVertex);
        trace->intact.assign(p1_blocks, 0);
        for (uint32_t b = 0; b < p1_blocks; ++b) {
          const uint32_t origin = p1_origin[b];
          trace->seed_of_final[b] = seed_value_of[origin];
          trace->intact[b] = !rs.fragmented[origin];
        }
      }
      return result;
    }

    // Blocks merged (rare): compose and materialize as usual.
    std::vector<uint32_t> final_block(n);
    for (VertexId v = 0; v < n; ++v) final_block[v] = scan.block_of[p1[v]];
    std::vector<uint32_t> merged_to_final;
    BisimResult result = MaterializePartition(
        g, labels, std::move(final_block), scan.num_classes,
        rounds + scan.rounds, trace != nullptr ? &merged_to_final : nullptr);

    if (trace != nullptr) {
      std::vector<std::vector<uint32_t>> cls(scan.num_classes);
      for (uint32_t b = 0; b < p1_blocks; ++b) {
        cls[scan.block_of[b]].push_back(b);
      }
      const size_t num_final = result.mapping.NumSupernodes();
      trace->seed_of_final.assign(num_final, kInvalidVertex);
      trace->intact.assign(num_final, 0);
      for (uint32_t f = 0; f < scan.num_classes; ++f) {
        const std::vector<uint32_t>& p1s = cls[f];
        const uint32_t origin = p1_origin[p1s[0]];
        bool single_origin = true;
        for (size_t j = 1; j < p1s.size() && single_origin; ++j) {
          single_origin = p1_origin[p1s[j]] == origin;
        }
        if (!single_origin) continue;  // mixed: stays kInvalidVertex
        const uint32_t t = merged_to_final[f];
        trace->seed_of_final[t] = seed_value_of[origin];
        // Intact = the seed never split and nothing merged in: the final
        // block's member set is exactly the seed block's member set. Two
        // fragments of one seed re-merging in phase 2 is conservatively
        // non-intact (members may still differ from the seed's).
        trace->intact[t] = p1s.size() == 1 && !rs.fragmented[origin];
      }
    }
    return result;
  }

  // General seed (no reduced-predecessor promise): merge via a full
  // summarization of the quotient.
  BisimResult merged = ComputeBisimulation(quotient, {.pool = options.pool});

  std::vector<uint32_t> final_block(n);
  for (VertexId v = 0; v < n; ++v) {
    final_block[v] = merged.mapping.SuperOf(p1[v]);
  }
  std::vector<uint32_t> merged_to_final;
  BisimResult result = MaterializePartition(
      g, labels, std::move(final_block), merged.mapping.NumSupernodes(),
      rounds + merged.refinement_rounds,
      trace != nullptr ? &merged_to_final : nullptr);

  if (trace != nullptr) {
    const size_t num_final = result.mapping.NumSupernodes();
    trace->seed_of_final.assign(num_final, kInvalidVertex);
    trace->intact.assign(num_final, 0);
    for (VertexId f = 0; f < merged.mapping.NumSupernodes(); ++f) {
      const auto p1s = merged.mapping.Members(f);  // phase-1 block ids
      const uint32_t origin = p1_origin[p1s[0]];
      bool single_origin = true;
      for (size_t j = 1; j < p1s.size() && single_origin; ++j) {
        single_origin = p1_origin[p1s[j]] == origin;
      }
      if (!single_origin) continue;  // mixed: stays kInvalidVertex
      const uint32_t t = merged_to_final[f];
      trace->seed_of_final[t] = seed_value_of[origin];
      trace->intact[t] = p1s.size() == 1 && !rs.fragmented[origin];
    }
  }
  return result;
}

}  // namespace bigindex
