// LiveUpdater — the writer side of live index maintenance.
//
// One updater owns the write path for one served index: it serializes update
// batches (single writer mutex), runs delta-propagating maintenance
// (update/maintain.h) against the pinned current version, builds a fresh
// QueryEngine over the successor, publishes it in the IndexVersionStore, and
// finally swaps it into the serving layer through the embedder-supplied swap
// callback (SearchService::SwapEngine in practice).
//
// Cache-race-freedom contract (satellite of the RCU design; tested in
// tests/server_update_test.cpp):
//
//   writer: Publish(successor)  →  swap_ = { publish engine, BumpEpoch }
//   reader: drain batch (capturing the epoch each query was admitted under)
//           →  pin engine snapshot  →  evaluate  →  cache under captured key
//
// Because the engine is published BEFORE the epoch bump, and readers pin the
// engine AFTER capturing their cache key, a cache entry keyed with epoch E
// was always computed on the engine of epoch E **or newer** — a post-swap
// query can never be answered from a pre-swap cached result.
//
// Layering: this header depends on server/query_service.h only for the
// UpdateOutcome wire struct; the serving layer itself depends on the updater
// solely through std::function (SearchService::set_updater), so there is no
// include cycle.

#ifndef BIGINDEX_UPDATE_LIVE_UPDATER_H_
#define BIGINDEX_UPDATE_LIVE_UPDATER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <span>

#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "engine/query_engine.h"
#include "server/query_service.h"
#include "update/maintain.h"
#include "update/version_store.h"
#include "util/status.h"

namespace bigindex {

struct LiveUpdaterOptions {
  /// Knobs for the incremental maintenance pass (fallback ratio etc.).
  MaintainOptions maintain;

  /// Options for each successor QueryEngine (thread count, default
  /// algorithm registration).
  QueryEngineOptions engine;

  /// Optional hook run on every freshly built engine before it is published
  /// (e.g. Register() algorithms with non-default options so successors
  /// serve the same algorithm set as the bootstrap engine).
  std::function<void(QueryEngine&)> configure_engine;
};

class LiveUpdater {
 public:
  /// Called with the successor engine right after Publish; must install it
  /// in the serving layer and return the new serving epoch
  /// (SearchService::SwapEngine has exactly this shape).
  using SwapFn = std::function<uint64_t(std::shared_ptr<const QueryEngine>)>;

  /// Seeds the store with generation 1. `initial_engine` may be null, in
  /// which case an engine is built here from `options.engine`.
  LiveUpdater(std::shared_ptr<const BigIndex> initial,
              std::shared_ptr<const QueryEngine> initial_engine,
              LiveUpdaterOptions options = {});

  /// Installs the serving-layer swap hook. Not thread-safe against
  /// concurrent Apply — wire before serving writes.
  void set_swap(SwapFn swap) { swap_ = std::move(swap); }

  /// Applies one batch: maintain → build engine → Publish → swap. Returns
  /// the outcome (applied/skipped accounting per UpdateOutcome's contract).
  /// On a no-net-effect batch nothing is published or swapped and
  /// outcome.epoch is 0 — the serving layer substitutes its current epoch.
  /// Thread-safe: concurrent callers serialize on the writer mutex.
  StatusOr<UpdateOutcome> Apply(std::span<const GraphUpdate> updates,
                                MaintainReport* report = nullptr);

  /// Re-publishes the previous generation and swaps it into serving.
  /// Returns the new serving epoch (or the new sequence when no swap hook
  /// is installed). FailedPrecondition when nothing is retained.
  StatusOr<uint64_t> Rollback();

  const IndexVersionStore& versions() const { return versions_; }

  /// Cross-batch maintenance scratch (diagnostics: patched-layer and
  /// table-reuse counters). Snapshot only — may lag a concurrent Apply.
  const MaintenanceState& maintenance_state() const { return maintain_state_; }

 private:
  std::shared_ptr<const QueryEngine> BuildEngine(
      std::shared_ptr<const BigIndex> index) const;

  std::mutex write_mutex_;
  IndexVersionStore versions_;
  LiveUpdaterOptions options_;
  SwapFn swap_;
  /// Carried across Apply calls (guarded by write_mutex_); safe across
  /// Rollback — every cached entry is revalidated against the index it is
  /// used with (see MaintenanceState).
  MaintenanceState maintain_state_;
};

}  // namespace bigindex

#endif  // BIGINDEX_UPDATE_LIVE_UPDATER_H_
