// Delta-propagating incremental bisimulation (Sec. 3.2, "Maintenance of
// BiG-index"; cf. Deng et al. TKDE'13 and Luo et al.'s localized
// maintenance, arXiv 1210.0748).
//
// Instead of re-refining a whole layer after an edge batch, the caller
// supplies the previous stable partition as a *seed* plus the set of
// vertices whose local signature may have drifted from what that stability
// proved. Refinement then runs in two exact phases:
//
//   Phase 1 (split): a worklist pass that re-signs only blocks containing
//   dirty vertices, splits them by (label, out-neighbor block set), and
//   marks in-neighbors of moved vertices dirty for the next round. At
//   fixpoint this yields the *coarsest stable refinement of the seed* —
//   splits are forced (any stable refinement must make them) and untouched
//   blocks stay signature-uniform by a transfer argument (none of their
//   members' out-neighbors ever changed block).
//
//   Phase 2 (merge): removals — and additions — can make previously
//   distinct blocks bisimilar, which splitting alone can never undo. Since
//   the phase-1 partition P is stable and label-uniform, max-bisim(G) is
//   exactly the pullback of max-bisim(G/P): we materialize the quotient
//   graph (summary-sized, so this is cheap) and run the ordinary
//   ComputeBisimulation on it.
//
// The composed partition is renumbered in first-occurrence order over the
// vertex scan and the summary is materialized exactly as
// bisim/bisimulation.cc does, so the returned BisimResult is byte-identical
// (summary + mapping) to a from-scratch ComputeBisimulation of the updated
// graph — the differential harness in tests/update_differential_test.cpp
// holds this to serialized-image equality over random update streams.
//
// When the dirty set exceeds IncrementalBisimOptions::fallback_dirty_ratio
// of the graph, the localized pass would touch most blocks anyway and the
// function falls back to wholesale ComputeBisimulation (still exact).

#ifndef BIGINDEX_UPDATE_INCREMENTAL_H_
#define BIGINDEX_UPDATE_INCREMENTAL_H_

#include <span>
#include <vector>

#include "bisim/bisimulation.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace bigindex {

class ExecutorPool;

/// Options for IncrementalBisimulation.
struct IncrementalBisimOptions {
  /// When |dirty| > fallback_dirty_ratio * |V|, skip the localized pass and
  /// recompute wholesale. 0 forces wholesale; >= 1 never falls back.
  double fallback_dirty_ratio = 0.25;

  /// Worker pool forwarded to wholesale/quotient ComputeBisimulation calls
  /// (the localized split pass itself is serial — its work set is small by
  /// construction). Output is byte-identical for every pool size.
  ExecutorPool* pool = nullptr;
};

/// Diagnostics from one IncrementalBisimulation call.
struct IncrementalBisimStats {
  bool fell_back = false;       // used wholesale ComputeBisimulation
  size_t dirty_seed = 0;        // dirty vertices handed in by the caller
  size_t split_rounds = 0;      // phase-1 worklist rounds
  size_t vertices_resigned = 0; // signature recomputations in phase 1
  size_t quotient_vertices = 0; // |P1| fed to the phase-2 merge
};

/// Computes the maximal (successor) bisimulation of `g`, seeded with a
/// previous partition.
///
/// `seed_partition` has one entry per vertex of `g`; block ids may be
/// arbitrary (they are densified internally). `dirty` lists vertices whose
/// signature the seed's stability no longer vouches for.
///
/// Precondition (the caller's obligation; maintain.cc derives it from the
/// layer correspondence): for any two vertices u, v in the same seed block
/// with NEITHER listed in `dirty`, u and v carry the same label and the
/// same set of seed blocks over their out-neighbors. Dirty closure under
/// refinement is handled internally. Violating the precondition can yield a
/// partition coarser than maximal bisimulation; it is not checked at
/// runtime — the differential tests guard it.
///
/// Returns a BisimResult byte-identical to ComputeBisimulation(g) with
/// default options (refinement_rounds is diagnostics-only and differs).
StatusOr<BisimResult> IncrementalBisimulation(
    const Graph& g, std::span<const VertexId> seed_partition,
    std::span<const VertexId> dirty,
    const IncrementalBisimOptions& options = {},
    IncrementalBisimStats* stats = nullptr);

}  // namespace bigindex

#endif  // BIGINDEX_UPDATE_INCREMENTAL_H_
