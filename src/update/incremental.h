// Delta-propagating incremental bisimulation (Sec. 3.2, "Maintenance of
// BiG-index"; cf. Deng et al. TKDE'13 and Luo et al.'s localized
// maintenance, arXiv 1210.0748).
//
// Instead of re-refining a whole layer after an edge batch, the caller
// supplies the previous stable partition as a *seed* plus the set of
// vertices whose local signature may have drifted from what that stability
// proved. Refinement then runs in two exact phases:
//
//   Phase 1 (split): a worklist pass that re-signs only blocks containing
//   dirty vertices, splits them by (label, out-neighbor block set), and
//   marks in-neighbors of moved vertices dirty for the next round. At
//   fixpoint this yields the *coarsest stable refinement of the seed* —
//   splits are forced (any stable refinement must make them) and untouched
//   blocks stay signature-uniform by a transfer argument (none of their
//   members' out-neighbors ever changed block).
//
//   Phase 2 (merge): removals — and additions — can make previously
//   distinct blocks bisimilar, which splitting alone can never undo. Since
//   the phase-1 partition P is stable and label-uniform, max-bisim(G) is
//   exactly the pullback of max-bisim(G/P): we materialize the quotient
//   graph (summary-sized) and summarize it. Under the seed_maximal promise
//   the old quotient was *reduced*, so the merge step runs as a localized
//   scan over the backward closure of the changed blocks (DetectMerges)
//   and — in the common no-merge case — the quotient graph is returned as
//   the summary directly, skipping the final full-graph materialization.
//
// The composed partition is renumbered in first-occurrence order over the
// vertex scan and the summary is materialized exactly as
// bisim/bisimulation.cc does, so the returned BisimResult is byte-identical
// (summary + mapping) to a from-scratch ComputeBisimulation of the updated
// graph — the differential harness in tests/update_differential_test.cpp
// holds this to serialized-image equality over random update streams.
//
// When the dirty set exceeds IncrementalBisimOptions::fallback_dirty_ratio
// of the graph, the localized pass would touch most blocks anyway and the
// function falls back to wholesale ComputeBisimulation (still exact).

#ifndef BIGINDEX_UPDATE_INCREMENTAL_H_
#define BIGINDEX_UPDATE_INCREMENTAL_H_

#include <span>
#include <vector>

#include "bisim/bisimulation.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace bigindex {

class ExecutorPool;

/// Options for IncrementalBisimulation.
struct IncrementalBisimOptions {
  /// When |dirty| > fallback_dirty_ratio * |V|, skip the localized pass and
  /// recompute wholesale. 0 forces wholesale; >= 1 never falls back.
  double fallback_dirty_ratio = 0.5;

  /// Worker pool forwarded to wholesale/quotient ComputeBisimulation calls
  /// (the localized split pass itself is serial — its work set is small by
  /// construction). Output is byte-identical for every pool size.
  ExecutorPool* pool = nullptr;

  /// Optional per-vertex label override (one entry per vertex of `g`). When
  /// non-empty, signatures, the quotient, and the materialized summary use
  /// labels[v] instead of g.label(v) — this lets maintenance refine against
  /// Gen(G, C) without ever materializing the generalized graph (the output
  /// is byte-identical to running on Generalize(g, config)).
  std::span<const LabelId> labels;

  /// Exclusive upper bound on seed_partition values, when the caller knows
  /// one (maintenance does: old supernode ids plus fresh orphan ids). Lets
  /// seed densification use a flat table instead of a hash map. 0 = unknown.
  size_t seed_id_bound = 0;

  /// Caller's promise that (a) the seed partition restricted to non-dirty
  /// vertices is transported from the MAXIMAL bisimulation of a predecessor
  /// graph — whose quotient is therefore reduced: no two of its blocks are
  /// bisimilar — and (b) `dirty` covers every vertex whose seed block's
  /// quotient-level behavior (label, membership, or block-level out-edges)
  /// differs from that predecessor's. Enables the localized merge scan
  /// (DetectMerges) in place of a full quotient re-summarization, and lets
  /// the no-merge case return the quotient graph as the summary without a
  /// second full-graph pass. Output is byte-identical either way; a false
  /// promise can yield a partition coarser than maximal bisimulation.
  bool seed_maximal = false;

  /// Optional tighter changed set for the merge scan (seed_maximal only):
  /// vertices whose own adjacency, label, or block membership genuinely
  /// changed — as opposed to `dirty`, which also carries renaming-only
  /// vertices (out-neighbors moved to renumbered blocks) that phase 1 must
  /// re-sign but whose quotient-level behavior is unchanged up to the
  /// correspondence. Renaming-only blocks always have a quotient edge into
  /// a changed block, so the scan's backward closure recovers them without
  /// seeding them. Empty = use `dirty`.
  std::span<const VertexId> merge_changed;
};

/// Provenance of each final block relative to the seed partition, filled on
/// the localized (non-fallback) path. Lets the caller derive the next
/// layer's vertex correspondence in O(#blocks) instead of re-matching member
/// sets with a whole-graph scan.
struct IncrementalBisimTrace {
  /// final block id -> the seed id (the caller's original seed_partition
  /// value) every member descends from; kInvalidVertex when members of
  /// different seed blocks merged.
  std::vector<VertexId> seed_of_final;

  /// final block id -> true iff its member set is exactly its seed block's
  /// member set: the seed block never split (phase 1) and nothing merged
  /// into it (phase 2). Intact blocks inherit the seed block's identity.
  std::vector<char> intact;
};

/// Renumbers `partition` (one entry per vertex of `g`, arbitrary ids
/// < id_bound) in first-occurrence order over the vertex scan and
/// materializes the quotient summary exactly as bisim/bisimulation.cc does,
/// so results are byte-identical to ComputeBisimulation when `partition` is
/// the maximal bisimulation. `labels` optionally overrides g's labels (see
/// IncrementalBisimOptions::labels). `old_to_final`, when non-null, receives
/// the id_bound-sized renumbering table (untouched ids map to UINT32_MAX).
/// `rounds` is copied into the result's diagnostics field.
BisimResult MaterializePartition(const Graph& g, std::span<const LabelId> labels,
                                 std::vector<uint32_t> partition,
                                 size_t id_bound, size_t rounds,
                                 std::vector<uint32_t>* old_to_final = nullptr);

/// Diagnostics from one IncrementalBisimulation call.
struct IncrementalBisimStats {
  bool fell_back = false;       // used wholesale ComputeBisimulation
  size_t dirty_seed = 0;        // dirty vertices handed in by the caller
  size_t split_rounds = 0;      // phase-1 worklist rounds
  size_t vertices_resigned = 0; // signature recomputations in phase 1
  size_t quotient_vertices = 0; // |P1| fed to the phase-2 merge
  size_t merge_active = 0;      // merge-scan working set (seed_maximal only)
  bool merge_localized = false; // merge scan stayed delta-local
};

/// Result of DetectMerges: the maximal bisimulation of the scanned graph as
/// a dense partition over its nodes.
struct MergeScan {
  std::vector<uint32_t> block_of;  // node -> merge class (dense ids)
  size_t num_classes = 0;          // == NumVertices() iff nothing merged
  size_t active = 0;               // refinement working-set size
  size_t rounds = 0;               // refinement rounds (diagnostics)
  bool localized = false;          // false = fell back to wholesale CB
};

/// Default fallback threshold for DetectMerges. The merge scan runs on the
/// summary-sized quotient and its localized split pass is linear in the
/// active region, so it stays cheaper than wholesale re-summarization until
/// the active set covers most of the quotient — a far higher bar than the
/// vertex-level fallback_dirty_ratio, which guards O(V+E) passes.
inline constexpr double kMergeScanFallbackRatio = 0.75;

/// Maximal bisimulation of `q`, computed delta-locally. Precondition: `q` is
/// a perturbation of a REDUCED graph (no two nodes bisimilar — every
/// BiG-index summary qualifies, being the quotient of a maximal
/// bisimulation) such that every node whose label, out-edge set, or
/// underlying membership differs from its pre-image is listed in `changed`.
///
/// Soundness sketch: a node that cannot reach `changed` has an unchanged
/// forward cone, so two distinct such nodes were distinct in the reduced
/// pre-image and stay non-bisimilar. Hence every merge class is confined to
/// the backward closure of `changed` plus at most one outside partner per
/// class — and partners must match an in-closure node's (label,
/// successor-label set) invariant. Grouping that active set by label and
/// splitting to stability (singletons elsewhere) therefore computes exactly
/// the maximal bisimulation, touching only the perturbed region. Falls back
/// to wholesale ComputeBisimulation when the active set exceeds
/// `fallback_active_ratio` of the graph (output identical either way).
MergeScan DetectMerges(const Graph& q, std::span<const VertexId> changed,
                       double fallback_active_ratio, ExecutorPool* pool);

/// Computes the maximal (successor) bisimulation of `g`, seeded with a
/// previous partition.
///
/// `seed_partition` has one entry per vertex of `g`; block ids may be
/// arbitrary (they are densified internally). `dirty` lists vertices whose
/// signature the seed's stability no longer vouches for.
///
/// Precondition (the caller's obligation; maintain.cc derives it from the
/// layer correspondence): for any two vertices u, v in the same seed block
/// with NEITHER listed in `dirty`, u and v carry the same label and the
/// same set of seed blocks over their out-neighbors. Dirty closure under
/// refinement is handled internally. Violating the precondition can yield a
/// partition coarser than maximal bisimulation; it is not checked at
/// runtime — the differential tests guard it.
///
/// Returns a BisimResult byte-identical to ComputeBisimulation(g) with
/// default options (refinement_rounds is diagnostics-only and differs).
///
/// `trace`, when non-null, is filled with per-final-block seed provenance on
/// the localized path and left empty on the wholesale fallback (check
/// stats->fell_back).
StatusOr<BisimResult> IncrementalBisimulation(
    const Graph& g, std::span<const VertexId> seed_partition,
    std::span<const VertexId> dirty,
    const IncrementalBisimOptions& options = {},
    IncrementalBisimStats* stats = nullptr,
    IncrementalBisimTrace* trace = nullptr);

}  // namespace bigindex

#endif  // BIGINDEX_UPDATE_INCREMENTAL_H_
