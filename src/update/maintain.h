// Whole-index incremental maintenance: applies a GraphUpdate batch to a
// BigIndex and produces the successor index *as if rebuilt from scratch*,
// propagating the update delta up the layer hierarchy only while block
// signatures actually change (Sec. 3.2; ROADMAP open item 4).
//
// The loop mirrors BigIndex::Build layer by layer — recompute the
// configuration, Generalize, summarize, apply Build's exact stop test — so
// the result is byte-identical to BigIndex::Build on the updated base graph
// even when the layer count drifts. Summarization per layer is:
//
//   * incremental (IncrementalBisimulation) when the recomputed
//     configuration equals the stored one and a supernode correspondence
//     from the old layer below survives: the old partition transports into
//     a seed, and only vertices whose label or out-neighborhood (through
//     the correspondence) drifted are marked dirty;
//   * a verbatim copy of the old layers when the correspondence below is
//     the identity and the layer graphs are identical — Build is
//     deterministic, so everything above is provably unchanged;
//   * wholesale ComputeBisimulation otherwise (config drift, new layers
//     beyond the old stack, or dirty frontier past the fallback threshold —
//     the latter handled inside IncrementalBisimulation).
//
// Greedy-config indexes (use_greedy_config) fall back to a full
// BigIndex::Build: Algorithm 1's cost model samples the graph, so layer
// configs are not stable under updates and nothing can be reused soundly.
//
// The input index is not modified; the caller owns publication (see
// update/version_store.h and update/live_updater.h for the RCU serving
// path).

#ifndef BIGINDEX_UPDATE_MAINTAIN_H_
#define BIGINDEX_UPDATE_MAINTAIN_H_

#include <cstddef>
#include <span>
#include <vector>

#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "update/incremental.h"
#include "util/status.h"

namespace bigindex {

/// Options for MaintainIndex.
struct MaintainOptions {
  /// Dirty-frontier ratio above which a layer is re-summarized wholesale
  /// (forwarded to IncrementalBisimOptions::fallback_dirty_ratio).
  double fallback_dirty_ratio = 0.25;

  /// Force wholesale re-summarization of every layer (testing/bench knob;
  /// output is identical either way).
  bool force_wholesale = false;
};

/// How one layer of the successor index was produced.
enum class LayerMaintenance {
  kIncremental,  // seeded localized refinement
  kWholesale,    // full ComputeBisimulation of the generalized layer
  kCopied,       // old layer reused verbatim (provably unchanged)
};

/// Per-layer maintenance diagnostics.
struct MaintainLayerReport {
  LayerMaintenance mode = LayerMaintenance::kWholesale;
  IncrementalBisimStats stats;  // meaningful for kIncremental
};

/// Diagnostics from one MaintainIndex call.
struct MaintainReport {
  /// Net effect of the batch against the base graph (see NormalizeUpdates).
  UpdateDelta delta;

  /// True when the index was rebuilt via BigIndex::Build (greedy-config
  /// indexes); `layers` is empty in that case.
  bool full_rebuild = false;

  std::vector<MaintainLayerReport> layers;

  /// Layers not reused verbatim (kIncremental + kWholesale + full rebuild).
  size_t LayersRebuilt() const;
};

/// Applies `updates` to `index`'s base graph and returns the successor
/// index, equal — summary graphs, mappings, configs, serialized bytes — to
/// BigIndex::Build(updated base, ontology, index.options()). `index` is
/// unchanged. A batch with no net effect returns a (shallow) copy of
/// `index` and an empty report delta.
StatusOr<BigIndex> MaintainIndex(const BigIndex& index,
                                 std::span<const GraphUpdate> updates,
                                 const MaintainOptions& options = {},
                                 MaintainReport* report = nullptr);

}  // namespace bigindex

#endif  // BIGINDEX_UPDATE_MAINTAIN_H_
