// Whole-index incremental maintenance: applies a GraphUpdate batch to a
// BigIndex and produces the successor index *as if rebuilt from scratch*,
// propagating the update delta up the layer hierarchy only while block
// signatures actually change (Sec. 3.2; ROADMAP open item 4).
//
// The loop mirrors BigIndex::Build layer by layer — configuration,
// generalization, summarization, Build's exact stop test — so the result is
// byte-identical to BigIndex::Build on the updated base graph even when the
// layer count drifts. Unlike Build, every per-layer step is delta-localized
// when the batch allows it (docs/MAINTENANCE.md has the full cost model):
//
//   * configuration: FullOneStepConfiguration is a pure function of the
//     distinct-label set, and edge-only updates cannot change labels, so the
//     stored (already validated) layer config is reused whenever the
//     distinct-label sets match (SameFullConfiguration) — no per-layer
//     ontology walk;
//   * generalization: the generalized layer graph is never materialized on
//     the localized paths — refinement runs against the structural graph
//     plus a label-override table (IncrementalBisimOptions::labels), built
//     from the config in O(#labels);
//   * dirtiness: seeded from the delta's endpoints only (the sources of net
//     added/removed edges, then the provenance-tracked changed set per
//     layer), not from an O(V+E) drift scan; the scan survives solely as a
//     fallback after a wholesale layer, where no provenance exists;
//   * summarization, strongest case ("patched", LayerMaintenance::kPatched):
//     when the partition provably survives the delta (no-split probe over
//     the dirty blocks + discrete merge check), the summary is patched
//     directly from the projected block-level delta (ProjectDeltaToSummary +
//     ApplyDelta) and the old mapping is reused verbatim — per-layer cost is
//     O(|delta| * deg + |summary|), independent of the layer graph size;
//   * summarization, general case: seeded IncrementalBisimulation re-splits
//     only touched blocks; its seed-provenance trace yields the next
//     layer's vertex correspondence in O(#blocks) instead of the old
//     O(V + members) member-set rematch;
//   * verbatim copy of the old tail when the correspondence below is the
//     identity and the propagated delta is empty — Build is deterministic,
//     so everything above is provably unchanged;
//   * wholesale ComputeBisimulation otherwise (config drift, new layers
//     beyond the old stack, or a dirty frontier past fallback_dirty_ratio).
//
// Correspondence persistence across batches: the successor preserves vertex
// numbering on every intact block (first-occurrence renumbering over an
// unchanged membership is the identity), so the base-level correspondence
// between consecutive generations is the identity *by construction* — batch
// N+1 starts exactly where batch N left off with no whole-graph rematch.
// MaintenanceState carries the cheap derived artifacts (per-layer
// generalization tables) across batches on the same lineage.
//
// Greedy-config indexes (use_greedy_config) fall back to a full
// BigIndex::Build: Algorithm 1's cost model samples the graph, so layer
// configs are not stable under updates and nothing can be reused soundly.
//
// The input index is not modified; the caller owns publication (see
// update/version_store.h and update/live_updater.h for the RCU serving
// path).

#ifndef BIGINDEX_UPDATE_MAINTAIN_H_
#define BIGINDEX_UPDATE_MAINTAIN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bisim/maintenance.h"
#include "core/big_index.h"
#include "ontology/config.h"
#include "update/incremental.h"
#include "util/status.h"

namespace bigindex {

/// Options for MaintainIndex.
struct MaintainOptions {
  /// Dirty-frontier ratio above which a layer is re-summarized wholesale
  /// (forwarded to IncrementalBisimOptions::fallback_dirty_ratio). The
  /// localized split pass is worklist-driven — a large dirty set that causes
  /// few splits settles after one cheap re-sign round — so the threshold
  /// tolerates the in-neighbor widening the changed-set propagation applies
  /// to hub blocks. Output is byte-identical on either side of the knob; see
  /// docs/MAINTENANCE.md for tuning.
  double fallback_dirty_ratio = 0.5;

  /// Force wholesale re-summarization of every layer (testing/bench knob;
  /// output is identical either way).
  bool force_wholesale = false;
};

/// How one layer of the successor index was produced.
enum class LayerMaintenance {
  kPatched,      // partition unchanged: summary patched from the projected
                 // delta, mapping reused verbatim
  kIncremental,  // seeded localized refinement
  kWholesale,    // full ComputeBisimulation of the generalized layer
  kCopied,       // old layer reused verbatim (provably unchanged)
};

/// Per-layer maintenance diagnostics.
struct MaintainLayerReport {
  LayerMaintenance mode = LayerMaintenance::kWholesale;
  IncrementalBisimStats stats;  // meaningful for kPatched/kIncremental

  /// True when the stored layer configuration was reused via the
  /// distinct-label-set check instead of being re-derived.
  bool config_reused = false;

  /// Wall-clock breakdown of the four per-layer steps (ms). configure =
  /// config reuse check / recompute + validate; generalize = label-table or
  /// generalized-graph construction; correspondence = seed/dirty transport +
  /// next-level correspondence derivation; refine = probe + patch/seeded
  /// refinement/wholesale summarization.
  double configure_ms = 0;
  double generalize_ms = 0;
  double correspondence_ms = 0;
  double refine_ms = 0;
};

/// Diagnostics from one MaintainIndex call.
struct MaintainReport {
  /// Net effect of the batch against the base graph (see NormalizeUpdates).
  UpdateDelta delta;

  /// True when the index was rebuilt via BigIndex::Build (greedy-config
  /// indexes); `layers` is empty in that case.
  bool full_rebuild = false;

  std::vector<MaintainLayerReport> layers;

  /// Layers not reused verbatim (kPatched + kIncremental + kWholesale +
  /// full rebuild).
  size_t LayersRebuilt() const;
};

/// Cross-batch scratch carried between MaintainIndex calls on the same
/// serving lineage (LiveUpdater owns one per served index). Correctness
/// never depends on it — every cached entry is validated against the index
/// before use — it only skips recomputation of batch-invariant artifacts:
/// edge-only updates cannot change a layer's label set, so the per-layer
/// label -> generalized-label tables survive from batch to batch. The
/// counters feed observability (bigindex_cli update, docs/MAINTENANCE.md).
struct MaintenanceState {
  struct LayerCache {
    /// label -> Gen(label) under `config`; sized to the layer-below graph's
    /// label slots at build time.
    std::vector<LabelId> gen_table;
    /// The mappings the table was built for (cheap validity fingerprint).
    std::vector<LabelMapping> config;
  };

  /// layers[i-1] caches layer i's generalization table.
  std::vector<LayerCache> layers;

  uint64_t batches = 0;         // MaintainIndex calls that used this state
  uint64_t patched_layers = 0;  // layers taken by the patched fast path
  uint64_t table_hits = 0;      // generalization tables reused across batches
};

/// Applies `updates` to `index`'s base graph and returns the successor
/// index, equal — summary graphs, mappings, configs, serialized bytes — to
/// BigIndex::Build(updated base, ontology, index.options()). `index` is
/// unchanged. A batch with no net effect returns a (shallow) copy of
/// `index` and an empty report delta. `state`, when non-null, carries
/// cached derived artifacts across batches (see MaintenanceState).
StatusOr<BigIndex> MaintainIndex(const BigIndex& index,
                                 std::span<const GraphUpdate> updates,
                                 const MaintainOptions& options = {},
                                 MaintainReport* report = nullptr,
                                 MaintenanceState* state = nullptr);

}  // namespace bigindex

#endif  // BIGINDEX_UPDATE_MAINTAIN_H_
