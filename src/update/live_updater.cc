#include "update/live_updater.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace bigindex {
namespace {

struct UpdaterMetrics {
  Counter& batches;
  Counter& edges;
  Counter& swaps;
  Histogram& apply_ms;

  static UpdaterMetrics& Get() {
    static UpdaterMetrics m{
        MetricsRegistry::Global().GetCounter(
            "bigindex_update_batches_total",
            "Update batches applied through LiveUpdater"),
        MetricsRegistry::Global().GetCounter(
            "bigindex_update_edges_total",
            "Net edge changes applied through LiveUpdater"),
        MetricsRegistry::Global().GetCounter(
            "bigindex_update_swap_total",
            "Index versions swapped into serving"),
        MetricsRegistry::Global().GetHistogram(
            "bigindex_update_apply_ms",
            "Wall time of one LiveUpdater::Apply (maintain + engine + "
            "publish + swap), ms"),
    };
    return m;
  }
};

UpdateOutcome::Mode ModeOf(const MaintainReport& report) {
  if (report.full_rebuild) return UpdateOutcome::Mode::kRebuild;
  for (const MaintainLayerReport& layer : report.layers) {
    if (layer.mode == LayerMaintenance::kWholesale) {
      return UpdateOutcome::Mode::kWholesale;
    }
  }
  return UpdateOutcome::Mode::kIncremental;
}

}  // namespace

LiveUpdater::LiveUpdater(std::shared_ptr<const BigIndex> initial,
                         std::shared_ptr<const QueryEngine> initial_engine,
                         LiveUpdaterOptions options)
    : options_(std::move(options)) {
  if (initial_engine == nullptr) initial_engine = BuildEngine(initial);
  versions_.Publish(std::move(initial), std::move(initial_engine));
}

std::shared_ptr<const QueryEngine> LiveUpdater::BuildEngine(
    std::shared_ptr<const BigIndex> index) const {
  auto engine = std::make_shared<QueryEngine>(std::move(index),
                                              options_.engine);
  if (options_.configure_engine) options_.configure_engine(*engine);
  return engine;
}

StatusOr<UpdateOutcome> LiveUpdater::Apply(std::span<const GraphUpdate> updates,
                                           MaintainReport* report) {
  TRACE_SPAN("update/apply");
  UpdaterMetrics& metrics = UpdaterMetrics::Get();
  Timer timer;

  std::lock_guard<std::mutex> writer(write_mutex_);
  std::shared_ptr<const IndexVersion> cur = versions_.Current();

  MaintainReport local_report;
  if (report == nullptr) report = &local_report;
  auto successor = MaintainIndex(*cur->index, updates, options_.maintain,
                                 report, &maintain_state_);
  if (!successor.ok()) return successor.status();

  UpdateOutcome outcome;
  outcome.applied = report->delta.added.size() + report->delta.removed.size();
  outcome.skipped = updates.size() - outcome.applied;
  outcome.layers_rebuilt = report->LayersRebuilt();
  metrics.batches.Inc();
  metrics.edges.Inc(outcome.applied);

  if (outcome.applied == 0) {
    // No net effect: serve the existing version unchanged. epoch = 0 tells
    // the serving layer to substitute its (un-bumped) current epoch.
    outcome.mode = UpdateOutcome::Mode::kNone;
    metrics.apply_ms.Record(timer.ElapsedMillis());
    return outcome;
  }
  outcome.mode = ModeOf(*report);

  auto index = std::make_shared<const BigIndex>(std::move(successor).value());
  std::shared_ptr<const QueryEngine> engine = BuildEngine(index);
  uint64_t sequence = versions_.Publish(std::move(index), engine);
  {
    TRACE_SPAN("update/swap");
    // Publish-then-bump: the swap hook installs the engine in the serving
    // layer BEFORE bumping the answer-cache epoch (see header contract).
    outcome.epoch = swap_ ? swap_(std::move(engine)) : sequence;
  }
  metrics.swaps.Inc();
  metrics.apply_ms.Record(timer.ElapsedMillis());
  return outcome;
}

StatusOr<uint64_t> LiveUpdater::Rollback() {
  TRACE_SPAN("update/rollback");
  std::lock_guard<std::mutex> writer(write_mutex_);
  std::shared_ptr<const IndexVersion> previous = versions_.Previous();
  if (previous == nullptr) {
    return Status::FailedPrecondition("no previous index version retained");
  }
  auto sequence = versions_.Rollback();
  if (!sequence.ok()) return sequence.status();
  UpdaterMetrics::Get().swaps.Inc();
  if (swap_) return swap_(previous->engine);
  return *sequence;
}

}  // namespace bigindex
