// IndexVersionStore — RCU-style epoch-versioned publication of index
// generations.
//
// Live maintenance (update/maintain.h) produces a *successor* index; it never
// mutates the one being served. The store makes that hand-off safe without a
// reader-side lock beyond one mutex-guarded shared_ptr copy:
//
//   * Readers call Current() once per request/batch and keep the returned
//     IndexVersion pinned for as long as the evaluation runs. A published
//     version is immutable, so an in-flight query completes against a fully
//     consistent index even if ten newer generations are published meanwhile.
//   * Writers build the successor off to the side (MaintainIndex + a fresh
//     QueryEngine over the new index) and Publish() it: one shared_ptr store
//     under the mutex. The previous generation is retained — Rollback()
//     re-publishes it, which is the operational escape hatch after a bad
//     batch (see OPERATIONS.md).
//
// Reclamation is shared_ptr reference counting: a superseded version is
// destroyed when the store drops its `previous_` slot AND the last in-flight
// reader releases its pin — the grace period of classic RCU, without a
// quiescent-state protocol.
//
// The store's `sequence` is a private generation counter; the *serving* epoch
// (the answer-cache key) is owned by the QueryService and bumped by the
// embedder right after Publish (see update/live_updater.h for the ordering
// that makes the cache race-free).

#ifndef BIGINDEX_UPDATE_VERSION_STORE_H_
#define BIGINDEX_UPDATE_VERSION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/big_index.h"
#include "engine/query_engine.h"
#include "util/status.h"
#include "util/timer.h"

namespace bigindex {

/// One published index generation. Immutable once published: readers pin it
/// with a shared_ptr snapshot and use it lock-free for the rest of their
/// evaluation.
struct IndexVersion {
  /// Monotone generation number, 1 for the first Publish.
  uint64_t sequence = 0;
  std::shared_ptr<const BigIndex> index;
  std::shared_ptr<const QueryEngine> engine;
};

class IndexVersionStore {
 public:
  /// Publishes a new current version and retains the old one for Rollback.
  /// Returns the new sequence number. `engine` must be built over `index`
  /// (not checked — the engine shares the index's shared_ptr in practice).
  uint64_t Publish(std::shared_ptr<const BigIndex> index,
                   std::shared_ptr<const QueryEngine> engine);

  /// The current version, or nullptr before the first Publish.
  std::shared_ptr<const IndexVersion> Current() const;

  /// The version superseded by the most recent Publish, or nullptr when
  /// fewer than two generations exist (also after a Rollback: rolling back
  /// consumes the retained slot so it cannot ping-pong).
  std::shared_ptr<const IndexVersion> Previous() const;

  /// Re-publishes the previous version under a NEW sequence number (history
  /// moves forward; readers pinned to the bad version are unaffected).
  /// FailedPrecondition when no previous version is retained.
  StatusOr<uint64_t> Rollback();

  /// Seconds since the current version was published (0 before the first).
  double CurrentAgeSeconds() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const IndexVersion> current_;
  std::shared_ptr<const IndexVersion> previous_;
  uint64_t next_sequence_ = 1;
  Timer age_;  // restarted at every Publish; read under mutex_
};

}  // namespace bigindex

#endif  // BIGINDEX_UPDATE_VERSION_STORE_H_
