#include "update/maintain.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ontology/config.h"

namespace bigindex {
namespace {

// Vertex correspondence between one old layer and the same layer of the
// successor index. Entries are kInvalidVertex where no counterpart exists;
// `to_new`/`to_old` are mutually inverse on valid entries (block member
// sets are disjoint, so the member-set match below is injective).
struct Correspondence {
  std::vector<VertexId> to_new;  // old vertex -> new vertex
  std::vector<VertexId> to_old;  // new vertex -> old vertex
  bool usable = false;           // false once the old stack runs out

  static Correspondence Identity(size_t n) {
    Correspondence c;
    c.usable = true;
    c.to_new.resize(n);
    c.to_old.resize(n);
    for (size_t v = 0; v < n; ++v) {
      c.to_new[v] = static_cast<VertexId>(v);
      c.to_old[v] = static_cast<VertexId>(v);
    }
    return c;
  }

  bool IsTotalIdentity() const {
    if (!usable || to_new.size() != to_old.size()) return false;
    for (size_t v = 0; v < to_new.size(); ++v) {
      if (to_new[v] != static_cast<VertexId>(v)) return false;
    }
    return true;
  }
};

size_t CountWholesale(const MaintainReport& rep) {
  size_t n = 0;
  for (const MaintainLayerReport& l : rep.layers) {
    if (l.mode == LayerMaintenance::kWholesale) ++n;
  }
  return n;
}

}  // namespace

size_t MaintainReport::LayersRebuilt() const {
  size_t n = 0;
  for (const MaintainLayerReport& l : layers) {
    if (l.mode != LayerMaintenance::kCopied) ++n;
  }
  return n;
}

StatusOr<BigIndex> MaintainIndex(const BigIndex& index,
                                 std::span<const GraphUpdate> updates,
                                 const MaintainOptions& options,
                                 MaintainReport* report) {
  TRACE_SPAN("update/maintain");
  static Counter& layers_maintained = MetricsRegistry::Global().GetCounter(
      "bigindex_update_maintained_layers_total",
      "Layers produced by incremental maintenance (any mode)");
  static Counter& layers_fallback = MetricsRegistry::Global().GetCounter(
      "bigindex_update_fallback_layers_total",
      "Layers re-summarized wholesale instead of incrementally");

  MaintainReport local_report;
  MaintainReport& rep = report != nullptr ? *report : local_report;
  rep = MaintainReport{};

  auto delta = NormalizeUpdates(index.base(), updates);
  if (!delta.ok()) return delta.status();
  rep.delta = std::move(*delta);
  if (rep.delta.empty()) return index;  // shallow copy; nothing to do

  Graph new_base = ApplyDelta(index.base(), rep.delta);
  const Ontology* ontology = &index.ontology();
  const BigIndexOptions& opts = index.options();

  if (opts.use_greedy_config) {
    // Algorithm 1's cost model samples the graph; stored configs are not
    // stable under updates, so nothing can be reused soundly.
    rep.full_rebuild = true;
    auto rebuilt = BigIndex::Build(std::move(new_base), ontology, opts);
    if (!rebuilt.ok()) return rebuilt.status();
    MaintainLayerReport wholesale;
    wholesale.mode = LayerMaintenance::kWholesale;
    rep.layers.assign(rebuilt->NumLayers(), wholesale);
    layers_maintained.Inc(rep.layers.size());
    layers_fallback.Inc(rep.layers.size());
    return rebuilt;
  }

  std::optional<ExecutorPool> owned_pool;
  if (opts.build.num_threads != 0) owned_pool.emplace(opts.build.num_threads);
  ExecutorPool* pool = owned_pool ? &*owned_pool : nullptr;
  const BisimOptions wholesale_opts{.pool = pool};

  std::vector<IndexLayer> new_layers;
  new_layers.reserve(opts.max_layers);
  Correspondence corr = Correspondence::Identity(new_base.NumVertices());

  const Graph* cur_new = &new_base;
  for (size_t i = 1; i <= opts.max_layers; ++i) {
    TRACE_SPAN("update/layer");
    const bool have_old_layer = i <= index.NumLayers();
    const Graph& old_below = index.LayerGraph(i - 1);

    // Strongest case: the layer below is unchanged, vertex-for-vertex. Build
    // is a deterministic function of (layer graph, ontology, options), so
    // the old stack from here up — including its stopping point — is exactly
    // what a from-scratch rebuild would produce.
    if (corr.IsTotalIdentity() && GraphsIdentical(*cur_new, old_below)) {
      for (size_t j = i; j <= index.NumLayers(); ++j) {
        new_layers.push_back(index.Layer(j));
        rep.layers.push_back({LayerMaintenance::kCopied, {}});
      }
      break;
    }

    GeneralizationConfig config;
    {
      TRACE_SPAN("build/config");
      config = FullOneStepConfiguration(*cur_new, *ontology);
    }
    BIGINDEX_RETURN_IF_ERROR(config.Validate(*ontology));
    const bool config_matches =
        have_old_layer && config.mappings() == index.Layer(i).config.mappings();

    Graph generalized;
    {
      TRACE_SPAN("build/generalize");
      generalized = Generalize(*cur_new, config);
    }

    MaintainLayerReport lrep;
    BisimResult bisim;
    if (!options.force_wholesale && config_matches && corr.usable) {
      // Transport the old partition into a seed: corresponded vertices keep
      // their old block, orphans get fresh singletons. Dirty = orphans +
      // vertices whose generalized label or (correspondence-mapped)
      // out-neighborhood drifted — exactly the vertices whose signature the
      // old stability proof no longer covers.
      const BisimMapping& old_map = index.Layer(i).mapping;
      const size_t n = cur_new->NumVertices();
      std::vector<VertexId> seed(n), dirty, mapped;
      VertexId fresh = static_cast<VertexId>(index.LayerGraph(i).NumVertices());
      for (VertexId x = 0; x < n; ++x) {
        const VertexId s =
            x < corr.to_old.size() ? corr.to_old[x] : kInvalidVertex;
        if (s == kInvalidVertex) {
          seed[x] = fresh++;
          dirty.push_back(x);
          continue;
        }
        seed[x] = old_map.SuperOf(s);
        if (config.Generalize(cur_new->label(x)) !=
            config.Generalize(old_below.label(s))) {
          dirty.push_back(x);
          continue;
        }
        mapped.clear();
        bool drifted = false;
        for (VertexId t : old_below.OutNeighbors(s)) {
          const VertexId y = corr.to_new[t];
          if (y == kInvalidVertex) {
            drifted = true;
            break;
          }
          mapped.push_back(y);
        }
        if (!drifted) {
          std::sort(mapped.begin(), mapped.end());
          auto out = cur_new->OutNeighbors(x);
          drifted = !std::equal(mapped.begin(), mapped.end(), out.begin(),
                                out.end());
        }
        if (drifted) dirty.push_back(x);
      }

      IncrementalBisimOptions iopts;
      iopts.fallback_dirty_ratio = options.fallback_dirty_ratio;
      iopts.pool = pool;
      auto result =
          IncrementalBisimulation(generalized, seed, dirty, iopts, &lrep.stats);
      if (!result.ok()) return result.status();
      bisim = std::move(*result);
      lrep.mode = lrep.stats.fell_back ? LayerMaintenance::kWholesale
                                       : LayerMaintenance::kIncremental;
    } else {
      bisim = ComputeBisimulation(generalized, wholesale_opts);
      lrep.mode = LayerMaintenance::kWholesale;
    }

    // Build's exact stop test.
    const double ratio =
        cur_new->Size() == 0
            ? 1.0
            : static_cast<double>(bisim.summary.Size()) / cur_new->Size();
    if (config.empty() && ratio > opts.stop_ratio) break;

    // Correspondence for the next level: old layer-i supernode s matches new
    // supernode t iff s's members map (through the level-below
    // correspondence) exactly onto t's members.
    Correspondence next;
    if (have_old_layer && corr.usable) {
      const Graph& old_layer_graph = index.LayerGraph(i);
      const BisimMapping& old_map = index.Layer(i).mapping;
      next.usable = true;
      next.to_new.assign(old_layer_graph.NumVertices(), kInvalidVertex);
      next.to_old.assign(bisim.summary.NumVertices(), kInvalidVertex);
      std::vector<VertexId> mapped;
      for (VertexId s = 0; s < old_layer_graph.NumVertices(); ++s) {
        mapped.clear();
        bool ok = true;
        for (VertexId m : old_map.Members(s)) {
          const VertexId y = corr.to_new[m];
          if (y == kInvalidVertex) {
            ok = false;
            break;
          }
          mapped.push_back(y);
        }
        if (!ok || mapped.empty()) continue;
        std::sort(mapped.begin(), mapped.end());
        const VertexId t = bisim.mapping.SuperOf(mapped[0]);
        auto members = bisim.mapping.Members(t);
        if (std::equal(mapped.begin(), mapped.end(), members.begin(),
                       members.end())) {
          next.to_new[s] = t;
          next.to_old[t] = s;
        }
      }
    }

    IndexLayer layer;
    layer.config = std::move(config);
    layer.graph = std::move(bisim.summary);
    layer.mapping = std::move(bisim.mapping);
    new_layers.push_back(std::move(layer));
    rep.layers.push_back(std::move(lrep));
    cur_new = &new_layers.back().graph;
    corr = std::move(next);
  }

  layers_maintained.Inc(rep.layers.size());
  layers_fallback.Inc(CountWholesale(rep));
  return BigIndex::FromParts(std::move(new_base), ontology,
                             std::move(new_layers), opts);
}

}  // namespace bigindex
