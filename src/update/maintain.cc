#include "update/maintain.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/config_search.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ontology/config.h"
#include "util/timer.h"

namespace bigindex {
namespace {

// Vertex correspondence between one old layer and the same layer of the
// successor index. Entries are kInvalidVertex where no counterpart exists;
// `to_new`/`to_old` are mutually inverse on valid entries (block member
// sets are disjoint, so every derivation below is injective).
struct Correspondence {
  std::vector<VertexId> to_new;  // old vertex -> new vertex
  std::vector<VertexId> to_old;  // new vertex -> old vertex
  bool usable = false;           // false once the old stack runs out

  static Correspondence Identity(size_t n) {
    Correspondence c;
    c.usable = true;
    c.to_new.resize(n);
    c.to_old.resize(n);
    for (size_t v = 0; v < n; ++v) {
      c.to_new[v] = static_cast<VertexId>(v);
      c.to_old[v] = static_cast<VertexId>(v);
    }
    return c;
  }

  bool IsTotalIdentity() const {
    if (!usable || to_new.size() != to_old.size()) return false;
    for (size_t v = 0; v < to_new.size(); ++v) {
      if (to_new[v] != static_cast<VertexId>(v)) return false;
    }
    return true;
  }
};

// The delta-propagation state flowing from one layer to the next. The
// correspondence is always present (possibly unusable); the exact edge
// delta survives only while the partition above stays identity-matched, and
// the changed set (a sound superset of vertices whose generalized label or
// mapped out-neighborhood drifted) survives until a wholesale layer erases
// provenance.
struct LevelLink {
  Correspondence corr;
  bool have_delta = false;
  UpdateDelta delta;
  bool have_changed = false;
  std::vector<VertexId> changed;  // sorted, unique, new-graph vertex ids
  // Subset of `changed` whose quotient-level behavior genuinely differs
  // from the old layer (adjacency / membership / label) — excludes the
  // renaming-only vertices the in-neighbor rule adds for split coverage.
  // Seeds the localized merge scan (IncrementalBisimOptions::merge_changed).
  std::vector<VertexId> core;
};

size_t CountMode(const MaintainReport& rep, LayerMaintenance mode) {
  size_t n = 0;
  for (const MaintainLayerReport& l : rep.layers) {
    if (l.mode == mode) ++n;
  }
  return n;
}

// label -> generalized-label table covering `slots` label ids (identity for
// unmapped labels). Cached per layer in `state` across batches — edge-only
// updates cannot change a layer's label set, so the table is usually
// reusable verbatim; validity is re-checked against the config either way.
const std::vector<LabelId>* GetGenTable(const GeneralizationConfig& config,
                                        size_t slots, size_t layer,
                                        MaintenanceState* state,
                                        std::vector<LabelId>* scratch) {
  MaintenanceState::LayerCache* cache = nullptr;
  if (state != nullptr) {
    if (state->layers.size() < layer) state->layers.resize(layer);
    cache = &state->layers[layer - 1];
    if (cache->gen_table.size() == slots &&
        cache->config == config.mappings()) {
      ++state->table_hits;
      return &cache->gen_table;
    }
  }
  std::vector<LabelId>& table = cache != nullptr ? cache->gen_table : *scratch;
  table.resize(slots);
  for (size_t l = 0; l < slots; ++l) table[l] = static_cast<LabelId>(l);
  for (const LabelMapping& m : config.mappings()) {
    if (m.from < slots) table[m.from] = m.to;
  }
  if (cache != nullptr) cache->config = config.mappings();
  return &table;
}

// No-split probe for the patched fast path: true iff every block containing
// a dirty vertex is still signature-uniform under the transported (and
// unchanged) seed. One pass suffices — a split is the only event that could
// propagate dirtiness, and the true path has none; untouched blocks remain
// uniform by the transfer argument (none of their members' out-edges or
// out-neighbor blocks changed). Cost is the dirty blocks' member degrees,
// independent of |V| + |E|.
bool PartitionSurvivesDelta(const Graph& g, std::span<const VertexId> seed,
                            const BisimMapping& mapping,
                            std::span<const VertexId> dirty,
                            const std::vector<LabelId>& gen_table) {
  std::vector<char> seen(mapping.NumSupernodes(), 0);
  std::vector<uint32_t> ref, sig;
  for (VertexId v : dirty) {
    const VertexId b = seed[v];
    if (seen[b]) continue;
    seen[b] = 1;
    const auto members = mapping.Members(b);
    if (members.size() <= 1) continue;  // singletons cannot split
    bool first = true;
    for (VertexId m : members) {
      sig.clear();
      sig.push_back(gen_table[g.label(m)]);
      const size_t fixed = sig.size();
      for (VertexId w : g.OutNeighbors(m)) sig.push_back(seed[w]);
      std::sort(sig.begin() + fixed, sig.end());
      sig.erase(std::unique(sig.begin() + fixed, sig.end()), sig.end());
      if (first) {
        ref = sig;
        first = false;
      } else if (sig != ref) {
        return false;
      }
    }
  }
  return true;
}

std::vector<VertexId> SortedUniqueSources(const UpdateDelta& delta) {
  std::vector<VertexId> out;
  out.reserve(delta.added.size() + delta.removed.size());
  for (const auto& [u, v] : delta.added) out.push_back(u);
  for (const auto& [u, v] : delta.removed) out.push_back(u);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

size_t MaintainReport::LayersRebuilt() const {
  size_t n = 0;
  for (const MaintainLayerReport& l : layers) {
    if (l.mode != LayerMaintenance::kCopied) ++n;
  }
  return n;
}

StatusOr<BigIndex> MaintainIndex(const BigIndex& index,
                                 std::span<const GraphUpdate> updates,
                                 const MaintainOptions& options,
                                 MaintainReport* report,
                                 MaintenanceState* state) {
  TRACE_SPAN("update/maintain");
  static Counter& layers_maintained = MetricsRegistry::Global().GetCounter(
      "bigindex_update_maintained_layers_total",
      "Layers produced by incremental maintenance (any mode)");
  static Counter& layers_fallback = MetricsRegistry::Global().GetCounter(
      "bigindex_update_fallback_layers_total",
      "Layers re-summarized wholesale instead of incrementally");
  static Counter& layers_patched = MetricsRegistry::Global().GetCounter(
      "bigindex_update_patched_layers_total",
      "Layers whose summary was patched directly from the projected delta");

  MaintainReport local_report;
  MaintainReport& rep = report != nullptr ? *report : local_report;
  rep = MaintainReport{};

  auto delta = NormalizeUpdates(index.base(), updates);
  if (!delta.ok()) return delta.status();
  rep.delta = std::move(*delta);
  if (rep.delta.empty()) return index;  // shallow copy; nothing to do
  if (state != nullptr) ++state->batches;

  Graph new_base = ApplyDelta(index.base(), rep.delta);
  const Ontology* ontology = &index.ontology();
  const BigIndexOptions& opts = index.options();

  if (opts.use_greedy_config) {
    // Algorithm 1's cost model samples the graph; stored configs are not
    // stable under updates, so nothing can be reused soundly.
    rep.full_rebuild = true;
    auto rebuilt = BigIndex::Build(std::move(new_base), ontology, opts);
    if (!rebuilt.ok()) return rebuilt.status();
    MaintainLayerReport wholesale;
    wholesale.mode = LayerMaintenance::kWholesale;
    rep.layers.assign(rebuilt->NumLayers(), wholesale);
    layers_maintained.Inc(rep.layers.size());
    layers_fallback.Inc(rep.layers.size());
    return rebuilt;
  }

  std::optional<ExecutorPool> owned_pool;
  if (opts.build.num_threads != 0) owned_pool.emplace(opts.build.num_threads);
  ExecutorPool* pool = owned_pool ? &*owned_pool : nullptr;
  const BisimOptions wholesale_opts{.pool = pool};

  std::vector<IndexLayer> new_layers;
  new_layers.reserve(opts.max_layers);
  LevelLink link;
  link.corr = Correspondence::Identity(new_base.NumVertices());
  link.have_delta = true;
  link.delta = rep.delta;
  link.have_changed = true;
  link.changed = SortedUniqueSources(rep.delta);
  link.core = link.changed;  // at the base every changed vertex is genuine

  std::vector<LabelId> table_scratch;
  const Graph* cur_new = &new_base;
  for (size_t i = 1; i <= opts.max_layers; ++i) {
    TRACE_SPAN("update/layer");
    const bool have_old_layer = i <= index.NumLayers();
    const Graph& old_below = index.LayerGraph(i - 1);
    Correspondence& corr = link.corr;

    // Strongest case: the layer below is unchanged, vertex-for-vertex. Build
    // is a deterministic function of (layer graph, ontology, options), so
    // the old stack from here up — including its stopping point — is exactly
    // what a from-scratch rebuild would produce. With an exact propagated
    // delta the test is O(1); the O(V+E) graph comparison only backs up the
    // delta-less (post-wholesale) case.
    if (corr.IsTotalIdentity() &&
        ((link.have_delta && link.delta.empty()) ||
         (!link.have_delta && GraphsIdentical(*cur_new, old_below)))) {
      for (size_t j = i; j <= index.NumLayers(); ++j) {
        new_layers.push_back(index.Layer(j));
        MaintainLayerReport copied;
        copied.mode = LayerMaintenance::kCopied;
        rep.layers.push_back(copied);
      }
      break;
    }

    MaintainLayerReport lrep;
    GeneralizationConfig config;
    bool config_matches = false;
    {
      Timer t;
      TRACE_SPAN("build/config");
      if (have_old_layer && SameFullConfiguration(*cur_new, old_below)) {
        // The full one-step configuration is a pure function of the
        // distinct-label set; the stored config was validated at its own
        // build, so both the ontology walk and Validate are skipped.
        config = index.Layer(i).config;
        config_matches = true;
        lrep.config_reused = true;
      } else {
        config = FullOneStepConfiguration(*cur_new, *ontology);
        BIGINDEX_RETURN_IF_ERROR(config.Validate(*ontology));
        config_matches =
            have_old_layer &&
            config.mappings() == index.Layer(i).config.mappings();
      }
      lrep.configure_ms = t.ElapsedMillis();
    }

    const size_t n = cur_new->NumVertices();
    const bool incremental_eligible =
        !options.force_wholesale && config_matches && corr.usable;

    BisimResult bisim;
    Correspondence next;
    bool next_have_delta = false;
    UpdateDelta next_delta;
    bool next_have_changed = false;
    std::vector<VertexId> next_changed;
    std::vector<VertexId> next_core;
    bool need_legacy_corr = false;
    bool done = false;

    // Tier 1 — patched: the layer below changed by an exact, identity-mapped
    // edge delta. Dirty is exactly the delta's sources (edge-only deltas
    // cannot touch labels). If no dirty block splits and no blocks merge,
    // the old partition is still the maximal bisimulation: the summary is
    // the old summary patched by the projected block-level delta, and the
    // mapping carries over verbatim — nothing layer-sized is rebuilt.
    if (incremental_eligible && link.have_delta && corr.IsTotalIdentity() &&
        static_cast<double>(link.changed.size()) <=
            options.fallback_dirty_ratio * static_cast<double>(n)) {
      TRACE_SPAN("update/patch_attempt");
      const IndexLayer& old_layer = index.Layer(i);
      const std::span<const VertexId> seed = old_layer.mapping.VertexToSuper();
      const std::vector<VertexId>& dirty = link.changed;

      Timer t_gen;
      const std::vector<LabelId>* table = GetGenTable(
          config, cur_new->LabelSlots(), i, state, &table_scratch);
      lrep.generalize_ms += t_gen.ElapsedMillis();

      Timer t_ref;
      if (PartitionSurvivesDelta(*cur_new, seed, old_layer.mapping, dirty,
                                 *table)) {
        UpdateDelta sdelta = ProjectDeltaToSummary(*cur_new, seed,
                                                   old_layer.graph, link.delta);
        Graph patched = sdelta.empty() ? old_layer.graph
                                       : ApplyDelta(old_layer.graph, sdelta);
        // Merge check: the old summary is reduced (no two blocks of a
        // maximal partition are bisimilar); the patch may have made blocks
        // bisimilar, but only within the backward closure of the patched
        // block edges — a delta-local scan, not a summary-sized refinement.
        MergeScan merged;
        if (sdelta.empty()) {
          merged.num_classes = patched.NumVertices();
          merged.localized = true;
        } else {
          merged = DetectMerges(patched, SortedUniqueSources(sdelta),
                                kMergeScanFallbackRatio, pool);
        }
        lrep.stats.dirty_seed = dirty.size();
        lrep.stats.quotient_vertices = patched.NumVertices();
        lrep.stats.merge_active = merged.active;
        lrep.stats.merge_localized = merged.localized;
        if (merged.num_classes == patched.NumVertices()) {
          // Discrete: partition and numbering unchanged (first-occurrence
          // renumbering of unchanged membership is the identity) — summary
          // and mapping carry over, and the next layer inherits an identity
          // correspondence plus the projected delta.
          bisim.summary = std::move(patched);
          bisim.mapping = old_layer.mapping;
          bisim.refinement_rounds = merged.rounds;
          lrep.mode = LayerMaintenance::kPatched;
          if (state != nullptr) ++state->patched_layers;

          Timer t_corr;
          next = Correspondence::Identity(bisim.summary.NumVertices());
          next_have_changed = true;
          next_changed = SortedUniqueSources(sdelta);
          next_core = next_changed;  // sdelta sources: all genuine
          next_have_delta = true;
          next_delta = std::move(sdelta);
          lrep.correspondence_ms += t_corr.ElapsedMillis();
        } else {
          // Blocks merged (splits are ruled out by the probe). Compose
          // seed ∘ merged and materialize; an old supernode survives iff
          // its merge class is a singleton.
          std::span<const LabelId> glabels = cur_new->labels();
          std::vector<LabelId> glabels_storage;
          if (!config.empty()) {
            glabels_storage.resize(n);
            for (VertexId v = 0; v < n; ++v) {
              glabels_storage[v] = (*table)[cur_new->label(v)];
            }
            glabels = glabels_storage;
          }
          std::vector<uint32_t> composed(n);
          for (VertexId v = 0; v < n; ++v) {
            composed[v] = merged.block_of[seed[v]];
          }
          std::vector<uint32_t> old_to_final;
          bisim = MaterializePartition(*cur_new, glabels, std::move(composed),
                                       merged.num_classes, merged.rounds,
                                       &old_to_final);
          lrep.mode = LayerMaintenance::kIncremental;

          Timer t_corr;
          next.usable = true;
          next.to_new.assign(old_layer.graph.NumVertices(), kInvalidVertex);
          next.to_old.assign(bisim.summary.NumVertices(), kInvalidVertex);
          std::vector<uint32_t> class_size(merged.num_classes, 0);
          for (uint32_t c : merged.block_of) ++class_size[c];
          for (VertexId s2 = 0; s2 < old_layer.graph.NumVertices(); ++s2) {
            const uint32_t f = merged.block_of[s2];
            if (class_size[f] != 1) continue;  // old supernode merged away
            next.to_new[s2] = old_to_final[f];
            next.to_old[old_to_final[f]] = s2;
          }
          // Changed set for the next layer: blocks without a counterpart,
          // their summary in-neighbors (whose mapped out-neighborhood now
          // refers to a vanished block), and blocks holding a dirty member.
          // Core excludes the in-neighbor widening: those blocks' behavior
          // only changed up to renaming, and the merge scan's backward
          // closure recovers them through their edge into a core block.
          const size_t num_final = bisim.summary.NumVertices();
          std::vector<char> cflag(num_final, 0);
          std::vector<char> kflag(num_final, 0);
          for (VertexId t2 = 0; t2 < num_final; ++t2) {
            if (next.to_old[t2] == kInvalidVertex) cflag[t2] = kflag[t2] = 1;
          }
          for (VertexId t2 = 0; t2 < num_final; ++t2) {
            if (next.to_old[t2] != kInvalidVertex) continue;
            for (VertexId u : bisim.summary.InNeighbors(t2)) cflag[u] = 1;
          }
          for (VertexId x : dirty) {
            cflag[bisim.mapping.SuperOf(x)] = 1;
            kflag[bisim.mapping.SuperOf(x)] = 1;
          }
          for (VertexId t2 = 0; t2 < num_final; ++t2) {
            if (cflag[t2]) next_changed.push_back(t2);
            if (kflag[t2]) next_core.push_back(t2);
          }
          next_have_changed = true;
          lrep.correspondence_ms += t_corr.ElapsedMillis();
        }
        done = true;
      }
      lrep.refine_ms += t_ref.ElapsedMillis();
    }

    // Tier 2 — seeded: transport the old partition into a seed through the
    // correspondence; dirty comes from the propagated changed set (plus
    // orphans) when provenance survives, and from the legacy O(V+E) drift
    // scan only after a wholesale layer erased it.
    if (!done && incremental_eligible) {
      const BisimMapping& old_map = index.Layer(i).mapping;
      Timer t_corr;
      const size_t old_num = index.LayerGraph(i).NumVertices();
      std::vector<VertexId> seed(n), dirty;
      VertexId fresh = static_cast<VertexId>(old_num);
      // Lost-member rule: an old vertex with no new counterpart silently
      // changes its old block's quotient behavior (the survivors' own
      // signatures are untouched, so nothing else dirties them). Splits
      // never need this — survivors stay signature-uniform — but the
      // localized merge scan does: the whole block must enter its working
      // set, so every surviving member goes into the merge core.
      std::vector<char> lost(old_num, 0);
      bool any_lost = false;
      for (VertexId s = 0; s < corr.to_new.size(); ++s) {
        if (corr.to_new[s] == kInvalidVertex) {
          lost[old_map.SuperOf(s)] = 1;
          any_lost = true;
        }
      }
      // Core: the subset of dirty whose quotient-level behavior genuinely
      // differs from the old layer — propagated core from below, orphans,
      // and survivors of lost-member blocks. The renaming-only vertices the
      // in-neighbor rule adds to `changed` stay out: the merge scan's
      // backward closure recovers them through their edge into a core block.
      std::vector<VertexId> core_vertices;
      if (link.have_changed) {
        std::vector<char> dflag(n, 0);
        std::vector<char> kflag(n, 0);
        for (VertexId x : link.changed) {
          if (!dflag[x]) {
            dflag[x] = 1;
            dirty.push_back(x);
          }
        }
        for (VertexId x : link.core) {
          if (!kflag[x]) {
            kflag[x] = 1;
            core_vertices.push_back(x);
          }
        }
        for (VertexId x = 0; x < n; ++x) {
          const VertexId s =
              x < corr.to_old.size() ? corr.to_old[x] : kInvalidVertex;
          if (s == kInvalidVertex) {
            seed[x] = fresh++;
            if (!dflag[x]) {
              dflag[x] = 1;
              dirty.push_back(x);
            }
            if (!kflag[x]) {
              kflag[x] = 1;
              core_vertices.push_back(x);
            }
            continue;
          }
          seed[x] = old_map.SuperOf(s);
          // Lost-block survivors only feed the merge scan — their own
          // signatures are unchanged, so phase 1 need not re-sign them.
          if (any_lost && lost[seed[x]] && !kflag[x]) {
            kflag[x] = 1;
            core_vertices.push_back(x);
          }
        }
      } else {
        // Legacy drift scan: orphans + vertices whose generalized label or
        // (correspondence-mapped) out-neighborhood drifted — exactly the
        // vertices whose signature the old stability proof no longer covers.
        std::vector<VertexId> mapped;
        for (VertexId x = 0; x < n; ++x) {
          const VertexId s =
              x < corr.to_old.size() ? corr.to_old[x] : kInvalidVertex;
          if (s == kInvalidVertex) {
            seed[x] = fresh++;
            dirty.push_back(x);
            continue;
          }
          seed[x] = old_map.SuperOf(s);
          if (any_lost && lost[seed[x]]) {
            dirty.push_back(x);
            continue;
          }
          if (config.Generalize(cur_new->label(x)) !=
              config.Generalize(old_below.label(s))) {
            dirty.push_back(x);
            continue;
          }
          mapped.clear();
          bool drifted = false;
          for (VertexId t : old_below.OutNeighbors(s)) {
            const VertexId y = corr.to_new[t];
            if (y == kInvalidVertex) {
              drifted = true;
              break;
            }
            mapped.push_back(y);
          }
          if (!drifted) {
            std::sort(mapped.begin(), mapped.end());
            auto out = cur_new->OutNeighbors(x);
            drifted = !std::equal(mapped.begin(), mapped.end(), out.begin(),
                                  out.end());
          }
          if (drifted) dirty.push_back(x);
        }
      }
      lrep.correspondence_ms += t_corr.ElapsedMillis();

      Timer t_gen;
      std::span<const LabelId> glabels = cur_new->labels();
      std::vector<LabelId> glabels_storage;
      if (!config.empty()) {
        const std::vector<LabelId>* table = GetGenTable(
            config, cur_new->LabelSlots(), i, state, &table_scratch);
        glabels_storage.resize(n);
        for (VertexId v = 0; v < n; ++v) {
          glabels_storage[v] = (*table)[cur_new->label(v)];
        }
        glabels = glabels_storage;
      }
      lrep.generalize_ms += t_gen.ElapsedMillis();

      Timer t_ref;
      IncrementalBisimOptions iopts;
      iopts.fallback_dirty_ratio = options.fallback_dirty_ratio;
      iopts.pool = pool;
      iopts.labels = glabels;
      // Seed values are old supernode ids plus at most n fresh orphan ids;
      // the old partition is a true maximal bisimulation and `dirty` covers
      // every behavior drift (changed set / drift scan + lost-member rule),
      // so the localized merge scan applies.
      iopts.seed_id_bound = old_num + n;
      iopts.seed_maximal = true;
      // Legacy drift scan: every dirty vertex is a genuine behavior change,
      // so the empty default (merge scan seeds from `dirty`) is already the
      // tight core.
      iopts.merge_changed = core_vertices;
      IncrementalBisimTrace trace;
      auto result = IncrementalBisimulation(*cur_new, seed, dirty, iopts,
                                            &lrep.stats, &trace);
      if (!result.ok()) return result.status();
      bisim = std::move(*result);
      lrep.refine_ms += t_ref.ElapsedMillis();
      lrep.mode = lrep.stats.fell_back ? LayerMaintenance::kWholesale
                                       : LayerMaintenance::kIncremental;

      if (lrep.stats.fell_back) {
        need_legacy_corr = true;
      } else {
        // Next correspondence in O(#blocks) from the seed-provenance trace:
        // an old supernode survives iff its block is intact AND no old
        // member was orphaned (the member-count check — intact only proves
        // equality against the *transported* members).
        Timer t_nc;
        const size_t num_final = bisim.summary.NumVertices();
        next.usable = true;
        next.to_new.assign(old_num, kInvalidVertex);
        next.to_old.assign(num_final, kInvalidVertex);
        for (VertexId t2 = 0; t2 < num_final; ++t2) {
          const VertexId s = trace.seed_of_final[t2];
          if (!trace.intact[t2] || s == kInvalidVertex || s >= old_num) {
            continue;
          }
          if (old_map.Members(s).size() != bisim.mapping.Members(t2).size()) {
            continue;
          }
          next.to_new[s] = t2;
          next.to_old[t2] = s;
        }
        std::vector<char> cflag(num_final, 0);
        std::vector<char> kflag(num_final, 0);
        for (VertexId t2 = 0; t2 < num_final; ++t2) {
          if (next.to_old[t2] == kInvalidVertex) cflag[t2] = kflag[t2] = 1;
        }
        for (VertexId t2 = 0; t2 < num_final; ++t2) {
          if (next.to_old[t2] != kInvalidVertex) continue;
          for (VertexId u : bisim.summary.InNeighbors(t2)) cflag[u] = 1;
        }
        for (VertexId x : dirty) cflag[bisim.mapping.SuperOf(x)] = 1;
        const std::vector<VertexId>& core_src =
            link.have_changed ? core_vertices : dirty;
        for (VertexId x : core_src) kflag[bisim.mapping.SuperOf(x)] = 1;
        for (VertexId t2 = 0; t2 < num_final; ++t2) {
          if (cflag[t2]) next_changed.push_back(t2);
          if (kflag[t2]) next_core.push_back(t2);
        }
        next_have_changed = true;
        lrep.correspondence_ms += t_nc.ElapsedMillis();
      }
      done = true;
    }

    // Tier 3 — wholesale: config drift, force_wholesale, new layers beyond
    // the old stack, or no usable correspondence.
    if (!done) {
      Timer t_gen;
      Graph generalized;
      {
        TRACE_SPAN("build/generalize");
        generalized = Generalize(*cur_new, config);
      }
      lrep.generalize_ms += t_gen.ElapsedMillis();
      Timer t_ref;
      bisim = ComputeBisimulation(generalized, wholesale_opts);
      lrep.refine_ms += t_ref.ElapsedMillis();
      lrep.mode = LayerMaintenance::kWholesale;
      need_legacy_corr = true;
    }

    // Build's exact stop test.
    const double ratio =
        cur_new->Size() == 0
            ? 1.0
            : static_cast<double>(bisim.summary.Size()) / cur_new->Size();
    if (config.empty() && ratio > opts.stop_ratio) break;

    // Legacy member-set rematch (kept only for the no-provenance paths):
    // old layer-i supernode s matches new supernode t iff s's members map
    // (through the level-below correspondence) exactly onto t's members.
    if (need_legacy_corr && have_old_layer && corr.usable) {
      Timer t_corr;
      const Graph& old_layer_graph = index.LayerGraph(i);
      const BisimMapping& old_map = index.Layer(i).mapping;
      next.usable = true;
      next.to_new.assign(old_layer_graph.NumVertices(), kInvalidVertex);
      next.to_old.assign(bisim.summary.NumVertices(), kInvalidVertex);
      std::vector<VertexId> mapped;
      for (VertexId s = 0; s < old_layer_graph.NumVertices(); ++s) {
        mapped.clear();
        bool ok = true;
        for (VertexId m : old_map.Members(s)) {
          const VertexId y = corr.to_new[m];
          if (y == kInvalidVertex) {
            ok = false;
            break;
          }
          mapped.push_back(y);
        }
        if (!ok || mapped.empty()) continue;
        std::sort(mapped.begin(), mapped.end());
        const VertexId t = bisim.mapping.SuperOf(mapped[0]);
        auto members = bisim.mapping.Members(t);
        if (std::equal(mapped.begin(), mapped.end(), members.begin(),
                       members.end())) {
          next.to_new[s] = t;
          next.to_old[t] = s;
        }
      }
      lrep.correspondence_ms += t_corr.ElapsedMillis();
    }

    IndexLayer layer;
    layer.config = std::move(config);
    layer.graph = std::move(bisim.summary);
    layer.mapping = std::move(bisim.mapping);
    new_layers.push_back(std::move(layer));
    rep.layers.push_back(std::move(lrep));
    cur_new = &new_layers.back().graph;
    link.corr = std::move(next);
    link.have_delta = next_have_delta;
    link.delta = std::move(next_delta);
    link.have_changed = next_have_changed;
    link.changed = std::move(next_changed);
    link.core = std::move(next_core);
  }

  layers_maintained.Inc(rep.layers.size());
  layers_fallback.Inc(CountMode(rep, LayerMaintenance::kWholesale));
  layers_patched.Inc(CountMode(rep, LayerMaintenance::kPatched));
  return BigIndex::FromParts(std::move(new_base), ontology,
                             std::move(new_layers), opts);
}

}  // namespace bigindex
