// Serving-layer observability: the ServiceStats snapshot the daemon's
// `stats` command and the load generator report.
//
// The latency histogram this file used to define now lives in
// obs/metrics.h as the general-purpose log-bucketed Histogram (same
// buckets: geometric bounds from 1 µs up at ~25% resolution, one relaxed
// atomic increment per record). LatencyHistogram remains as the
// serving-layer's name for a histogram of milliseconds.

#ifndef BIGINDEX_SERVER_SERVICE_STATS_H_
#define BIGINDEX_SERVER_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace bigindex {

/// Histogram of request latencies in milliseconds (see obs/metrics.h).
using LatencyHistogram = Histogram;

/// One coherent snapshot of the service's counters. All counts are
/// cumulative since service construction.
struct ServiceStats {
  // Admission.
  uint64_t submitted = 0;          // SubmitAsync calls
  uint64_t rejected_invalid = 0;   // failed Validate() at the door
  uint64_t rejected_overload = 0;  // bounced by the full admission queue
  size_t queue_depth = 0;          // queued right now
  size_t queue_capacity = 0;

  // Completion.
  uint64_t completed = 0;          // answered OK (cache hits included)
  uint64_t deadline_misses = 0;    // expired before or during evaluation
  uint64_t batches = 0;            // EvaluateBatch dispatches
  uint64_t batched_queries = 0;    // unique queries across those dispatches
  double mean_batch_size = 0;      // batched_queries / batches

  // Answer cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  double cache_hit_ratio = 0;      // hits / (hits + misses)

  // Latency of completed requests, admission to completion.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  double uptime_s = 0;
  double throughput_qps = 0;       // completed / uptime
  uint64_t epoch = 0;              // current cache epoch

  // Live updates (UPDATE verb; zero on read-only services).
  uint64_t updates_applied = 0;    // net edge changes applied
  uint64_t updates_rejected = 0;   // batches rejected (no updater / error)
  uint64_t update_fallbacks = 0;   // batches served wholesale / full rebuild
  uint64_t rollbacks = 0;          // versions rolled back (ROLLBACK verb)
  double epoch_age_s = 0;          // seconds since the last epoch bump

  // Scatter-gather coordination (zero on non-sharded services). The
  // coordinator also repurposes batches/batched_queries as fan-out waves /
  // shard requests actually sent.
  uint64_t shard_failures = 0;     // failed per-shard requests
  uint64_t partial_results = 0;    // merges served with a shard missing

  /// One key=value line per field, for the daemon's `stats` command and
  /// human logs.
  std::string ToString() const;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_SERVICE_STATS_H_
