// Serving-layer observability: a lock-free latency histogram plus the
// ServiceStats snapshot the daemon's `stats` command and the load generator
// report.
//
// The histogram is log-bucketed (geometric bucket bounds from 1 µs up, ~25%
// resolution), recorded with one relaxed atomic increment per request, so it
// adds nothing measurable to the request path. Percentiles are read by
// snapshotting the buckets and returning the upper bound of the bucket the
// requested rank falls in — an upper estimate within one bucket's width.

#ifndef BIGINDEX_SERVER_SERVICE_STATS_H_
#define BIGINDEX_SERVER_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace bigindex {

class LatencyHistogram {
 public:
  /// Records one observation. Thread-safe, wait-free.
  void Record(double ms);

  /// Latency (ms) at quantile `q` in [0, 1]: the upper bound of the bucket
  /// containing the q-th ranked observation. 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const;

 private:
  // Bucket i covers [kBaseUs * kGrowth^i, kBaseUs * kGrowth^(i+1)) µs; the
  // last bucket absorbs everything above (~1.6e6 µs with these constants).
  static constexpr size_t kBuckets = 64;
  static constexpr double kBaseUs = 1.0;
  static constexpr double kGrowth = 1.25;

  static size_t BucketFor(double ms);
  static double BucketUpperMs(size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// One coherent snapshot of the service's counters. All counts are
/// cumulative since service construction.
struct ServiceStats {
  // Admission.
  uint64_t submitted = 0;          // SubmitAsync calls
  uint64_t rejected_invalid = 0;   // failed Validate() at the door
  uint64_t rejected_overload = 0;  // bounced by the full admission queue
  size_t queue_depth = 0;          // queued right now
  size_t queue_capacity = 0;

  // Completion.
  uint64_t completed = 0;          // answered OK (cache hits included)
  uint64_t deadline_misses = 0;    // expired before or during evaluation
  uint64_t batches = 0;            // EvaluateBatch dispatches
  uint64_t batched_queries = 0;    // unique queries across those dispatches
  double mean_batch_size = 0;      // batched_queries / batches

  // Answer cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  double cache_hit_ratio = 0;      // hits / (hits + misses)

  // Latency of completed requests, admission to completion.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  double uptime_s = 0;
  double throughput_qps = 0;       // completed / uptime
  uint64_t epoch = 0;              // current cache epoch

  /// One key=value line per field, for the daemon's `stats` command and
  /// human logs.
  std::string ToString() const;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_SERVICE_STATS_H_
