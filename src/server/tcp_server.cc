#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "server/line_protocol.h"
#include "util/logging.h"

namespace bigindex {
namespace {

/// write() until done; false on a broken connection.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(QueryService* service, const LabelDictionary* dict,
                     TcpServerOptions options)
    : service_(service), dict_(dict), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      options_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError(std::string("listen: ") +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or a fatal accept error)
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connections_.emplace_back(
        fd, std::thread([this, fd] { ServeConnection(fd); }));
  }
}

void TcpServer::ServeConnection(int fd) {
  LineHandler handler(service_, dict_);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // client gone or Stop() shut the socket down
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      LineHandler::Result result = handler.Handle(line);
      if (!WriteAll(fd, result.response) || result.close) open = false;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by Stop(), which owns the connection table.
}

void TcpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;  // already stopped
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::pair<int, std::thread>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& [fd, thread] : connections) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks the connection's read()
  }
  for (auto& [fd, thread] : connections) {
    thread.join();
    ::close(fd);
  }
  BIGINDEX_LOG(kInfo) << "tcp server on port " << port_ << " stopped";
}

}  // namespace bigindex
