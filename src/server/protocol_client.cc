#include "server/protocol_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

namespace bigindex {

ProtocolClient::ProtocolClient(std::string host, uint16_t port,
                               ProtocolClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

ProtocolClient::~ProtocolClient() { Disconnect(); }

void ProtocolClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status ProtocolClient::TryConnectOnce() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  int rc = ::getaddrinfo(host_.c_str(), std::to_string(port_).c_str(), &hints,
                         &addrs);
  if (rc != 0) {
    // Resolution failures are configuration errors, not transient: retrying
    // them would just burn the backoff budget.
    return Status::InvalidArgument("resolve " + host_ + ": " +
                                   gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + host_);
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    int fd = ::socket(a->ai_family, a->ai_socktype | SOCK_NONBLOCK,
                      a->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) != 0 &&
        errno != EINPROGRESS) {
      last = Status::Unavailable(std::string("connect: ") +
                                 std::strerror(errno));
      ::close(fd);
      continue;
    }
    // Wait for the handshake, bounded by the per-attempt timeout.
    pollfd pfd{fd, POLLOUT, 0};
    int timeout_ms = static_cast<int>(std::lround(
        std::max(1.0, options_.connect_timeout_ms)));
    int ready = ::poll(&pfd, 1, timeout_ms);
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (ready > 0 &&
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
        err == 0) {
      // Connected: back to blocking mode for the lockstep I/O.
      int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      fd_ = fd;
      buffer_.clear();
      ::freeaddrinfo(addrs);
      return Status::OK();
    }
    last = ready == 0
               ? Status::Unavailable("connect timeout after " +
                                     std::to_string(timeout_ms) + "ms")
               : Status::Unavailable(std::string("connect: ") +
                                     std::strerror(err != 0 ? err : errno));
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  return last;
}

Status ProtocolClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  Status last = Status::Unavailable("no connection attempts made");
  int attempts = std::max(1, options_.max_attempts);
  double backoff_ms = options_.backoff_base_ms;
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::min(backoff_ms, options_.backoff_cap_ms)));
      backoff_ms *= 2;
    }
    last = TryConnectOnce();
    if (last.ok()) return last;
    if (last.code() == StatusCode::kInvalidArgument) return last;  // no retry
  }
  return Status::Unavailable(host_ + ":" + std::to_string(port_) +
                             " unreachable after " +
                             std::to_string(attempts) +
                             " attempts: " + last.message());
}

StatusOr<std::vector<std::string>> ProtocolClient::Request(
    const std::string& line) {
  BIGINDEX_RETURN_IF_ERROR(Connect());
  std::string request = line;
  request += '\n';
  size_t off = 0;
  while (off < request.size()) {
    ssize_t n = ::write(fd_, request.data() + off, request.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::Unavailable("connection lost while sending request");
    }
    off += static_cast<size_t>(n);
  }

  std::vector<std::string> lines;
  char chunk[4096];
  while (true) {
    size_t nl;
    while ((nl = buffer_.find('\n')) != std::string::npos) {
      std::string resp = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!resp.empty() && resp.back() == '\r') resp.pop_back();
      if (resp == ".") return lines;
      lines.push_back(std::move(resp));
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::Unavailable("connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace bigindex
