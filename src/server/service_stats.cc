#include "server/service_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bigindex {

size_t LatencyHistogram::BucketFor(double ms) {
  double us = ms * 1e3;
  if (!(us > kBaseUs)) return 0;  // also catches NaN and negatives
  double idx = std::log(us / kBaseUs) / std::log(kGrowth);
  return std::min(kBuckets - 1, static_cast<size_t>(idx));
}

double LatencyHistogram::BucketUpperMs(size_t bucket) {
  return kBaseUs * std::pow(kGrowth, static_cast<double>(bucket + 1)) / 1e3;
}

void LatencyHistogram::Record(double ms) {
  buckets_[BucketFor(ms)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::Quantile(double q) const {
  std::array<uint64_t, kBuckets> snap;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile observation, 1-based, ceiling (p50 of 2 obs = #1).
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (seen >= rank) return BucketUpperMs(i);
  }
  return BucketUpperMs(kBuckets - 1);
}

std::string ServiceStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu rejected_invalid=%llu rejected_overload=%llu "
      "queue_depth=%zu/%zu completed=%llu deadline_misses=%llu "
      "batches=%llu mean_batch=%.2f cache_hits=%llu cache_misses=%llu "
      "cache_evictions=%llu cache_entries=%zu hit_ratio=%.3f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f qps=%.1f uptime_s=%.1f epoch=%llu",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(rejected_invalid),
      static_cast<unsigned long long>(rejected_overload), queue_depth,
      queue_capacity, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(batches), mean_batch_size,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions), cache_entries,
      cache_hit_ratio, p50_ms, p95_ms, p99_ms, throughput_qps, uptime_s,
      static_cast<unsigned long long>(epoch));
  return buf;
}

}  // namespace bigindex
