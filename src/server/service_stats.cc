#include "server/service_stats.h"

#include <cstdio>

namespace bigindex {

std::string ServiceStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu rejected_invalid=%llu rejected_overload=%llu "
      "queue_depth=%zu/%zu completed=%llu deadline_misses=%llu "
      "batches=%llu mean_batch=%.2f cache_hits=%llu cache_misses=%llu "
      "cache_evictions=%llu cache_entries=%zu hit_ratio=%.3f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f qps=%.1f uptime_s=%.1f epoch=%llu"
      " epoch_age_s=%.1f updates_applied=%llu updates_rejected=%llu"
      " update_fallbacks=%llu rollbacks=%llu shard_failures=%llu"
      " partial=%llu",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(rejected_invalid),
      static_cast<unsigned long long>(rejected_overload), queue_depth,
      queue_capacity, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(batches), mean_batch_size,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_evictions), cache_entries,
      cache_hit_ratio, p50_ms, p95_ms, p99_ms, throughput_qps, uptime_s,
      static_cast<unsigned long long>(epoch), epoch_age_s,
      static_cast<unsigned long long>(updates_applied),
      static_cast<unsigned long long>(updates_rejected),
      static_cast<unsigned long long>(update_fallbacks),
      static_cast<unsigned long long>(rollbacks),
      static_cast<unsigned long long>(shard_failures),
      static_cast<unsigned long long>(partial_results));
  return buf;
}

}  // namespace bigindex
