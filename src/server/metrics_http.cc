#include "server/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bigindex {
namespace {

/// write() until done; false on a broken connection.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(const std::string& content_type,
                         const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 200 OK\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      options_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status s = Status::IOError(std::string("listen: ") +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or a fatal accept error)
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::ServeConnection(int fd) {
  // A stalled sender can hold the acceptor for at most this long.
  timeval timeout{.tv_sec = 1, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char chunk[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos &&
         request.size() < 16384) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (request.find('\n') == std::string::npos) return;  // no request line
      break;  // header end missing but the request line arrived; serve it
    }
    request.append(chunk, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION. Only the path matters.
  size_t path_begin = request.find(' ');
  if (path_begin == std::string::npos) return;
  size_t path_end = request.find_first_of(" \r\n", ++path_begin);
  if (path_end == std::string::npos) return;
  std::string path = request.substr(path_begin, path_end - path_begin);

  if (path == "/trace") {
    WriteAll(fd, HttpResponse("application/json",
                              Tracer::Global().DumpJson() + "\n"));
  } else {
    // "/metrics", "/", and anything else: the Prometheus exposition.
    WriteAll(fd, HttpResponse("text/plain; version=0.0.4; charset=utf-8",
                              MetricsRegistry::Global().RenderPrometheus()));
  }
}

void MetricsHttpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;  // already stopped
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  BIGINDEX_LOG(kInfo) << "metrics http endpoint on port " << port_
                      << " stopped";
}

}  // namespace bigindex
