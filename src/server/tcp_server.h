// Minimal line-protocol TCP front end for a QueryService (a monolithic
// SearchService, a remapped shard worker, or the sharded coordinator).
//
// One acceptor thread plus one thread per connection; each connection is a
// LineHandler session (read a line, write the dot-terminated response
// block). Concurrency, batching, backpressure, and deadlines all live in
// the service behind it — this layer only moves bytes, so a slow or
// hostile client can at worst stall its own connection thread.

#ifndef BIGINDEX_SERVER_TCP_SERVER_H_
#define BIGINDEX_SERVER_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/label_dictionary.h"
#include "server/query_service.h"
#include "util/status.h"

namespace bigindex {

struct TcpServerOptions {
  /// 0 = pick an ephemeral port (read it back with port()).
  uint16_t port = 7419;

  /// Loopback only by default; set false to listen on all interfaces.
  bool loopback_only = true;
};

class TcpServer {
 public:
  /// `service` (and `dict`, optional) are borrowed; keep them alive until
  /// Stop() returns.
  TcpServer(QueryService* service, const LabelDictionary* dict,
            TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the acceptor. IOError on bind/listen
  /// failure (e.g. port in use).
  Status Start();

  /// Stops accepting, disconnects every client, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  QueryService* service_;
  const LabelDictionary* dict_;
  TcpServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::vector<std::pair<int, std::thread>> connections_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_TCP_SERVER_H_
