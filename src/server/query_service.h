// QueryService — the narrow serving interface the protocol front ends
// (LineHandler, TcpServer) and the shard substrate are written against.
//
// Two families implement it:
//   * SearchService — one QueryEngine behind admission control and
//     micro-batching (the monolithic server, and each shard worker).
//   * ShardedSearchService — the scatter-gather coordinator in src/shard/,
//     which fans a query out to N shard substrates and merges top-k.
//
// The interface deliberately excludes SubmitAsync: futures are an
// implementation detail of SearchService's batcher; front ends only need
// the synchronous call (one blocked connection thread per in-flight wire
// request is the TcpServer model).
//
// ShardRemapService is the serving-edge adapter for shard workers: it
// translates answer vertex ids from shard-local to global using the index
// image's remap, so everything downstream — the wire protocol, the
// coordinator's merge — speaks global vertex ids only.

#ifndef BIGINDEX_SERVER_QUERY_SERVICE_H_
#define BIGINDEX_SERVER_QUERY_SERVICE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bisim/maintenance.h"
#include "engine/query_engine.h"
#include "server/service_stats.h"
#include "util/status.h"

namespace bigindex {

/// A shard's boundary region, in GLOBAL vertex ids (the BOUNDARY verb
/// payload; DESIGN.md §9). The coordinator assembles the per-shard exports
/// into one region graph and evaluates cut-crossing answers on it.
struct BoundaryExport {
  /// The exporter's distance cap R = 2 * max locality radius: every owned
  /// vertex within undirected distance R of the cut is exported.
  uint32_t radius_cap = 0;
  /// Owned vertices with dist-to-cut <= R, ascending by global id, with
  /// their labels (the region graph needs labels for keyword matching).
  std::vector<std::pair<VertexId, LabelId>> vertices;
  /// Edges between two exported owned vertices, direction preserved.
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// This shard's incident cut edges (exactly one endpoint owned here),
  /// direction preserved. Both incident shards export each cut edge; the
  /// region assembly dedups.
  std::vector<std::pair<VertexId, VertexId>> cut_edges;

  bool HasCut() const { return !cut_edges.empty(); }
};

/// Worker-side boundary state: the export above plus what the serving edge
/// needs to decide which local answers are shard-exact. Computed by
/// ComputeShardBoundary (shard/boundary.h) at build/swap time, installed
/// into the ShardRemapService, and immutable once published.
struct ShardBoundary {
  /// Undirected distance from each LOCAL vertex to the nearest cut
  /// endpoint, capped at radius_cap (kInfDistance beyond). Ghosts and
  /// owned cut endpoints are at distance 0.
  std::vector<uint32_t> dist_to_cut;
  /// Locality radius per registered algorithm name, ascending by name;
  /// 0 = unknown (no filtering, no completion for that algorithm).
  std::vector<std::pair<std::string, uint32_t>> algo_radius;
  BoundaryExport export_data;

  uint32_t RadiusOf(std::string_view algo) const {
    auto it = std::lower_bound(
        algo_radius.begin(), algo_radius.end(), algo,
        [](const auto& e, std::string_view a) { return e.first < a; });
    if (it == algo_radius.end() || it->first != algo) return 0;
    return it->second;
  }
};

/// What a service is serving: which index image (fingerprint), how deep
/// (layers), and which slice of the graph (shard id / count). The
/// coordinator checks these at attach time (protocol INFO verb) so a
/// misconfigured fleet fails fast instead of merging answers from
/// incompatible indexes. num_shards == 0 means monolithic.
struct ServiceIdentity {
  /// Index-image fingerprint (ImageInfo::fingerprint); 0 when the service
  /// is backed by an index built in memory rather than a loaded image.
  uint64_t fingerprint = 0;
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic

  friend bool operator==(const ServiceIdentity&,
                         const ServiceIdentity&) = default;
};

/// Result of applying one edge-update batch through a service (the UPDATE
/// verb). `applied` counts net edge changes, `skipped` the rest of the
/// batch (redundant ops, and — on shard workers — edges owned by another
/// shard), so applied + skipped == batch size at every level; a coordinator
/// sums applied across shards (vertex ownership is disjoint).
struct UpdateOutcome {
  /// How the successor index was produced (worst layer for a monolithic
  /// service, worst shard for a coordinator).
  enum class Mode {
    kNone,         // batch had no net effect; no new index version
    kIncremental,  // every rebuilt layer used seeded localized refinement
    kWholesale,    // >= 1 layer re-summarized wholesale
    kRebuild,      // full BigIndex::Build (greedy-config indexes)
  };

  uint64_t applied = 0;
  uint64_t skipped = 0;
  uint64_t layers_rebuilt = 0;
  /// Serving epoch after the apply (unchanged when mode == kNone).
  uint64_t epoch = 0;
  Mode mode = Mode::kNone;
};

/// Wire/logging name of an UpdateOutcome::Mode.
inline const char* UpdateModeName(UpdateOutcome::Mode mode) {
  switch (mode) {
    case UpdateOutcome::Mode::kNone: return "none";
    case UpdateOutcome::Mode::kIncremental: return "incremental";
    case UpdateOutcome::Mode::kWholesale: return "wholesale";
    case UpdateOutcome::Mode::kRebuild: return "rebuild";
  }
  return "unknown";
}

class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Evaluates one query synchronously. Error statuses per the implementing
  /// service's contract (Unavailable on overload/shutdown, DeadlineExceeded,
  /// InvalidArgument, NotFound).
  virtual StatusOr<QueryResult> Query(EngineQuery query) = 0;

  /// Current index epoch (starts at 1).
  virtual uint64_t epoch() const = 0;

  /// Invalidates answer caches; returns the new epoch.
  virtual uint64_t BumpEpoch() = 0;

  /// Service counters snapshot.
  virtual ServiceStats Snapshot() const = 0;

  /// Registered algorithm names, sorted.
  virtual std::vector<std::string> AlgorithmNames() const = 0;

  /// The identity of the index behind this service (see ServiceIdentity).
  virtual ServiceIdentity Identity() const = 0;

  /// Applies an edge-update batch to the served index and publishes the
  /// successor under a new epoch (the UPDATE verb). Non-pure with an
  /// Unimplemented default: most services are read-only unless an embedder
  /// wires a write path (SearchService::set_updater, ShardedSearchService
  /// over updatable substrates).
  virtual StatusOr<UpdateOutcome> ApplyUpdate(
      std::span<const GraphUpdate> updates) {
    (void)updates;
    return Status::Unimplemented("service is read-only");
  }

  /// Re-publishes the previous retained index version (the ROLLBACK verb)
  /// and returns the new serving epoch. The backing version store keeps one
  /// generation of history (IndexVersionStore), so a bad update batch can be
  /// undone without a rebuild; a second consecutive rollback fails with
  /// FailedPrecondition. Unimplemented default for read-only services.
  virtual StatusOr<uint64_t> Rollback() {
    return Status::Unimplemented("service retains no previous version");
  }

  /// This shard's boundary region (the BOUNDARY verb). Shard workers over
  /// cut-incident plans return their export; everything else (monolithic
  /// services, ghost-free shards) returns an empty export, which the
  /// coordinator reads as "no completion needed".
  virtual StatusOr<BoundaryExport> Boundary() {
    return BoundaryExport{};
  }
};

/// Adapter that makes a shard worker speak global vertex ids: forwards every
/// call to the wrapped (shard-local) service and rewrites answer vertices
/// through the shard's local->global remap. The remap is strictly ascending
/// (ExtractShard's order-preserving invariant), so rewritten vertex sets
/// stay sorted. With an empty remap the adapter is a transparent pass-through
/// (monolithic worker).
///
/// On cut-incident shards (ghosts non-empty) the adapter additionally
/// enforces the boundary contract (DESIGN.md §9): once a ShardBoundary is
/// installed, answers anchored within the queried algorithm's locality
/// radius of the cut are dropped from local results — those answers (and
/// only those) are re-derived exactly by the coordinator's completion pass
/// on the assembled boundary region, so the far/near split is a disjoint
/// partition of the monolithic answer set. Ghost-anchored answers are at
/// distance 0 and always fall in the near class.
class ShardRemapService : public QueryService {
 public:
  /// `inner` is borrowed and must outlive the adapter. `ghosts` are the
  /// shard's ghost local ids (ShardExtract::ghosts / ShardImageInfo::ghosts).
  ShardRemapService(QueryService* inner, std::vector<VertexId> global_of,
                    std::vector<VertexId> ghosts = {})
      : inner_(inner), global_of_(std::move(global_of)) {
    is_ghost_.assign(global_of_.size(), false);
    for (VertexId g : ghosts) is_ghost_[g] = true;
    has_ghosts_ = !ghosts.empty();
    // A 1-shard connectivity-closed plan maps every vertex to itself;
    // dropping an identity remap makes Query a pure pass-through instead of
    // rewriting every answer id per request. Ghost-bearing shards keep the
    // remap: ghosts must never pass as owned, identity or not.
    if (!has_ghosts_) {
      bool identity = true;
      for (size_t i = 0; i < global_of_.size(); ++i) {
        if (global_of_[i] != static_cast<VertexId>(i)) {
          identity = false;
          break;
        }
      }
      if (identity) global_of_.clear();
    }
  }

  /// Publishes the boundary state the near-answer filter and the BOUNDARY
  /// verb serve from. Called at startup and on every engine swap (the
  /// boundary is a function of the served graph). Thread-safe.
  void InstallBoundary(std::shared_ptr<const ShardBoundary> boundary) {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    boundary_ = std::move(boundary);
  }

  StatusOr<QueryResult> Query(EngineQuery query) override {
    const std::string algorithm = query.algorithm;
    StatusOr<QueryResult> result = inner_->Query(std::move(query));
    if (!result.ok() || global_of_.empty()) return result;
    if (auto boundary = CurrentBoundary();
        boundary != nullptr && boundary->export_data.HasCut()) {
      // Near answers (anchor within the algorithm's locality radius of the
      // cut) belong to the coordinator's completion pass; answers with an
      // anchor beyond it are provably shard-exact. Local ids here — the
      // filter runs before the remap.
      uint32_t rho = boundary->RadiusOf(algorithm);
      if (rho > 0) {
        auto& answers = result->answers;
        answers.erase(
            std::remove_if(answers.begin(), answers.end(),
                           [&](const Answer& a) {
                             VertexId anchor = AnchorOf(a);
                             return anchor != kInvalidVertex &&
                                    boundary->dist_to_cut[anchor] <= rho;
                           }),
            answers.end());
      }
    }
    for (Answer& a : result->answers) {
      if (a.root != kInvalidVertex) a.root = global_of_[a.root];
      for (VertexId& v : a.vertices) v = global_of_[v];
      for (VertexId& v : a.keyword_vertices) v = global_of_[v];
    }
    return result;
  }

  StatusOr<BoundaryExport> Boundary() override {
    auto boundary = CurrentBoundary();
    if (boundary == nullptr) return BoundaryExport{};
    return boundary->export_data;
  }

  uint64_t epoch() const override { return inner_->epoch(); }
  uint64_t BumpEpoch() override { return inner_->BumpEpoch(); }
  ServiceStats Snapshot() const override { return inner_->Snapshot(); }
  std::vector<std::string> AlgorithmNames() const override {
    return inner_->AlgorithmNames();
  }
  ServiceIdentity Identity() const override { return inner_->Identity(); }

  /// Translates global endpoints to shard-local ids and forwards only edges
  /// whose BOTH endpoints this shard owns; the rest count as skipped (the
  /// coordinator broadcasts a batch to every shard, and ownership is
  /// disjoint, so exactly one shard applies each intra-shard edge). Ghosts
  /// are present locally but NOT owned: ghost-incident ops are skipped
  /// everywhere — applying one would desync the replica from its owner and
  /// mutate the immutable cut manifest (see DESIGN.md §9 on replanning).
  StatusOr<UpdateOutcome> ApplyUpdate(
      std::span<const GraphUpdate> updates) override {
    if (global_of_.empty()) return inner_->ApplyUpdate(updates);
    std::vector<GraphUpdate> local;
    local.reserve(updates.size());
    uint64_t unowned = 0;
    for (const GraphUpdate& up : updates) {
      VertexId ls, lt;
      if (LocalOf(up.source, &ls) && !is_ghost_[ls] &&
          LocalOf(up.target, &lt) && !is_ghost_[lt]) {
        local.push_back({up.kind, ls, lt});
      } else {
        ++unowned;
      }
    }
    if (local.empty()) {
      UpdateOutcome outcome;
      outcome.skipped = updates.size();
      outcome.epoch = inner_->epoch();
      return outcome;
    }
    StatusOr<UpdateOutcome> outcome = inner_->ApplyUpdate(local);
    if (outcome.ok()) outcome->skipped += unowned;
    return outcome;
  }

  StatusOr<uint64_t> Rollback() override { return inner_->Rollback(); }

 private:
  /// global -> local via binary search: global_of_ is strictly ascending
  /// (ExtractShard's order-preserving invariant).
  bool LocalOf(VertexId global, VertexId* local) const {
    auto it = std::lower_bound(global_of_.begin(), global_of_.end(), global);
    if (it == global_of_.end() || *it != global) return false;
    *local = static_cast<VertexId>(it - global_of_.begin());
    return true;
  }

  /// The vertex an answer's dependence ball is centered on: the root for
  /// rooted semantics, else the smallest keyword vertex (both preserved by
  /// the order-preserving remap, so worker and coordinator agree).
  static VertexId AnchorOf(const Answer& a) {
    if (a.root != kInvalidVertex) return a.root;
    if (a.keyword_vertices.empty()) return kInvalidVertex;
    return *std::min_element(a.keyword_vertices.begin(),
                             a.keyword_vertices.end());
  }

  std::shared_ptr<const ShardBoundary> CurrentBoundary() const {
    std::lock_guard<std::mutex> lock(boundary_mutex_);
    return boundary_;
  }

  QueryService* inner_;
  std::vector<VertexId> global_of_;
  std::vector<bool> is_ghost_;  // indexed by local id
  bool has_ghosts_ = false;
  mutable std::mutex boundary_mutex_;
  std::shared_ptr<const ShardBoundary> boundary_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_QUERY_SERVICE_H_
