// QueryService — the narrow serving interface the protocol front ends
// (LineHandler, TcpServer) and the shard substrate are written against.
//
// Two families implement it:
//   * SearchService — one QueryEngine behind admission control and
//     micro-batching (the monolithic server, and each shard worker).
//   * ShardedSearchService — the scatter-gather coordinator in src/shard/,
//     which fans a query out to N shard substrates and merges top-k.
//
// The interface deliberately excludes SubmitAsync: futures are an
// implementation detail of SearchService's batcher; front ends only need
// the synchronous call (one blocked connection thread per in-flight wire
// request is the TcpServer model).
//
// ShardRemapService is the serving-edge adapter for shard workers: it
// translates answer vertex ids from shard-local to global using the index
// image's remap, so everything downstream — the wire protocol, the
// coordinator's merge — speaks global vertex ids only.

#ifndef BIGINDEX_SERVER_QUERY_SERVICE_H_
#define BIGINDEX_SERVER_QUERY_SERVICE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/query_engine.h"
#include "server/service_stats.h"
#include "util/status.h"

namespace bigindex {

/// What a service is serving: which index image (fingerprint), how deep
/// (layers), and which slice of the graph (shard id / count). The
/// coordinator checks these at attach time (protocol INFO verb) so a
/// misconfigured fleet fails fast instead of merging answers from
/// incompatible indexes. num_shards == 0 means monolithic.
struct ServiceIdentity {
  /// Index-image fingerprint (ImageInfo::fingerprint); 0 when the service
  /// is backed by an index built in memory rather than a loaded image.
  uint64_t fingerprint = 0;
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic

  friend bool operator==(const ServiceIdentity&,
                         const ServiceIdentity&) = default;
};

class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Evaluates one query synchronously. Error statuses per the implementing
  /// service's contract (Unavailable on overload/shutdown, DeadlineExceeded,
  /// InvalidArgument, NotFound).
  virtual StatusOr<QueryResult> Query(EngineQuery query) = 0;

  /// Current index epoch (starts at 1).
  virtual uint64_t epoch() const = 0;

  /// Invalidates answer caches; returns the new epoch.
  virtual uint64_t BumpEpoch() = 0;

  /// Service counters snapshot.
  virtual ServiceStats Snapshot() const = 0;

  /// Registered algorithm names, sorted.
  virtual std::vector<std::string> AlgorithmNames() const = 0;

  /// The identity of the index behind this service (see ServiceIdentity).
  virtual ServiceIdentity Identity() const = 0;
};

/// Adapter that makes a shard worker speak global vertex ids: forwards every
/// call to the wrapped (shard-local) service and rewrites answer vertices
/// through the shard's local->global remap. The remap is strictly ascending
/// (ExtractShard's order-preserving invariant), so rewritten vertex sets
/// stay sorted. With an empty remap the adapter is a transparent pass-through
/// (monolithic worker).
class ShardRemapService : public QueryService {
 public:
  /// `inner` is borrowed and must outlive the adapter.
  ShardRemapService(QueryService* inner, std::vector<VertexId> global_of)
      : inner_(inner), global_of_(std::move(global_of)) {
    // A 1-shard connectivity-closed plan maps every vertex to itself;
    // dropping an identity remap makes Query a pure pass-through instead of
    // rewriting every answer id per request.
    bool identity = true;
    for (size_t i = 0; i < global_of_.size(); ++i) {
      if (global_of_[i] != static_cast<VertexId>(i)) {
        identity = false;
        break;
      }
    }
    if (identity) global_of_.clear();
  }

  StatusOr<QueryResult> Query(EngineQuery query) override {
    StatusOr<QueryResult> result = inner_->Query(std::move(query));
    if (!result.ok() || global_of_.empty()) return result;
    for (Answer& a : result->answers) {
      if (a.root != kInvalidVertex) a.root = global_of_[a.root];
      for (VertexId& v : a.vertices) v = global_of_[v];
      for (VertexId& v : a.keyword_vertices) v = global_of_[v];
    }
    return result;
  }

  uint64_t epoch() const override { return inner_->epoch(); }
  uint64_t BumpEpoch() override { return inner_->BumpEpoch(); }
  ServiceStats Snapshot() const override { return inner_->Snapshot(); }
  std::vector<std::string> AlgorithmNames() const override {
    return inner_->AlgorithmNames();
  }
  ServiceIdentity Identity() const override { return inner_->Identity(); }

 private:
  QueryService* inner_;
  std::vector<VertexId> global_of_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_QUERY_SERVICE_H_
