// The daemon's wire format: one request per line, one dot-terminated
// response block per request. Shared by the TCP server, the in-process
// client, and the protocol tests — the transport only moves lines.
//
// Requests (verbs are case-insensitive; METRICS and metrics are the same):
//   query <algo> <kw1,kw2,...> [top_k=N] [layer=M] [deadline_ms=D]
//         [exact=0|1] [beta=F]
//   stats            service counters snapshot
//   metrics          Prometheus text exposition of the process registry
//   trace on|off     enable / disable span collection
//   trace status     collector state: enabled, threads, events, dropped
//   trace dump       chrome://tracing JSON (single line) of buffered spans
//   trace clear      drop all buffered spans
//   bump             bump the index epoch (invalidates the answer cache)
//   algos            registered algorithm names
//   info             index identity: epoch, image checksum, layer count,
//                    shard id/count, algorithm names — what the shard
//                    coordinator verifies at attach time
//   ping             liveness probe
//   quit             close the session
//
// Keywords are label *names* when the handler has a dictionary, with a
// fallback to numeric label ids; always numeric ids without one.
//
// Responses (every block ends with a line holding a single '.'):
//   OK ...head...          then, for query, one answer per line:
//   A root=<v|-> score=<s> kw=<v1,v2,...> v=<v1,v2,...>
//   .
// or
//   ERR <StatusCode>: <message>
//   .
//
// All vertex ids on the wire are *global*: a shard worker serves behind a
// ShardRemapService, so clients and the coordinator never see shard-local
// ids. The FormatQueryLine / Parse* helpers below are the client side of the
// format, shared by bigindex_client and the RemoteSubstrate fan-out.
//
// Raw payload blocks (metrics, trace dump) are safe inside the framing:
// Prometheus text lines and the one-line JSON dump can never consist of a
// single '.', which is the only line the framing reserves.

#ifndef BIGINDEX_SERVER_LINE_PROTOCOL_H_
#define BIGINDEX_SERVER_LINE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/label_dictionary.h"
#include "server/query_service.h"

namespace bigindex {

/// Stateless per-session request dispatcher over one QueryService (a
/// SearchService, a remapped shard worker, or the sharded coordinator).
class LineHandler {
 public:
  struct Result {
    std::string response;  // complete dot-terminated block, '\n' included
    bool close = false;    // session should end (quit command)
  };

  /// `service` is borrowed and must outlive the handler; `dict` (optional)
  /// enables name-based keywords.
  explicit LineHandler(QueryService* service,
                       const LabelDictionary* dict = nullptr)
      : service_(service), dict_(dict) {}

  /// Handles one request line (no trailing newline) and returns the full
  /// response block. Never throws; malformed input yields an ERR block.
  Result Handle(const std::string& line);

 private:
  QueryService* service_;
  const LabelDictionary* dict_;
};

// ---------------------------------------------------------------------------
// Client-side wire helpers (bigindex_client, shard/RemoteSubstrate)
// ---------------------------------------------------------------------------

/// Serializes `q` as one request line, using numeric keyword ids (parseable
/// by any server, with or without a dictionary). Emits top_k/layer/exact/
/// beta always and deadline_ms only when the deadline is set; answer_gen
/// options are not part of the wire format (server defaults apply).
std::string FormatQueryLine(const EngineQuery& q);

/// Parses one "A root=... score=... kw=... v=..." answer line. Tolerates a
/// missing v= field (older servers) by leaving `vertices` empty.
Status ParseAnswerLine(const std::string& line, Answer* out);

/// Decodes an "ERR <Code>: <message>" line back into the Status it encodes
/// (unrecognized code names decode as IOError). Returns OK only if `line`
/// is not an ERR line at all — check with starts_with("ERR") first.
Status ParseErrLine(const std::string& line);

/// The INFO verb's payload.
struct WireInfo {
  uint64_t epoch = 0;
  uint64_t fingerprint = 0;
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic
  std::vector<std::string> algorithms;
};

/// Parses the "OK epoch=... checksum=... layers=... shard=i/n algos=a,b"
/// head line of an INFO response.
Status ParseInfoLine(const std::string& line, WireInfo* out);

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_LINE_PROTOCOL_H_
