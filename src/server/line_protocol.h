// The daemon's wire format: one request per line, one dot-terminated
// response block per request. Shared by the TCP server, the in-process
// client, and the protocol tests — the transport only moves lines.
//
// Requests (verbs are case-insensitive; METRICS and metrics are the same):
//   query <algo> <kw1,kw2,...> [top_k=N] [layer=M] [deadline_ms=D]
//         [exact=0|1] [beta=F]
//   stats            service counters snapshot
//   metrics          Prometheus text exposition of the process registry
//   trace on|off     enable / disable span collection
//   trace status     collector state: enabled, threads, events, dropped
//   trace dump       chrome://tracing JSON (single line) of buffered spans
//   trace clear      drop all buffered spans
//   bump             bump the index epoch (invalidates the answer cache)
//   update <op> ...  apply an edge-update batch to the served index; each op
//                    is add:<u>:<v> or remove:<u>:<v> with global vertex
//                    ids. Response: OK applied=A skipped=S rebuilt=K
//                    epoch=E mode=none|incremental|wholesale|rebuild.
//                    Read-only services answer ERR Unimplemented.
//   rollback         re-publish the previous retained index version (undo
//                    the last update batch). Response: OK epoch=E. The
//                    version store keeps one generation, so a second
//                    consecutive rollback answers ERR FailedPrecondition;
//                    services without a rollback path answer ERR
//                    Unimplemented.
//   boundary         the shard's boundary export (DESIGN.md §9): the owned
//                    vertices within the locality cap of the partition cut,
//                    their induced edges, and the cut edges themselves, all
//                    in global ids. Response head: OK vertices=N edges=M
//                    cut=C radius=R, then N lines "v <global> <label>",
//                    M lines "e <u> <v>", C lines "c <u> <v>". Ghost-free
//                    workers (monolithic, wcc shards) answer OK vertices=0
//                    edges=0 cut=0 radius=0 with no body.
//   algos            registered algorithm names
//   info             index identity: epoch, image checksum, layer count,
//                    shard id/count, algorithm names — what the shard
//                    coordinator verifies at attach time — plus live-update
//                    counters (updates=a/r/f, rollbacks) and epoch age
//   ping             liveness probe
//   quit             close the session
//
// Keywords are label *names* when the handler has a dictionary, with a
// fallback to numeric label ids; always numeric ids without one.
//
// Responses (every block ends with a line holding a single '.'):
//   OK ...head...          then, for query, one answer per line:
//   A root=<v|-> score=<s> kw=<v1,v2,...> v=<v1,v2,...>
//   .
// or
//   ERR <StatusCode>: <message>
//   .
//
// All vertex ids on the wire are *global*: a shard worker serves behind a
// ShardRemapService, so clients and the coordinator never see shard-local
// ids. The FormatQueryLine / Parse* helpers below are the client side of the
// format, shared by bigindex_client and the RemoteSubstrate fan-out.
//
// Raw payload blocks (metrics, trace dump) are safe inside the framing:
// Prometheus text lines and the one-line JSON dump can never consist of a
// single '.', which is the only line the framing reserves.

#ifndef BIGINDEX_SERVER_LINE_PROTOCOL_H_
#define BIGINDEX_SERVER_LINE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/label_dictionary.h"
#include "server/query_service.h"

namespace bigindex {

/// Stateless per-session request dispatcher over one QueryService (a
/// SearchService, a remapped shard worker, or the sharded coordinator).
class LineHandler {
 public:
  struct Result {
    std::string response;  // complete dot-terminated block, '\n' included
    bool close = false;    // session should end (quit command)
  };

  /// `service` is borrowed and must outlive the handler; `dict` (optional)
  /// enables name-based keywords.
  explicit LineHandler(QueryService* service,
                       const LabelDictionary* dict = nullptr)
      : service_(service), dict_(dict) {}

  /// Handles one request line (no trailing newline) and returns the full
  /// response block. Never throws; malformed input yields an ERR block.
  Result Handle(const std::string& line);

 private:
  QueryService* service_;
  const LabelDictionary* dict_;
};

// ---------------------------------------------------------------------------
// Client-side wire helpers (bigindex_client, shard/RemoteSubstrate)
// ---------------------------------------------------------------------------

/// Serializes `q` as one request line, using numeric keyword ids (parseable
/// by any server, with or without a dictionary). Emits top_k/layer/exact/
/// beta always and deadline_ms only when the deadline is set; answer_gen
/// options are not part of the wire format (server defaults apply).
std::string FormatQueryLine(const EngineQuery& q);

/// Parses one "A root=... score=... kw=... v=..." answer line. Tolerates a
/// missing v= field (older servers) by leaving `vertices` empty.
Status ParseAnswerLine(const std::string& line, Answer* out);

/// Decodes an "ERR <Code>: <message>" line back into the Status it encodes
/// (unrecognized code names decode as IOError). Returns OK only if `line`
/// is not an ERR line at all — check with starts_with("ERR") first.
Status ParseErrLine(const std::string& line);

/// The INFO verb's payload.
struct WireInfo {
  uint64_t epoch = 0;
  uint64_t fingerprint = 0;
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic
  std::vector<std::string> algorithms;
};

/// Parses the "OK epoch=... checksum=... layers=... shard=i/n algos=a,b"
/// head line of an INFO response. Unknown keys are skipped, so newer
/// servers' extra fields (updates=, epoch_age_s=) parse cleanly.
Status ParseInfoLine(const std::string& line, WireInfo* out);

/// Serializes an edge-update batch as one UPDATE request line
/// ("update add:0:1 remove:2:3 ...", global vertex ids).
std::string FormatUpdateLine(std::span<const GraphUpdate> updates);

/// Parses the "OK applied=... skipped=... rebuilt=... epoch=... mode=..."
/// head line of an UPDATE response. applied= and epoch= are required;
/// unknown keys are skipped.
Status ParseUpdateOutcomeLine(const std::string& line, UpdateOutcome* out);

/// Parses a full BOUNDARY response block (head + v/e/c body lines, no dot
/// terminator) back into a BoundaryExport. The head's vertices=/edges=/cut=
/// counts must match the body line counts exactly.
Status ParseBoundaryBlock(std::span<const std::string> lines,
                          BoundaryExport* out);

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_LINE_PROTOCOL_H_
