// The daemon's wire format: one request per line, one dot-terminated
// response block per request. Shared by the TCP server, the in-process
// client, and the protocol tests — the transport only moves lines.
//
// Requests (verbs are case-insensitive; METRICS and metrics are the same):
//   query <algo> <kw1,kw2,...> [top_k=N] [layer=M] [deadline_ms=D]
//         [exact=0|1] [beta=F]
//   stats            service counters snapshot
//   metrics          Prometheus text exposition of the process registry
//   trace on|off     enable / disable span collection
//   trace status     collector state: enabled, threads, events, dropped
//   trace dump       chrome://tracing JSON (single line) of buffered spans
//   trace clear      drop all buffered spans
//   bump             bump the index epoch (invalidates the answer cache)
//   algos            registered algorithm names
//   ping             liveness probe
//   quit             close the session
//
// Keywords are label *names* when the handler has a dictionary, with a
// fallback to numeric label ids; always numeric ids without one.
//
// Responses (every block ends with a line holding a single '.'):
//   OK ...head...          then, for query, one answer per line:
//   A root=<v|-> score=<s> kw=<v1,v2,...>
//   .
// or
//   ERR <StatusCode> <message>
//   .
//
// Raw payload blocks (metrics, trace dump) are safe inside the framing:
// Prometheus text lines and the one-line JSON dump can never consist of a
// single '.', which is the only line the framing reserves.

#ifndef BIGINDEX_SERVER_LINE_PROTOCOL_H_
#define BIGINDEX_SERVER_LINE_PROTOCOL_H_

#include <string>

#include "graph/label_dictionary.h"
#include "server/search_service.h"

namespace bigindex {

/// Stateless per-session request dispatcher over one SearchService.
class LineHandler {
 public:
  struct Result {
    std::string response;  // complete dot-terminated block, '\n' included
    bool close = false;    // session should end (quit command)
  };

  /// `service` is borrowed and must outlive the handler; `dict` (optional)
  /// enables name-based keywords.
  explicit LineHandler(SearchService* service,
                       const LabelDictionary* dict = nullptr)
      : service_(service), dict_(dict) {}

  /// Handles one request line (no trailing newline) and returns the full
  /// response block. Never throws; malformed input yields an ERR block.
  Result Handle(const std::string& line);

 private:
  SearchService* service_;
  const LabelDictionary* dict_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_LINE_PROTOCOL_H_
