// Minimal HTTP scrape endpoint for the process metrics registry.
//
// Speaks just enough HTTP/1.0 for Prometheus and curl:
//   GET /trace      -> 200 application/json, chrome://tracing dump
//   GET <anything>  -> 200 text/plain; version=0.0.4, Prometheus exposition
//
// One acceptor thread; each connection is handled inline (a scrape is a
// single read + write) with a receive timeout so a wedged client cannot
// stall the endpoint for long. This is an operator-facing port: bind it to
// loopback (the default) unless the scraper is remote.

#ifndef BIGINDEX_SERVER_METRICS_HTTP_H_
#define BIGINDEX_SERVER_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/status.h"

namespace bigindex {

struct MetricsHttpOptions {
  /// 0 = pick an ephemeral port (read it back with port()).
  uint16_t port = 0;

  /// Loopback only by default; set false to listen on all interfaces.
  bool loopback_only = true;
};

class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(MetricsHttpOptions options = {})
      : options_(options) {}
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens, and starts the acceptor. IOError on bind/listen
  /// failure (e.g. port in use).
  Status Start();

  /// Stops accepting and joins the acceptor. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  MetricsHttpOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_METRICS_HTTP_H_
