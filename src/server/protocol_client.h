// ProtocolClient — blocking line-protocol TCP client with bounded connect
// timeout and exponential-backoff retry.
//
// The connect path is the availability-critical piece: both bigindex_client
// and the shard coordinator's RemoteSubstrate fan-out go through it, and a
// shard worker that is down, still starting, or unreachable must surface as
// a clean kUnavailable within a bounded time — never a hung connect() or an
// unbounded retry loop. Connection attempts use a non-blocking connect
// polled against the per-attempt timeout; failed attempts back off
// exponentially (base * 2^i, capped) until the retry budget is spent.
//
// Request() speaks the dot-terminated framing of server/line_protocol.h in
// lockstep: send one line, read lines until the terminating "." line. The
// client is not thread-safe; callers serialize (RemoteSubstrate holds one
// mutex per shard connection).

#ifndef BIGINDEX_SERVER_PROTOCOL_CLIENT_H_
#define BIGINDEX_SERVER_PROTOCOL_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace bigindex {

struct ProtocolClientOptions {
  /// Per-attempt connect timeout. Covers the TCP handshake only; I/O on an
  /// established connection is not timed out (the server enforces request
  /// deadlines).
  double connect_timeout_ms = 1000;

  /// Total connection attempts (>= 1). Attempt i sleeps
  /// min(backoff_base_ms * 2^(i-1), backoff_cap_ms) before retrying.
  int max_attempts = 4;
  double backoff_base_ms = 50;
  double backoff_cap_ms = 1000;
};

class ProtocolClient {
 public:
  explicit ProtocolClient(std::string host, uint16_t port,
                          ProtocolClientOptions options = {});
  ~ProtocolClient();

  ProtocolClient(const ProtocolClient&) = delete;
  ProtocolClient& operator=(const ProtocolClient&) = delete;

  /// Establishes the connection, retrying per the options. Unavailable when
  /// the host cannot be reached within the retry budget; InvalidArgument on
  /// an unresolvable host. Idempotent once connected.
  Status Connect();

  /// Sends one request line and reads the full dot-terminated response
  /// block; returns the response lines *without* the terminating ".".
  /// Auto-connects (with the same retry policy) if not connected, and after
  /// an I/O error the next Request() reconnects. Unavailable on connection
  /// loss.
  StatusOr<std::vector<std::string>> Request(const std::string& line);

  /// Closes the connection (re-openable by the next Connect()/Request()).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  /// One non-blocking connect attempt, bounded by connect_timeout_ms.
  Status TryConnectOnce();

  std::string host_;
  uint16_t port_;
  ProtocolClientOptions options_;
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last consumed line
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_PROTOCOL_CLIENT_H_
