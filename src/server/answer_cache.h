// Sharded LRU answer cache for the serving layer.
//
// Entries map a fully-qualified query identity — the cache *key* string the
// SearchService builds from (index epoch, algorithm name, normalized
// keywords, semantic EvalOptions fields) — to an immutable, shared
// QueryResult. Because the epoch is part of the key, invalidation is O(1):
// bumping the epoch makes every live entry unreachable and the LRU sweep
// reclaims the dead generation as new traffic fills the cache.
//
// Concurrency: the key space is split across `shards` independent LRU maps,
// each behind its own mutex, so concurrent clients on different shards never
// contend. Values are shared_ptr<const QueryResult>; a hit hands back a
// reference without copying the answer vectors.

#ifndef BIGINDEX_SERVER_ANSWER_CACHE_H_
#define BIGINDEX_SERVER_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/query_engine.h"

namespace bigindex {

struct AnswerCacheOptions {
  /// Total entries across all shards; 0 disables the cache (every Lookup
  /// misses, Insert is a no-op).
  size_t capacity = 4096;

  /// Independent LRU shards (clamped to >= 1). More shards = less lock
  /// contention; each holds capacity/shards entries.
  size_t shards = 8;
};

/// Monotonic counters (since construction) plus the current entry count.
struct AnswerCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheOptions options = {});

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// The cached result for `key`, refreshed to most-recently-used, or
  /// nullptr on a miss. Counted either way.
  std::shared_ptr<const QueryResult> Lookup(const std::string& key);

  /// Caches `result` under `key`, evicting the shard's least-recently-used
  /// entry when it is full. Re-inserting an existing key refreshes its value
  /// and recency.
  void Insert(const std::string& key, QueryResult result);

  /// Drops every entry (counters keep running).
  void Clear();

  AnswerCacheStats stats() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used. The list owns the key string; the map
    /// indexes into the list.
    std::list<std::pair<std::string, std::shared_ptr<const QueryResult>>> lru;
    std::unordered_map<std::string,
                       decltype(lru)::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> entries_{0};
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_ANSWER_CACHE_H_
