#include "server/answer_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace bigindex {

AnswerCache::AnswerCache(AnswerCacheOptions options)
    : capacity_(options.capacity) {
  size_t num_shards = std::max<size_t>(1, options.shards);
  // A shard below one entry of capacity could never cache anything; keep
  // shards useful even for tiny test capacities.
  if (capacity_ > 0) num_shards = std::min(num_shards, capacity_);
  per_shard_capacity_ = capacity_ == 0 ? 0 : (capacity_ + num_shards - 1) /
                                                 num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const QueryResult> AnswerCache::Lookup(
    const std::string& key) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void AnswerCache::Insert(const std::string& key, QueryResult result) {
  if (capacity_ == 0) return;
  auto value = std::make_shared<const QueryResult>(std::move(result));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

void AnswerCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    entries_.fetch_sub(shard->lru.size(), std::memory_order_relaxed);
    shard->lru.clear();
    shard->index.clear();
  }
}

AnswerCacheStats AnswerCache::stats() const {
  AnswerCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bigindex
