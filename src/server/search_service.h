// SearchService — the admission-controlled, micro-batching front of the
// query path. It turns a (re-entrant but call-shaped) QueryEngine into a
// traffic-shaped component:
//
//   client → [validate + normalize + cache probe]          (caller's thread)
//          → bounded admission queue                        (backpressure)
//          → dynamic micro-batcher                          (batcher thread)
//          → QueryEngine::EvaluateBatch over the ExecutorPool
//          → answer cache fill + promise completion
//
// Contracts:
//   * Admission never blocks. A full queue resolves the request immediately
//     with Unavailable (kRejectNewest) or displaces the oldest queued
//     request (kRejectOldest) — the configurable overload policy.
//   * Malformed requests (empty keywords, unknown algorithm) are rejected at
//     the door with QueryEngine::Validate()'s status, before consuming queue
//     space.
//   * Deadlines are enforced cooperatively at every stage: an expired
//     request is dropped at admission, at batch assembly, or at the
//     evaluator's next candidate-verification checkpoint — and always
//     resolves to DeadlineExceeded with no partial answers.
//   * The answer cache is keyed on (index epoch, algorithm, normalized
//     keywords, semantic eval options). BumpEpoch() invalidates the whole
//     cache in O(1) by making every live key unreachable. Requests that
//     share a key inside one batch are evaluated once (in-batch dedup).
//
// The batcher sizes each EvaluateBatch call dynamically: it drains whatever
// is queued (up to max_batch_size) and, only when that is too little to
// occupy the engine's pool slots, lingers up to max_linger_ms for more
// arrivals — deep queues get big batches with zero added latency, trickle
// traffic pays at most the linger.

#ifndef BIGINDEX_SERVER_SEARCH_SERVICE_H_
#define BIGINDEX_SERVER_SEARCH_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "server/answer_cache.h"
#include "server/query_service.h"
#include "server/service_stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace bigindex {

/// What to do with a request that arrives while the admission queue is full.
enum class OverloadPolicy {
  /// Resolve the *arriving* request with Unavailable (classic backpressure;
  /// the default).
  kRejectNewest,
  /// Admit the arriving request and resolve the *oldest queued* request with
  /// Unavailable (freshness-first, for workloads where stale requests lose
  /// value while queued).
  kRejectOldest,
};

struct SearchServiceOptions {
  /// Admission queue bound; arrivals beyond it trigger overload_policy.
  size_t queue_capacity = 1024;

  /// Largest EvaluateBatch dispatch the micro-batcher assembles.
  size_t max_batch_size = 64;

  /// Longest the batcher waits for more arrivals when the queue alone cannot
  /// fill the engine's pool slots. 0 disables lingering entirely.
  double max_linger_ms = 1.0;

  OverloadPolicy overload_policy = OverloadPolicy::kRejectNewest;

  /// Answer cache switch + sizing. Disabling also disables in-batch dedup
  /// (requests lose their cache-key identity).
  bool enable_cache = true;
  AnswerCacheOptions cache;

  /// Deadline applied to requests that arrive without one; 0 = none.
  double default_deadline_ms = 0;
};

class SearchService : public QueryService {
 public:
  /// The engine must have its algorithm registry finalized before serving
  /// starts (Register() is not thread-safe against evaluation).
  SearchService(std::shared_ptr<const QueryEngine> engine,
                SearchServiceOptions options = {});

  /// Shuts down: in-flight batches complete, queued requests resolve with
  /// Unavailable.
  ~SearchService() override;

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Submits one request; never blocks. The future resolves with the result,
  /// or with Unavailable (overload / shutdown), DeadlineExceeded,
  /// InvalidArgument, or NotFound per the contracts above. The per-request
  /// deadline rides in query.eval.deadline.
  std::future<StatusOr<QueryResult>> SubmitAsync(EngineQuery query);

  /// Synchronous convenience: SubmitAsync + wait. Do not call from the
  /// batcher's own threads.
  StatusOr<QueryResult> Query(EngineQuery query) override;

  /// Current index epoch (starts at 1).
  uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Invalidates the entire answer cache (e.g. after the underlying index
  /// is rebuilt or the registry's algorithm options change) and returns the
  /// new epoch. Already-cached hits handed out before the bump are
  /// unaffected.
  uint64_t BumpEpoch() override;

  /// Coherent-enough snapshot of all counters (individual counters are
  /// exact; cross-counter relations may be mid-update).
  ServiceStats Snapshot() const override;

  /// The engine's registered algorithm names, sorted.
  std::vector<std::string> AlgorithmNames() const override;

  /// Identity of the served index; defaults to "monolithic, no image
  /// fingerprint". The embedder (bigindex_serverd) stamps it after loading
  /// an image with set_identity().
  ServiceIdentity Identity() const override;

  /// Not thread-safe against serving: call before traffic starts.
  void set_identity(const ServiceIdentity& identity) { identity_ = identity; }

  /// Wires the write path (a LiveUpdater::Apply in practice). Without one,
  /// ApplyUpdate returns Unimplemented. Not thread-safe against serving:
  /// call before traffic starts.
  using Updater =
      std::function<StatusOr<UpdateOutcome>(std::span<const GraphUpdate>)>;
  void set_updater(Updater updater) { updater_ = std::move(updater); }

  /// Applies one update batch through the wired updater and folds the
  /// outcome into the service counters. The updater itself is expected to
  /// call SwapEngine() once its successor engine is published (the
  /// publish-then-bump ordering documented on SwapEngine).
  StatusOr<UpdateOutcome> ApplyUpdate(
      std::span<const GraphUpdate> updates) override;

  /// Wires the rollback path (LiveUpdater::Rollback in practice; the
  /// embedder's hook must re-install the previous engine via SwapEngine and
  /// return the new epoch). Without one, Rollback returns Unimplemented.
  /// Not thread-safe against serving: call before traffic starts.
  using Rollbacker = std::function<StatusOr<uint64_t>()>;
  void set_rollbacker(Rollbacker rollbacker) {
    rollbacker_ = std::move(rollbacker);
  }

  /// Re-publishes the previous retained index version through the wired
  /// rollbacker and counts the swap (the ROLLBACK verb).
  StatusOr<uint64_t> Rollback() override;

  /// RCU swap: installs `engine` as the serving engine, then bumps the
  /// epoch, and returns the new epoch. The ordering is load-bearing for
  /// cache coherence: the engine is published BEFORE the bump, and readers
  /// pin their engine snapshot AFTER capturing their cache-key epoch — so a
  /// cache entry keyed with epoch E was always computed on the engine of
  /// epoch E or newer. In-flight batches keep evaluating against the engine
  /// they pinned; the old engine is destroyed when the last of them drops
  /// its reference.
  uint64_t SwapEngine(std::shared_ptr<const QueryEngine> engine);

  /// Idempotent; also run by the destructor.
  void Shutdown();

  const SearchServiceOptions& options() const { return options_; }

  /// Pins the current serving engine. The snapshot stays valid (and
  /// immutable) for as long as the caller holds it, across any number of
  /// concurrent SwapEngine calls.
  std::shared_ptr<const QueryEngine> engine_snapshot() const {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    return engine_;
  }

  /// The cache key for `query` at `epoch` — the query's semantic identity.
  /// Exposed for tests; keywords must already be normalized.
  static std::string CacheKeyFor(uint64_t epoch, const EngineQuery& query);

 private:
  struct Pending {
    EngineQuery query;      // keywords normalized, deadline resolved
    std::string cache_key;  // empty when the cache is disabled
    Timer queued;           // admission → completion latency
    std::promise<StatusOr<QueryResult>> promise;
  };

  void BatcherLoop();
  void ProcessBatch(std::vector<Pending> batch);
  void CompleteOk(Pending& p, QueryResult result);
  void CompleteDeadline(Pending& p, const char* stage);

  mutable std::mutex engine_mutex_;  // guards engine_ (swap vs snapshot)
  std::shared_ptr<const QueryEngine> engine_;
  SearchServiceOptions options_;
  ServiceIdentity identity_;
  Updater updater_;
  Rollbacker rollbacker_;
  AnswerCache cache_;
  Timer uptime_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::once_flag shutdown_once_;
  std::thread batcher_;  // started last in the constructor body

  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_invalid_{0};
  std::atomic<uint64_t> rejected_overload_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_rejected_{0};
  std::atomic<uint64_t> update_fallbacks_{0};
  std::atomic<uint64_t> rollbacks_{0};
  /// Uptime-relative seconds of the last BumpEpoch (0 = service start), so
  /// epoch age is two atomic reads instead of a racy shared Timer.
  std::atomic<double> epoch_changed_at_s_{0};
  LatencyHistogram latency_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SERVER_SEARCH_SERVICE_H_
