#include "server/search_service.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace bigindex {
namespace {

/// Process-wide mirrors of the per-service counters, so `METRICS` and the
/// Prometheus endpoint expose serving health without touching Snapshot().
/// A service keeps its own atomics too: Snapshot() stays per-instance while
/// the registry aggregates across every service in the process.
struct ServerMetrics {
  Counter& requests;
  Counter& rejected_invalid;
  Counter& rejected_overload;
  Counter& completed;
  Counter& deadline_misses;
  Counter& batches;
  Counter& batched_queries;
  Counter& cache_hits;
  Counter& cache_misses;
  Counter& updates_applied;
  Counter& updates_rejected;
  Counter& update_fallbacks;
  Counter& rollbacks;
  Histogram& request_ms;
  Gauge& queue_depth;

  static ServerMetrics& Get() {
    static ServerMetrics* m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return new ServerMetrics{
          reg.GetCounter("bigindex_server_requests_total",
                         "Requests submitted to SearchService"),
          reg.GetCounter("bigindex_server_rejected_invalid_total",
                         "Requests rejected by admission validation"),
          reg.GetCounter("bigindex_server_rejected_overload_total",
                         "Requests shed by the overload policy"),
          reg.GetCounter("bigindex_server_completed_total",
                         "Requests answered OK (cache hits included)"),
          reg.GetCounter("bigindex_server_deadline_misses_total",
                         "Requests expired before or during evaluation"),
          reg.GetCounter("bigindex_server_batches_total",
                         "Micro-batches dispatched to the engine"),
          reg.GetCounter("bigindex_server_batched_queries_total",
                         "Unique queries across dispatched micro-batches"),
          reg.GetCounter("bigindex_server_cache_hits_total",
                         "Answer-cache hits at admission"),
          reg.GetCounter("bigindex_server_cache_misses_total",
                         "Answer-cache misses at admission"),
          reg.GetCounter("bigindex_server_updates_applied_total",
                         "Net edge changes applied through the UPDATE path"),
          reg.GetCounter("bigindex_server_updates_rejected_total",
                         "Update batches rejected (no updater or error)"),
          reg.GetCounter("bigindex_server_update_fallbacks_total",
                         "Update batches that fell back to wholesale or "
                         "full rebuild"),
          reg.GetCounter("bigindex_server_rollbacks_total",
                         "Index versions rolled back through the ROLLBACK "
                         "path"),
          reg.GetHistogram("bigindex_server_request_ms",
                           "Admission-to-completion latency, ms"),
          reg.GetGauge("bigindex_server_queue_depth",
                       "Requests in the admission queue right now"),
      };
    }();
    return *m;
  }
};

}  // namespace

SearchService::SearchService(std::shared_ptr<const QueryEngine> engine,
                             SearchServiceOptions options)
    : engine_(std::move(engine)),
      options_(options),
      cache_(options.enable_cache ? options.cache
                                  : AnswerCacheOptions{.capacity = 0}) {
  // Started here, not in the init list: the batcher touches counters
  // declared after it.
  batcher_ = std::thread([this] { BatcherLoop(); });
}

SearchService::~SearchService() { Shutdown(); }

std::string SearchService::CacheKeyFor(uint64_t epoch,
                                       const EngineQuery& query) {
  // epoch | algorithm | keywords | semantic eval options. The deadline is
  // deliberately excluded: it bounds *when* the answer arrives, not *what*
  // the answer is.
  std::string key;
  key.reserve(64 + query.algorithm.size() + 8 * query.keywords.size());
  key += std::to_string(epoch);
  key += '|';
  key += query.algorithm;
  key += '|';
  for (LabelId k : query.keywords) {
    key += std::to_string(k);
    key += ',';
  }
  const EvalOptions& e = query.eval;
  key += '|';
  key += std::to_string(e.beta);
  key += '|';
  key += std::to_string(e.forced_layer);
  key += '|';
  key += std::to_string(e.top_k);
  key += '|';
  key += e.exact_verification ? '1' : '0';
  key += e.answer_gen.use_path_based ? '1' : '0';
  key += e.answer_gen.use_specialization_order ? '1' : '0';
  key += '|';
  key += std::to_string(e.answer_gen.max_partial_answers);
  return key;
}

std::future<StatusOr<QueryResult>> SearchService::SubmitAsync(
    EngineQuery query) {
  TRACE_SPAN("server/admit");
  ServerMetrics& sm = ServerMetrics::Get();
  std::promise<StatusOr<QueryResult>> promise;
  std::future<StatusOr<QueryResult>> future = promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  sm.requests.Inc();

  Status valid = engine_snapshot()->Validate(query);
  if (!valid.ok()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    sm.rejected_invalid.Inc();
    promise.set_value(std::move(valid));
    return future;
  }
  query.NormalizeKeywords();
  if (options_.default_deadline_ms > 0 && query.eval.deadline.IsNever()) {
    query.eval.deadline = Deadline::After(options_.default_deadline_ms);
  }

  Pending pending;
  pending.query = std::move(query);
  pending.promise = std::move(promise);

  // A dead-on-arrival request is resolved here — it never reaches the
  // engine, so it can never produce (or cost) anything.
  if (pending.query.eval.deadline.Expired()) {
    CompleteDeadline(pending, "before admission");
    return future;
  }

  if (options_.enable_cache) {
    pending.cache_key =
        CacheKeyFor(epoch_.load(std::memory_order_acquire), pending.query);
    if (std::shared_ptr<const QueryResult> hit =
            cache_.Lookup(pending.cache_key)) {
      sm.cache_hits.Inc();
      CompleteOk(pending, QueryResult(*hit));
      return future;
    }
    sm.cache_misses.Inc();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      pending.promise.set_value(
          Status::Unavailable("search service is shut down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      sm.rejected_overload.Inc();
      BIGINDEX_LOG_EVERY_N(kWarning, 1024)
          << "admission queue full (" << queue_.size() << "/"
          << options_.queue_capacity << "), shedding load ("
          << rejected_overload_.load(std::memory_order_relaxed)
          << " rejected so far)";
      if (options_.overload_policy == OverloadPolicy::kRejectNewest) {
        pending.promise.set_value(Status::Unavailable(
            "admission queue full (reject-newest overload policy)"));
        return future;
      }
      Pending oldest = std::move(queue_.front());
      queue_.pop_front();
      oldest.promise.set_value(Status::Unavailable(
          "displaced by a newer request (reject-oldest overload policy)"));
    }
    queue_.push_back(std::move(pending));
    sm.queue_depth.Set(static_cast<int64_t>(queue_.size()));
  }
  work_available_.notify_one();
  return future;
}

StatusOr<QueryResult> SearchService::Query(EngineQuery query) {
  return SubmitAsync(std::move(query)).get();
}

uint64_t SearchService::BumpEpoch() {
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  epoch_changed_at_s_.store(uptime_.ElapsedSeconds(),
                            std::memory_order_relaxed);
  return epoch;
}

uint64_t SearchService::SwapEngine(std::shared_ptr<const QueryEngine> engine) {
  {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    engine_ = std::move(engine);
  }
  // Publish-then-bump (see header): the new engine must be visible before
  // any cache entry can carry the new epoch.
  return BumpEpoch();
}

StatusOr<UpdateOutcome> SearchService::ApplyUpdate(
    std::span<const GraphUpdate> updates) {
  TRACE_SPAN("server/update");
  ServerMetrics& sm = ServerMetrics::Get();
  if (!updater_) {
    updates_rejected_.fetch_add(1, std::memory_order_relaxed);
    sm.updates_rejected.Inc();
    return Status::Unimplemented("service has no update path wired");
  }
  StatusOr<UpdateOutcome> outcome = updater_(updates);
  if (!outcome.ok()) {
    updates_rejected_.fetch_add(1, std::memory_order_relaxed);
    sm.updates_rejected.Inc();
    return outcome;
  }
  // A no-net-effect batch swaps nothing; report the unchanged epoch.
  if (outcome->epoch == 0) outcome->epoch = epoch();
  updates_applied_.fetch_add(outcome->applied, std::memory_order_relaxed);
  sm.updates_applied.Inc(outcome->applied);
  if (outcome->mode == UpdateOutcome::Mode::kWholesale ||
      outcome->mode == UpdateOutcome::Mode::kRebuild) {
    update_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    sm.update_fallbacks.Inc();
  }
  return outcome;
}

StatusOr<uint64_t> SearchService::Rollback() {
  TRACE_SPAN("server/rollback");
  if (!rollbacker_) {
    return Status::Unimplemented("service has no rollback path wired");
  }
  StatusOr<uint64_t> epoch = rollbacker_();
  if (!epoch.ok()) return epoch;
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::Get().rollbacks.Inc();
  return epoch;
}

std::vector<std::string> SearchService::AlgorithmNames() const {
  // Named pin: the returned string_views point into the engine's registry.
  std::shared_ptr<const QueryEngine> engine = engine_snapshot();
  std::vector<std::string> names;
  for (std::string_view name : engine->AlgorithmNames()) {
    names.emplace_back(name);
  }
  return names;
}

ServiceIdentity SearchService::Identity() const { return identity_; }

void SearchService::CompleteOk(Pending& p, QueryResult result) {
  const double ms = p.queued.ElapsedMillis();
  latency_.Record(ms);
  completed_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics& sm = ServerMetrics::Get();
  sm.completed.Inc();
  sm.request_ms.Record(ms);
  p.promise.set_value(std::move(result));
}

void SearchService::CompleteDeadline(Pending& p, const char* stage) {
  deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::Get().deadline_misses.Inc();
  BIGINDEX_LOG_EVERY_N(kWarning, 1024)
      << "deadline miss " << stage << " ("
      << deadline_misses_.load(std::memory_order_relaxed) << " total)";
  p.promise.set_value(Status::DeadlineExceeded(
      std::string("deadline expired ") + stage));
}

void SearchService::BatcherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Moves up to n requests off the queue front into `batch`.
  auto take = [&](size_t n, std::vector<Pending>& batch) {
    n = std::min(n, queue_.size());
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ServerMetrics::Get().queue_depth.Set(static_cast<int64_t>(queue_.size()));
  };

  while (true) {
    work_available_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) break;  // Shutdown() resolves whatever is still queued

    std::vector<Pending> batch;
    take(options_.max_batch_size, batch);

    // Linger only when the drained batch cannot occupy the pool by itself —
    // and only *until* it can: once there is one query per pool slot the
    // dispatch gains nothing from waiting longer, while a deep queue
    // dispatches immediately at full size without entering the loop.
    const size_t target =
        std::min(options_.max_batch_size, engine_snapshot()->num_slots());
    if (batch.size() < target && options_.max_linger_ms > 0) {
      auto linger_until =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.max_linger_ms));
      while (batch.size() < target) {
        if (!work_available_.wait_until(
                lock, linger_until,
                [&] { return stop_ || !queue_.empty(); })) {
          break;  // linger budget spent
        }
        if (stop_) break;  // dispatch what we have, then exit above
        take(options_.max_batch_size - batch.size(), batch);
      }
    }

    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void SearchService::ProcessBatch(std::vector<Pending> batch) {
  TRACE_SPAN("server/batch");
  // Deadline sweep: anything that expired while queued is resolved without
  // touching the engine.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.query.eval.deadline.Expired()) {
      CompleteDeadline(p, "while queued");
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  // In-batch dedup: requests sharing a cache key are one evaluation. The
  // leader runs with the *loosest* deadline of its group so a tight follower
  // can never cancel work a looser member still wants.
  std::vector<size_t> leader_of(live.size());
  std::vector<size_t> leaders;
  if (options_.enable_cache) {
    std::unordered_map<std::string, size_t> first_with_key;
    for (size_t i = 0; i < live.size(); ++i) {
      auto [it, inserted] =
          first_with_key.emplace(live[i].cache_key, leaders.size());
      leader_of[i] = it->second;
      if (inserted) {
        leaders.push_back(i);
      } else {
        Deadline& lead = live[leaders[it->second]].query.eval.deadline;
        const Deadline& mine = live[i].query.eval.deadline;
        if (mine.RemainingMillis() > lead.RemainingMillis()) lead = mine;
      }
    }
  } else {
    leaders.resize(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      leaders[i] = i;
      leader_of[i] = i;
    }
  }

  std::vector<EngineQuery> queries;
  queries.reserve(leaders.size());
  for (size_t li : leaders) queries.push_back(live[li].query);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  ServerMetrics& sm = ServerMetrics::Get();
  sm.batches.Inc();
  sm.batched_queries.Inc(queries.size());

  // Pin the engine AFTER the batch is assembled: every member captured its
  // cache-key epoch at admission (before this point), so the snapshot is at
  // least as new as any epoch in the batch — the other half of SwapEngine's
  // publish-then-bump ordering. The pin also keeps a concurrently swapped-out
  // engine alive until this batch completes (RCU grace period).
  std::shared_ptr<const QueryEngine> engine = engine_snapshot();
  StatusOr<std::vector<QueryResult>> results = engine->EvaluateBatch(queries);
  if (!results.ok()) {
    // Unreachable after per-request Validate(); resolve rather than wedge.
    for (Pending& p : live) p.promise.set_value(results.status());
    return;
  }

  for (size_t i = 0; i < live.size(); ++i) {
    QueryResult& r = (*results)[leader_of[i]];
    if (r.breakdown.deadline_expired) {
      CompleteDeadline(live[i], "during evaluation");
      continue;
    }
    if (options_.enable_cache && i == leaders[leader_of[i]]) {
      cache_.Insert(live[i].cache_key, r);
    }
    CompleteOk(live[i], r);  // copies; the last copy could move, not worth it
  }
}

ServiceStats SearchService::Snapshot() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.queue_depth = queue_.size();
  }
  s.queue_capacity = options_.queue_capacity;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches ? static_cast<double>(s.batched_queries) / s.batches : 0;
  AnswerCacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_evictions = cs.evictions;
  s.cache_entries = cs.entries;
  s.cache_hit_ratio = (cs.hits + cs.misses)
                          ? static_cast<double>(cs.hits) /
                                static_cast<double>(cs.hits + cs.misses)
                          : 0;
  s.p50_ms = latency_.Quantile(0.50);
  s.p95_ms = latency_.Quantile(0.95);
  s.p99_ms = latency_.Quantile(0.99);
  s.uptime_s = uptime_.ElapsedSeconds();
  s.throughput_qps =
      s.uptime_s > 0 ? static_cast<double>(s.completed) / s.uptime_s : 0;
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.updates_rejected = updates_rejected_.load(std::memory_order_relaxed);
  s.update_fallbacks = update_fallbacks_.load(std::memory_order_relaxed);
  s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  s.epoch_age_s =
      s.uptime_s - epoch_changed_at_s_.load(std::memory_order_relaxed);
  if (s.epoch_age_s < 0) s.epoch_age_s = 0;  // clock reads raced; clamp
  return s;
}

void SearchService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_available_.notify_all();
    batcher_.join();
    std::deque<Pending> drained;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      drained.swap(queue_);
    }
    for (Pending& p : drained) {
      p.promise.set_value(
          Status::Unavailable("search service shut down before evaluation"));
    }
  });
}

}  // namespace bigindex
