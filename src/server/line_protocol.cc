#include "server/line_protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace bigindex {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ErrBlock(const Status& status) {
  return "ERR " + status.ToString() + "\n.\n";
}

std::string ErrBlock(const std::string& message) {
  return ErrBlock(Status::InvalidArgument(message));
}

/// Parses "kw1,kw2,..." into label ids — by dictionary name when available,
/// numeric fallback either way.
Status ParseKeywords(const std::string& spec, const LabelDictionary* dict,
                     std::vector<LabelId>* out) {
  std::stringstream kws(spec);
  std::string kw;
  while (std::getline(kws, kw, ',')) {
    if (kw.empty()) continue;
    if (dict != nullptr) {
      LabelId l = dict->Find(kw);
      if (l != kInvalidLabel) {
        out->push_back(l);
        continue;
      }
    }
    if (!AllDigits(kw)) {
      return Status::InvalidArgument("unknown keyword '" + kw + "'");
    }
    out->push_back(static_cast<LabelId>(std::strtoul(kw.c_str(), nullptr,
                                                     10)));
  }
  if (out->empty()) {
    return Status::InvalidArgument("no keywords in '" + spec + "'");
  }
  return Status::OK();
}

/// Applies one "key=value" option token to the query; false = unknown key
/// or bad value.
bool ApplyOption(const std::string& token, EngineQuery* q,
                 std::string* error) {
  size_t eq = token.find('=');
  if (eq == std::string::npos) {
    *error = "malformed option '" + token + "' (want key=value)";
    return false;
  }
  std::string key = token.substr(0, eq);
  std::string value = token.substr(eq + 1);
  if (key == "top_k") {
    q->eval.top_k = static_cast<size_t>(std::strtoul(value.c_str(), nullptr,
                                                     10));
  } else if (key == "layer") {
    q->eval.forced_layer = std::atoi(value.c_str());
  } else if (key == "deadline_ms") {
    q->eval.deadline = Deadline::After(std::atof(value.c_str()));
  } else if (key == "exact") {
    q->eval.exact_verification = value != "0";
  } else if (key == "beta") {
    q->eval.beta = std::atof(value.c_str());
  } else {
    *error = "unknown option '" + key + "'";
    return false;
  }
  return true;
}

std::string HandleTrace(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return ErrBlock("usage: trace on|off|status|dump|clear");
  }
  Tracer& tracer = Tracer::Global();
  const std::string& sub = tokens[1];
  if (sub == "on") {
    tracer.SetEnabled(true);
    return "OK trace=on\n.\n";
  }
  if (sub == "off") {
    tracer.SetEnabled(false);
    return "OK trace=off\n.\n";
  }
  if (sub == "status") {
    Tracer::Stats s = tracer.GetStats();
    std::ostringstream out;
    out << "OK enabled=" << (s.enabled ? 1 : 0) << " threads=" << s.threads
        << " events=" << s.events << " dropped=" << s.dropped << "\n.\n";
    return out.str();
  }
  if (sub == "dump") {
    // The dump is one line of JSON: safe inside the dot-terminated framing.
    return "OK\n" + tracer.DumpJson() + "\n.\n";
  }
  if (sub == "clear") {
    tracer.Clear();
    return "OK cleared\n.\n";
  }
  return ErrBlock("unknown trace subcommand '" + sub + "'");
}

std::string HandleQuery(QueryService& service, const LabelDictionary* dict,
                        const std::vector<std::string>& tokens) {
  if (tokens.size() < 3) {
    return ErrBlock("usage: query <algo> <kw1,kw2,...> [top_k=N] [layer=M] "
                    "[deadline_ms=D] [exact=0|1] [beta=F]");
  }
  EngineQuery q;
  q.algorithm = tokens[1];
  Status parsed = ParseKeywords(tokens[2], dict, &q.keywords);
  if (!parsed.ok()) return ErrBlock(parsed);
  for (size_t i = 3; i < tokens.size(); ++i) {
    std::string error;
    if (!ApplyOption(tokens[i], &q, &error)) return ErrBlock(error);
  }

  StatusOr<QueryResult> result = service.Query(std::move(q));
  if (!result.ok()) return ErrBlock(result.status());

  std::ostringstream out;
  out << "OK n=" << result->answers.size() << " ms=" << result->wall_ms
      << " layer=" << result->breakdown.layer << "\n";
  for (const Answer& a : result->answers) {
    out << "A root=";
    if (a.root == kInvalidVertex) {
      out << '-';
    } else {
      out << a.root;
    }
    out << " score=" << a.score << " kw=";
    for (size_t i = 0; i < a.keyword_vertices.size(); ++i) {
      if (i) out << ',';
      out << a.keyword_vertices[i];
    }
    out << " v=";
    for (size_t i = 0; i < a.vertices.size(); ++i) {
      if (i) out << ',';
      out << a.vertices[i];
    }
    out << "\n";
  }
  out << ".\n";
  return out.str();
}

std::string HandleInfo(QueryService& service) {
  ServiceIdentity id = service.Identity();
  ServiceStats stats = service.Snapshot();
  std::ostringstream out;
  out << "OK epoch=" << service.epoch() << " checksum=" << std::hex
      << id.fingerprint << std::dec << " layers=" << id.num_layers
      << " shard=" << id.shard_id << '/' << id.num_shards << " algos=";
  std::vector<std::string> algos = service.AlgorithmNames();
  for (size_t i = 0; i < algos.size(); ++i) {
    if (i) out << ',';
    out << algos[i];
  }
  // Live-update health; older ParseInfoLine implementations skip unknown
  // keys, so these are backward-compatible additions.
  out << " updates=" << stats.updates_applied << '/' << stats.updates_rejected
      << '/' << stats.update_fallbacks;
  out << " rollbacks=" << stats.rollbacks;
  out.precision(1);
  out << " epoch_age_s=" << std::fixed << stats.epoch_age_s;
  out << "\n.\n";
  return out.str();
}

/// Parses one "add:<u>:<v>" / "remove:<u>:<v>" op token.
Status ParseUpdateOp(const std::string& token, GraphUpdate* out) {
  size_t c1 = token.find(':');
  size_t c2 = c1 == std::string::npos ? std::string::npos
                                      : token.find(':', c1 + 1);
  if (c2 == std::string::npos) {
    return Status::InvalidArgument("malformed update op '" + token +
                                   "' (want add:<u>:<v> or remove:<u>:<v>)");
  }
  std::string kind = token.substr(0, c1);
  std::string u = token.substr(c1 + 1, c2 - c1 - 1);
  std::string v = token.substr(c2 + 1);
  if (kind == "add") {
    out->kind = GraphUpdate::Kind::kAddEdge;
  } else if (kind == "remove") {
    out->kind = GraphUpdate::Kind::kRemoveEdge;
  } else {
    return Status::InvalidArgument("unknown update op kind '" + kind + "'");
  }
  if (!AllDigits(u) || !AllDigits(v)) {
    return Status::InvalidArgument("bad vertex id in update op '" + token +
                                   "'");
  }
  out->source = static_cast<VertexId>(std::strtoul(u.c_str(), nullptr, 10));
  out->target = static_cast<VertexId>(std::strtoul(v.c_str(), nullptr, 10));
  return Status::OK();
}

std::string HandleUpdate(QueryService& service,
                         const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    return ErrBlock("usage: update (add:<u>:<v>|remove:<u>:<v>)...");
  }
  std::vector<GraphUpdate> updates;
  updates.reserve(tokens.size() - 1);
  for (size_t i = 1; i < tokens.size(); ++i) {
    GraphUpdate up;
    Status parsed = ParseUpdateOp(tokens[i], &up);
    if (!parsed.ok()) return ErrBlock(parsed);
    updates.push_back(up);
  }
  StatusOr<UpdateOutcome> outcome = service.ApplyUpdate(updates);
  if (!outcome.ok()) return ErrBlock(outcome.status());
  std::ostringstream out;
  out << "OK applied=" << outcome->applied << " skipped=" << outcome->skipped
      << " rebuilt=" << outcome->layers_rebuilt
      << " epoch=" << outcome->epoch << " mode=" << UpdateModeName(
             outcome->mode) << "\n.\n";
  return out.str();
}

std::string HandleBoundary(QueryService& service) {
  StatusOr<BoundaryExport> ex = service.Boundary();
  if (!ex.ok()) return ErrBlock(ex.status());
  std::ostringstream out;
  out << "OK vertices=" << ex->vertices.size() << " edges="
      << ex->edges.size() << " cut=" << ex->cut_edges.size()
      << " radius=" << ex->radius_cap << "\n";
  for (const auto& [id, label] : ex->vertices) {
    out << "v " << id << ' ' << label << "\n";
  }
  for (const auto& [u, v] : ex->edges) out << "e " << u << ' ' << v << "\n";
  for (const auto& [u, v] : ex->cut_edges) {
    out << "c " << u << ' ' << v << "\n";
  }
  out << ".\n";
  return out.str();
}

}  // namespace

LineHandler::Result LineHandler::Handle(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return {ErrBlock("empty request"), false};
  std::string cmd = tokens[0];
  std::transform(cmd.begin(), cmd.end(), cmd.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });

  if (cmd == "query") {
    return {HandleQuery(*service_, dict_, tokens), false};
  }
  if (cmd == "stats") {
    return {"OK " + service_->Snapshot().ToString() + "\n.\n", false};
  }
  if (cmd == "metrics") {
    return {"OK\n" + MetricsRegistry::Global().RenderPrometheus() + ".\n",
            false};
  }
  if (cmd == "trace") {
    return {HandleTrace(tokens), false};
  }
  if (cmd == "bump") {
    return {"OK epoch=" + std::to_string(service_->BumpEpoch()) + "\n.\n",
            false};
  }
  if (cmd == "update") {
    return {HandleUpdate(*service_, tokens), false};
  }
  if (cmd == "rollback") {
    StatusOr<uint64_t> epoch = service_->Rollback();
    if (!epoch.ok()) return {ErrBlock(epoch.status()), false};
    return {"OK epoch=" + std::to_string(*epoch) + "\n.\n", false};
  }
  if (cmd == "boundary") {
    return {HandleBoundary(*service_), false};
  }
  if (cmd == "algos") {
    std::string out = "OK";
    for (const std::string& name : service_->AlgorithmNames()) {
      out += ' ';
      out += name;
    }
    return {out + "\n.\n", false};
  }
  if (cmd == "info") {
    return {HandleInfo(*service_), false};
  }
  if (cmd == "ping") {
    return {"OK pong\n.\n", false};
  }
  if (cmd == "quit") {
    return {"OK bye\n.\n", true};
  }
  return {ErrBlock("unknown command '" + cmd + "'"), false};
}

// ---------------------------------------------------------------------------
// Client-side wire helpers
// ---------------------------------------------------------------------------

namespace {

/// Round-trip double formatting (beta on the wire).
std::string FormatDouble(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

Status ParseVertexList(const std::string& spec, std::vector<VertexId>* out) {
  std::stringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!AllDigits(tok)) {
      return Status::IOError("bad vertex id '" + tok + "' in answer line");
    }
    out->push_back(static_cast<VertexId>(std::strtoul(tok.c_str(), nullptr,
                                                      10)));
  }
  return Status::OK();
}

}  // namespace

std::string FormatQueryLine(const EngineQuery& q) {
  std::ostringstream out;
  out << "query " << q.algorithm << ' ';
  for (size_t i = 0; i < q.keywords.size(); ++i) {
    if (i) out << ',';
    out << q.keywords[i];
  }
  out << " top_k=" << q.eval.top_k << " layer=" << q.eval.forced_layer
      << " exact=" << (q.eval.exact_verification ? 1 : 0)
      << " beta=" << FormatDouble(q.eval.beta);
  if (!q.eval.deadline.IsNever()) {
    out << " deadline_ms=" << FormatDouble(q.eval.deadline.RemainingMillis());
  }
  return out.str();
}

Status ParseAnswerLine(const std::string& line, Answer* out) {
  *out = Answer{};
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "A") {
    return Status::IOError("not an answer line: '" + line + "'");
  }
  for (size_t i = 1; i < tokens.size(); ++i) {
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::IOError("malformed answer field '" + tokens[i] + "'");
    }
    std::string key = tokens[i].substr(0, eq);
    std::string value = tokens[i].substr(eq + 1);
    if (key == "root") {
      if (value == "-") {
        out->root = kInvalidVertex;
      } else if (AllDigits(value)) {
        out->root = static_cast<VertexId>(std::strtoul(value.c_str(), nullptr,
                                                       10));
      } else {
        return Status::IOError("bad root '" + value + "'");
      }
    } else if (key == "score") {
      if (!AllDigits(value)) return Status::IOError("bad score '" + value + "'");
      out->score = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr,
                                                      10));
    } else if (key == "kw") {
      BIGINDEX_RETURN_IF_ERROR(ParseVertexList(value, &out->keyword_vertices));
    } else if (key == "v") {
      BIGINDEX_RETURN_IF_ERROR(ParseVertexList(value, &out->vertices));
    } else {
      return Status::IOError("unknown answer field '" + key + "'");
    }
  }
  return Status::OK();
}

Status ParseErrLine(const std::string& line) {
  if (!line.starts_with("ERR")) return Status::OK();
  std::string rest = line.size() > 4 ? line.substr(4) : "";
  std::string code = rest, message;
  size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    code = rest.substr(0, colon);
    message = rest.substr(colon + 1);
    if (!message.empty() && message.front() == ' ') message.erase(0, 1);
  }
  if (code == "InvalidArgument") return Status::InvalidArgument(message);
  if (code == "NotFound") return Status::NotFound(message);
  if (code == "Corruption") return Status::Corruption(message);
  if (code == "IOError") return Status::IOError(message);
  if (code == "FailedPrecondition") return Status::FailedPrecondition(message);
  if (code == "OutOfRange") return Status::OutOfRange(message);
  if (code == "Unimplemented") return Status::Unimplemented(message);
  if (code == "DeadlineExceeded") return Status::DeadlineExceeded(message);
  if (code == "Unavailable") return Status::Unavailable(message);
  return Status::IOError("server error: " + rest);
}

Status ParseInfoLine(const std::string& line, WireInfo* out) {
  *out = WireInfo{};
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "OK") {
    return Status::IOError("not an INFO response: '" + line + "'");
  }
  bool saw_epoch = false, saw_shard = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) continue;
    std::string key = tokens[i].substr(0, eq);
    std::string value = tokens[i].substr(eq + 1);
    if (key == "epoch") {
      saw_epoch = true;
      out->epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "checksum") {
      out->fingerprint = std::strtoull(value.c_str(), nullptr, 16);
    } else if (key == "layers") {
      out->num_layers =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "shard") {
      saw_shard = true;
      size_t slash = value.find('/');
      if (slash == std::string::npos) {
        return Status::IOError("malformed shard field '" + value + "'");
      }
      out->shard_id =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
      out->num_shards = static_cast<uint32_t>(
          std::strtoul(value.c_str() + slash + 1, nullptr, 10));
    } else if (key == "algos") {
      std::stringstream in(value);
      std::string name;
      while (std::getline(in, name, ',')) {
        if (!name.empty()) out->algorithms.push_back(name);
      }
    }
  }
  if (!saw_epoch || !saw_shard) {
    return Status::IOError("INFO response missing required fields: '" +
                           line + "'");
  }
  return Status::OK();
}

std::string FormatUpdateLine(std::span<const GraphUpdate> updates) {
  std::ostringstream out;
  out << "update";
  for (const GraphUpdate& up : updates) {
    out << (up.kind == GraphUpdate::Kind::kAddEdge ? " add:" : " remove:")
        << up.source << ':' << up.target;
  }
  return out.str();
}

Status ParseUpdateOutcomeLine(const std::string& line, UpdateOutcome* out) {
  *out = UpdateOutcome{};
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "OK") {
    return Status::IOError("not an UPDATE response: '" + line + "'");
  }
  bool saw_applied = false, saw_epoch = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) continue;
    std::string key = tokens[i].substr(0, eq);
    std::string value = tokens[i].substr(eq + 1);
    if (key == "applied") {
      saw_applied = true;
      out->applied = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "skipped") {
      out->skipped = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rebuilt") {
      out->layers_rebuilt = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "epoch") {
      saw_epoch = true;
      out->epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "mode") {
      if (value == "none") {
        out->mode = UpdateOutcome::Mode::kNone;
      } else if (value == "incremental") {
        out->mode = UpdateOutcome::Mode::kIncremental;
      } else if (value == "wholesale") {
        out->mode = UpdateOutcome::Mode::kWholesale;
      } else if (value == "rebuild") {
        out->mode = UpdateOutcome::Mode::kRebuild;
      } else {
        return Status::IOError("unknown update mode '" + value + "'");
      }
    }
  }
  if (!saw_applied || !saw_epoch) {
    return Status::IOError("UPDATE response missing required fields: '" +
                           line + "'");
  }
  return Status::OK();
}

Status ParseBoundaryBlock(std::span<const std::string> lines,
                          BoundaryExport* out) {
  *out = BoundaryExport{};
  if (lines.empty()) return Status::IOError("empty BOUNDARY response");
  std::vector<std::string> head = Tokenize(lines[0]);
  if (head.empty() || head[0] != "OK") {
    return Status::IOError("not a BOUNDARY response: '" + lines[0] + "'");
  }
  size_t want_vertices = 0, want_edges = 0, want_cut = 0;
  bool saw_vertices = false, saw_cut = false;
  for (size_t i = 1; i < head.size(); ++i) {
    size_t eq = head[i].find('=');
    if (eq == std::string::npos) continue;
    std::string key = head[i].substr(0, eq);
    const char* value = head[i].c_str() + eq + 1;
    if (key == "vertices") {
      saw_vertices = true;
      want_vertices = std::strtoull(value, nullptr, 10);
    } else if (key == "edges") {
      want_edges = std::strtoull(value, nullptr, 10);
    } else if (key == "cut") {
      saw_cut = true;
      want_cut = std::strtoull(value, nullptr, 10);
    } else if (key == "radius") {
      out->radius_cap =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    }
  }
  if (!saw_vertices || !saw_cut) {
    return Status::IOError("BOUNDARY response missing required fields: '" +
                           lines[0] + "'");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> tokens = Tokenize(lines[i]);
    if (tokens.size() != 3 ||
        !AllDigits(tokens[1]) || !AllDigits(tokens[2])) {
      return Status::IOError("malformed boundary record '" + lines[i] + "'");
    }
    auto first = static_cast<VertexId>(
        std::strtoul(tokens[1].c_str(), nullptr, 10));
    auto second = static_cast<VertexId>(
        std::strtoul(tokens[2].c_str(), nullptr, 10));
    if (tokens[0] == "v") {
      out->vertices.emplace_back(first, static_cast<LabelId>(second));
    } else if (tokens[0] == "e") {
      out->edges.emplace_back(first, second);
    } else if (tokens[0] == "c") {
      out->cut_edges.emplace_back(first, second);
    } else {
      return Status::IOError("unknown boundary record kind '" + tokens[0] +
                             "'");
    }
  }
  if (out->vertices.size() != want_vertices ||
      out->edges.size() != want_edges || out->cut_edges.size() != want_cut) {
    return Status::IOError("BOUNDARY body does not match head counts");
  }
  return Status::OK();
}

}  // namespace bigindex
