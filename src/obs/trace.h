// Scoped-span tracing with per-thread ring buffers and a chrome://tracing
// JSON dump.
//
//   TRACE_SPAN("bisim/round");         // RAII: records [ctor, dtor)
//
// Disabled (the default) a span is one relaxed atomic load and a branch —
// no clock read, no store, nothing visible to the hot path. Enabled, the
// constructor reads the monotonic clock and the destructor appends one
// fixed-size event to the calling thread's ring buffer under that buffer's
// (uncontended) mutex. Rings hold the most recent kRingCapacity events per
// thread; older events are overwritten and counted as dropped.
//
// Span names must be string literals (the tracer stores the pointer, not a
// copy) and follow the `layer/phase` taxonomy documented in
// docs/OBSERVABILITY.md. Nesting needs no bookkeeping: chrome://tracing
// nests complete ("ph":"X") events of one thread by time containment.
//
// DumpJson() output loads directly in chrome://tracing or
// https://ui.perfetto.dev: save it to a file and open it.

#ifndef BIGINDEX_OBS_TRACE_H_
#define BIGINDEX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bigindex {
namespace internal {

/// Process-wide tracing switch, inline so the disabled check compiles to a
/// load + branch at every span site. Flip through Tracer, not directly.
inline std::atomic<bool> g_trace_enabled{false};

/// Microseconds on the steady clock since the first call (one epoch for the
/// whole process, so spans from different threads share a timeline).
uint64_t TraceNowMicros();

}  // namespace internal

/// Process-wide collector of span events.
class Tracer {
 public:
  /// Events each thread's ring holds before the oldest are overwritten.
  static constexpr size_t kRingCapacity = 8192;

  static Tracer& Global();

  /// Enables/disables span recording everywhere. Cheap to toggle at any
  /// time; spans already open record on close only if tracing is still
  /// enabled when they opened (they carry their own decision).
  void SetEnabled(bool enabled) {
    internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Appends one completed span for the calling thread. Called by TraceSpan;
  /// rarely useful directly.
  void Append(const char* name, uint64_t start_us, uint64_t dur_us);

  /// All buffered events as a chrome://tracing JSON document
  /// ({"traceEvents":[...]}, complete events, µs timestamps). Single line —
  /// safe to ship over the line protocol.
  std::string DumpJson() const;

  /// Drops all buffered events (the buffers themselves persist).
  void Clear();

  struct Stats {
    bool enabled = false;
    size_t threads = 0;   // threads that ever recorded a span
    size_t events = 0;    // events currently buffered
    uint64_t dropped = 0; // events overwritten by ring wrap-around
  };
  Stats GetStats() const;

 private:
  struct Event {
    const char* name;
    uint64_t start_us;
    uint64_t dur_us;
  };
  struct ThreadBuffer {
    mutable std::mutex mutex;
    uint32_t tid = 0;
    std::vector<Event> ring;  // capacity kRingCapacity once first used
    size_t next = 0;          // ring cursor
    uint64_t total = 0;       // events ever appended
  };

  ThreadBuffer& BufferForThisThread();

  mutable std::mutex buffers_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span. Decides at construction whether tracing is on; a disabled
/// span's destructor is a branch on a member.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(Tracer::Enabled() ? name : nullptr) {
    if (name_ != nullptr) start_us_ = internal::TraceNowMicros();
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::Global().Append(name_, start_us_,
                              internal::TraceNowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_ = 0;
};

}  // namespace bigindex

#define BIGINDEX_TRACE_CONCAT_(a, b) a##b
#define BIGINDEX_TRACE_CONCAT(a, b) BIGINDEX_TRACE_CONCAT_(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define TRACE_SPAN(name) \
  ::bigindex::TraceSpan BIGINDEX_TRACE_CONCAT(bigindex_trace_span_, \
                                              __COUNTER__)(name)

#endif  // BIGINDEX_OBS_TRACE_H_
