#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bigindex {
namespace {

/// One Prometheus sample line: name, optional label block, value.
void AppendSample(std::string& out, std::string_view name,
                  std::string_view labels, std::string_view extra_label,
                  double value) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  char buf[48];
  // %.17g round-trips doubles; integral values still print bare.
  double rounded = std::nearbyint(value);
  if (value == rounded && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), " %.0f\n", value);
  } else {
    std::snprintf(buf, sizeof(buf), " %.9g\n", value);
  }
  out += buf;
}

}  // namespace

size_t Histogram::BucketFor(double v) {
  if (!(v > kBase)) return 0;  // also catches NaN and negatives
  double idx = std::log(v / kBase) / std::log(kGrowth);
  return std::min(kBuckets - 1, static_cast<size_t>(idx));
}

double Histogram::BucketUpper(size_t bucket) {
  return kBase * std::pow(kGrowth, static_cast<double>(bucket + 1));
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Quantile(double q) const {
  std::array<uint64_t, kBuckets> snap;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile observation, 1-based, ceiling (p50 of 2 obs = #1).
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (seen >= rank) return BucketUpper(i);
  }
  return BucketUpper(kBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(std::string_view name,
                                                    std::string_view help,
                                                    std::string_view labels,
                                                    Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.help = help;
    family.kind = kind;
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  Family& family = it->second;
  auto make_series = [&] {
    auto series = std::make_unique<Series>();
    series->labels = labels;
    switch (kind) {
      case Kind::kCounter: series->counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: series->gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        series->histogram = std::make_unique<Histogram>();
        break;
    }
    return series;
  };
  if (family.kind != kind) {
    // Same name, different kind: park the metric off to the side so the
    // caller's reference is valid, and count the programming error.
    detached_.push_back(make_series());
    Series& s = *detached_.back();
    auto self = families_.find("bigindex_obs_detached_total");
    if (self == families_.end()) {
      Family fam;
      fam.help = "Metric registrations whose kind conflicted with the name";
      fam.kind = Kind::kCounter;
      self = families_
                 .emplace(std::string("bigindex_obs_detached_total"),
                          std::move(fam))
                 .first;
      auto counter_series = std::make_unique<Series>();
      counter_series->counter = std::make_unique<Counter>();
      self->second.series.push_back(std::move(counter_series));
    }
    self->second.series.front()->counter->Inc();
    return s;
  }
  for (auto& series : family.series) {
    if (series->labels == labels) return *series;
  }
  family.series.push_back(make_series());
  return *family.series.back();
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  return *GetSeries(name, help, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  return *GetSeries(name, help, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::string_view labels) {
  return *GetSeries(name, help, labels, Kind::kHistogram).histogram;
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += family.help;
    out += '\n';
    out += "# TYPE ";
    out += name;
    switch (family.kind) {
      case Kind::kCounter: out += " counter\n"; break;
      case Kind::kGauge: out += " gauge\n"; break;
      case Kind::kHistogram: out += " summary\n"; break;
    }
    for (const auto& series : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          AppendSample(out, name, series->labels, {},
                       static_cast<double>(series->counter->value()));
          break;
        case Kind::kGauge:
          AppendSample(out, name, series->labels, {},
                       static_cast<double>(series->gauge->value()));
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series->histogram;
          AppendSample(out, name, series->labels, "quantile=\"0.5\"",
                       h.Quantile(0.5));
          AppendSample(out, name, series->labels, "quantile=\"0.9\"",
                       h.Quantile(0.9));
          AppendSample(out, name, series->labels, "quantile=\"0.99\"",
                       h.Quantile(0.99));
          AppendSample(out, std::string(name) + "_sum", series->labels, {},
                       h.sum());
          AppendSample(out, std::string(name) + "_count", series->labels, {},
                       static_cast<double>(h.count()));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace bigindex
