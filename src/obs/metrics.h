// Process-wide metrics: lock-free counters, gauges, and log-bucketed
// histograms behind one registry with Prometheus text exposition.
//
// Everything here is zero-dependency and hot-path-safe: recording is one
// relaxed atomic RMW (Counter/Gauge) or two (Histogram bucket + sum), with
// no locks and no allocation. The registry itself is only locked at metric
// *registration* and at render time — instrumented call sites hold a
// reference obtained once (typically through a function-local static), so
// steady state never touches the registry map.
//
//   static Counter& c = MetricsRegistry::Global().GetCounter(
//       "bigindex_engine_queries_total", "Queries evaluated");
//   c.Inc();
//
// Labeled series are separate registry entries of one family, keyed by a
// preformatted label block: GetCounter(name, help, R"(algorithm="bkws")").
// The full metric catalog lives in docs/OBSERVABILITY.md — add new metrics
// there when adding them here.

#ifndef BIGINDEX_OBS_METRICS_H_
#define BIGINDEX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bigindex {

/// Monotonically increasing event count. Wait-free, relaxed ordering —
/// counts are advisory telemetry, never synchronization.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed level (queue depth, entries held). Wait-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed distribution, generalized from the serving layer's original
/// LatencyHistogram (server/service_stats.h still aliases this type).
///
/// Bucket i covers [kBase * kGrowth^i, kBase * kGrowth^(i+1)); with the
/// defaults that is geometric coverage from 1e-3 up to ~1.6e3 in the
/// recorded unit at ~25% resolution — for values in milliseconds, 1 µs up
/// to ~1.6 s, the range the request path and the construction phases live
/// in. Values at or below kBase land in bucket 0; the last bucket absorbs
/// everything above the range. Recording is two relaxed atomic RMWs
/// (bucket count + running sum); Quantile() reads an upper estimate within
/// one bucket's width (the bucket's upper bound at the requested rank).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;
  static constexpr double kBase = 1e-3;
  static constexpr double kGrowth = 1.25;

  /// Records one observation. Thread-safe, wait-free.
  void Record(double v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket
  /// containing the q-th ranked observation. 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound of bucket `i` in the recorded unit (exposed for the
  /// quantile-oracle tests).
  static double BucketUpper(size_t bucket);

 private:
  static size_t BucketFor(double v);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

/// Name-keyed home of every metric in the process. Metrics are created on
/// first GetX() and live as long as the registry (references never dangle);
/// re-requesting the same (name, labels) returns the same object, so
/// concurrent registration from many threads is safe and idempotent.
///
/// Instrumented code uses the process-wide Global() instance; tests may
/// construct private registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `name` follows Prometheus conventions (snake_case, `_total` suffix for
  /// counters, unit suffix like `_ms` otherwise); `labels` is a preformatted
  /// label block without braces, e.g. `algorithm="bkws"`, empty for an
  /// unlabeled series. `help` is kept from the first registration of the
  /// family. Requesting an existing name with a different metric kind
  /// returns a detached metric (recorded but never rendered) rather than
  /// aliasing — a programming error surfaced by the *_detached_total self
  /// metric.
  Counter& GetCounter(std::string_view name, std::string_view help,
                      std::string_view labels = {});
  Gauge& GetGauge(std::string_view name, std::string_view help,
                  std::string_view labels = {});
  Histogram& GetHistogram(std::string_view name, std::string_view help,
                          std::string_view labels = {});

  /// Prometheus text exposition (format 0.0.4): `# HELP` / `# TYPE` headers
  /// and one sample line per series, histograms as summaries with
  /// quantile={0.5,0.9,0.99} plus _sum and _count. Families render in
  /// name order; a render is a consistent-enough snapshot (each sample is
  /// individually atomic).
  std::string RenderPrometheus() const;

  /// Number of registered series across all families (tests).
  size_t NumSeries() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind;
    std::vector<std::unique_ptr<Series>> series;
  };

  Series& GetSeries(std::string_view name, std::string_view help,
                    std::string_view labels, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
  // Kind-mismatched requests park their metric here so the returned
  // reference stays valid without corrupting the family's exposition.
  std::vector<std::unique_ptr<Series>> detached_;
};

}  // namespace bigindex

#endif  // BIGINDEX_OBS_METRICS_H_
