#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace bigindex {
namespace internal {

uint64_t TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

}  // namespace internal

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
  return *tracer;                        // append during static teardown
}

Tracer::ThreadBuffer& Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* tls = nullptr;
  if (tls == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    tls = buffer.get();
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    buffers_.push_back(std::move(buffer));
  }
  return *tls;
}

void Tracer::Append(const char* name, uint64_t start_us, uint64_t dur_us) {
  ThreadBuffer& buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.ring.size() < kRingCapacity) {
    buffer.ring.push_back({name, start_us, dur_us});
  } else {
    buffer.ring[buffer.next] = {name, start_us, dur_us};
    buffer.next = (buffer.next + 1) % kRingCapacity;
  }
  ++buffer.total;
}

namespace {

/// Span names are compile-time literals under our control, but escape
/// anyway so a stray quote can never corrupt the document.
void AppendJsonString(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string Tracer::DumpJson() const {
  // Snapshot each buffer under its own lock; events keep arriving on other
  // threads while we dump, which is fine — a dump is a moment's view.
  struct Snapshot {
    uint32_t tid;
    std::vector<Event> events;
  };
  std::vector<Snapshot> snapshots;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    snapshots.reserve(buffers_.size());
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      snapshots.push_back({buffer->tid, buffer->ring});
    }
  }

  std::string out;
  out.reserve(256 + snapshots.size() * 64);
  out += R"({"displayTimeUnit":"ms","traceEvents":[)";
  bool first = true;
  char buf[96];
  for (const Snapshot& snap : snapshots) {
    for (const Event& e : snap.events) {
      if (!first) out += ',';
      first = false;
      out += R"({"name":)";
      AppendJsonString(out, e.name);
      std::snprintf(buf, sizeof(buf),
                    ",\"cat\":\"bigindex\",\"ph\":\"X\",\"ts\":%llu,"
                    "\"dur\":%llu,\"pid\":1,\"tid\":%u}",
                    static_cast<unsigned long long>(e.start_us),
                    static_cast<unsigned long long>(e.dur_us), snap.tid);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->total = 0;
  }
}

Tracer::Stats Tracer::GetStats() const {
  Stats stats;
  stats.enabled = Enabled();
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  stats.threads = buffers_.size();
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    stats.events += buffer->ring.size();
    stats.dropped += buffer->total > buffer->ring.size()
                         ? buffer->total - buffer->ring.size()
                         : 0;
  }
  return stats;
}

}  // namespace bigindex
