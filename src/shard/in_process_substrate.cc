#include "shard/in_process_substrate.h"

#include <utility>

namespace bigindex {

StatusOr<std::unique_ptr<InProcessSubstrate>> InProcessSubstrate::Create(
    std::vector<BuiltShard> shards, InProcessSubstrateOptions options) {
  if (shards.empty()) {
    return Status::InvalidArgument("substrate needs at least one shard");
  }
  auto substrate = std::unique_ptr<InProcessSubstrate>(
      new InProcessSubstrate());
  for (size_t s = 0; s < shards.size(); ++s) {
    BuiltShard& built = shards[s];
    if (built.shard.shard_id != s ||
        built.shard.num_shards != shards.size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " carries identity " +
          std::to_string(built.shard.shard_id) + "/" +
          std::to_string(built.shard.num_shards));
    }
    auto shard = std::make_unique<Shard>();
    uint32_t num_layers =
        static_cast<uint32_t>(built.index.NumLayers());
    // The index is held behind a shared_ptr so the live updater can pin the
    // current generation while it builds a successor (RCU hand-off).
    auto index = std::make_shared<const BigIndex>(std::move(built.index));
    const QueryEngineOptions engine_opts{.num_threads =
                                             options.engine_threads};
    auto engine = std::make_unique<QueryEngine>(index, engine_opts);
    if (options.configure_engine) options.configure_engine(*engine);
    shard->engine = std::shared_ptr<const QueryEngine>(std::move(engine));
    shard->service =
        std::make_unique<SearchService>(shard->engine, options.service);
    shard->service->set_identity(ServiceIdentity{
        .fingerprint = 0,
        .num_layers = num_layers,
        .shard_id = built.shard.shard_id,
        .num_shards = built.shard.num_shards,
    });
    shard->remapped = std::make_unique<ShardRemapService>(
        shard->service.get(), std::move(built.shard.global_of));
    if (options.enable_updates) {
      LiveUpdaterOptions updater_opts;
      updater_opts.maintain = options.maintain;
      updater_opts.engine = engine_opts;
      updater_opts.configure_engine = options.configure_engine;
      shard->updater = std::make_unique<LiveUpdater>(
          std::move(index), shard->engine, std::move(updater_opts));
      SearchService* service = shard->service.get();
      shard->updater->set_swap(
          [service](std::shared_ptr<const QueryEngine> engine) {
            return service->SwapEngine(std::move(engine));
          });
      LiveUpdater* updater = shard->updater.get();
      service->set_updater([updater](std::span<const GraphUpdate> updates) {
        return updater->Apply(updates);
      });
    }
    substrate->shards_.push_back(std::move(shard));
  }
  return substrate;
}

Status InProcessSubstrate::CheckShard(size_t shard) const {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard " + std::to_string(shard) +
                              " out of range (substrate has " +
                              std::to_string(shards_.size()) + ")");
  }
  return Status::OK();
}

StatusOr<ShardInfo> InProcessSubstrate::Info(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  QueryService& service = *shards_[shard]->remapped;
  ServiceIdentity id = service.Identity();
  ShardInfo info;
  info.epoch = service.epoch();
  info.fingerprint = id.fingerprint;
  info.num_layers = id.num_layers;
  info.shard_id = id.shard_id;
  info.num_shards = id.num_shards;
  info.algorithms = service.AlgorithmNames();
  return info;
}

StatusOr<QueryResult> InProcessSubstrate::Query(size_t shard,
                                                const EngineQuery& query) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  return shards_[shard]->remapped->Query(query);
}

StatusOr<uint64_t> InProcessSubstrate::BumpEpoch(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  return shards_[shard]->remapped->BumpEpoch();
}

StatusOr<UpdateOutcome> InProcessSubstrate::Update(
    size_t shard, std::span<const GraphUpdate> updates) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  // The remapped service translates global -> local ids and skips edges this
  // shard does not own; without a wired updater it answers Unimplemented.
  return shards_[shard]->remapped->ApplyUpdate(updates);
}

}  // namespace bigindex
