#include "shard/in_process_substrate.h"

#include <utility>

#include "shard/boundary.h"

namespace bigindex {

StatusOr<std::unique_ptr<InProcessSubstrate>> InProcessSubstrate::Create(
    std::vector<BuiltShard> shards, InProcessSubstrateOptions options) {
  if (shards.empty()) {
    return Status::InvalidArgument("substrate needs at least one shard");
  }
  auto substrate = std::unique_ptr<InProcessSubstrate>(
      new InProcessSubstrate());
  for (size_t s = 0; s < shards.size(); ++s) {
    BuiltShard& built = shards[s];
    if (built.shard.shard_id != s ||
        built.shard.num_shards != shards.size()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " carries identity " +
          std::to_string(built.shard.shard_id) + "/" +
          std::to_string(built.shard.num_shards));
    }
    auto shard = std::make_unique<Shard>();
    uint32_t num_layers =
        static_cast<uint32_t>(built.index.NumLayers());
    // The index is held behind a shared_ptr so the live updater can pin the
    // current generation while it builds a successor (RCU hand-off).
    auto index = std::make_shared<const BigIndex>(std::move(built.index));
    const QueryEngineOptions engine_opts{.num_threads =
                                             options.engine_threads};
    auto engine = std::make_unique<QueryEngine>(index, engine_opts);
    if (options.configure_engine) options.configure_engine(*engine);
    shard->engine = std::shared_ptr<const QueryEngine>(std::move(engine));
    shard->service =
        std::make_unique<SearchService>(shard->engine, options.service);
    shard->service->set_identity(ServiceIdentity{
        .fingerprint = 0,
        .num_layers = num_layers,
        .shard_id = built.shard.shard_id,
        .num_shards = built.shard.num_shards,
    });
    // The remap and ghost tables are shared with the engine-swap hook below
    // (the boundary is a function of the served graph, so every swap
    // recomputes it over the same tables).
    auto global_of = std::make_shared<const std::vector<VertexId>>(
        std::move(built.shard.global_of));
    auto ghosts = std::make_shared<const std::vector<VertexId>>(
        std::move(built.shard.ghosts));
    shard->remapped = std::make_unique<ShardRemapService>(
        shard->service.get(), *global_of, *ghosts);
    if (!ghosts->empty()) {
      shard->remapped->InstallBoundary(ComputeShardBoundary(
          shard->engine->index().base(), *global_of, *ghosts,
          AlgorithmRadii(*shard->engine)));
    }
    if (options.enable_updates) {
      LiveUpdaterOptions updater_opts;
      updater_opts.maintain = options.maintain;
      updater_opts.engine = engine_opts;
      updater_opts.configure_engine = options.configure_engine;
      shard->updater = std::make_unique<LiveUpdater>(
          std::move(index), shard->engine, std::move(updater_opts));
      SearchService* service = shard->service.get();
      ShardRemapService* remapped = shard->remapped.get();
      shard->updater->set_swap(
          [service, remapped, global_of,
           ghosts](std::shared_ptr<const QueryEngine> engine) {
            // Install the successor's boundary before publishing the
            // engine: post-swap queries must see the matching filter (the
            // brief pre-swap window with the new boundary is invalidated
            // by the epoch bump anyway).
            if (!ghosts->empty()) {
              remapped->InstallBoundary(ComputeShardBoundary(
                  engine->index().base(), *global_of, *ghosts,
                  AlgorithmRadii(*engine)));
            }
            return service->SwapEngine(std::move(engine));
          });
      LiveUpdater* updater = shard->updater.get();
      service->set_updater([updater](std::span<const GraphUpdate> updates) {
        return updater->Apply(updates);
      });
      service->set_rollbacker([updater] { return updater->Rollback(); });
    }
    substrate->shards_.push_back(std::move(shard));
  }
  return substrate;
}

Status InProcessSubstrate::CheckShard(size_t shard) const {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard " + std::to_string(shard) +
                              " out of range (substrate has " +
                              std::to_string(shards_.size()) + ")");
  }
  return Status::OK();
}

StatusOr<ShardInfo> InProcessSubstrate::Info(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  QueryService& service = *shards_[shard]->remapped;
  ServiceIdentity id = service.Identity();
  ShardInfo info;
  info.epoch = service.epoch();
  info.fingerprint = id.fingerprint;
  info.num_layers = id.num_layers;
  info.shard_id = id.shard_id;
  info.num_shards = id.num_shards;
  info.algorithms = service.AlgorithmNames();
  return info;
}

StatusOr<QueryResult> InProcessSubstrate::Query(size_t shard,
                                                const EngineQuery& query) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  return shards_[shard]->remapped->Query(query);
}

StatusOr<uint64_t> InProcessSubstrate::BumpEpoch(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  return shards_[shard]->remapped->BumpEpoch();
}

StatusOr<UpdateOutcome> InProcessSubstrate::Update(
    size_t shard, std::span<const GraphUpdate> updates) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  // The remapped service translates global -> local ids and skips edges this
  // shard does not own; without a wired updater it answers Unimplemented.
  return shards_[shard]->remapped->ApplyUpdate(updates);
}

StatusOr<uint64_t> InProcessSubstrate::Rollback(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  return shards_[shard]->remapped->Rollback();
}

StatusOr<BoundaryExport> InProcessSubstrate::Boundary(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  return shards_[shard]->remapped->Boundary();
}

}  // namespace bigindex
