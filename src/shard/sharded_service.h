// ShardedSearchService — the scatter-gather coordinator (DESIGN.md §9).
//
// One QueryService over N shards of a ShardSubstrate:
//
//   client → [validate + normalize + deadline]          (caller's thread)
//          → per-shard answer-cache probes              (epoch-keyed)
//          → fan-out to cache-missing shards            (ExecutorPool)
//          → per-shard cache fills
//          → merge: concat + rank + top-k cut
//
// Merge semantics: shard vertex sets are disjoint, so per-shard answer sets
// are disjoint and the merged set is their concatenation — no cross-shard
// dedup exists to do. Ranking uses the same deterministic AnswerLess order
// as a monolithic evaluation, then applies the top-k cut. Under the
// connectivity-closed shard mode no answer spans shards, so with top_k=0
// the merged set is *exactly* the monolithic answer set for every algorithm
// at every layer (the differential gate in tests/shard_test.cpp); with a
// top-k cut the merged ranking equals the monolithic ranking whenever
// scores are exact (layer 0, or exact mode's verified scores).
//
// Boundary completion (DESIGN.md §9): under bfs-mode plans the fleet has a
// cut, and workers withhold answers anchored within the algorithm's
// locality radius rho of it (ShardRemapService's near-answer filter — those
// answers could be wrong or missing locally). The coordinator lazily
// assembles the per-shard BoundaryExports into one region graph, evaluates
// the query on it with its own algorithm instances, and keeps exactly the
// answers anchored within rho of the cut; the region covers every vertex
// and edge within 2*rho, so those answers and scores are exact. Far worker
// answers plus near region answers partition the monolithic answer set, so
// bfs-mode serving is exact too. While a cut exists, fan-out queries are
// rewritten to top_k=0 (a per-shard cut could displace a cut-crossing
// answer) and the caller's top-k is applied after the merge. The region is
// invalidated by BumpEpoch/ApplyUpdate/Rollback — like the per-shard
// caches, mutate the fleet *through the coordinator*.
//
// Caches are per shard and epoch-keyed: the coordinator tracks each shard's
// epoch (learned at Attach, advanced by BumpEpoch) and keys shard s's cache
// on (epoch_s, query identity). A repeat query after one shard's rebuild
// re-fans only to that shard. Bump shard epochs *through the coordinator*;
// a worker bumped behind its back serves fresh answers to direct clients
// while the coordinator's cache keeps handing out the old generation.
//
// Deadlines ride in EngineQuery::eval.deadline: every shard sees the same
// deadline, expired queries are rejected before fan-out, and one slow shard
// turns into DeadlineExceeded for the whole query (all-or-nothing; there
// are no partial answer sets unless allow_partial opts in).

#ifndef BIGINDEX_SHARD_SHARDED_SERVICE_H_
#define BIGINDEX_SHARD_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/search_algorithm.h"
#include "engine/executor.h"
#include "server/answer_cache.h"
#include "server/query_service.h"
#include "shard/boundary.h"
#include "shard/substrate.h"
#include "util/timer.h"

namespace bigindex {

struct ShardedServiceOptions {
  /// Fan-out pool threads. 0 = serial fan-out (still correct, just no
  /// overlap); ExecutorPool::kHardwareConcurrency = one per hardware
  /// thread. The pool is shared by concurrent coordinator queries
  /// (ParallelFor is re-entrant across threads).
  size_t fanout_threads = 0;

  /// Per-shard answer caches (each shard gets its own AnswerCache with
  /// these options). enable_cache=false drops them entirely.
  bool enable_cache = true;
  AnswerCacheOptions cache;

  /// Deadline applied to queries that arrive without one; 0 = none.
  double default_deadline_ms = 0;

  /// If true, a failed shard (unreachable, overloaded) is skipped and the
  /// merge proceeds over the shards that answered — availability over
  /// exactness, counted in stats. If false (default), any shard failure
  /// fails the query with that shard's status.
  bool allow_partial = false;

  /// Factory for the completion pass's algorithm instances, called once per
  /// fleet algorithm name when the boundary region is (re)assembled. MUST
  /// construct instances configured identically to the workers' (same
  /// options the workers' configure_engine applied), or the near answers
  /// re-derived on the region diverge from what the workers withheld.
  /// Unset = the engine's default registrations (bkws, blinks, r-clique,
  /// bidirectional with default options). Returning nullptr for a name
  /// fails that algorithm's queries whenever the fleet has a cut.
  std::function<std::unique_ptr<KeywordSearchAlgorithm>(
      const std::string& name)>
      make_algorithm;
};

class ShardedSearchService : public QueryService {
 public:
  /// `substrate` is borrowed and must outlive the service.
  explicit ShardedSearchService(ShardSubstrate* substrate,
                                ShardedServiceOptions options = {});

  /// Fetches every shard's Info and verifies the fleet is coherent: shard
  /// ids form the exact cover 0..N-1 of one num_shards (monolithic workers
  /// are accepted only for N=1) and algorithm sets agree. Layer counts may
  /// differ (a small shard can summarize away in fewer layers); Identity()
  /// reports the deepest. Must succeed before Query()/BumpEpoch();
  /// FailedPrecondition otherwise.
  Status Attach();

  // QueryService interface. Identity() presents the coordinator as a
  // whole-graph service (shard=0/0): clients are not supposed to care that
  // shards exist behind it.
  StatusOr<QueryResult> Query(EngineQuery query) override;
  uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }
  uint64_t BumpEpoch() override;
  ServiceStats Snapshot() const override;
  std::vector<std::string> AlgorithmNames() const override;
  ServiceIdentity Identity() const override;

  /// Broadcasts the batch to every shard in parallel (each shard applies
  /// only the edges it owns and skips the rest — see ShardSubstrate::Update),
  /// advances the changed shards' epochs, clears their coordinator-side
  /// caches, and bumps the coordinator's own epoch when anything changed.
  /// `applied` is summed across shards (vertex ownership is disjoint);
  /// `skipped` = batch size − applied, so the coordinator-level accounting
  /// matches a monolithic server's. Under wcc-mode plans a cross-shard edge
  /// add is owned by no shard and counts as skipped — a documented
  /// limitation (see DESIGN.md §"Live updates").
  ///
  /// On a shard failure the batch may be PARTIALLY applied across the fleet;
  /// the returned status names the failing shard. Re-sending the same batch
  /// is safe: updates are normalized against each shard's current graph, so
  /// already-applied ops become net no-ops on retry.
  StatusOr<UpdateOutcome> ApplyUpdate(
      std::span<const GraphUpdate> updates) override;

  /// Broadcasts ROLLBACK to every shard in parallel, then verifies fleet
  /// coherence: each rolled-back shard must still report the epoch its
  /// rollback returned (a concurrent update racing the broadcast would
  /// leave the fleet serving mixed generations — that surfaces as
  /// FailedPrecondition, and the caches/region are already invalidated so
  /// nothing stale is served either way). Shards that retain no previous
  /// version answer FailedPrecondition and are skipped — a single-shard
  /// update stays reversible fleet-wide; if NO shard rolled back the call
  /// itself returns FailedPrecondition. On success clears the rolled-back
  /// shards' coordinator caches and returns the coordinator's new epoch.
  /// A shard failure mid-broadcast leaves the fleet partially rolled back;
  /// the returned status names the first failing shard and a retry
  /// re-broadcasts (already-rolled-back shards are then skipped as above).
  StatusOr<uint64_t> Rollback() override;

  bool attached() const { return attached_.load(std::memory_order_acquire); }
  size_t num_shards() const { return substrate_->num_shards(); }

 private:
  struct PerShard {
    std::unique_ptr<AnswerCache> cache;  // null when caching is disabled
    std::atomic<uint64_t> epoch{1};      // the shard's epoch as last seen
  };

  /// Lazily assembled completion state: the region plus the coordinator's
  /// own algorithm instances (with their locality radii). Immutable once
  /// published; rebuilt after every invalidation.
  struct RegionState {
    BoundaryRegion region;
    std::vector<std::pair<std::string,
                          std::unique_ptr<KeywordSearchAlgorithm>>>
        algos;  // ascending by name

    const KeywordSearchAlgorithm* Find(const std::string& name) const;
  };

  /// Returns the current region state, fetching every shard's boundary and
  /// assembling on first use after an invalidation. Unavailable when a
  /// shard's boundary cannot be fetched.
  StatusOr<std::shared_ptr<const RegionState>> EnsureRegion();
  void InvalidateRegion();

  /// Evaluates `query` on the region and returns the near answers (anchor
  /// within the algorithm's locality radius of the cut), remapped to global
  /// ids — exactly the answers the workers withheld.
  StatusOr<std::vector<Answer>> CompleteAcrossCut(
      const RegionState& state, const EngineQuery& query) const;

  ShardSubstrate* substrate_;
  ShardedServiceOptions options_;
  ExecutorPool pool_;
  Timer uptime_;

  std::atomic<bool> attached_{false};
  std::vector<std::unique_ptr<PerShard>> shards_;
  std::vector<std::string> algorithms_;  // common set, from Attach
  uint32_t num_layers_ = 0;              // deepest shard layer count

  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_invalid_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> shard_queries_{0};   // fan-out requests actually sent
  std::atomic<uint64_t> shard_failures_{0};  // failed shard requests
  std::atomic<uint64_t> partial_results_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_rejected_{0};
  std::atomic<uint64_t> update_fallbacks_{0};
  std::atomic<uint64_t> rollbacks_{0};

  mutable std::mutex region_mutex_;
  std::shared_ptr<const RegionState> region_;  // null = needs (re)assembly
  std::atomic<double> epoch_changed_at_s_{0};  // uptime-relative, like
                                               // SearchService's
  LatencyHistogram latency_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SHARD_SHARDED_SERVICE_H_
