#include "shard/shard_build.h"

#include <utility>

namespace bigindex {
namespace {

StatusOr<BuiltShard> BuildShardFromPlan(const Graph& g,
                                        const Ontology* ontology,
                                        const ShardBuildOptions& options,
                                        const ShardPlan& plan,
                                        uint32_t shard) {
  auto extract = ExtractShard(g, plan, shard);
  if (!extract.ok()) return extract.status();
  auto index =
      BigIndex::Build(std::move(extract->graph), ontology, options.index);
  if (!index.ok()) return index.status();
  BuiltShard built{std::move(index).value(), {}};
  built.shard.shard_id = shard;
  built.shard.num_shards = static_cast<uint32_t>(plan.num_shards());
  built.shard.global_of = std::move(extract->global_of);
  built.shard.ghosts = std::move(extract->ghosts);
  return built;
}

}  // namespace

StatusOr<ShardedIndex> BuildShardedIndex(const Graph& g,
                                         const Ontology* ontology,
                                         const ShardBuildOptions& options) {
  auto plan = PlanShards(g, options.plan);
  if (!plan.ok()) return plan.status();
  ShardedIndex result;
  result.plan = std::move(plan).value();
  result.shards.reserve(result.plan.num_shards());
  for (uint32_t s = 0; s < result.plan.num_shards(); ++s) {
    auto built = BuildShardFromPlan(g, ontology, options, result.plan, s);
    if (!built.ok()) return built.status();
    result.shards.push_back(std::move(built).value());
  }
  return result;
}

StatusOr<BuiltShard> BuildOneShard(const Graph& g, const Ontology* ontology,
                                   const ShardBuildOptions& options,
                                   uint32_t shard) {
  auto plan = PlanShards(g, options.plan);
  if (!plan.ok()) return plan.status();
  return BuildShardFromPlan(g, ontology, options, *plan, shard);
}

std::string ShardImagePath(const std::string& prefix, uint32_t shard,
                           uint32_t num_shards) {
  return prefix + ".shard" + std::to_string(shard) + "of" +
         std::to_string(num_shards) + ".img";
}

Status SaveShardImages(const ShardedIndex& index, const LabelDictionary& dict,
                       const std::string& prefix) {
  for (const BuiltShard& built : index.shards) {
    BIGINDEX_RETURN_IF_ERROR(SaveIndexImageFile(
        built.index, dict, built.shard,
        ShardImagePath(prefix, built.shard.shard_id,
                       built.shard.num_shards)));
  }
  return Status::OK();
}

}  // namespace bigindex
