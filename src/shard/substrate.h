// ShardSubstrate — "where a shard lives" as an interface the coordinator is
// generic over (DESIGN.md §9).
//
// A substrate exposes N shards, each serving the BiG-index of one slice of
// the data graph. The coordinator (sharded_service.h) fans every query out
// to all shards through this interface and merges the per-shard top-k; it
// never knows whether a shard is a QueryEngine on a thread pool in this
// process (InProcessSubstrate), a bigindex_serverd process on this machine,
// or a remote node across the network (RemoteSubstrate — the transport is
// the line protocol either way).
//
// Contracts every substrate implements:
//   * Answers are in GLOBAL vertex ids. In-process shards translate through
//     the shard's local->global remap (ShardRemapService); remote shard
//     workers translate server-side, so the wire only ever carries global
//     ids. Keyword label ids need no translation (ExtractShard preserves
//     labels).
//   * Query() is safe to call concurrently, for different shards and for
//     the same shard (the coordinator fans out from concurrent connection
//     threads). Implementations serialize internally where needed.
//   * Per-query failures are returned as statuses, never thrown; an
//     unreachable remote shard surfaces as kUnavailable.

#ifndef BIGINDEX_SHARD_SUBSTRATE_H_
#define BIGINDEX_SHARD_SUBSTRATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "server/query_service.h"
#include "util/status.h"

namespace bigindex {

/// What one shard reports about itself (the protocol INFO verb's payload).
/// The coordinator verifies these at attach time: shard ids must form an
/// exact cover 0..N-1 of a common num_shards, and layer counts and
/// algorithm sets must agree, so a misassembled fleet fails fast instead of
/// silently merging answers from incompatible indexes.
struct ShardInfo {
  uint64_t epoch = 0;
  uint64_t fingerprint = 0;  // index-image checksum; 0 for built-in-memory
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = the worker serves a monolithic index
  std::vector<std::string> algorithms;
};

class ShardSubstrate {
 public:
  virtual ~ShardSubstrate() = default;

  virtual size_t num_shards() const = 0;

  /// Identity of shard `shard` (attach-time verification, epoch probes).
  virtual StatusOr<ShardInfo> Info(size_t shard) = 0;

  /// Evaluates `query` on shard `shard`. Answers use global vertex ids.
  virtual StatusOr<QueryResult> Query(size_t shard,
                                      const EngineQuery& query) = 0;

  /// Invalidates shard `shard`'s answer cache; returns its new epoch.
  virtual StatusOr<uint64_t> BumpEpoch(size_t shard) = 0;

  /// Applies an edge-update batch (GLOBAL vertex ids) to shard `shard`.
  /// The shard applies the ops whose edges it owns and counts the rest as
  /// skipped, so a coordinator can broadcast one batch to every shard and
  /// sum `applied` (vertex ownership is disjoint). Non-pure with an
  /// Unimplemented default: substrates without a write path stay valid.
  virtual StatusOr<UpdateOutcome> Update(size_t shard,
                                         std::span<const GraphUpdate> updates) {
    (void)shard;
    (void)updates;
    return Status::Unimplemented("substrate is read-only");
  }

  /// Re-publishes shard `shard`'s previous retained index version (the
  /// ROLLBACK verb) and returns its new epoch. Unimplemented default, like
  /// Update.
  virtual StatusOr<uint64_t> Rollback(size_t shard) {
    (void)shard;
    return Status::Unimplemented("substrate retains no previous version");
  }

  /// Shard `shard`'s boundary export (the BOUNDARY verb; DESIGN.md §9).
  /// Ghost-free shards return an empty export. The coordinator assembles
  /// the exports into the region its completion pass evaluates on.
  virtual StatusOr<BoundaryExport> Boundary(size_t shard) {
    (void)shard;
    return BoundaryExport{};
  }
};

}  // namespace bigindex

#endif  // BIGINDEX_SHARD_SUBSTRATE_H_
