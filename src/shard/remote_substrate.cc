#include "shard/remote_substrate.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "server/line_protocol.h"

namespace bigindex {

RemoteSubstrate::RemoteSubstrate(std::vector<ShardEndpoint> endpoints,
                                 ProtocolClientOptions client_options) {
  shards_.reserve(endpoints.size());
  for (const ShardEndpoint& ep : endpoints) {
    shards_.push_back(std::make_unique<Shard>(ep, client_options));
  }
}

Status RemoteSubstrate::CheckShard(size_t shard) const {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard " + std::to_string(shard) +
                              " out of range (substrate has " +
                              std::to_string(shards_.size()) + ")");
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> RemoteSubstrate::RequestLocked(
    size_t shard, const std::string& line) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.client.Request(line);
}

StatusOr<ShardInfo> RemoteSubstrate::Info(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  auto lines = RequestLocked(shard, "info");
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::IOError("empty INFO response");
  const std::string& head = lines->front();
  if (head.starts_with("ERR")) return ParseErrLine(head);
  WireInfo wire;
  BIGINDEX_RETURN_IF_ERROR(ParseInfoLine(head, &wire));
  ShardInfo info;
  info.epoch = wire.epoch;
  info.fingerprint = wire.fingerprint;
  info.num_layers = wire.num_layers;
  info.shard_id = wire.shard_id;
  info.num_shards = wire.num_shards;
  info.algorithms = std::move(wire.algorithms);
  return info;
}

StatusOr<QueryResult> RemoteSubstrate::Query(size_t shard,
                                             const EngineQuery& query) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  auto lines = RequestLocked(shard, FormatQueryLine(query));
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::IOError("empty query response");
  const std::string& head = lines->front();
  if (head.starts_with("ERR")) return ParseErrLine(head);
  if (!head.starts_with("OK")) {
    return Status::IOError("unexpected response head: '" + head + "'");
  }
  QueryResult result;
  result.algorithm = query.algorithm;
  // Head fields: n= is implied by the A-line count; ms= and layer= are the
  // shard's own measurements.
  for (const char* key : {" ms=", " layer="}) {
    size_t at = head.find(key);
    if (at == std::string::npos) continue;
    const char* value = head.c_str() + at + std::strlen(key);
    if (key[1] == 'm') {
      result.wall_ms = std::atof(value);
    } else {
      result.breakdown.layer = static_cast<size_t>(std::atoll(value));
    }
  }
  result.answers.reserve(lines->size() - 1);
  for (size_t i = 1; i < lines->size(); ++i) {
    Answer a;
    BIGINDEX_RETURN_IF_ERROR(ParseAnswerLine((*lines)[i], &a));
    result.answers.push_back(std::move(a));
  }
  result.breakdown.final_answers = result.answers.size();
  return result;
}

StatusOr<UpdateOutcome> RemoteSubstrate::Update(
    size_t shard, std::span<const GraphUpdate> updates) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  auto lines = RequestLocked(shard, FormatUpdateLine(updates));
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::IOError("empty update response");
  const std::string& head = lines->front();
  if (head.starts_with("ERR")) return ParseErrLine(head);
  UpdateOutcome outcome;
  BIGINDEX_RETURN_IF_ERROR(ParseUpdateOutcomeLine(head, &outcome));
  return outcome;
}

StatusOr<uint64_t> RemoteSubstrate::BumpEpoch(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  auto lines = RequestLocked(shard, "bump");
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::IOError("empty bump response");
  const std::string& head = lines->front();
  if (head.starts_with("ERR")) return ParseErrLine(head);
  size_t at = head.find("epoch=");
  if (!head.starts_with("OK") || at == std::string::npos) {
    return Status::IOError("unexpected bump response: '" + head + "'");
  }
  return static_cast<uint64_t>(
      std::strtoull(head.c_str() + at + 6, nullptr, 10));
}

StatusOr<uint64_t> RemoteSubstrate::Rollback(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  auto lines = RequestLocked(shard, "rollback");
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::IOError("empty rollback response");
  const std::string& head = lines->front();
  if (head.starts_with("ERR")) return ParseErrLine(head);
  size_t at = head.find("epoch=");
  if (!head.starts_with("OK") || at == std::string::npos) {
    return Status::IOError("unexpected rollback response: '" + head + "'");
  }
  return static_cast<uint64_t>(
      std::strtoull(head.c_str() + at + 6, nullptr, 10));
}

StatusOr<BoundaryExport> RemoteSubstrate::Boundary(size_t shard) {
  BIGINDEX_RETURN_IF_ERROR(CheckShard(shard));
  auto lines = RequestLocked(shard, "boundary");
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::IOError("empty boundary response");
  if (lines->front().starts_with("ERR")) return ParseErrLine(lines->front());
  BoundaryExport ex;
  BIGINDEX_RETURN_IF_ERROR(ParseBoundaryBlock(*lines, &ex));
  return ex;
}

}  // namespace bigindex
