// RemoteSubstrate — every shard is a bigindex_serverd process reached over
// the line protocol (server/line_protocol.h) through a ProtocolClient with
// bounded connect timeout and exponential-backoff retry.
//
// One connection per shard, serialized by a per-shard mutex: the protocol
// is lockstep (one request, one dot-terminated response), so concurrent
// coordinator fan-outs to the *same* shard queue on its mutex while
// fan-outs to different shards proceed in parallel. A lost connection
// surfaces as kUnavailable for the affected query and is re-dialed
// transparently on the next request.
//
// The wire already speaks global vertex ids (shard workers serve behind a
// ShardRemapService), so this substrate does no id translation.

#ifndef BIGINDEX_SHARD_REMOTE_SUBSTRATE_H_
#define BIGINDEX_SHARD_REMOTE_SUBSTRATE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/protocol_client.h"
#include "shard/substrate.h"

namespace bigindex {

/// Address of one shard worker.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

class RemoteSubstrate : public ShardSubstrate {
 public:
  /// One endpoint per shard, in shard-id order. Connections are dialed
  /// lazily (first request), so constructing the substrate never blocks.
  RemoteSubstrate(std::vector<ShardEndpoint> endpoints,
                  ProtocolClientOptions client_options = {});

  size_t num_shards() const override { return shards_.size(); }
  StatusOr<ShardInfo> Info(size_t shard) override;
  StatusOr<QueryResult> Query(size_t shard,
                              const EngineQuery& query) override;
  StatusOr<uint64_t> BumpEpoch(size_t shard) override;
  StatusOr<UpdateOutcome> Update(size_t shard,
                                 std::span<const GraphUpdate> updates) override;
  StatusOr<uint64_t> Rollback(size_t shard) override;
  StatusOr<BoundaryExport> Boundary(size_t shard) override;

 private:
  struct Shard {
    std::mutex mutex;
    ProtocolClient client;
    Shard(const ShardEndpoint& ep, const ProtocolClientOptions& opts)
        : client(ep.host, ep.port, opts) {}
  };

  Status CheckShard(size_t shard) const;
  /// Locks the shard and runs one lockstep request.
  StatusOr<std::vector<std::string>> RequestLocked(size_t shard,
                                                   const std::string& line);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SHARD_REMOTE_SUBSTRATE_H_
