#include "shard/sharded_service.h"

#include <algorithm>
#include <utility>

#include "search/answer.h"
#include "search/bidirectional.h"
#include "search/bkws.h"
#include "search/blinks.h"
#include "search/rclique.h"
#include "server/search_service.h"

namespace bigindex {
namespace {

/// Mirrors QueryEngine's default registrations (query_engine.cc) for fleets
/// that never customize configure_engine; nullptr for unknown names.
std::unique_ptr<KeywordSearchAlgorithm> MakeDefaultAlgorithm(
    const std::string& name) {
  if (name == "bkws") return std::make_unique<BkwsAlgorithm>();
  if (name == "blinks") return std::make_unique<BlinksAlgorithm>();
  if (name == "r-clique") return std::make_unique<RCliqueAlgorithm>();
  if (name == "bidirectional") {
    return std::make_unique<BidirectionalAlgorithm>();
  }
  return nullptr;
}

/// The completion pass's anchor rule — must match ShardRemapService's
/// (root for rooted semantics, else smallest keyword vertex; both survive
/// the order-preserving remap, so region-local and global anchors agree).
VertexId AnchorOf(const Answer& a) {
  if (a.root != kInvalidVertex) return a.root;
  if (a.keyword_vertices.empty()) return kInvalidVertex;
  return *std::min_element(a.keyword_vertices.begin(),
                           a.keyword_vertices.end());
}

}  // namespace

ShardedSearchService::ShardedSearchService(ShardSubstrate* substrate,
                                           ShardedServiceOptions options)
    : substrate_(substrate),
      options_(options),
      pool_(options.fanout_threads) {}

Status ShardedSearchService::Attach() {
  const size_t n = substrate_->num_shards();
  if (n == 0) return Status::InvalidArgument("substrate has no shards");
  std::vector<ShardInfo> infos;
  infos.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto info = substrate_->Info(s);
    if (!info.ok()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) +
          " unreachable at attach: " + info.status().ToString());
    }
    infos.push_back(std::move(info).value());
  }
  for (size_t s = 0; s < n; ++s) {
    const ShardInfo& info = infos[s];
    if (info.num_shards == 0) {
      // A monolithic worker is a valid 1-shard fleet, nothing else.
      if (n != 1) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(s) +
            " serves a monolithic index inside a " + std::to_string(n) +
            "-shard fleet");
      }
    } else {
      if (info.num_shards != n) {
        return Status::FailedPrecondition(
            "shard " + std::to_string(s) + " was built for " +
            std::to_string(info.num_shards) + " shards, fleet has " +
            std::to_string(n));
      }
      if (info.shard_id != s) {
        return Status::FailedPrecondition(
            "endpoint " + std::to_string(s) + " serves shard " +
            std::to_string(info.shard_id) +
            " (endpoints must be in shard-id order)");
      }
    }
    if (info.algorithms != infos[0].algorithms) {
      return Status::FailedPrecondition(
          "shard algorithm sets disagree between shard 0 and shard " +
          std::to_string(s));
    }
  }
  shards_.clear();
  for (size_t s = 0; s < n; ++s) {
    auto per = std::make_unique<PerShard>();
    if (options_.enable_cache) {
      per->cache = std::make_unique<AnswerCache>(options_.cache);
    }
    per->epoch.store(infos[s].epoch, std::memory_order_release);
    shards_.push_back(std::move(per));
  }
  algorithms_ = std::move(infos[0].algorithms);
  // A smaller shard can legitimately summarize away in fewer layers than its
  // siblings (Build stops once a layer stops compressing), so layer counts
  // are informational: present the deepest.
  num_layers_ = 0;
  for (const ShardInfo& info : infos) {
    num_layers_ = std::max(num_layers_, info.num_layers);
  }
  InvalidateRegion();  // re-attach may follow a fleet rebuild
  attached_.store(true, std::memory_order_release);
  return Status::OK();
}

const KeywordSearchAlgorithm* ShardedSearchService::RegionState::Find(
    const std::string& name) const {
  auto it = std::lower_bound(
      algos.begin(), algos.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it == algos.end() || it->first != name) return nullptr;
  return it->second.get();
}

void ShardedSearchService::InvalidateRegion() {
  std::lock_guard<std::mutex> lock(region_mutex_);
  region_.reset();
}

StatusOr<std::shared_ptr<const ShardedSearchService::RegionState>>
ShardedSearchService::EnsureRegion() {
  std::lock_guard<std::mutex> lock(region_mutex_);
  if (region_ != nullptr) return region_;
  std::vector<BoundaryExport> exports;
  exports.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto ex = substrate_->Boundary(s);
    if (!ex.ok()) {
      // allow_partial already trades exactness for availability on the
      // query path; do the same here and assemble from the shards that
      // answered (a missing cut-incident export surfaces as Corruption
      // below). Without it, a dead shard fails the query.
      if (options_.allow_partial) {
        shard_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " boundary fetch failed: " +
                                 ex.status().ToString());
    }
    exports.push_back(std::move(ex).value());
  }
  auto assembled = AssembleBoundaryRegion(exports);
  if (!assembled.ok()) return assembled.status();
  auto state = std::make_shared<RegionState>();
  state->region = std::move(assembled).value();
  if (state->region.has_cut) {
    for (const std::string& name : algorithms_) {
      std::unique_ptr<KeywordSearchAlgorithm> algo =
          options_.make_algorithm ? options_.make_algorithm(name)
                                  : MakeDefaultAlgorithm(name);
      if (algo == nullptr) continue;  // CompleteAcrossCut rejects the query
      const uint32_t rho = algo->LocalityRadius();
      if (2 * rho > state->region.radius_cap) {
        return Status::FailedPrecondition(
            "completion for '" + name + "' needs region radius " +
            std::to_string(2 * rho) + " but the fleet exported only " +
            std::to_string(state->region.radius_cap) +
            " — worker and coordinator algorithm configurations disagree");
      }
      state->algos.emplace_back(name, std::move(algo));
    }
    // algorithms_ arrives in the workers' registration order; Find does a
    // binary search by name.
    std::sort(state->algos.begin(), state->algos.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  region_ = std::move(state);
  return region_;
}

StatusOr<std::vector<Answer>> ShardedSearchService::CompleteAcrossCut(
    const RegionState& state, const EngineQuery& query) const {
  const KeywordSearchAlgorithm* algo = state.Find(query.algorithm);
  if (algo == nullptr) {
    return Status::FailedPrecondition(
        "fleet has a cut but the coordinator has no completion instance "
        "for algorithm '" + query.algorithm +
        "' (set ShardedServiceOptions::make_algorithm)");
  }
  const uint32_t rho = algo->LocalityRadius();
  if (rho == 0) return std::vector<Answer>{};  // workers did not filter
  std::vector<Answer> answers =
      algo->Evaluate(state.region.graph, query.keywords);
  std::vector<Answer> near;
  for (Answer& a : answers) {
    VertexId anchor = AnchorOf(a);
    // Keep exactly the answers the workers withheld: anchored within rho of
    // the cut. The region's extra vertices (between rho and the export cap)
    // only exist so those answers score exactly; answers anchored out there
    // are the far shards' responsibility and are dropped here.
    if (anchor == kInvalidVertex ||
        state.region.dist_to_cut[anchor] > rho) {
      continue;
    }
    if (a.root != kInvalidVertex) a.root = state.region.global_of[a.root];
    for (VertexId& v : a.vertices) v = state.region.global_of[v];
    for (VertexId& v : a.keyword_vertices) {
      v = state.region.global_of[v];
    }
    near.push_back(std::move(a));
  }
  return near;
}

StatusOr<QueryResult> ShardedSearchService::Query(EngineQuery query) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!attached()) {
    return Status::FailedPrecondition("coordinator is not attached");
  }
  if (query.keywords.empty()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("query has no keywords");
  }
  if (std::find(algorithms_.begin(), algorithms_.end(), query.algorithm) ==
      algorithms_.end()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no algorithm registered as '" + query.algorithm +
                            "'");
  }
  query.NormalizeKeywords();
  if (options_.default_deadline_ms > 0 && query.eval.deadline.IsNever()) {
    query.eval.deadline = Deadline::After(options_.default_deadline_ms);
  }
  if (query.eval.deadline.Expired()) {
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("deadline expired before fan-out");
  }

  // Boundary completion setup: with a cut in the fleet the workers withhold
  // near answers and a per-shard top-k could displace a cut-crossing
  // answer, so fan out (and cache) with top_k=0 and apply the caller's cut
  // after the merge. Cut-free fleets take none of this path.
  auto region_state = EnsureRegion();
  if (!region_state.ok()) return region_state.status();
  const std::shared_ptr<const RegionState>& region = *region_state;
  const bool completing = region->region.has_cut;
  const size_t original_top_k = query.eval.top_k;
  if (completing) query.eval.top_k = 0;

  Timer timer;
  const size_t n = shards_.size();
  std::vector<std::shared_ptr<const QueryResult>> per_shard(n);
  std::vector<size_t> missing;
  for (size_t s = 0; s < n; ++s) {
    if (shards_[s]->cache == nullptr) {
      missing.push_back(s);
      continue;
    }
    std::string key = SearchService::CacheKeyFor(
        shards_[s]->epoch.load(std::memory_order_acquire), query);
    per_shard[s] = shards_[s]->cache->Lookup(key);
    if (per_shard[s] == nullptr) missing.push_back(s);
  }

  // Fan out to the shards the caches could not answer. ParallelFor is
  // re-entrant across threads, so concurrent coordinator queries share the
  // pool; with fanout_threads=0 this runs inline.
  std::vector<StatusOr<QueryResult>> fetched(
      missing.size(), Status::Unavailable("shard fan-out not run"));
  shard_queries_.fetch_add(missing.size(), std::memory_order_relaxed);
  pool_.ParallelFor(missing.size(), [&](size_t /*slot*/, size_t i) {
    fetched[i] = substrate_->Query(missing[i], query);
  });

  bool partial = false;
  for (size_t i = 0; i < missing.size(); ++i) {
    size_t s = missing[i];
    if (!fetched[i].ok()) {
      shard_failures_.fetch_add(1, std::memory_order_relaxed);
      if (options_.allow_partial &&
          fetched[i].status().code() != StatusCode::kInvalidArgument &&
          fetched[i].status().code() != StatusCode::kNotFound) {
        partial = true;
        continue;
      }
      if (fetched[i].status().code() == StatusCode::kDeadlineExceeded) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      return fetched[i].status();
    }
    if (shards_[s]->cache != nullptr) {
      std::string key = SearchService::CacheKeyFor(
          shards_[s]->epoch.load(std::memory_order_acquire), query);
      shards_[s]->cache->Insert(key, *fetched[i]);
    }
  }

  // Merge: shard vertex sets are disjoint, so concatenation is the union;
  // rank with the same deterministic order a monolithic evaluation uses,
  // then apply the top-k cut. Cache hits must be copied (the cache keeps
  // its entry); freshly fetched results are uniquely owned and moved.
  QueryResult merged;
  merged.algorithm = query.algorithm;
  auto fold = [&merged](const QueryResult& r) {
    merged.breakdown.layer = std::max(merged.breakdown.layer,
                                      r.breakdown.layer);
    merged.breakdown.generalized_answers += r.breakdown.generalized_answers;
    merged.breakdown.candidate_roots += r.breakdown.candidate_roots;
  };
  for (size_t s = 0; s < n; ++s) {
    if (per_shard[s] == nullptr) continue;  // filled from cache only
    fold(*per_shard[s]);
    merged.answers.insert(merged.answers.end(), per_shard[s]->answers.begin(),
                          per_shard[s]->answers.end());
  }
  for (size_t i = 0; i < missing.size(); ++i) {
    if (!fetched[i].ok()) continue;  // allow_partial skip
    fold(*fetched[i]);
    std::vector<Answer>& answers = fetched[i]->answers;
    if (merged.answers.empty()) {
      merged.answers = std::move(answers);
    } else {
      merged.answers.insert(merged.answers.end(),
                            std::make_move_iterator(answers.begin()),
                            std::make_move_iterator(answers.end()));
    }
  }
  if (completing) {
    auto near = CompleteAcrossCut(*region, query);
    if (!near.ok()) return near.status();
    merged.answers.insert(merged.answers.end(),
                          std::make_move_iterator(near->begin()),
                          std::make_move_iterator(near->end()));
  }
  SortAnswers(merged.answers);
  if (original_top_k > 0 && merged.answers.size() > original_top_k) {
    merged.answers.resize(original_top_k);
  }
  merged.breakdown.final_answers = merged.answers.size();
  merged.wall_ms = timer.ElapsedMillis();
  if (partial) partial_results_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(merged.wall_ms);
  return merged;
}

uint64_t ShardedSearchService::BumpEpoch() {
  // Best effort on the remote side; coordinator caches are invalidated
  // unconditionally (a shard whose bump failed keeps serving the same index,
  // so refilled entries stay correct).
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto bumped = substrate_->BumpEpoch(s);
    if (bumped.ok()) {
      shards_[s]->epoch.store(*bumped, std::memory_order_release);
    }
    if (shards_[s]->cache != nullptr) shards_[s]->cache->Clear();
  }
  InvalidateRegion();
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  epoch_changed_at_s_.store(uptime_.ElapsedSeconds(),
                            std::memory_order_relaxed);
  return epoch;
}

StatusOr<uint64_t> ShardedSearchService::Rollback() {
  if (!attached()) {
    return Status::FailedPrecondition("coordinator is not attached");
  }
  const size_t n = shards_.size();
  std::vector<StatusOr<uint64_t>> per(
      n, Status::Unavailable("shard rollback not run"));
  pool_.ParallelFor(n, [&](size_t /*slot*/, size_t s) {
    per[s] = substrate_->Rollback(s);
  });

  bool any_changed = false;
  Status first_failure = Status::OK();
  std::vector<bool> rolled(n, false);
  for (size_t s = 0; s < n; ++s) {
    if (!per[s].ok()) {
      // A shard the last batch never touched retains no previous version
      // and answers FailedPrecondition — that is "nothing to undo here",
      // not a broadcast failure (a single-shard update must stay
      // reversible fleet-wide).
      if (per[s].status().code() == StatusCode::kFailedPrecondition) continue;
      shard_failures_.fetch_add(1, std::memory_order_relaxed);
      if (first_failure.ok()) first_failure = per[s].status();
      continue;
    }
    any_changed = true;
    rolled[s] = true;
    shards_[s]->epoch.store(*per[s], std::memory_order_release);
    if (shards_[s]->cache != nullptr) shards_[s]->cache->Clear();
  }
  InvalidateRegion();
  if (!first_failure.ok()) {
    if (any_changed) {
      // Partially rolled back: advance our epoch so clients re-query
      // through fresh caches; a retry re-broadcasts (already-rolled-back
      // shards then answer FailedPrecondition, which the retry skips).
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      epoch_changed_at_s_.store(uptime_.ElapsedSeconds(),
                                std::memory_order_relaxed);
    }
    return first_failure;
  }
  if (!any_changed) {
    return Status::FailedPrecondition(
        "no shard had a previous index version to restore");
  }

  // Fleet-coherence check: every rolled-back shard must still report the
  // epoch its rollback returned — an update racing the broadcast would
  // leave the fleet serving mixed generations behind our freshly cleared
  // caches.
  for (size_t s = 0; s < n; ++s) {
    if (!rolled[s]) continue;
    auto info = substrate_->Info(s);
    if (!info.ok()) return info.status();
    if (info->epoch != *per[s]) {
      shards_[s]->epoch.store(info->epoch, std::memory_order_release);
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) + " epoch moved during rollback (" +
          std::to_string(*per[s]) + " -> " + std::to_string(info->epoch) +
          "); a concurrent update raced the broadcast");
    }
  }
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  epoch_changed_at_s_.store(uptime_.ElapsedSeconds(),
                            std::memory_order_relaxed);
  return epoch;
}

StatusOr<UpdateOutcome> ShardedSearchService::ApplyUpdate(
    std::span<const GraphUpdate> updates) {
  if (!attached()) {
    updates_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition("coordinator is not attached");
  }
  const size_t n = shards_.size();
  std::vector<StatusOr<UpdateOutcome>> per(
      n, Status::Unavailable("shard update not run"));
  pool_.ParallelFor(n, [&](size_t /*slot*/, size_t s) {
    per[s] = substrate_->Update(s, updates);
  });

  // Fold the per-shard outcomes. Epochs and caches of the shards that DID
  // change are advanced even when another shard failed, so the coordinator
  // never serves stale cached answers over a half-applied fleet.
  UpdateOutcome merged;
  bool any_changed = false;
  Status first_failure = Status::OK();
  for (size_t s = 0; s < n; ++s) {
    if (!per[s].ok()) {
      shard_failures_.fetch_add(1, std::memory_order_relaxed);
      if (first_failure.ok()) first_failure = per[s].status();
      continue;
    }
    merged.applied += per[s]->applied;
    merged.layers_rebuilt += per[s]->layers_rebuilt;
    // Mode severity: none < incremental < wholesale < rebuild (the enum's
    // declaration order); report the fleet's worst.
    if (per[s]->mode > merged.mode) merged.mode = per[s]->mode;
    if (per[s]->mode != UpdateOutcome::Mode::kNone) {
      any_changed = true;
      shards_[s]->epoch.store(per[s]->epoch, std::memory_order_release);
      if (shards_[s]->cache != nullptr) shards_[s]->cache->Clear();
    }
  }
  // An applied update can move edges near the cut, so the workers' exports
  // (recomputed at their engine swaps) may differ: re-assemble lazily.
  if (any_changed || !first_failure.ok()) InvalidateRegion();
  if (!first_failure.ok()) {
    updates_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (any_changed) {
      // Partially applied: advance our epoch so clients re-query through
      // fresh caches; the caller retries the batch (retry is idempotent —
      // applied ops normalize to net no-ops).
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      epoch_changed_at_s_.store(uptime_.ElapsedSeconds(),
                                std::memory_order_relaxed);
    }
    return first_failure;
  }

  // Ownership is disjoint, so summed applied <= batch size and the
  // coordinator-level accounting mirrors a monolithic server's.
  merged.skipped = updates.size() - merged.applied;
  if (any_changed) {
    merged.epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    epoch_changed_at_s_.store(uptime_.ElapsedSeconds(),
                              std::memory_order_relaxed);
  } else {
    merged.epoch = epoch();
  }
  updates_applied_.fetch_add(merged.applied, std::memory_order_relaxed);
  if (merged.mode == UpdateOutcome::Mode::kWholesale ||
      merged.mode == UpdateOutcome::Mode::kRebuild) {
    update_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return merged;
}

ServiceStats ShardedSearchService::Snapshot() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  // Fan-out counters ride the batch fields: one "batch" per fan-out wave,
  // batched_queries = shard requests actually sent (cache misses only).
  s.batches = s.completed;
  s.batched_queries = shard_queries_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches ? static_cast<double>(s.batched_queries) / s.batches : 0;
  for (const auto& per : shards_) {
    if (per->cache == nullptr) continue;
    AnswerCacheStats cs = per->cache->stats();
    s.cache_hits += cs.hits;
    s.cache_misses += cs.misses;
    s.cache_evictions += cs.evictions;
    s.cache_entries += cs.entries;
  }
  s.cache_hit_ratio = (s.cache_hits + s.cache_misses)
                          ? static_cast<double>(s.cache_hits) /
                                static_cast<double>(s.cache_hits +
                                                    s.cache_misses)
                          : 0;
  s.shard_failures = shard_failures_.load(std::memory_order_relaxed);
  s.partial_results = partial_results_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.updates_rejected = updates_rejected_.load(std::memory_order_relaxed);
  s.update_fallbacks = update_fallbacks_.load(std::memory_order_relaxed);
  s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  s.p50_ms = latency_.Quantile(0.50);
  s.p95_ms = latency_.Quantile(0.95);
  s.p99_ms = latency_.Quantile(0.99);
  s.uptime_s = uptime_.ElapsedSeconds();
  s.throughput_qps =
      s.uptime_s > 0 ? static_cast<double>(s.completed) / s.uptime_s : 0;
  s.epoch = epoch();
  s.epoch_age_s =
      s.uptime_s - epoch_changed_at_s_.load(std::memory_order_relaxed);
  if (s.epoch_age_s < 0) s.epoch_age_s = 0;
  return s;
}

std::vector<std::string> ShardedSearchService::AlgorithmNames() const {
  return algorithms_;
}

ServiceIdentity ShardedSearchService::Identity() const {
  return ServiceIdentity{.fingerprint = 0,
                         .num_layers = num_layers_,
                         .shard_id = 0,
                         .num_shards = 0};
}

}  // namespace bigindex
