// Sharded BiG-index construction: plan the shard cover, extract each
// shard's subgraph, and build one full BiG-index hierarchy per shard.
//
// Build is embarrassingly parallel across shards — every shard's index is
// built from its own vertex-induced subgraph with the same ontology and
// build options — and deterministic: PlanShards is a pure function of
// (graph, options) and per-shard builds inherit PR 4's byte-identical
// construction, so independent processes given the same dataset flags
// (bigindex_serverd --shard-of k) agree on the plan and produce identical
// shard images without any coordination.

#ifndef BIGINDEX_SHARD_SHARD_BUILD_H_
#define BIGINDEX_SHARD_SHARD_BUILD_H_

#include <string>
#include <vector>

#include "core/big_index.h"
#include "core/index_image.h"
#include "graph/label_dictionary.h"
#include "search/partitioner.h"
#include "util/status.h"

namespace bigindex {

struct ShardBuildOptions {
  ShardPlanOptions plan;

  /// Per-shard BigIndex construction options (layer cap, threads, seed).
  BigIndexOptions index;
};

/// One shard's index plus its identity (id, shard count, global remap).
struct BuiltShard {
  BigIndex index;
  ShardImageInfo shard;
};

/// The full sharded build: the plan plus every shard's index, in shard-id
/// order.
struct ShardedIndex {
  ShardPlan plan;
  std::vector<BuiltShard> shards;
};

/// Plans `options.plan` over `g` and builds one BiG-index per shard.
/// `ontology` must outlive the result.
StatusOr<ShardedIndex> BuildShardedIndex(const Graph& g,
                                         const Ontology* ontology,
                                         const ShardBuildOptions& options);

/// Builds only shard `shard` of the plan — what `bigindex_serverd
/// --shard-of` runs so each worker process builds just its slice.
StatusOr<BuiltShard> BuildOneShard(const Graph& g, const Ontology* ontology,
                                   const ShardBuildOptions& options,
                                   uint32_t shard);

/// The conventional image path for one shard: "<prefix>.shard<k>of<n>.img".
std::string ShardImagePath(const std::string& prefix, uint32_t shard,
                           uint32_t num_shards);

/// Writes every shard of `index` as a relocatable shard image under the
/// ShardImagePath convention.
Status SaveShardImages(const ShardedIndex& index, const LabelDictionary& dict,
                       const std::string& prefix);

}  // namespace bigindex

#endif  // BIGINDEX_SHARD_SHARD_BUILD_H_
