// InProcessSubstrate — every shard is a QueryEngine on its own thread pool
// inside this process, fronted by its own admission-controlled
// SearchService (per-shard queue, micro-batcher, and epoch-keyed answer
// cache all fall out of the existing SearchService design) and a
// ShardRemapService so answers leave in global vertex ids.
//
// This is the single-process deployment of the shard substrate: the full
// scatter-gather pipeline — coordinator fan-out, per-shard admission,
// merge — with zero serialization cost, and the reference implementation
// the RemoteSubstrate differential tests compare against.

#ifndef BIGINDEX_SHARD_IN_PROCESS_SUBSTRATE_H_
#define BIGINDEX_SHARD_IN_PROCESS_SUBSTRATE_H_

#include <functional>
#include <memory>
#include <vector>

#include "engine/query_engine.h"
#include "server/query_service.h"
#include "server/search_service.h"
#include "shard/shard_build.h"
#include "shard/substrate.h"
#include "update/live_updater.h"
#include "update/maintain.h"

namespace bigindex {

struct InProcessSubstrateOptions {
  /// Per-shard engine pool threads (see QueryEngineOptions::num_threads).
  size_t engine_threads = 0;

  /// Per-shard serving options (queue, batcher, cache).
  SearchServiceOptions service;

  /// Optional hook run on each shard's engine after construction, before
  /// serving starts — e.g. to re-register algorithms with non-default
  /// options. Must configure every shard identically, or the merged answer
  /// set loses its equivalence to a monolithic evaluation. Live updates
  /// re-run the hook on each successor engine.
  std::function<void(QueryEngine&)> configure_engine;

  /// Wire a per-shard LiveUpdater so Update() serves the UPDATE verb.
  /// Disabling makes the substrate read-only (Update → Unimplemented).
  bool enable_updates = true;

  /// Incremental-maintenance knobs for the per-shard updaters.
  MaintainOptions maintain;
};

class InProcessSubstrate : public ShardSubstrate {
 public:
  /// Takes ownership of the built shards (the plan is not needed for
  /// serving). The ontology the indexes borrow must outlive the substrate.
  static StatusOr<std::unique_ptr<InProcessSubstrate>> Create(
      std::vector<BuiltShard> shards, InProcessSubstrateOptions options = {});

  size_t num_shards() const override { return shards_.size(); }
  StatusOr<ShardInfo> Info(size_t shard) override;
  StatusOr<QueryResult> Query(size_t shard,
                              const EngineQuery& query) override;
  StatusOr<uint64_t> BumpEpoch(size_t shard) override;
  StatusOr<UpdateOutcome> Update(size_t shard,
                                 std::span<const GraphUpdate> updates) override;
  StatusOr<uint64_t> Rollback(size_t shard) override;
  StatusOr<BoundaryExport> Boundary(size_t shard) override;

  /// The shard's serving stack (global-id view), e.g. to front one shard of
  /// this substrate with a TcpServer in tests.
  QueryService* shard_service(size_t shard) {
    return shards_[shard]->remapped.get();
  }

 private:
  struct Shard {
    std::shared_ptr<const QueryEngine> engine;
    std::unique_ptr<SearchService> service;
    std::unique_ptr<ShardRemapService> remapped;
    // Declared last: the updater's lambdas hold raw pointers to `service`,
    // so it must be destroyed first.
    std::unique_ptr<LiveUpdater> updater;
  };

  InProcessSubstrate() = default;
  Status CheckShard(size_t shard) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bigindex

#endif  // BIGINDEX_SHARD_IN_PROCESS_SUBSTRATE_H_
