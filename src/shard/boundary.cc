#include "shard/boundary.h"

#include <algorithm>
#include <cassert>

#include "graph/csr.h"

namespace bigindex {
namespace {

/// Multi-source undirected BFS from `seeds` (all at distance 0), capped at
/// `cap`: dist[v] = min distance to a seed, kInfDistance beyond the cap.
void DistanceFromSeeds(const Graph& g, std::span<const VertexId> seeds,
                       uint32_t cap, std::vector<uint32_t>& dist) {
  dist.assign(g.NumVertices(), kInfDistance);
  std::vector<VertexId> queue;
  queue.reserve(seeds.size());
  for (VertexId s : seeds) {
    if (dist[s] == kInfDistance) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  const CsrView out = g.Out(), in = g.In();
  size_t head = 0;
  while (head < queue.size()) {
    VertexId v = queue[head++];
    uint32_t d = dist[v];
    if (d >= cap) continue;
    auto visit = [&](VertexId w) {
      if (dist[w] != kInfDistance) return;
      dist[w] = d + 1;
      queue.push_back(w);
    };
    const auto oi = out[v];
    for (uint64_t i = oi.begin; i < oi.end; ++i) visit(out.Slot(i));
    const auto ii = in[v];
    for (uint64_t i = ii.begin; i < ii.end; ++i) visit(in.Slot(i));
  }
}

}  // namespace

std::vector<std::pair<std::string, uint32_t>> AlgorithmRadii(
    const QueryEngine& engine) {
  std::vector<std::pair<std::string, uint32_t>> radii;
  for (std::string_view name : engine.AlgorithmNames()) {
    const KeywordSearchAlgorithm* algo = engine.algorithm(name);
    if (algo != nullptr) {
      radii.emplace_back(std::string(name), algo->LocalityRadius());
    }
  }
  std::sort(radii.begin(), radii.end());
  return radii;
}

std::shared_ptr<const ShardBoundary> ComputeShardBoundary(
    const Graph& local, std::span<const VertexId> global_of,
    std::span<const VertexId> ghosts,
    std::vector<std::pair<std::string, uint32_t>> algo_radius) {
  assert(global_of.size() == local.NumVertices());
  auto boundary = std::make_shared<ShardBoundary>();
  boundary->algo_radius = std::move(algo_radius);

  uint32_t max_rho = 0;
  for (const auto& [name, rho] : boundary->algo_radius) {
    max_rho = std::max(max_rho, rho);
  }
  // A near answer's dependence ball reaches rho from its anchor, and the
  // anchor is at most rho from the cut, so the region must cover 2*rho.
  const uint32_t cap = 2 * max_rho;
  boundary->export_data.radius_cap = cap;

  if (ghosts.empty()) {
    boundary->dist_to_cut.assign(local.NumVertices(), kInfDistance);
    return boundary;
  }

  std::vector<bool> is_ghost(local.NumVertices(), false);
  for (VertexId g : ghosts) is_ghost[g] = true;

  // Cut endpoints present locally: the ghosts themselves and every owned
  // endpoint of a ghost-incident edge (each such edge IS a cut edge — a
  // materialized edge always has exactly one owned endpoint when it
  // crosses the cut).
  std::vector<VertexId> seeds(ghosts.begin(), ghosts.end());
  const CsrView out = local.Out();
  for (VertexId u = 0; u < local.NumVertices(); ++u) {
    const auto oi = out[u];
    for (uint64_t i = oi.begin; i < oi.end; ++i) {
      VertexId w = out.Slot(i);
      if (is_ghost[u] != is_ghost[w]) {
        seeds.push_back(is_ghost[u] ? w : u);
      }
    }
  }
  DistanceFromSeeds(local, seeds, cap, boundary->dist_to_cut);

  BoundaryExport& ex = boundary->export_data;
  for (VertexId v = 0; v < local.NumVertices(); ++v) {
    if (!is_ghost[v] && boundary->dist_to_cut[v] <= cap) {
      ex.vertices.emplace_back(global_of[v], local.label(v));
    }
  }
  for (VertexId u = 0; u < local.NumVertices(); ++u) {
    const auto oi = out[u];
    for (uint64_t i = oi.begin; i < oi.end; ++i) {
      VertexId w = out.Slot(i);
      if (is_ghost[u] != is_ghost[w]) {
        ex.cut_edges.emplace_back(global_of[u], global_of[w]);
      } else if (!is_ghost[u] && !is_ghost[w] &&
                 boundary->dist_to_cut[u] <= cap &&
                 boundary->dist_to_cut[w] <= cap) {
        ex.edges.emplace_back(global_of[u], global_of[w]);
      }
      // Ghost-ghost edges cannot exist: a materialized cut edge has exactly
      // one owned endpoint, and intra-shard edges have two.
    }
  }
  return boundary;
}

uint32_t BoundaryRegion::DistOfGlobal(VertexId global) const {
  auto it = std::lower_bound(global_of.begin(), global_of.end(), global);
  if (it == global_of.end() || *it != global) return kInfDistance;
  return dist_to_cut[it - global_of.begin()];
}

StatusOr<BoundaryRegion> AssembleBoundaryRegion(
    std::span<const BoundaryExport> exports) {
  BoundaryRegion region;
  region.radius_cap = kInfDistance;
  std::vector<std::pair<VertexId, LabelId>> vertices;
  std::vector<std::pair<VertexId, VertexId>> edges, cut_edges;
  for (const BoundaryExport& ex : exports) {
    if (!ex.HasCut()) continue;  // ghost-free shard: contributes nothing
    region.radius_cap = std::min(region.radius_cap, ex.radius_cap);
    vertices.insert(vertices.end(), ex.vertices.begin(), ex.vertices.end());
    edges.insert(edges.end(), ex.edges.begin(), ex.edges.end());
    cut_edges.insert(cut_edges.end(), ex.cut_edges.begin(),
                     ex.cut_edges.end());
  }
  if (cut_edges.empty()) {
    region.radius_cap = 0;
    return region;  // no cut anywhere: empty region, has_cut stays false
  }
  region.has_cut = true;

  // Vertex ownership is disjoint across shards, so duplicates can only come
  // from inconsistent exports.
  std::sort(vertices.begin(), vertices.end());
  for (size_t i = 1; i < vertices.size(); ++i) {
    if (vertices[i].first == vertices[i - 1].first) {
      return Status::Corruption(
          "boundary exports overlap: vertex " +
          std::to_string(vertices[i].first) + " exported by two shards");
    }
  }
  region.global_of.reserve(vertices.size());
  for (const auto& [id, label] : vertices) region.global_of.push_back(id);
  auto local_of = [&](VertexId global, VertexId* local) {
    auto it = std::lower_bound(region.global_of.begin(),
                               region.global_of.end(), global);
    if (it == region.global_of.end() || *it != global) return false;
    *local = static_cast<VertexId>(it - region.global_of.begin());
    return true;
  };

  GraphBuilder b;
  b.Reserve(vertices.size(), edges.size() + cut_edges.size());
  for (const auto& [id, label] : vertices) b.AddVertex(label);
  for (const auto& [u, v] : edges) {
    VertexId lu, lv;
    if (!local_of(u, &lu) || !local_of(v, &lv)) {
      return Status::Corruption("boundary export edge endpoint not exported");
    }
    b.AddEdge(lu, lv);
  }
  // Each cut edge arrives from both incident shards; GraphBuilder collapses
  // the duplicate. Every cut endpoint is owned by some shard at distance 0,
  // so it must appear in that shard's vertex export.
  std::vector<VertexId> seeds;
  seeds.reserve(2 * cut_edges.size());
  for (const auto& [u, v] : cut_edges) {
    VertexId lu, lv;
    if (!local_of(u, &lu) || !local_of(v, &lv)) {
      return Status::Corruption(
          "boundary cut endpoint not exported by its owning shard");
    }
    b.AddEdge(lu, lv);
    seeds.push_back(lu);
    seeds.push_back(lv);
  }
  auto graph = b.Build();
  if (!graph.ok()) return graph.status();
  region.graph = std::move(graph).value();
  DistanceFromSeeds(region.graph, seeds, region.radius_cap,
                    region.dist_to_cut);
  return region;
}

}  // namespace bigindex
