// Boundary-aware cross-shard evaluation (DESIGN.md §9).
//
// A bfs-mode shard plan severs edges; ghost materialization (ExtractShard)
// puts both endpoints of every cut edge in both incident shards, so each
// worker sees the true global neighborhood of every owned vertex up to the
// first cut crossing. This module computes the two derived structures the
// exactness argument rests on:
//
//   * ComputeShardBoundary — worker side. Undirected distance-to-cut for
//     every local vertex (capped at R = 2 * max locality radius) plus the
//     BoundaryExport: the owned vertices within R of the cut, the edges
//     among them, and the shard's incident cut edges, all in global ids.
//     Workers drop answers anchored within rho of the cut (they may be
//     wrong or missing locally); everything farther is provably exact on
//     the shard alone, because its whole dependence ball is cut-free.
//
//   * AssembleBoundaryRegion — coordinator side. Glues the per-shard
//     exports into one region graph (order-preserving global->region remap,
//     cut edges deduped, distance-to-cut recomputed on the region). The
//     coordinator evaluates the query on the region and keeps exactly the
//     answers anchored within rho of the cut: the region contains every
//     vertex and edge within R >= 2*rho of the cut, so those answers — and
//     their scores — match the monolithic graph. Far answers from workers
//     plus near answers from the region partition the monolithic answer
//     set, so the merge is exact.

#ifndef BIGINDEX_SHARD_BOUNDARY_H_
#define BIGINDEX_SHARD_BOUNDARY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/query_engine.h"
#include "graph/graph.h"
#include "server/query_service.h"
#include "util/status.h"

namespace bigindex {

/// (name, LocalityRadius) of every algorithm registered on `engine`,
/// ascending by name. Radius 0 marks an algorithm whose answer locality is
/// unknown — it is excluded from boundary filtering and completion.
std::vector<std::pair<std::string, uint32_t>> AlgorithmRadii(
    const QueryEngine& engine);

/// Computes one shard's boundary state from its local graph (`local`, with
/// ghosts materialized), the local->global remap, the ghost local ids, and
/// the per-algorithm locality radii (AlgorithmRadii of the worker's engine).
/// The export cap is R = 2 * max radius. Ghost-free shards yield a state
/// with an empty export (no cut: nothing filtered, nothing completed).
/// Deterministic; the result is immutable and safe to share across threads.
std::shared_ptr<const ShardBoundary> ComputeShardBoundary(
    const Graph& local, std::span<const VertexId> global_of,
    std::span<const VertexId> ghosts,
    std::vector<std::pair<std::string, uint32_t>> algo_radius);

/// The coordinator's assembled boundary region: the union of the per-shard
/// exports under an order-preserving global->region remap.
struct BoundaryRegion {
  Graph graph;
  /// Region-local -> global vertex id, strictly ascending.
  std::vector<VertexId> global_of;
  /// Undirected distance to the nearest cut endpoint, per region-local
  /// vertex, capped at radius_cap (kInfDistance beyond).
  std::vector<uint32_t> dist_to_cut;
  /// min over the contributing exports' caps: completion for an algorithm
  /// of radius rho is sound only when 2*rho <= radius_cap.
  uint32_t radius_cap = 0;
  bool has_cut = false;

  /// dist_to_cut by global id; kInfDistance for vertices outside the region.
  uint32_t DistOfGlobal(VertexId global) const;
};

/// Glues per-shard exports into the region. Empty/ghost-free exports
/// contribute nothing; with no cut edge anywhere the region is empty and
/// has_cut is false. Fails with Corruption when the exports are mutually
/// inconsistent (a cut endpoint no shard exported, conflicting labels).
StatusOr<BoundaryRegion> AssembleBoundaryRegion(
    std::span<const BoundaryExport> exports);

}  // namespace bigindex

#endif  // BIGINDEX_SHARD_BOUNDARY_H_
