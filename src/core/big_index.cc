#include "core/big_index.h"

#include <cassert>
#include <optional>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace bigindex {
namespace {

/// Construction pool owned for the duration of one Build/ApplyUpdates call.
/// num_threads == 0 creates no pool at all (fully serial, no thread
/// machinery); a pool with <= 1 workers is also reported as null because
/// every parallel site falls back to serial below that.
class BuildPool {
 public:
  explicit BuildPool(size_t num_threads) {
    if (num_threads != 0) pool_.emplace(num_threads);
  }
  ExecutorPool* get() { return pool_ ? &*pool_ : nullptr; }
  size_t num_workers() { return pool_ ? pool_->num_workers() : 0; }

 private:
  std::optional<ExecutorPool> pool_;
};

Gauge& BuildThreadsGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge(
      "bigindex_build_threads",
      "Worker threads used by the most recent index construction");
  return g;
}

}  // namespace

StatusOr<BigIndex> BigIndex::Build(Graph base, const Ontology* ontology,
                                   const BigIndexOptions& options) {
  TRACE_SPAN("build/index");
  static Counter& builds = MetricsRegistry::Global().GetCounter(
      "bigindex_build_runs_total", "BigIndex::Build invocations");
  static Counter& layers_built = MetricsRegistry::Global().GetCounter(
      "bigindex_build_layers_total", "Summary layers constructed");
  static Histogram& layer_ms = MetricsRegistry::Global().GetHistogram(
      "bigindex_build_layer_ms",
      "Wall time per summary layer (config + Gen + Bisim), ms");
  builds.Inc();

  if (ontology == nullptr) {
    return Status::InvalidArgument("ontology must not be null");
  }
  BigIndex index(std::move(base), ontology, options);

  BuildPool pool(options.build.num_threads);
  BuildThreadsGauge().Set(static_cast<int64_t>(pool.num_workers()));
  ConfigSearchOptions search_opts = options.config_search;
  search_opts.cost.pool = pool.get();
  search_opts.cost.seed = options.build.seed;
  const BisimOptions bisim_opts{.pool = pool.get()};

  const Graph* current = &index.base_;
  for (size_t i = 1; i <= options.max_layers; ++i) {
    TRACE_SPAN("build/layer");
    Timer layer_timer;
    GeneralizationConfig config;
    {
      TRACE_SPAN("build/config");
      config = options.use_greedy_config
                   ? FindConfiguration(*current, *ontology, search_opts)
                   : FullOneStepConfiguration(*current, *ontology);
    }
    BIGINDEX_RETURN_IF_ERROR(config.Validate(*ontology));

    Graph generalized;
    {
      TRACE_SPAN("build/generalize");
      generalized = Generalize(*current, config);
    }
    BisimResult bisim = ComputeBisimulation(generalized, bisim_opts);
    layer_ms.Record(layer_timer.ElapsedMillis());

    double ratio = current->Size() == 0
                       ? 1.0
                       : static_cast<double>(bisim.summary.Size()) /
                             current->Size();
    // Nothing left to gain: no labels moved and no structural compression.
    if (config.empty() && ratio > options.stop_ratio) break;

    IndexLayer layer;
    layer.config = std::move(config);
    layer.graph = std::move(bisim.summary);
    layer.mapping = std::move(bisim.mapping);
    index.layers_.push_back(std::move(layer));
    layers_built.Inc();
    current = &index.layers_.back().graph;
  }
  return index;
}

StatusOr<BigIndex> BigIndex::FromParts(Graph base, const Ontology* ontology,
                                       std::vector<IndexLayer> layers,
                                       const BigIndexOptions& options) {
  if (ontology == nullptr) {
    return Status::InvalidArgument("ontology must not be null");
  }
  BigIndex index(std::move(base), ontology, options);
  const Graph* lower = &index.base_;
  for (const IndexLayer& layer : layers) {
    if (layer.mapping.NumVertices() != lower->NumVertices() ||
        layer.mapping.NumSupernodes() != layer.graph.NumVertices()) {
      return Status::Corruption("layer mapping inconsistent with graphs");
    }
    lower = &layer.graph;
  }
  index.layers_ = std::move(layers);
  return index;
}

VertexId BigIndex::MapUp(VertexId v, size_t from, size_t to) const {
  assert(from <= to && to <= NumLayers());
  VertexId x = v;
  for (size_t l = from + 1; l <= to; ++l) {
    // Gen keeps vertex ids; Bisim maps them to supernodes.
    x = layers_[l - 1].mapping.SuperOf(x);
  }
  return x;
}

LabelId BigIndex::GeneralizeLabel(LabelId label, size_t m) const {
  LabelId l = label;
  for (size_t i = 1; i <= m; ++i) l = layers_[i - 1].config.Generalize(l);
  return l;
}

std::vector<LabelId> BigIndex::GeneralizeKeywords(
    const std::vector<LabelId>& q, size_t m) const {
  std::vector<LabelId> out;
  out.reserve(q.size());
  for (LabelId l : q) out.push_back(GeneralizeLabel(l, m));
  return out;
}

size_t BigIndex::TotalSummarySize() const {
  size_t total = 0;
  for (const IndexLayer& layer : layers_) total += layer.graph.Size();
  return total;
}

StatusOr<size_t> BigIndex::ApplyUpdates(std::span<const GraphUpdate> updates) {
  TRACE_SPAN("build/maintain");
  static Counter& maintained = MetricsRegistry::Global().GetCounter(
      "bigindex_maintain_updates_total",
      "Graph updates applied through BigIndex::ApplyUpdates");
  static Counter& relayered = MetricsRegistry::Global().GetCounter(
      "bigindex_maintain_layers_rebuilt_total",
      "Layers re-summarized by maintenance");
  maintained.Inc(updates.size());
  auto updated = bigindex::ApplyUpdates(base_, updates);
  if (!updated.ok()) return updated.status();
  base_ = std::move(updated).value();

  // Bottom-up re-summarization with the existing configurations (edge
  // updates never change labels, so every C^i stays valid). Stop at the
  // first unchanged summary: all layers above it were computed from an
  // identical input graph and remain correct.
  BuildPool pool(options_.build.num_threads);
  const BisimOptions bisim_opts{.pool = pool.get()};
  size_t rebuilt = 0;
  const Graph* current = &base_;
  for (IndexLayer& layer : layers_) {
    Graph generalized = Generalize(*current, layer.config);
    BisimResult bisim = ComputeBisimulation(generalized, bisim_opts);
    bool changed = !GraphsIdentical(bisim.summary, layer.graph);
    layer.mapping = std::move(bisim.mapping);
    if (!changed) break;
    layer.graph = std::move(bisim.summary);
    ++rebuilt;
    current = &layer.graph;
  }
  relayered.Inc(rebuilt);
  return rebuilt;
}

}  // namespace bigindex
