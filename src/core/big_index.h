// The hierarchical Bisimulation of Generalized Graph Index (Sec. 3, Def 3.1).
//
// BiG-index(G, G_Ont) = (𝔾, 𝒞): graphs {G^0 … G^h} and configurations
// [C^1 … C^h] with G^i = χ(G^{i-1}, C^i) = Bisim(Gen(G^{i-1}, C^i)).
// Each layer keeps its BisimMapping, which is the hash-table implementation
// of Bisim^-1 used by specialization (Sec. 2), so χ^-1 is a chain of
// Members() lookups plus the configs' label preimages.

#ifndef BIGINDEX_CORE_BIG_INDEX_H_
#define BIGINDEX_CORE_BIG_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bisim/bisimulation.h"
#include "bisim/maintenance.h"
#include "core/config_search.h"
#include "graph/graph.h"
#include "ontology/config.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace bigindex {

/// Parallel-construction knobs, threaded through every stage of
/// BigIndex::Build (Bisim refinement, cost-model sampling/estimation, and
/// Algorithm 1 candidate scoring). Construction output is byte-identical for
/// every thread count: block ids, sample RNG streams, and score reductions
/// are all deterministic functions of the input and `seed` alone.
struct BuildOptions {
  /// Worker threads for construction; 0 = fully serial (no pool is created),
  /// ExecutorPool::kHardwareConcurrency = one per hardware thread.
  size_t num_threads = 0;

  /// Master seed for cost-model subgraph sampling. Every per-sample RNG
  /// stream is derived from it, so a fixed seed reproduces the same index
  /// bit for bit across runs and thread counts. Takes precedence over
  /// ConfigSearchOptions::cost.seed during Build.
  uint64_t seed = 42;
};

/// Construction knobs.
struct BigIndexOptions {
  /// Maximum number of summary layers h (the paper computes 7).
  size_t max_layers = 7;

  /// If true, each layer's configuration comes from Algorithm 1
  /// (FindConfiguration with `config_search`); if false — the experiments'
  /// default — every label is generalized one ontology step per layer
  /// (FullOneStepConfiguration, Sec. 6.1.2 "Default indexes").
  bool use_greedy_config = false;

  ConfigSearchOptions config_search;

  /// Stop early when a new layer shrinks the previous one by less than this
  /// ("until it cannot be further summarized efficiently", Sec. 1):
  /// |G^i| / |G^{i-1}| must be <= stop_ratio to keep going once the
  /// configuration is empty.
  double stop_ratio = 0.999;

  /// Parallelism + reproducibility (see BuildOptions).
  BuildOptions build;
};

/// One summary layer: C^i, G^i, and the vertex mapping from G^{i-1}.
struct IndexLayer {
  GeneralizationConfig config;  // C^i, applied to G^{i-1}'s labels
  Graph graph;                  // G^i = Bisim(Gen(G^{i-1}, C^i))
  BisimMapping mapping;         // G^{i-1} vertex -> G^i supernode
};

/// The index. Owns the base graph and all layers; the ontology is borrowed
/// and must outlive the index.
class BigIndex {
 public:
  /// Builds the hierarchy. `ontology` must remain valid for the index's
  /// lifetime.
  static StatusOr<BigIndex> Build(Graph base, const Ontology* ontology,
                                  const BigIndexOptions& options = {});

  /// Reassembles an index from serialized parts (see core/index_io.h) or
  /// from incremental maintenance (update/maintain.h). Validates
  /// layer-to-layer consistency (mapping domains/codomains). `options`
  /// become the index's stored options (serialized images don't carry them;
  /// maintenance passes the predecessor's so rebuild behavior is stable).
  static StatusOr<BigIndex> FromParts(Graph base, const Ontology* ontology,
                                      std::vector<IndexLayer> layers,
                                      const BigIndexOptions& options = {});

  /// Number of summary layers h (layers are numbered 1..h; 0 is the base).
  size_t NumLayers() const { return layers_.size(); }

  /// G^m for m in [0, NumLayers()].
  const Graph& LayerGraph(size_t m) const {
    return m == 0 ? base_ : layers_[m - 1].graph;
  }

  /// Layer record for m in [1, NumLayers()].
  const IndexLayer& Layer(size_t m) const { return layers_[m - 1]; }

  const Graph& base() const { return base_; }
  const Ontology& ontology() const { return *ontology_; }
  const BigIndexOptions& options() const { return options_; }

  /// χ^m(v) for v a vertex of `from` layer: the supernode containing v at
  /// layer `to` (from <= to).
  VertexId MapUp(VertexId v, size_t from, size_t to) const;

  /// Spec of a layer-m vertex: its member vertices at layer m-1 (m >= 1).
  std::span<const VertexId> SpecializeVertex(VertexId v, size_t m) const {
    return layers_[m - 1].mapping.Members(v);
  }

  /// Gen^m on a single label (identity when m = 0).
  LabelId GeneralizeLabel(LabelId label, size_t m) const;

  /// Gen^m(Q): element-wise label generalization.
  std::vector<LabelId> GeneralizeKeywords(const std::vector<LabelId>& q,
                                          size_t m) const;

  /// |G^m| / |G^0| — the per-layer compression ratio (Tab 3 / Fig 9).
  double LayerCompressionRatio(size_t m) const {
    return base_.Size() == 0
               ? 1.0
               : static_cast<double>(LayerGraph(m).Size()) / base_.Size();
  }

  /// Total index footprint |G^1| + ... + |G^h| ("the BiG-index size is
  /// simply the sum of the summary graphs", Sec. 6.2).
  size_t TotalSummarySize() const;

  /// Maintenance (Sec. 3.2): applies edge updates to the base graph and
  /// re-summarizes layers bottom-up, stopping early at the first layer whose
  /// summary is unchanged (upper layers then remain valid).
  /// Returns the number of layers rebuilt.
  StatusOr<size_t> ApplyUpdates(std::span<const GraphUpdate> updates);

 private:
  BigIndex(Graph base, const Ontology* ontology, BigIndexOptions options)
      : base_(std::move(base)), ontology_(ontology), options_(options) {}

  Graph base_;
  const Ontology* ontology_;
  BigIndexOptions options_;
  std::vector<IndexLayer> layers_;
};

}  // namespace bigindex

#endif  // BIGINDEX_CORE_BIG_INDEX_H_
