#include "core/config_search.h"

#include <algorithm>
#include <vector>

#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigindex {

GeneralizationConfig FindConfiguration(const Graph& g,
                                       const Ontology& ontology,
                                       const ConfigSearchOptions& options) {
  TRACE_SPAN("build/config_search");
  static Counter& candidates_scored = MetricsRegistry::Global().GetCounter(
      "bigindex_configsearch_candidates_total",
      "Single-generalization candidates scored by Algorithm 1");
  static Counter& committed = MetricsRegistry::Global().GetCounter(
      "bigindex_configsearch_committed_total",
      "Generalizations admitted into a configuration by Algorithm 1");
  CostModel model(g, options.cost);
  IncrementalCost tracker(model);

  // Candidate generalizations: every (ℓ in Σ(G)) -> (direct supertype),
  // scored as cost(G, {c_i}) (Algorithm 1 lines 3-4). Scoring each single
  // mapping touches only the samples containing its label; candidates are
  // mutually independent, so with a pool they are scored concurrently (each
  // with its own IncrementalCost, against the read-only model).
  struct ScoredCandidate {
    double cost;
    LabelMapping mapping;
  };
  std::vector<ScoredCandidate> queue;
  for (LabelId l : g.DistinctLabels()) {
    for (LabelId super : ontology.Supertypes(l)) {
      queue.push_back({0.0, {l, super}});
    }
  }
  auto score = [&](size_t, size_t i) {
    IncrementalCost single(model);
    queue[i].cost = single.CostWith(queue[i].mapping);
  };
  ExecutorPool* pool = options.cost.pool;
  if (pool != nullptr && pool->num_workers() > 1 && queue.size() > 1) {
    TRACE_SPAN("build/parallel/score");
    pool->ParallelFor(queue.size(), score);
  } else {
    for (size_t i = 0; i < queue.size(); ++i) score(0, i);
  }
  candidates_scored.Inc(queue.size());
  // Ascending estimated cost; deterministic tie-break on the mapping.
  std::sort(queue.begin(), queue.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.mapping.from != b.mapping.from) {
                return a.mapping.from < b.mapping.from;
              }
              return a.mapping.to < b.mapping.to;
            });

  for (const ScoredCandidate& cand : queue) {
    if (tracker.config().size() >= options.pi) break;
    if (tracker.config().Maps(cand.mapping.from)) continue;  // conflict

    if (tracker.CostWith(cand.mapping) <= options.theta) {
      tracker.Commit(cand.mapping);
      committed.Inc();
    } else {
      // Algorithm 1 line 10: the queue is cost-ordered, so stop at the first
      // candidate that would exceed θ.
      break;
    }
  }
  return tracker.config();
}

GeneralizationConfig FullOneStepConfiguration(const Graph& g,
                                              const Ontology& ontology) {
  GeneralizationConfig config;
  for (LabelId l : g.DistinctLabels()) {
    auto supers = ontology.Supertypes(l);
    if (supers.empty()) continue;
    (void)config.AddMapping(l, supers.front());  // smallest id: deterministic
  }
  return config;
}

bool SameFullConfiguration(const Graph& a, const Graph& b) {
  auto la = a.DistinctLabels();
  auto lb = b.DistinctLabels();
  return std::equal(la.begin(), la.end(), lb.begin(), lb.end());
}

}  // namespace bigindex
