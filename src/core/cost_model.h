// The index-construction cost model of Sec. 3.2 (Formula 3):
//
//   cost(G, C) = α · compress(G, C) + (1 − α) · distort(G, C)
//
// compress is the summary-to-input size ratio |χ(G,C)| / |G|, estimated on
// sampled radius-r node-induced subgraphs (most keyword semantics are
// hop-bounded, so local structure suffices); distort is the support-weighted
// semantic distortion of the configuration's label mappings.

#ifndef BIGINDEX_CORE_COST_MODEL_H_
#define BIGINDEX_CORE_COST_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/sampling.h"
#include "ontology/config.h"
#include "util/random.h"

namespace bigindex {

class ExecutorPool;

/// Knobs of the Formula-3 cost model.
struct CostModelOptions {
  /// Weight α between compress and distort.
  double alpha = 0.5;

  /// Sampling radius r (hop bound of typical keyword semantics).
  uint32_t sample_radius = 2;

  /// Number of sampled subgraphs n. The paper derives n = 0.25 (z/E)^2 and
  /// uses 400 (E = 5%, z = 1.96).
  size_t sample_count = 400;

  /// Sampling seed (construction is deterministic given it).
  uint64_t seed = 42;

  /// Per-sample vertex cap: radius-r balls around hubs can cover most of a
  /// skewed graph, defeating sampling. BFS order keeps the closest vertices.
  size_t max_sample_vertices = 512;

  /// Worker pool for sample expansion and per-sample Gen+Bisim estimation
  /// (samples are independent, so they parallelize embarrassingly); nullptr
  /// runs serially. Estimates are identical for every pool size: each
  /// sample's RNG stream derives from `seed` alone, and per-sample work is
  /// order-independent. When a pool with workers is set, all baseline ratios
  /// are precomputed eagerly (in parallel) so later scoring never mutates
  /// shared state.
  ExecutorPool* pool = nullptr;
};

/// Estimates cost(G, C) for many configurations against one graph; samples
/// are drawn once at construction and reused, as in Algorithm 1.
class CostModel {
 public:
  CostModel(const Graph& g, const CostModelOptions& options);

  /// Estimated compression ratio: mean over samples of
  /// |Bisim(Gen(sample, C))| / |sample|. In [0, 1]; lower is better.
  double EstimateCompress(const GeneralizationConfig& config) const;

  /// Support-weighted semantic distortion (Sec. 3.2). In [0, 1); lower is
  /// better; 0 when no mapped label occurs in the graph.
  double Distort(const GeneralizationConfig& config) const;

  /// Formula 3.
  double Cost(const GeneralizationConfig& config) const {
    return options_.alpha * EstimateCompress(config) +
           (1.0 - options_.alpha) * Distort(config);
  }

  size_t num_samples() const { return samples_.size(); }
  const CostModelOptions& options() const { return options_; }

  /// Ground-truth compression ratio on the whole graph (used to validate the
  /// estimator, Exp-4 / Fig 16).
  static double ExactCompress(const Graph& g,
                              const GeneralizationConfig& config);

  /// Samples whose graphs contain `label` (for incremental re-estimation).
  std::span<const uint32_t> SamplesWithLabel(LabelId label) const {
    if (label >= samples_with_label_.size()) return {};
    return samples_with_label_[label];
  }

  const std::vector<SampledSubgraph>& samples() const { return samples_; }

 private:
  const Graph& graph_;
  CostModelOptions options_;
  std::vector<SampledSubgraph> samples_;
  // Incremental-estimation support: a sample's ratio differs from its
  // baseline (empty-config) ratio only if the config maps one of its labels.
  // Algorithm 1 scores hundreds of single-mapping candidates, so skipping
  // untouched samples dominates construction cost.
  mutable std::vector<double> baseline_ratio_;  // lazily filled, -1 = unset
  std::vector<std::vector<uint32_t>> samples_with_label_;  // label -> samples
  double BaselineRatio(size_t sample_index) const;

  friend class IncrementalCost;
};

/// Stateful Formula-3 evaluator for Algorithm 1's greedy loop: tracks
/// cost(G, C) as mappings are committed, recomputing only the samples the
/// newest mapping touches. Makes the greedy search near-linear in the number
/// of (label, sample) incidences instead of quadratic in |C|.
class IncrementalCost {
 public:
  explicit IncrementalCost(const CostModel& model);

  /// cost(G, C ∪ {mapping}) without committing. Returns the current cost if
  /// the mapping conflicts with an existing one.
  double CostWith(const LabelMapping& mapping);

  /// Commits the mapping (must not conflict).
  void Commit(const LabelMapping& mapping);

  double CurrentCost();
  const GeneralizationConfig& config() const { return config_; }

 private:
  /// Mean sample ratio if the samples listed in `touched` had the ratios in
  /// `replacement` instead of their current values.
  double CompressReplacing(std::span<const uint32_t> touched,
                           std::span<const double> replacement) const;

  const CostModel& model_;
  GeneralizationConfig config_;
  std::vector<double> sample_ratio_;  // ratio of each sample under config_
  double ratio_sum_ = 0;
  size_t counted_ = 0;
};

}  // namespace bigindex

#endif  // BIGINDEX_CORE_COST_MODEL_H_
