#include "core/index_image.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string_view>
#include <utility>

#include "graph/csr.h"
#include "util/mmap_file.h"

namespace bigindex {
namespace {

using Fmt = IndexImageFormat;

// Images larger than this are rejected up front; the bound keeps every
// count * sizeof(T) multiplication in the loader comfortably inside u64.
constexpr uint64_t kMaxImageBytes = 1ull << 48;

uint64_t Fnv1a(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void AppendU32(std::string& s, uint32_t v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  s.append(b, sizeof v);
}

void AppendU64(std::string& s, uint64_t v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  s.append(b, sizeof v);
}

/// Appends a flat array plus deterministic zero padding to the 8-byte
/// boundary, mirroring Arena::AlignedSize so in-memory and on-disk layouts
/// agree byte for byte.
template <typename T>
void AppendArray(std::string& s, std::span<const T> a) {
  s.append(reinterpret_cast<const char*>(a.data()), a.size() * sizeof(T));
  s.append(Arena::AlignedSize<T>(a.size()) - a.size() * sizeof(T), '\0');
}

std::string BuildDictSection(const LabelDictionary& dict) {
  std::string out;
  AppendU64(out, dict.size());
  uint64_t offset = 0;
  for (LabelId id = 0; id < dict.size(); ++id) {
    AppendU64(out, offset);
    offset += dict.Name(id).size();
  }
  AppendU64(out, offset);  // offsets[count] = blob size
  for (LabelId id = 0; id < dict.size(); ++id) out += dict.Name(id);
  out.append((8 - out.size() % 8) % 8, '\0');
  return out;
}

std::string BuildGraphSection(const Graph& g) {
  assert(g.LabelVertices().size() == g.NumVertices());
  std::string out;
  AppendU64(out, g.NumVertices());
  AppendU64(out, g.NumEdges());
  AppendU64(out, g.LabelSlots());
  AppendU64(out, g.DistinctLabels().size());
  AppendArray(out, g.labels());
  AppendArray(out, g.OutOffsets());
  AppendArray(out, g.OutTargets());
  AppendArray(out, g.InOffsets());
  AppendArray(out, g.InSources());
  AppendArray(out, g.LabelOffsets());
  AppendArray(out, g.LabelVertices());
  AppendArray(out, g.DistinctLabels());
  return out;
}

std::string BuildMappingSection(const BisimMapping& m) {
  std::string out;
  AppendU64(out, m.NumVertices());
  AppendU64(out, m.NumSupernodes());
  AppendArray(out, m.VertexToSuper());
  AppendArray(out, m.MemberOffsets());
  AppendArray(out, m.MembersArray());
  return out;
}

std::string BuildConfigSection(const GeneralizationConfig& c) {
  std::string out;
  AppendU64(out, c.mappings().size());
  for (const LabelMapping& lm : c.mappings()) {
    AppendU32(out, lm.from);
    AppendU32(out, lm.to);
  }
  out.append((8 - out.size() % 8) % 8, '\0');
  return out;
}

std::string BuildShardMapSection(const ShardImageInfo& shard) {
  std::string out;
  AppendU64(out, shard.global_of.size());
  // Redundant with the header's shard fields; the loader cross-checks them
  // so a spliced SHARDMAP section cannot masquerade as another shard's.
  AppendU64(out, shard.shard_id);
  AppendU64(out, shard.num_shards);
  AppendArray(out, std::span<const VertexId>(shard.global_of));
  return out;
}

std::string BuildGhostsSection(const ShardImageInfo& shard) {
  std::string out;
  AppendU64(out, shard.ghosts.size());
  AppendArray(out, std::span<const VertexId>(shard.ghosts));
  return out;
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

/// Bounds-checked forward reader over one section payload. Array reads hand
/// back spans pointing into the payload itself (the zero-copy step); the
/// base pointer is 8-byte aligned and every consume advances by a multiple
/// of 8, so element access is always aligned.
class Cursor {
 public:
  Cursor(const std::byte* data, uint64_t size) : data_(data), size_(size) {}

  Status ReadU64(uint64_t* out) {
    if (size_ - pos_ < sizeof(*out)) {
      return Status::Corruption("section truncated (scalar)");
    }
    std::memcpy(out, data_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::OK();
  }

  template <typename T>
  Status ReadArray(uint64_t count, std::span<const T>* out) {
    if (count > size_) return Status::Corruption("array count exceeds section");
    uint64_t bytes = Arena::AlignedSize<T>(count);
    if (bytes > size_ - pos_) {
      return Status::Corruption("section truncated (array)");
    }
    *out = {reinterpret_cast<const T*>(data_ + pos_), count};
    pos_ += bytes;
    return Status::OK();
  }

  Status ExpectExhausted() const {
    if (pos_ != size_) return Status::Corruption("section has trailing bytes");
    return Status::OK();
  }

  uint64_t remaining() const { return size_ - pos_; }

 private:
  const std::byte* data_;
  uint64_t size_;
  uint64_t pos_ = 0;
};

/// A validated section: payload bytes plus its table entry.
struct Section {
  uint32_t kind = 0;
  uint32_t layer = 0;
  const std::byte* data = nullptr;
  uint64_t length = 0;
};

struct ParsedTable {
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic, no SHARDMAP section
  bool has_ghosts = false;  // sharded image with a trailing GHOSTS section
  std::vector<Section> sections;
};

uint32_t LoadU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

uint64_t LoadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Validates the fixed header and the section table (bounds, alignment,
/// ordering, checksums). On success the returned sections are safe to parse.
StatusOr<ParsedTable> ValidateHeaderAndTable(const std::byte* data,
                                             uint64_t size,
                                             bool verify_checksums) {
  if (size < Fmt::kHeaderSize) return Status::Corruption("image too small");
  if (size > kMaxImageBytes) return Status::Corruption("image too large");
  if (std::memcmp(data, Fmt::kMagic, sizeof Fmt::kMagic) != 0) {
    return Status::Corruption("bad magic: not an index image");
  }
  uint32_t version = LoadU32(data + 8);
  if (version != Fmt::kVersion) {
    return Status::Corruption("unsupported index-image version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(Fmt::kVersion) + ")");
  }
  uint32_t endian = LoadU32(data + 12);
  if (endian != Fmt::kEndianMarker) {
    return Status::Corruption(
        "endianness mismatch: image written on a different byte order");
  }
  uint64_t file_size = LoadU64(data + 16);
  if (file_size != size) {
    return Status::Corruption("header file size " + std::to_string(file_size) +
                              " != actual " + std::to_string(size));
  }
  uint64_t header_sum = LoadU64(data + 56);
  if (Fnv1a(data, 56) != header_sum) {
    return Status::Corruption("header checksum mismatch");
  }
  ParsedTable table;
  uint32_t section_count = LoadU32(data + 24);
  table.num_layers = LoadU32(data + 28);
  table.shard_id = LoadU32(data + 32);
  table.num_shards = LoadU32(data + 36);
  if (table.num_shards == 0 && table.shard_id != 0) {
    return Status::Corruption("monolithic image carries a nonzero shard id");
  }
  if (table.num_shards != 0 && table.shard_id >= table.num_shards) {
    return Status::Corruption("shard id out of range for shard count");
  }
  uint64_t expected_sections =
      2 + 3ull * table.num_layers + (table.num_shards != 0 ? 1 : 0);
  // Sharded images may carry one trailing GHOSTS section (cut-incident
  // plans); ValidateSectionOrder pins its kind and position.
  if (table.num_shards != 0 && section_count == expected_sections + 1) {
    table.has_ghosts = true;
  } else if (section_count != expected_sections) {
    return Status::Corruption("section count does not match layer count");
  }
  uint64_t table_end =
      Fmt::kHeaderSize + uint64_t{section_count} * Fmt::kSectionEntrySize;
  if (table_end > size) return Status::Corruption("section table truncated");

  uint64_t prev_end = table_end;
  table.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const std::byte* e = data + Fmt::kHeaderSize + i * Fmt::kSectionEntrySize;
    Section s;
    s.kind = LoadU32(e);
    s.layer = LoadU32(e + 4);
    uint64_t offset = LoadU64(e + 8);
    s.length = LoadU64(e + 16);
    uint64_t checksum = LoadU64(e + 24);
    if (offset % Arena::kAlign != 0) {
      return Status::Corruption("section offset misaligned");
    }
    // Overflow-safe containment: offset and length are each checked against
    // size before their sum is formed.
    if (offset > size || s.length > size - offset) {
      return Status::Corruption("section extends past end of image");
    }
    if (offset < prev_end) {
      return Status::Corruption("section offsets not monotone");
    }
    prev_end = offset + s.length;
    s.data = data + offset;
    if (verify_checksums && Fnv1a(s.data, s.length) != checksum) {
      return Status::Corruption("section " + std::to_string(i) +
                                " checksum mismatch");
    }
    table.sections.push_back(s);
  }
  return table;
}

/// Checks the canonical section sequence: DICT, GRAPH(0), then per layer m:
/// CONFIG(m), MAPPING(m), GRAPH(m), then SHARDMAP iff the header says the
/// image is sharded, then GHOSTS iff the table carries one.
Status ValidateSectionOrder(const ParsedTable& table) {
  auto expect = [&](size_t i, uint32_t kind, uint32_t layer) {
    const Section& s = table.sections[i];
    if (s.kind != kind || s.layer != layer) {
      return Status::Corruption("unexpected section kind/layer at index " +
                                std::to_string(i));
    }
    return Status::OK();
  };
  BIGINDEX_RETURN_IF_ERROR(expect(0, Fmt::kSectionDict, 0));
  BIGINDEX_RETURN_IF_ERROR(expect(1, Fmt::kSectionGraph, 0));
  for (uint32_t m = 1; m <= table.num_layers; ++m) {
    size_t base = 2 + 3 * (m - 1);
    BIGINDEX_RETURN_IF_ERROR(expect(base, Fmt::kSectionConfig, m));
    BIGINDEX_RETURN_IF_ERROR(expect(base + 1, Fmt::kSectionMapping, m));
    BIGINDEX_RETURN_IF_ERROR(expect(base + 2, Fmt::kSectionGraph, m));
  }
  if (table.num_shards != 0) {
    size_t at = 2 + 3ull * table.num_layers;
    BIGINDEX_RETURN_IF_ERROR(expect(at, Fmt::kSectionShardMap, 0));
    if (table.has_ghosts) {
      BIGINDEX_RETURN_IF_ERROR(expect(at + 1, Fmt::kSectionGhosts, 0));
    }
  }
  return Status::OK();
}

Status ParseDictSection(const Section& s, LabelDictionary& dict) {
  Cursor cur(s.data, s.length);
  uint64_t count = 0;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&count));
  std::span<const uint64_t> offsets;
  if (count >= s.length) return Status::Corruption("dictionary count too big");
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(count + 1, &offsets));
  uint64_t blob_size = offsets[count];
  if (blob_size > cur.remaining()) {
    return Status::Corruption("dictionary blob truncated");
  }
  const char* blob = reinterpret_cast<const char*>(s.data) +
                     (s.length - cur.remaining());
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("dictionary offsets not monotone");
    }
  }
  // Prefix compatibility: ids the caller has already interned (typically by
  // loading the dataset's ontology) must mean the same strings here,
  // otherwise the image's label ids would silently alias different labels.
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name(blob + offsets[i], offsets[i + 1] - offsets[i]);
    if (i < dict.size()) {
      if (dict.Name(static_cast<LabelId>(i)) != name) {
        return Status::FailedPrecondition(
            "label dictionary mismatch at id " + std::to_string(i) +
            ": image has '" + std::string(name) + "', caller has '" +
            dict.Name(static_cast<LabelId>(i)) + "'");
      }
    } else {
      LabelId id = dict.Intern(name);
      if (id != i) {
        return Status::Corruption("duplicate name in image dictionary: '" +
                                  std::string(name) + "'");
      }
    }
  }
  return Status::OK();
}

/// Offsets array invariants: starts at 0, monotone, ends at `payload_count`.
Status ValidateOffsets(std::span<const uint64_t> offsets,
                       uint64_t payload_count, const char* what) {
  if (offsets.empty() || offsets.front() != 0) {
    return Status::Corruption(std::string(what) + " offsets must start at 0");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(std::string(what) + " offsets not monotone");
    }
  }
  if (offsets.back() != payload_count) {
    return Status::Corruption(std::string(what) +
                              " offsets do not cover the payload array");
  }
  return Status::OK();
}

Status ValidateIdRange(std::span<const VertexId> ids, uint64_t bound,
                       const char* what) {
  for (VertexId id : ids) {
    if (id >= bound) {
      return Status::Corruption(std::string(what) + " id out of range");
    }
  }
  return Status::OK();
}

StatusOr<Graph> ParseGraphSection(const Section& s, StorageHandle storage,
                                  size_t dict_size,
                                  const IndexImageOptions& options) {
  Cursor cur(s.data, s.length);
  uint64_t n = 0, e = 0, slots = 0, nd = 0;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&n));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&e));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&slots));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&nd));
  if (n > kInvalidVertex || slots > kInvalidLabel) {
    return Status::Corruption("graph section counts exceed id width");
  }
  std::span<const LabelId> labels;
  std::span<const uint64_t> out_offsets, in_offsets, label_offsets;
  std::span<const VertexId> out_targets, in_sources, label_vertices;
  std::span<const LabelId> distinct;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(n, &labels));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(n + 1, &out_offsets));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(e, &out_targets));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(n + 1, &in_offsets));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(e, &in_sources));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(slots + 1, &label_offsets));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(n, &label_vertices));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(nd, &distinct));
  BIGINDEX_RETURN_IF_ERROR(cur.ExpectExhausted());
  if (options.validate_arrays) {
    BIGINDEX_RETURN_IF_ERROR(ValidateOffsets(out_offsets, e, "out"));
    BIGINDEX_RETURN_IF_ERROR(ValidateOffsets(in_offsets, e, "in"));
    BIGINDEX_RETURN_IF_ERROR(ValidateOffsets(label_offsets, n, "label"));
    BIGINDEX_RETURN_IF_ERROR(ValidateIdRange(out_targets, n, "out-target"));
    BIGINDEX_RETURN_IF_ERROR(ValidateIdRange(in_sources, n, "in-source"));
    BIGINDEX_RETURN_IF_ERROR(
        ValidateIdRange(label_vertices, n, "label-vertex"));
    for (LabelId l : labels) {
      if (l >= slots || l >= dict_size) {
        return Status::Corruption("vertex label out of range");
      }
    }
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (distinct[i] >= slots || (i > 0 && distinct[i] <= distinct[i - 1])) {
        return Status::Corruption("distinct-label array invalid");
      }
    }
  }
  return Graph::FromStorage(std::move(storage), labels, out_offsets,
                            out_targets, in_offsets, in_sources, label_offsets,
                            label_vertices, distinct);
}

StatusOr<BisimMapping> ParseMappingSection(const Section& s,
                                           StorageHandle storage,
                                           const IndexImageOptions& options) {
  Cursor cur(s.data, s.length);
  uint64_t nv = 0, ns = 0;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&nv));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&ns));
  if (nv > kInvalidVertex || ns > kInvalidVertex) {
    return Status::Corruption("mapping section counts exceed id width");
  }
  std::span<const VertexId> vertex_to_super, members;
  std::span<const uint64_t> member_offsets;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(nv, &vertex_to_super));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(ns + 1, &member_offsets));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(nv, &members));
  BIGINDEX_RETURN_IF_ERROR(cur.ExpectExhausted());
  if (options.validate_arrays) {
    BIGINDEX_RETURN_IF_ERROR(
        ValidateIdRange(vertex_to_super, ns, "vertex-to-super"));
    BIGINDEX_RETURN_IF_ERROR(ValidateOffsets(member_offsets, nv, "member"));
    BIGINDEX_RETURN_IF_ERROR(ValidateIdRange(members, nv, "member"));
  }
  return BisimMapping::FromStorage(std::move(storage), vertex_to_super,
                                   member_offsets, members);
}

StatusOr<GeneralizationConfig> ParseConfigSection(const Section& s,
                                                  size_t dict_size) {
  Cursor cur(s.data, s.length);
  uint64_t count = 0;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&count));
  std::span<const uint32_t> pairs;
  if (count > s.length) return Status::Corruption("config count too big");
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(2 * count, &pairs));
  BIGINDEX_RETURN_IF_ERROR(cur.ExpectExhausted());
  GeneralizationConfig config;
  for (uint64_t i = 0; i < count; ++i) {
    LabelId from = pairs[2 * i], to = pairs[2 * i + 1];
    if (from >= dict_size || to >= dict_size) {
      return Status::Corruption("config label out of range");
    }
    Status st = config.AddMapping(from, to);
    if (!st.ok()) return Status::Corruption("config invalid: " + st.message());
  }
  return config;
}

/// Parses the SHARDMAP section into `shard`, cross-checking the redundant
/// shard identity against the header and the remap against the base graph.
Status ParseShardMapSection(const Section& s, const ParsedTable& table,
                            uint64_t base_vertices, ShardImageInfo* shard) {
  Cursor cur(s.data, s.length);
  uint64_t count = 0, shard_id = 0, num_shards = 0;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&count));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&shard_id));
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&num_shards));
  if (shard_id != table.shard_id || num_shards != table.num_shards) {
    return Status::Corruption("shard map disagrees with header shard fields");
  }
  if (count != base_vertices) {
    return Status::Corruption("shard map size does not match base graph");
  }
  std::span<const VertexId> global_of;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(count, &global_of));
  BIGINDEX_RETURN_IF_ERROR(cur.ExpectExhausted());
  for (size_t i = 0; i < global_of.size(); ++i) {
    if (global_of[i] == kInvalidVertex ||
        (i > 0 && global_of[i] <= global_of[i - 1])) {
      return Status::Corruption("shard map remap not strictly ascending");
    }
  }
  if (shard != nullptr) {
    shard->shard_id = table.shard_id;
    shard->num_shards = table.num_shards;
    shard->global_of.assign(global_of.begin(), global_of.end());
  }
  return Status::OK();
}

/// Parses the GHOSTS section: strictly-ascending local ids of the shard's
/// ghost vertices, each a valid base-graph vertex.
Status ParseGhostsSection(const Section& s, uint64_t base_vertices,
                          ShardImageInfo* shard) {
  Cursor cur(s.data, s.length);
  uint64_t count = 0;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadU64(&count));
  if (count == 0) {
    return Status::Corruption("ghost section present but empty");
  }
  std::span<const VertexId> ghosts;
  BIGINDEX_RETURN_IF_ERROR(cur.ReadArray(count, &ghosts));
  BIGINDEX_RETURN_IF_ERROR(cur.ExpectExhausted());
  for (size_t i = 0; i < ghosts.size(); ++i) {
    if (ghosts[i] >= base_vertices || (i > 0 && ghosts[i] <= ghosts[i - 1])) {
      return Status::Corruption("ghost list not strictly ascending local ids");
    }
  }
  if (shard != nullptr) shard->ghosts.assign(ghosts.begin(), ghosts.end());
  return Status::OK();
}

StatusOr<BigIndex> LoadFromMemory(const std::byte* data, uint64_t size,
                                  StorageHandle storage, LabelDictionary& dict,
                                  const Ontology* ontology,
                                  const IndexImageOptions& options,
                                  ShardImageInfo* shard_out) {
  assert(reinterpret_cast<uintptr_t>(data) % Arena::kAlign == 0);
  if (shard_out != nullptr) *shard_out = ShardImageInfo{};
  auto table = ValidateHeaderAndTable(data, size, /*verify_checksums=*/true);
  if (!table.ok()) return table.status();
  BIGINDEX_RETURN_IF_ERROR(ValidateSectionOrder(*table));
  BIGINDEX_RETURN_IF_ERROR(ParseDictSection(table->sections[0], dict));
  auto base = ParseGraphSection(table->sections[1], storage, dict.size(),
                                options);
  if (!base.ok()) return base.status();
  if (table->num_shards != 0) {
    size_t at = 2 + 3ull * table->num_layers;
    BIGINDEX_RETURN_IF_ERROR(ParseShardMapSection(table->sections[at],
                                                  *table, base->NumVertices(),
                                                  shard_out));
    if (table->has_ghosts) {
      BIGINDEX_RETURN_IF_ERROR(ParseGhostsSection(
          table->sections[at + 1], base->NumVertices(), shard_out));
    }
  }
  std::vector<IndexLayer> layers;
  layers.reserve(table->num_layers);
  for (uint32_t m = 1; m <= table->num_layers; ++m) {
    size_t at = 2 + 3 * (m - 1);
    auto config = ParseConfigSection(table->sections[at], dict.size());
    if (!config.ok()) return config.status();
    auto mapping =
        ParseMappingSection(table->sections[at + 1], storage, options);
    if (!mapping.ok()) return mapping.status();
    auto graph = ParseGraphSection(table->sections[at + 2], storage,
                                   dict.size(), options);
    if (!graph.ok()) return graph.status();
    layers.push_back(IndexLayer{std::move(*config), std::move(*graph),
                                std::move(*mapping)});
  }
  return BigIndex::FromParts(std::move(*base), ontology, std::move(layers));
}

}  // namespace

Status WriteIndexImage(const BigIndex& index, const LabelDictionary& dict,
                       std::ostream& out) {
  return WriteIndexImage(index, dict, ShardImageInfo{}, out);
}

Status WriteIndexImage(const BigIndex& index, const LabelDictionary& dict,
                       const ShardImageInfo& shard, std::ostream& out) {
  if (shard.IsSharded()) {
    if (shard.shard_id >= shard.num_shards) {
      return Status::InvalidArgument("shard id out of range for shard count");
    }
    if (shard.global_of.size() != index.base().NumVertices()) {
      return Status::InvalidArgument(
          "shard remap size does not match base graph");
    }
    for (size_t i = 0; i < shard.ghosts.size(); ++i) {
      if (shard.ghosts[i] >= shard.global_of.size() ||
          (i > 0 && shard.ghosts[i] <= shard.ghosts[i - 1])) {
        return Status::InvalidArgument(
            "ghost list must be strictly ascending local ids");
      }
    }
  } else if (shard.shard_id != 0 || !shard.global_of.empty() ||
             !shard.ghosts.empty()) {
    return Status::InvalidArgument(
        "monolithic image cannot carry shard id, remap, or ghosts");
  }
  std::vector<std::pair<std::pair<uint32_t, uint32_t>, std::string>> sections;
  sections.emplace_back(std::make_pair(Fmt::kSectionDict, 0u),
                        BuildDictSection(dict));
  sections.emplace_back(std::make_pair(Fmt::kSectionGraph, 0u),
                        BuildGraphSection(index.base()));
  for (uint32_t m = 1; m <= index.NumLayers(); ++m) {
    const IndexLayer& layer = index.Layer(m);
    sections.emplace_back(std::make_pair(Fmt::kSectionConfig, m),
                          BuildConfigSection(layer.config));
    sections.emplace_back(std::make_pair(Fmt::kSectionMapping, m),
                          BuildMappingSection(layer.mapping));
    sections.emplace_back(std::make_pair(Fmt::kSectionGraph, m),
                          BuildGraphSection(layer.graph));
  }
  if (shard.IsSharded()) {
    sections.emplace_back(std::make_pair(Fmt::kSectionShardMap, 0u),
                          BuildShardMapSection(shard));
    // Ghost-free shards (wcc plans) skip the section entirely, keeping
    // their images byte-identical to the pre-GHOSTS format.
    if (!shard.ghosts.empty()) {
      sections.emplace_back(std::make_pair(Fmt::kSectionGhosts, 0u),
                            BuildGhostsSection(shard));
    }
  }

  std::string table;
  uint64_t offset =
      Fmt::kHeaderSize + sections.size() * Fmt::kSectionEntrySize;
  uint64_t file_size = offset;
  for (const auto& [meta, payload] : sections) {
    assert(payload.size() % Arena::kAlign == 0);
    AppendU32(table, meta.first);
    AppendU32(table, meta.second);
    AppendU64(table, offset);
    AppendU64(table, payload.size());
    AppendU64(table, Fnv1a(payload.data(), payload.size()));
    offset += payload.size();
    file_size += payload.size();
  }

  std::string header;
  header.append(Fmt::kMagic, sizeof Fmt::kMagic);
  AppendU32(header, Fmt::kVersion);
  AppendU32(header, Fmt::kEndianMarker);
  AppendU64(header, file_size);
  AppendU32(header, static_cast<uint32_t>(sections.size()));
  AppendU32(header, static_cast<uint32_t>(index.NumLayers()));
  AppendU32(header, shard.shard_id);    // 0 when monolithic
  AppendU32(header, shard.num_shards);  // 0 = monolithic
  header.append(16, '\0');  // reserved
  AppendU64(header, Fnv1a(header.data(), header.size()));
  assert(header.size() == Fmt::kHeaderSize);

  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(table.data(), static_cast<std::streamsize>(table.size()));
  for (const auto& [meta, payload] : sections) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  if (!out) return Status::IOError("failed writing index image");
  return Status::OK();
}

Status SaveIndexImageFile(const BigIndex& index, const LabelDictionary& dict,
                          const std::string& path) {
  return SaveIndexImageFile(index, dict, ShardImageInfo{}, path);
}

Status SaveIndexImageFile(const BigIndex& index, const LabelDictionary& dict,
                          const ShardImageInfo& shard,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  BIGINDEX_RETURN_IF_ERROR(WriteIndexImage(index, dict, shard, out));
  out.close();
  if (!out) return Status::IOError("failed closing " + path);
  return Status::OK();
}

StatusOr<BigIndex> LoadIndexImage(const std::string& path,
                                  LabelDictionary& dict,
                                  const Ontology* ontology,
                                  const IndexImageOptions& options,
                                  ShardImageInfo* shard_out) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  return LoadFromMemory(mapped->data(), mapped->size(), mapped->handle(),
                        dict, ontology, options, shard_out);
}

StatusOr<BigIndex> LoadIndexImageFromBuffer(
    std::shared_ptr<const std::string> bytes, LabelDictionary& dict,
    const Ontology* ontology, const IndexImageOptions& options,
    ShardImageInfo* shard_out) {
  if (bytes == nullptr) return Status::InvalidArgument("null image buffer");
  const std::byte* data = reinterpret_cast<const std::byte*>(bytes->data());
  if (reinterpret_cast<uintptr_t>(data) % Arena::kAlign != 0) {
    // Rare (heap strings are suitably aligned); realign by copying so the
    // zero-copy span wiring stays UB-free.
    auto arena = std::make_shared<Arena>(bytes->size());
    auto span = arena->Carve<std::byte>(bytes->size());
    std::memcpy(span.data(), bytes->data(), bytes->size());
    return LoadFromMemory(span.data(), bytes->size(), std::move(arena), dict,
                          ontology, options, shard_out);
  }
  return LoadFromMemory(data, bytes->size(),
                        StorageHandle(bytes, bytes->data()), dict, ontology,
                        options, shard_out);
}

StatusOr<ImageInfo> InspectIndexImage(const std::string& path) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const std::byte* data = mapped->data();
  uint64_t size = mapped->size();
  auto table = ValidateHeaderAndTable(data, size, /*verify_checksums=*/false);
  if (!table.ok()) return table.status();
  ImageInfo info;
  info.version = LoadU32(data + 8);
  info.file_size = LoadU64(data + 16);
  info.num_layers = table->num_layers;
  info.shard_id = table->shard_id;
  info.num_shards = table->num_shards;
  info.fingerprint = Fnv1a(
      data, Fmt::kHeaderSize +
                table->sections.size() * uint64_t{Fmt::kSectionEntrySize});
  for (size_t i = 0; i < table->sections.size(); ++i) {
    const std::byte* e =
        data + Fmt::kHeaderSize + i * Fmt::kSectionEntrySize;
    const Section& s = table->sections[i];
    ImageSectionInfo si;
    si.kind = s.kind;
    si.layer = s.layer;
    si.offset = LoadU64(e + 8);
    si.length = s.length;
    si.checksum = LoadU64(e + 24);
    si.checksum_ok = Fnv1a(s.data, s.length) == si.checksum;
    info.sections.push_back(si);
  }
  return info;
}

bool LooksLikeIndexImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof Fmt::kMagic];
  if (!in.read(magic, sizeof magic)) return false;
  return std::memcmp(magic, Fmt::kMagic, sizeof magic) == 0;
}

const char* SectionKindName(uint32_t kind) {
  switch (kind) {
    case Fmt::kSectionDict:
      return "DICT";
    case Fmt::kSectionGraph:
      return "GRAPH";
    case Fmt::kSectionMapping:
      return "MAPPING";
    case Fmt::kSectionConfig:
      return "CONFIG";
    case Fmt::kSectionShardMap:
      return "SHARDMAP";
    case Fmt::kSectionGhosts:
      return "GHOSTS";
    default:
      return "UNKNOWN";
  }
}

}  // namespace bigindex
