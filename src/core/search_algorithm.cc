#include "core/search_algorithm.h"

#include "engine/query_context.h"

namespace bigindex {

std::vector<Answer> KeywordSearchAlgorithm::Evaluate(
    const Graph& g, const std::vector<LabelId>& keywords) const {
  QueryContext ctx;
  return Evaluate(g, keywords, ctx);
}

std::optional<Answer> KeywordSearchAlgorithm::VerifyCandidate(
    const Graph& g, const std::vector<LabelId>& keywords,
    const Answer& candidate) const {
  QueryContext ctx;
  return VerifyCandidate(g, keywords, candidate, ctx);
}

}  // namespace bigindex
