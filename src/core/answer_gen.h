// Answer specialization and generation (Sec. 4.2 Steps 2–5, Sec. 4.3).
//
// A generalized answer a^m from the query layer is specialized down the
// hierarchy as *vertex sets* (edges are never materialized at intermediate
// layers, Sec. 4.2), with keyword-node candidates filtered by Prop 4.1 /
// the isKey rule of Sec. 4.3.1. At layer 0 the concrete answer graphs are
// realized against the generalized answer's topology either one vertex at a
// time (Algorithm 3, vertex qualification Def 4.2) or one path at a time
// (Algorithm 4, joint vertices + path qualification Def 4.3), optionally in
// ascending-|χ^-1| specialization order (Sec. 4.3.2).

#ifndef BIGINDEX_CORE_ANSWER_GEN_H_
#define BIGINDEX_CORE_ANSWER_GEN_H_

#include <cstdint>
#include <vector>

#include "core/big_index.h"
#include "search/answer.h"

namespace bigindex {

/// Marker for positions that match no query keyword (pure connectors).
inline constexpr int kNoKeyword = -1;

/// A generalized answer with its layer-0 candidate sets.
struct SpecializedAnswer {
  /// The generalized answer, over the query layer's graph.
  Answer generalized;

  /// The query layer m it came from.
  size_t layer = 0;

  /// candidates[p] are the layer-0 vertices that specialize
  /// generalized.vertices[p] (keyword positions already label-filtered).
  std::vector<std::vector<VertexId>> candidates;

  /// keyword_of[p] is the query-keyword index position p matches, or
  /// kNoKeyword. The root position (rooted semantics) is root_position.
  std::vector<int> keyword_of;

  /// Index into generalized.vertices of the root, or -1 if rootless.
  int root_position = -1;

  /// Unfiltered layer-0 specializations of the root vertex. Distinct from
  /// candidates[root_position]: when the generalized root doubles as a
  /// keyword witness, the keyword filter (correct for the *witness* role)
  /// must not prune *root* candidates — a concrete root may satisfy the
  /// keyword through a different vertex entirely. This set is what keeps
  /// the candidate root set complete (Lemma 4.1).
  std::vector<VertexId> root_candidates;

  /// True iff some keyword position lost every candidate (Prop 4.1 pruned
  /// the whole generalized answer).
  bool pruned_empty = false;
};

/// Options for answer generation (the Fig. 17 / Fig. 18 ablation switches).
struct AnswerGenOptions {
  /// Algorithm 4 (paths) instead of Algorithm 3 (vertices).
  bool use_path_based = true;

  /// Sec. 4.3.2 ascending-|χ^-1| specialization order (vs natural order).
  bool use_specialization_order = true;

  /// Cap on simultaneously live partial answers per generalized answer;
  /// prevents pathological blow-up. Truncation is counted in stats and never
  /// affects the verified root set of rooted semantics.
  size_t max_partial_answers = 4096;
};

/// Generation diagnostics (Example 4.2's "intermediate partial answers").
struct AnswerGenStats {
  size_t partial_answers_created = 0;
  size_t realizations = 0;
  size_t cap_hits = 0;
};

/// Algorithm 2 Steps 2–4: specializes `generalized` (an answer over layer m)
/// down to layer-0 candidate sets with keyword filtering.
SpecializedAnswer SpecializeAnswer(const BigIndex& index,
                                   const Answer& generalized, size_t m,
                                   const std::vector<LabelId>& keywords);

/// Algorithm 3 (ans_graph_gen): vertex-at-a-time realization. Each returned
/// Answer assigns one concrete vertex per generalized position; scores are 0
/// (the evaluator's verification step computes exact scores).
std::vector<Answer> GenerateAnswersVertexBased(const BigIndex& index,
                                               const SpecializedAnswer& spec,
                                               const AnswerGenOptions& options,
                                               AnswerGenStats* stats);

/// Algorithm 4 (p_ans_graph_gen): path-at-a-time realization joined at joint
/// vertices (degree > 2 in the generalized answer graph).
std::vector<Answer> GenerateAnswersPathBased(const BigIndex& index,
                                             const SpecializedAnswer& spec,
                                             const AnswerGenOptions& options,
                                             AnswerGenStats* stats);

}  // namespace bigindex

#endif  // BIGINDEX_CORE_ANSWER_GEN_H_
