// The pluggable keyword-search interface `f` of the problem statement
// (Def 2.3): BiG-index is generic over any algorithm that evaluates a keyword
// query on a graph, provided the index transformation is label- and
// path-preserving (Sec. 2) — which our Gen/Bisim pipeline guarantees.
//
// Implementations in src/search: BkwsAlgorithm (backward keyword search,
// BANKS-style), BlinksAlgorithm (ranked distinct-root top-k), and
// RCliqueAlgorithm (distance-bounded multi-center answers). They run
// unchanged on data graphs and on summary layers — summaries are "yet another
// set of graphs" (Sec. 1).
//
// Re-entrancy contract: implementations hold no per-query mutable state —
// all scratch memory comes from the QueryContext threaded through every
// call, so one algorithm object serves concurrent queries (each on its own
// context) over shared graphs. Caches of derived per-graph structures
// (Blinks bi-level index, r-clique neighbor lists) are allowed but must be
// internally synchronized.

#ifndef BIGINDEX_CORE_SEARCH_ALGORITHM_H_
#define BIGINDEX_CORE_SEARCH_ALGORITHM_H_

#include <optional>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "search/answer.h"

namespace bigindex {

class QueryContext;

/// Interface for a keyword search semantics (the paper's f).
///
/// Evaluate() receives keywords as label ids valid for `g`'s dictionary and
/// returns answers over `g`'s vertex ids. Implementations must be
/// deterministic for a given (graph, keywords) pair — BiG-index's equivalence
/// guarantee (Thm 4.2) is stated answer-set-wise and the tests compare sets.
///
/// Implementations override the QueryContext overloads; the context-free
/// overloads are non-virtual conveniences that run on a private throwaway
/// context. Derived classes should `using KeywordSearchAlgorithm::Evaluate;`
/// (and likewise VerifyCandidate) so the conveniences stay visible.
class KeywordSearchAlgorithm {
 public:
  virtual ~KeywordSearchAlgorithm() = default;

  /// Human-readable name ("bkws", "blinks", "r-clique").
  virtual std::string_view Name() const = 0;

  /// Evaluates `keywords` on `g` and returns all (or top-k, per the
  /// algorithm's own options) answers, drawing scratch memory from `ctx`.
  virtual std::vector<Answer> Evaluate(const Graph& g,
                                       const std::vector<LabelId>& keywords,
                                       QueryContext& ctx) const = 0;

  /// True for rooted-tree semantics (bkws, Blinks): answers are identified
  /// by their root and BiG-index enumerates candidate roots during answer
  /// generation. False for multi-center semantics (r-clique), where
  /// candidates are keyword-vertex assignments.
  virtual bool IsRooted() const = 0;

  /// Locality radius ρ of the semantics: every vertex an answer depends on
  /// (its own vertices, and every path consulted while scoring it) lies
  /// within undirected distance ρ of the answer's anchor (the root for
  /// rooted semantics, else its smallest keyword vertex). The shard
  /// substrate's boundary completion pass (DESIGN.md §9) uses ρ to decide
  /// which answers are shard-exact: 0 means "unknown/unbounded" and
  /// disables cross-shard completion for this algorithm.
  virtual uint32_t LocalityRadius() const { return 0; }

  /// Verifies one layer-0 candidate produced by BiG-index answer generation
  /// (Sec. 4.2 Step 5 / Sec. 5 "answer generation and verification") and, if
  /// it satisfies the semantics, returns the *exact* answer: for rooted
  /// semantics only candidate.root is consulted and the best tree for that
  /// root is computed on `g`; for r-clique the keyword assignment is
  /// distance-verified and exactly scored. Returns nullopt otherwise.
  virtual std::optional<Answer> VerifyCandidate(
      const Graph& g, const std::vector<LabelId>& keywords,
      const Answer& candidate, QueryContext& ctx) const = 0;

  /// Single-call conveniences: same results, throwaway context.
  std::vector<Answer> Evaluate(const Graph& g,
                               const std::vector<LabelId>& keywords) const;
  std::optional<Answer> VerifyCandidate(const Graph& g,
                                        const std::vector<LabelId>& keywords,
                                        const Answer& candidate) const;
};

}  // namespace bigindex

#endif  // BIGINDEX_CORE_SEARCH_ALGORITHM_H_
