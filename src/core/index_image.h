// The flat index image: a single versioned, checksummed, mmap-friendly file
// holding a complete BigIndex ("BiG-index loads the m-th layer from the
// disk", Sec. 5.1 — here the whole hierarchy maps in one shot).
//
// Layout (all integers little-endian, all sections 8-byte aligned; see
// DESIGN.md "Flat index image format" for the full specification):
//
//   [ 64-byte header      ]  magic, version, endianness marker, file size,
//                            section count, layer count, header checksum
//   [ section table       ]  32 bytes per section: kind, layer, offset,
//                            length, FNV-1a checksum of the payload
//   [ section payloads    ]  back to back, zero-padded to 8-byte boundaries
//
// Canonical section order: DICT, GRAPH(0), then per layer m = 1..h:
// CONFIG(m), MAPPING(m), GRAPH(m); sharded images (shard substrate,
// DESIGN.md §9) append a SHARDMAP section carrying the shard id, shard
// count, and the local->global vertex remap, and — only when the shard has
// ghost vertices (cut-incident plans) — one final GHOSTS section listing
// the ghosts' local ids. Monolithic images write zeros in the header's
// shard fields and no SHARDMAP/GHOSTS section, and ghost-free sharded
// images (e.g. wcc plans) write no GHOSTS section, so both stay
// byte-identical to the pre-GHOSTS format.
// Graph and mapping sections contain the
// structures' flat arrays verbatim, so loading wires std::spans straight
// into the mapped region (Graph::FromStorage / BisimMapping::FromStorage)
// — no parsing, no allocation proportional to index size.
//
// The loader never trusts the file: every offset/length is bounds- and
// overflow-checked, payload checksums are verified, and array invariants
// (offset monotonicity, id ranges) are validated before any structure is
// wired. Corrupt input yields a non-OK Status, never UB. The ontology is
// not serialized (it ships with the dataset); the caller passes the one the
// index was built with, exactly as with core/index_io.h.

#ifndef BIGINDEX_CORE_INDEX_IMAGE_H_
#define BIGINDEX_CORE_INDEX_IMAGE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/big_index.h"
#include "graph/label_dictionary.h"
#include "util/status.h"

namespace bigindex {

/// Image format constants (version 1).
struct IndexImageFormat {
  static constexpr char kMagic[8] = {'B', 'I', 'G', 'X', 'I', 'M', 'G', '1'};
  static constexpr uint32_t kVersion = 1;
  /// Written as a native u32; reads back as 0x01020304 only on a machine of
  /// the same endianness, so a cross-endian file is rejected with a clear
  /// error instead of deserializing garbage.
  static constexpr uint32_t kEndianMarker = 0x01020304u;
  static constexpr size_t kHeaderSize = 64;
  static constexpr size_t kSectionEntrySize = 32;

  // Section kinds.
  static constexpr uint32_t kSectionDict = 1;     // label dictionary strings
  static constexpr uint32_t kSectionGraph = 2;    // one layer's flat Graph
  static constexpr uint32_t kSectionMapping = 3;  // one layer's BisimMapping
  static constexpr uint32_t kSectionConfig = 4;   // one layer's C^m
  static constexpr uint32_t kSectionShardMap = 5;  // shard id + global remap
  static constexpr uint32_t kSectionGhosts = 6;    // local ids of ghosts
};

/// Shard identity of an index image. `num_shards == 0` means the image is
/// monolithic (the whole graph); sharded images carry their shard id, the
/// plan's shard count, and the strictly-ascending local->global vertex remap
/// produced by ExtractShard, so a relocated image is self-describing.
struct ShardImageInfo {
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic
  /// Local vertex id -> global vertex id, strictly ascending. Size equals the
  /// base graph's vertex count when sharded; empty for monolithic images.
  std::vector<VertexId> global_of;
  /// Local ids of ghost vertices (see ShardExtract), strictly ascending,
  /// each < base vertex count. Empty for ghost-free shards and monolithic
  /// images; serialized as the GHOSTS section only when non-empty.
  std::vector<VertexId> ghosts;

  bool IsSharded() const { return num_shards != 0; }
};

/// Writes `index` as a flat image. Output is byte-deterministic: the same
/// index (and BigIndex construction is byte-identical across thread counts)
/// produces the same bytes. The ShardImageInfo overloads stamp the shard
/// identity into the header and append the SHARDMAP section; a
/// default-constructed (monolithic) ShardImageInfo writes the exact bytes of
/// the two-argument form.
Status WriteIndexImage(const BigIndex& index, const LabelDictionary& dict,
                       std::ostream& out);
Status WriteIndexImage(const BigIndex& index, const LabelDictionary& dict,
                       const ShardImageInfo& shard, std::ostream& out);
Status SaveIndexImageFile(const BigIndex& index, const LabelDictionary& dict,
                          const std::string& path);
Status SaveIndexImageFile(const BigIndex& index, const LabelDictionary& dict,
                          const ShardImageInfo& shard,
                          const std::string& path);

/// Loading knobs.
struct IndexImageOptions {
  /// Deep-validate array invariants (offset monotonicity, vertex/label id
  /// ranges) after checksums pass. O(index size) but cache-friendly; disable
  /// only for trusted images where cold-start latency is paramount.
  bool validate_arrays = true;
};

/// Maps `path` and wires a BigIndex over the mapped bytes (zero-copy; falls
/// back to a heap read where mmap is unavailable). `dict` must be
/// prefix-compatible with the image's dictionary — ids already interned must
/// name the same strings, in the same order, as when the image was written
/// (the usual case: the dataset's ontology was loaded into `dict` first).
/// Remaining image labels are interned into `dict`. `ontology` must outlive
/// the returned index.
/// If `shard_out` is non-null it receives the image's shard identity
/// (monolithic images yield a default ShardImageInfo).
StatusOr<BigIndex> LoadIndexImage(const std::string& path,
                                  LabelDictionary& dict,
                                  const Ontology* ontology,
                                  const IndexImageOptions& options = {},
                                  ShardImageInfo* shard_out = nullptr);

/// Same, over an in-memory buffer (tests, network transports). The buffer is
/// kept alive by the returned index. Misaligned buffers are copied into an
/// aligned arena first.
StatusOr<BigIndex> LoadIndexImageFromBuffer(
    std::shared_ptr<const std::string> bytes, LabelDictionary& dict,
    const Ontology* ontology, const IndexImageOptions& options = {},
    ShardImageInfo* shard_out = nullptr);

/// One section-table row, as reported by InspectIndexImage.
struct ImageSectionInfo {
  uint32_t kind = 0;
  uint32_t layer = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
  bool checksum_ok = false;
};

/// Header + section table of an image, for `bigindex_cli inspect`.
struct ImageInfo {
  uint32_t version = 0;
  uint64_t file_size = 0;
  uint32_t num_layers = 0;
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;  // 0 = monolithic
  /// FNV-1a over header + section table. The table embeds every payload
  /// checksum, so this single u64 identifies the image contents — the
  /// "image checksum" reported by the protocol INFO verb.
  uint64_t fingerprint = 0;
  std::vector<ImageSectionInfo> sections;
};

/// Reads and validates the header and section table of `path` and verifies
/// each section checksum. Fails with Corruption/IOError on malformed files.
StatusOr<ImageInfo> InspectIndexImage(const std::string& path);

/// True iff `path` starts with the image magic (cheap format sniff used by
/// the CLI/server to pick the right loader). False on I/O errors.
bool LooksLikeIndexImage(const std::string& path);

/// Human-readable section kind ("DICT", "GRAPH", ...), for inspect output.
const char* SectionKindName(uint32_t kind);

}  // namespace bigindex

#endif  // BIGINDEX_CORE_INDEX_IMAGE_H_
