// Configuration selection for one index layer.
//
// Theorem 3.1: choosing the cost-minimal configuration is NP-hard (reduction
// from maxSAT), so the paper uses the one-step greedy heuristic of
// Algorithm 1: rank all single generalizations (ℓ -> ℓ') by estimated cost,
// then admit them greedily while cost(C ∪ {c_i}) stays within threshold θ and
// |C| stays within budget Π.
//
// The experiments' default index instead sets θ and Π large "so that the
// labels of the graphs were generalized once when a layer was constructed"
// (Sec. 6.1.2) — FullOneStepConfiguration() builds that configuration
// directly (every label with a supertype steps up once).

#ifndef BIGINDEX_CORE_CONFIG_SEARCH_H_
#define BIGINDEX_CORE_CONFIG_SEARCH_H_

#include <cstddef>

#include "core/cost_model.h"
#include "graph/graph.h"
#include "ontology/config.h"
#include "ontology/ontology.h"

namespace bigindex {

/// Options for Algorithm 1.
struct ConfigSearchOptions {
  /// Cost threshold θ: the configuration stops growing once adding the next
  /// candidate would push cost(G, C) above it.
  double theta = 0.9;

  /// Budget Π: maximum number of generalizations in the configuration.
  size_t pi = SIZE_MAX;

  /// Cost-model knobs (α, sampling).
  CostModelOptions cost;
};

/// Algorithm 1: one-step greedy heuristic for a maximal configuration.
/// Candidates are every (label in G) -> (direct supertype in `ontology`)
/// mapping; conflicting mappings for the same label are resolved by cost
/// order (a configuration is a function on labels).
GeneralizationConfig FindConfiguration(const Graph& g,
                                       const Ontology& ontology,
                                       const ConfigSearchOptions& options);

/// The experiments' default: generalize every label of `g` one ontology step
/// (first = smallest-id direct supertype; deterministic). Labels without a
/// supertype stay fixed (case (ii) of the configuration definition).
GeneralizationConfig FullOneStepConfiguration(const Graph& g,
                                              const Ontology& ontology);

/// True iff FullOneStepConfiguration(a, ont) == FullOneStepConfiguration(b,
/// ont) for every ontology, decided without building either: the full
/// one-step configuration is a pure function of the graph's distinct-label
/// set. Incremental maintenance uses this to reuse a stored (already
/// validated) layer configuration instead of re-deriving it per batch.
bool SameFullConfiguration(const Graph& a, const Graph& b);

}  // namespace bigindex

#endif  // BIGINDEX_CORE_CONFIG_SEARCH_H_
