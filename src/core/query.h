// Query generalization (Sec. 4.1): choosing the layer m at which to evaluate
// a keyword query.
//
// The cost model (Formula 4) trades off the summary-graph size at layer m
// (smaller graphs explore faster) against the support blow-up of the
// generalized keywords (more matches mean more specialization work):
//
//   cost_q(m) = β · |G^m| / |G^0|
//             + (1 − β) · Σ sup(Gen^m(q_i), G^m) / Σ sup(q_i, G^0)
//
// NOTE a deliberate deviation from the paper's printed formula, which reads
// β(1 − |χ^m(G)|/|G|) + …: both printed terms are non-decreasing in m, so the
// printed cost has no interior minimum and would always pick m = 0 — flatly
// contradicting the surrounding narrative ("query evaluation in the higher
// layer reduces the query time …") and Fig. 19, where several queries are
// best at the *highest* layer. We therefore use the form implied by the
// narrative (first term rewards small summaries, second penalizes support
// growth), which does produce the trade-off the paper describes.
//
// Def 4.1 adds the feasibility condition |Gen^m(Q)| = |Q|: a layer is only
// eligible if no two query keywords generalize to the same label there.

#ifndef BIGINDEX_CORE_QUERY_H_
#define BIGINDEX_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/big_index.h"
#include "graph/types.h"

namespace bigindex {

/// A keyword query: labels to search for (2–6 in the paper's workloads).
struct KeywordQuery {
  std::vector<LabelId> keywords;
};

/// True iff Def 4.1 condition 1 holds at layer m: the generalized keywords
/// remain pairwise distinct.
bool QueryDistinctAtLayer(const BigIndex& index,
                          const std::vector<LabelId>& keywords, size_t m);

/// Formula 4 (in the corrected form above) for layer m.
double QueryLayerCost(const BigIndex& index,
                      const std::vector<LabelId>& keywords, size_t m,
                      double beta);

/// Def 4.1: the feasible layer with minimal cost_q. Exhaustive over the
/// (few) layers; ties break toward the lower layer. Always returns a valid
/// layer (0 is always feasible).
size_t OptimalQueryLayer(const BigIndex& index,
                         const std::vector<LabelId>& keywords, double beta);

}  // namespace bigindex

#endif  // BIGINDEX_CORE_QUERY_H_
