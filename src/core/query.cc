#include "core/query.h"

#include <algorithm>

namespace bigindex {

bool QueryDistinctAtLayer(const BigIndex& index,
                          const std::vector<LabelId>& keywords, size_t m) {
  std::vector<LabelId> gen = index.GeneralizeKeywords(keywords, m);
  std::sort(gen.begin(), gen.end());
  return std::adjacent_find(gen.begin(), gen.end()) == gen.end();
}

double QueryLayerCost(const BigIndex& index,
                      const std::vector<LabelId>& keywords, size_t m,
                      double beta) {
  const Graph& base = index.base();
  const Graph& layer = index.LayerGraph(m);

  double size_term = base.Size() == 0
                         ? 1.0
                         : static_cast<double>(layer.Size()) / base.Size();

  double base_support = 0.0;
  double layer_support = 0.0;
  for (LabelId q : keywords) {
    base_support += base.LabelSupport(q);
    layer_support += layer.LabelSupport(index.GeneralizeLabel(q, m));
  }
  double support_term =
      base_support == 0.0 ? 1.0 : layer_support / base_support;

  return beta * size_term + (1.0 - beta) * support_term;
}

size_t OptimalQueryLayer(const BigIndex& index,
                         const std::vector<LabelId>& keywords, double beta) {
  size_t best = 0;
  double best_cost = QueryLayerCost(index, keywords, 0, beta);
  for (size_t m = 1; m <= index.NumLayers(); ++m) {
    if (!QueryDistinctAtLayer(index, keywords, m)) continue;
    double cost = QueryLayerCost(index, keywords, m, beta);
    if (cost < best_cost) {
      best_cost = cost;
      best = m;
    }
  }
  return best;
}

}  // namespace bigindex
