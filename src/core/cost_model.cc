#include "core/cost_model.h"

#include <algorithm>
#include <unordered_set>

#include "bisim/bisimulation.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bigindex {
namespace {

/// Per-sample Gen+Bisim runs — the inner hot spot of Algorithm 1's
/// sampling-based estimator.
Counter& SampleBisimsCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "bigindex_costmodel_sample_bisims_total",
      "Bisimulations computed on sampled subgraphs by the cost model");
  return c;
}

double SummaryRatio(const Graph& g) {
  if (g.Size() == 0) return 1.0;
  SampleBisimsCounter().Inc();
  BisimResult r = ComputeBisimulation(g);
  return static_cast<double>(r.summary.Size()) / g.Size();
}

}  // namespace

CostModel::CostModel(const Graph& g, const CostModelOptions& options)
    : graph_(g), options_(options) {
  TRACE_SPAN("cost_model/sample");
  static Counter& sampled = MetricsRegistry::Global().GetCounter(
      "bigindex_costmodel_samples_total",
      "Radius-r subgraphs sampled for cost estimation");
  samples_ = SampleRadiusSubgraphs(g, options_.sample_radius,
                                   options_.sample_count, options_.seed,
                                   options_.max_sample_vertices, options_.pool);
  sampled.Inc(samples_.size());
  baseline_ratio_.assign(samples_.size(), -1.0);

  // With a pool, fill every baseline now (they are all needed by the first
  // IncrementalCost anyway); afterwards parallel scoring only *reads* the
  // cache, so the lazy mutable path never races.
  if (options_.pool != nullptr && options_.pool->num_workers() > 1) {
    TRACE_SPAN("build/parallel/baselines");
    options_.pool->ParallelFor(samples_.size(), [this](size_t, size_t i) {
      baseline_ratio_[i] = SummaryRatio(samples_[i].graph);
    });
  }

  // Label -> samples containing it (for incremental estimation).
  LabelId max_label = 0;
  for (const SampledSubgraph& s : samples_) {
    for (LabelId l : s.graph.DistinctLabels()) {
      max_label = std::max(max_label, l);
    }
  }
  samples_with_label_.resize(samples_.empty() ? 0 : max_label + 1);
  for (uint32_t i = 0; i < samples_.size(); ++i) {
    for (LabelId l : samples_[i].graph.DistinctLabels()) {
      samples_with_label_[l].push_back(i);
    }
  }
}

double CostModel::BaselineRatio(size_t sample_index) const {
  double& cached = baseline_ratio_[sample_index];
  if (cached < 0) cached = SummaryRatio(samples_[sample_index].graph);
  return cached;
}

double CostModel::EstimateCompress(
    const GeneralizationConfig& config) const {
  TRACE_SPAN("cost_model/estimate");
  if (samples_.empty()) return 1.0;

  // Samples whose labels the config touches need a real Gen+Bisim run; the
  // rest keep their baseline (empty-config) ratio.
  std::unordered_set<uint32_t> affected;
  for (const LabelMapping& m : config.mappings()) {
    if (m.from < samples_with_label_.size()) {
      for (uint32_t i : samples_with_label_[m.from]) affected.insert(i);
    }
  }

  // Per-sample ratios land in a vector and are reduced in index order, so
  // the mean is bit-identical no matter how many workers ran the Gen+Bisim
  // passes (FP addition is not associative).
  std::vector<double> ratio(samples_.size(), -1.0);
  auto rate_sample = [&](size_t, size_t i) {
    const Graph& sg = samples_[i].graph;
    if (sg.Size() == 0) return;
    if (affected.count(i)) {
      Graph generalized = Generalize(sg, config);
      ratio[i] = SummaryRatio(generalized);
    } else {
      ratio[i] = BaselineRatio(i);
    }
  };
  if (options_.pool != nullptr && options_.pool->num_workers() > 1) {
    TRACE_SPAN("build/parallel/estimate");
    options_.pool->ParallelFor(samples_.size(), rate_sample);
  } else {
    for (uint32_t i = 0; i < samples_.size(); ++i) rate_sample(0, i);
  }
  double total = 0.0;
  size_t counted = 0;
  for (uint32_t i = 0; i < samples_.size(); ++i) {
    if (ratio[i] < 0) continue;
    total += ratio[i];
    ++counted;
  }
  return counted == 0 ? 1.0 : total / counted;
}

double CostModel::Distort(const GeneralizationConfig& config) const {
  // distort(G, C) = Σ distort(ℓ)·sup(ℓ) / (|X| · Σ sup(ℓ)) over ℓ in the
  // domain X of C, with distort(ℓ) = 1 − 1/|X_ℓ| where |X_ℓ| counts labels
  // sharing ℓ's target.
  const auto& mappings = config.mappings();
  if (mappings.empty()) return 0.0;
  double weighted = 0.0;
  double support_sum = 0.0;
  for (const LabelMapping& m : mappings) {
    double family = static_cast<double>(config.FamilySize(m.from));
    double distort_l = 1.0 - 1.0 / family;
    double sup = graph_.LabelSupport(m.from);
    weighted += distort_l * sup;
    support_sum += sup;
  }
  if (support_sum == 0.0) return 0.0;
  return weighted / (static_cast<double>(mappings.size()) * support_sum);
}

double CostModel::ExactCompress(const Graph& g,
                                const GeneralizationConfig& config) {
  if (g.Size() == 0) return 1.0;
  Graph generalized = Generalize(g, config);
  return SummaryRatio(generalized);
}

IncrementalCost::IncrementalCost(const CostModel& model) : model_(model) {
  sample_ratio_.resize(model.samples_.size());
  for (uint32_t i = 0; i < model.samples_.size(); ++i) {
    if (model.samples_[i].graph.Size() == 0) {
      sample_ratio_[i] = -1.0;  // excluded from the mean
      continue;
    }
    sample_ratio_[i] = model.BaselineRatio(i);
    ratio_sum_ += sample_ratio_[i];
    ++counted_;
  }
}

double IncrementalCost::CompressReplacing(
    std::span<const uint32_t> touched,
    std::span<const double> replacement) const {
  if (counted_ == 0) return 1.0;
  double sum = ratio_sum_;
  for (size_t k = 0; k < touched.size(); ++k) {
    if (sample_ratio_[touched[k]] < 0) continue;
    sum += replacement[k] - sample_ratio_[touched[k]];
  }
  return sum / counted_;
}

double IncrementalCost::CostWith(const LabelMapping& mapping) {
  if (config_.Maps(mapping.from)) return CurrentCost();

  GeneralizationConfig tentative = config_;
  (void)tentative.AddMapping(mapping.from, mapping.to);

  auto touched = model_.SamplesWithLabel(mapping.from);
  std::vector<double> replacement;
  replacement.reserve(touched.size());
  for (uint32_t i : touched) {
    const Graph& sg = model_.samples_[i].graph;
    replacement.push_back(
        sg.Size() == 0
            ? -1.0
            : CostModel::ExactCompress(sg, tentative));
  }
  double compress = CompressReplacing(touched, replacement);
  double distort = model_.Distort(tentative);
  const double alpha = model_.options().alpha;
  return alpha * compress + (1.0 - alpha) * distort;
}

void IncrementalCost::Commit(const LabelMapping& mapping) {
  (void)config_.AddMapping(mapping.from, mapping.to);
  for (uint32_t i : model_.SamplesWithLabel(mapping.from)) {
    if (sample_ratio_[i] < 0) continue;
    double updated =
        CostModel::ExactCompress(model_.samples_[i].graph, config_);
    ratio_sum_ += updated - sample_ratio_[i];
    sample_ratio_[i] = updated;
  }
}

double IncrementalCost::CurrentCost() {
  double compress = counted_ == 0 ? 1.0 : ratio_sum_ / counted_;
  const double alpha = model_.options().alpha;
  return alpha * compress + (1.0 - alpha) * model_.Distort(config_);
}

}  // namespace bigindex
